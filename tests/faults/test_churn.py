"""Receiver churn: mid-session leave/rejoin with correct per-user stats."""

import numpy as np

from repro.faults import FaultController, FaultEvent, FaultKind, FaultSchedule
from repro.obs import OBS, observed
from repro.types import FrameStats

from tests.faults.conftest import build_streamer


def _churn_session(parts, events, seed=7):
    streamer = build_streamer(parts, seed=seed)
    controller = FaultController(FaultSchedule(events=list(events)))
    return streamer, streamer.session(parts[3], faults=controller)


class TestLeaveRejoin:
    """User 1 leaves at t=0.05 and rejoins at t=0.15 (8 frames at 30 FPS:
    absent for frames 2-4, present for 0, 1, 5, 6, 7)."""

    EVENTS = [
        FaultEvent(FaultKind.LEAVE, 0.05, user=1),
        FaultEvent(FaultKind.JOIN, 0.15, user=1),
    ]

    def test_per_user_stats_cover_only_present_frames(self, parts):
        streamer, session = _churn_session(parts, self.EVENTS)
        outcome = session.run(8)
        frames_by_user = {}
        for stat in outcome.stats:
            frames_by_user.setdefault(stat.user_id, []).append(
                stat.frame_index
            )
        assert frames_by_user[0] == list(range(8))
        assert frames_by_user[1] == [0, 1, 5, 6, 7]
        assert len(outcome.ssim_series(1)) == 5
        assert set(outcome.per_user_ssim()) == {0, 1}
        assert np.isfinite(list(outcome.per_user_ssim().values())).all()

    def test_transmitter_state_evicted_and_rebuilt(self, parts):
        """The churn-leak fix: the departed receiver's transmitter tally is
        dropped on leave and restarts from scratch on rejoin."""
        streamer, session = _churn_session(parts, self.EVENTS)
        session.run(8)
        transmitter = streamer.transmitter
        assert transmitter.tracked_users() == [0, 1]
        assert transmitter.user_state(0).frames == 8
        assert transmitter.user_state(1).frames == 3  # post-rejoin only

    def test_rejoin_resets_bandwidth_history(self, parts):
        _, session = _churn_session(parts, self.EVENTS)
        observed_fractions = []
        if session.cohort_bw is not None:
            # Optimized mode folds feedback in per cohort; count how many
            # batched updates include user 1's row.
            estimator = session.cohort_bw
            row = estimator.rows([1])[0]
            original_rows = estimator.observe_fraction_rows

            def spy_rows(rows, fractions, rng):
                observed_fractions.extend(fractions[rows == row].tolist())
                return original_rows(rows, fractions, rng)

            estimator.observe_fraction_rows = spy_rows
        else:
            original = session.state.bw_estimators[1].observe_fraction

            def spy(fraction, rng):
                observed_fractions.append(fraction)
                return original(fraction, rng)

            session.state.bw_estimators[1].observe_fraction = spy
        session.run(8)
        assert len(observed_fractions) == 5  # one per present frame

    def test_churn_counters(self, parts):
        _, session = _churn_session(parts, self.EVENTS)
        with observed("counters"):
            session.run(8)
            counters = OBS.counters()
        assert counters["fault.churn.leaves"] == 1
        assert counters["fault.churn.joins"] == 1
        assert counters["fault.churn.replans"] == 2  # leave + rejoin
        assert counters["transport.users_evicted"] == 1

    def test_outcome_identical_across_same_seed_runs(self, parts):
        first = _churn_session(parts, self.EVENTS)[1].run(8)
        second = _churn_session(parts, self.EVENTS)[1].run(8)
        assert [
            (s.frame_index, s.user_id, s.ssim) for s in first.stats
        ] == [(s.frame_index, s.user_id, s.ssim) for s in second.stats]


class TestEveryoneLeaves:
    def test_idle_frames_skipped_session_completes(self, parts):
        events = [
            FaultEvent(FaultKind.LEAVE, 0.0, user=0),
            FaultEvent(FaultKind.LEAVE, 0.0, user=1),
            FaultEvent(FaultKind.JOIN, 0.1, user=0),
            FaultEvent(FaultKind.JOIN, 0.1, user=1),
        ]
        _, session = _churn_session(parts, events)
        with observed("counters"):
            outcome = session.run(6)
            counters = OBS.counters()
        assert counters["fault.churn.idle_frames"] == 3  # t = 0, .033, .067
        streamed_frames = sorted({s.frame_index for s in outcome.stats})
        assert streamed_frames == [3, 4, 5]


class TestSeriesIndexRefresh:
    def test_cached_series_index_tracks_growth(self, parts):
        """Regression: OutcomeStats caches its per-user series index; stats
        appended after a query (late rejoin, incremental scoring) must show
        up in subsequent queries instead of serving the stale index."""
        _, session = _churn_session(parts, TestLeaveRejoin.EVENTS)
        outcome = session.run(8)
        before = len(outcome.ssim_series(1))
        outcome.stats.append(
            FrameStats(
                frame_index=99, user_id=1, ssim=0.5, psnr_db=20.0,
                bytes_received_per_layer=(0.0,), deadline_met=True,
            )
        )
        series = outcome.ssim_series(1)
        assert len(series) == before + 1
        assert series[-1] == 0.5
        assert 99 in [s.frame_index for s in outcome.stats if s.user_id == 1]
