"""FaultConfig validation, SystemConfig embedding and CLI-style parsing."""

import pytest

from repro.core import SystemConfig
from repro.emulation import fault_grid, parse_config_overrides
from repro.errors import ConfigurationError, EmulationError
from repro.faults import FaultConfig

RES = dict(height=144, width=256)


class TestFaultConfig:
    def test_defaults_are_disabled(self):
        config = FaultConfig()
        assert not config.enabled

    @pytest.mark.parametrize("axis", [
        "blockage_rate_hz", "snr_dip_rate_hz", "erasure_rate_hz",
        "feedback_loss_rate_hz", "beacon_loss_rate_hz", "churn_rate_hz",
    ])
    def test_any_rate_enables(self, axis):
        assert FaultConfig(**{axis: 0.5}).enabled

    @pytest.mark.parametrize("bad", [
        dict(blockage_rate_hz=-1.0),
        dict(churn_rate_hz=-0.1),
        dict(blockage_duration_s=0.0),
        dict(feedback_loss_duration_s=-2.0),
        dict(blockage_depth_db=-3.0),
        dict(erasure_prob=1.5),
        dict(erasure_prob=-0.1),
        dict(max_beacon_retries=-1),
        dict(stale_decay=0.0),
        dict(stale_decay=1.1),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            FaultConfig(**bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            FaultConfig().seed = 3


class TestSystemConfigEmbedding:
    def test_default_block_is_fault_free(self):
        config = SystemConfig(**RES)
        assert isinstance(config.faults, FaultConfig)
        assert not config.faults.enabled

    def test_mapping_coerced(self):
        config = SystemConfig(
            **RES, faults={"blockage_rate_hz": 2.0, "seed": 9}
        )
        assert isinstance(config.faults, FaultConfig)
        assert config.faults.blockage_rate_hz == 2.0
        assert config.faults.seed == 9

    def test_bad_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(**RES, faults={"erasure_prob": 2.0})


class TestParseOverrides:
    def test_dotted_fault_keys_typed(self):
        overrides = parse_config_overrides(
            {
                "faults.blockage_rate_hz": "2",
                "faults.seed": "5",
                "faults.max_beacon_retries": "4",
                "fps": "60",
            }
        )
        faults = overrides["faults"]
        assert isinstance(faults, FaultConfig)
        assert faults.blockage_rate_hz == 2.0
        assert faults.seed == 5
        assert faults.max_beacon_retries == 4
        assert overrides["fps"] == 60

    def test_unknown_fault_field_rejected(self):
        with pytest.raises(EmulationError, match="FaultConfig"):
            parse_config_overrides({"faults.nope": "1"})

    def test_bare_faults_key_rejected(self):
        with pytest.raises(EmulationError, match="individually"):
            parse_config_overrides({"faults": "1"})

    def test_no_fault_keys_no_faults_entry(self):
        assert "faults" not in parse_config_overrides({"fps": "60"})


class TestFaultGrid:
    def test_one_variant_per_value(self):
        variants = fault_grid("erasure_rate_hz", [0.0, 1.5])
        assert [v.name for v in variants] == [
            "erasure_rate_hz=0.0", "erasure_rate_hz=1.5",
        ]
        assert variants[1].config_overrides["faults"].erasure_rate_hz == 1.5

    def test_base_overrides_shared(self):
        variants = fault_grid(
            "blockage_rate_hz", [2.0], base={"faults.seed": "7", "fps": "60"}
        )
        overrides = variants[0].config_overrides
        assert overrides["faults"].seed == 7
        assert overrides["faults"].blockage_rate_hz == 2.0
        assert overrides["fps"] == 60

    def test_empty_grid_rejected(self):
        with pytest.raises(EmulationError):
            fault_grid("erasure_rate_hz", [])
