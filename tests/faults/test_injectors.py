"""Injector effects at the transmitter seam: erasure bursts and blockage."""

import numpy as np

from repro.faults import FaultController, FaultEvent, FaultKind, FaultSchedule
from repro.fountain.block import FrameBlockEncoder
from repro.scheduling.coding_groups import UnitAssignment
from repro.transport import FrameTransmitter, LinkModel


def _encoder(probe):
    return FrameBlockEncoder(0, probe.layered)


def _assignments(encoder, group_index, units=3):
    unit_bytes = encoder.unit_nbytes()
    return [
        UnitAssignment(group_index, 0, sub, unit_bytes)
        for sub in range(units)
    ]


def _transmitter(scenario, **kwargs):
    return FrameTransmitter(
        link=LinkModel(scenario.channel_model, associated_user=0), **kwargs
    )


def _controller(events):
    controller = FaultController(FaultSchedule(events=list(events)))
    controller.begin_frame(0, 0.0, [0, 1])
    return controller


class TestErasureBurst:
    def test_total_erasure_kills_every_packet(self, tx_world):
        scenario, state, groups, probe = tx_world
        encoder = _encoder(probe)
        faults = _controller([
            FaultEvent(FaultKind.ERASURE, 0.0, 10.0, probability=1.0),
        ])
        result = _transmitter(scenario, max_feedback_rounds=0).transmit(
            encoder, _assignments(encoder, 0), groups, state, 1 / 30,
            np.random.default_rng(1), faults=faults,
        )
        assert result.packets_sent > 0
        for reception in result.receptions.values():
            assert reception.packets_received == 0

    def test_partial_erasure_loses_packets(self, tx_world):
        scenario, state, groups, probe = tx_world
        clean_encoder = _encoder(probe)
        clean = _transmitter(scenario, max_feedback_rounds=0).transmit(
            clean_encoder, _assignments(clean_encoder, 0), groups, state,
            1 / 30, np.random.default_rng(2),
        )
        faulted_encoder = _encoder(probe)
        faults = _controller([
            FaultEvent(FaultKind.ERASURE, 0.0, 10.0, probability=0.6),
        ])
        faulted = _transmitter(scenario, max_feedback_rounds=0).transmit(
            faulted_encoder, _assignments(faulted_encoder, 0), groups, state,
            1 / 30, np.random.default_rng(2), faults=faults,
        )
        clean_rx = sum(r.packets_received for r in clean.receptions.values())
        faulted_rx = sum(
            r.packets_received for r in faulted.receptions.values()
        )
        assert faulted_rx < clean_rx


class TestBlockageBurst:
    def test_deep_blockage_degrades_target_user(self, tx_world):
        scenario, state, groups, probe = tx_world
        encoder = _encoder(probe)
        faults = _controller([
            FaultEvent(FaultKind.BLOCKAGE, 0.0, 10.0, user=1,
                       magnitude_db=60.0),
        ])
        result = _transmitter(scenario, max_feedback_rounds=0).transmit(
            encoder, _assignments(encoder, 0), groups, state, 1 / 30,
            np.random.default_rng(3), faults=faults,
        )
        blocked = result.receptions[1]
        unblocked = result.receptions[0]
        assert blocked.packets_received < unblocked.packets_received

    def test_zero_magnitude_is_bit_identical(self, tx_world):
        """Zero-intensity attenuation must not perturb probabilities or the
        rng stream: receptions match the fault-free run exactly."""
        scenario, state, groups, probe = tx_world
        clean_encoder = _encoder(probe)
        clean = _transmitter(scenario).transmit(
            clean_encoder, _assignments(clean_encoder, 0), groups, state,
            1 / 30, np.random.default_rng(4),
        )
        faulted_encoder = _encoder(probe)
        faults = _controller([
            FaultEvent(FaultKind.BLOCKAGE, 0.0, 10.0, user=0,
                       magnitude_db=0.0),
            FaultEvent(FaultKind.ERASURE, 0.0, 10.0, probability=0.0),
        ])
        faulted = _transmitter(scenario).transmit(
            faulted_encoder, _assignments(faulted_encoder, 0), groups, state,
            1 / 30, np.random.default_rng(4), faults=faults,
        )
        for user in clean.receptions:
            assert (
                clean.receptions[user].packets_received
                == faulted.receptions[user].packets_received
            )
            assert (
                clean.receptions[user].packets_lost
                == faulted.receptions[user].packets_lost
            )


class TestActiveUsersRestriction:
    def test_departed_user_gets_no_reception(self, tx_world):
        scenario, state, groups, probe = tx_world
        encoder = _encoder(probe)
        result = _transmitter(scenario).transmit(
            encoder, _assignments(encoder, 0), groups, state, 1 / 30,
            np.random.default_rng(5), active_users=[0],
        )
        assert set(result.receptions) == {0}
