"""FaultController clock/queries, OBS emission and estimator decay."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.faults import (
    FaultConfig,
    FaultController,
    FaultedLinkModel,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)
from repro.obs import OBS, observed
from repro.transport import BandwidthEstimator


def _controller(events, config=None):
    return FaultController(FaultSchedule(events=list(events)), config)


class TestControllerQueries:
    def test_clock_advances_with_begin_frame(self):
        controller = _controller([
            FaultEvent(FaultKind.ERASURE, 0.1, 0.1, probability=0.4),
        ])
        active = controller.begin_frame(0, 0.0, [0, 1])
        assert active == [0, 1]
        assert controller.erasure_scale() == 1.0
        controller.begin_frame(3, 0.15, [0, 1])
        assert controller.now == 0.15
        assert controller.frame_index == 3
        assert controller.erasure_scale() == pytest.approx(0.6)

    def test_rss_offset_and_flags(self):
        controller = _controller([
            FaultEvent(FaultKind.BLOCKAGE, 0.0, 1.0, user=0,
                       magnitude_db=18.0),
            FaultEvent(FaultKind.FEEDBACK_LOSS, 0.0, 1.0, user=1),
            FaultEvent(FaultKind.BEACON_LOSS, 0.0, 1.0),
        ])
        controller.begin_frame(0, 0.5, [0, 1])
        assert controller.rss_offset_db(0) == -18.0
        assert controller.rss_offset_db(1) == 0.0
        assert controller.feedback_lost(1)
        assert not controller.feedback_lost(0)
        assert controller.beacon_lost()

    def test_begin_frame_resolves_churn(self):
        controller = _controller([
            FaultEvent(FaultKind.LEAVE, 0.1, user=1),
        ])
        assert controller.begin_frame(0, 0.0, [0, 1]) == [0, 1]
        assert controller.begin_frame(4, 0.2, [0, 1]) == [0]

    def test_from_config_binds_schedule_and_config(self):
        config = FaultConfig(seed=11, erasure_rate_hz=3.0)
        controller = FaultController.from_config(config, 2.0, [0, 1])
        assert controller.config is config
        assert all(
            e.kind is FaultKind.ERASURE for e in controller.schedule.events
        )


class TestObsEmission:
    def test_counters_once_per_event_then_per_frame(self):
        controller = _controller([
            FaultEvent(FaultKind.BLOCKAGE, 0.0, 0.1, user=0,
                       magnitude_db=5.0),
        ])
        with observed("counters"):
            controller.begin_frame(0, 0.0, [0])
            controller.begin_frame(1, 0.05, [0])
            controller.begin_frame(2, 0.2, [0])  # window over
            counters = OBS.counters()
        assert counters["fault.blockage.events"] == 1
        assert counters["fault.blockage.active_frames"] == 2

    def test_silent_when_obs_off(self):
        OBS.reset()
        controller = _controller([
            FaultEvent(FaultKind.SNR_DIP, 0.0, 1.0, magnitude_db=3.0),
        ])
        controller.begin_frame(0, 0.0, [0])
        assert OBS.counters() == {}


class _StubLink:
    """Records the offsets the wrapper hands down."""

    def __init__(self):
        self.calls = []

    def delivery_probability(self, user, beam, true_state, mcs,
                             rss_offset_db=0.0):
        self.calls.append((user, rss_offset_db))
        return 1.0 / (1.0 + abs(rss_offset_db))


class TestLinkWrapping:
    def test_wrap_is_identity_without_attenuation_events(self):
        controller = _controller([
            FaultEvent(FaultKind.ERASURE, 0.0, 1.0, probability=0.5),
        ])
        link = _StubLink()
        assert controller.wrap_link(link) is link

    def test_wrap_applies_current_offset(self):
        controller = _controller([
            FaultEvent(FaultKind.BLOCKAGE, 0.0, 0.5, user=0,
                       magnitude_db=18.0),
        ])
        link = _StubLink()
        wrapped = controller.wrap_link(link)
        assert isinstance(wrapped, FaultedLinkModel)
        controller.begin_frame(0, 0.25, [0, 1])
        probs = wrapped.delivery_probabilities([0, 1], None, None, None)
        assert link.calls == [(0, -18.0), (1, 0.0)]
        assert probs[0] < probs[1]
        controller.begin_frame(20, 0.75, [0, 1])  # window over
        assert wrapped.delivery_probability(0, None, None, None) == 1.0

    def test_real_link_attenuation_lowers_delivery(self, tx_world):
        scenario, state, groups, _ = tx_world
        from repro.transport import LinkModel

        link = LinkModel(scenario.channel_model)
        group = groups[0]
        user = group.user_ids[0]
        clean = link.delivery_probability(
            user, group.plan.beam, state, group.plan.mcs
        )
        blocked = link.delivery_probability(
            user, group.plan.beam, state, group.plan.mcs, rss_offset_db=-30.0
        )
        assert blocked < clean


class TestEstimatorDecay:
    def test_decay_shrinks_estimate(self):
        estimator = BandwidthEstimator(noise_std_fraction=0.0)
        estimator.observe_window(1000.0, 1.0, np.random.default_rng(0))
        before = estimator.estimate_bytes_per_s
        after = estimator.decay(0.5)
        assert after == pytest.approx(before * 0.5)

    def test_decay_before_measurement_is_noop(self):
        assert BandwidthEstimator().decay(0.5) is None

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_bad_factor_rejected(self, factor):
        with pytest.raises(TransportError):
            BandwidthEstimator().decay(factor)

    def test_decay_floors_above_zero(self):
        estimator = BandwidthEstimator(noise_std_fraction=0.0)
        estimator.observe_window(1e-6, 1.0, np.random.default_rng(0))
        for _ in range(100):
            estimator.decay(0.1)
        assert estimator.estimate_bytes_per_s >= 1e-9


class TestApScopedViews:
    """``controller.for_ap(ap)`` pins attenuation queries to one AP."""

    def _two_ap_controller(self):
        return _controller([
            FaultEvent(FaultKind.BLOCKAGE, 0.0, 0.5, user=0,
                       magnitude_db=25.0, ap=0),
            FaultEvent(FaultKind.BLOCKAGE, 0.0, 0.5, user=0,
                       magnitude_db=7.0, ap=1),
        ])

    def test_offsets_scoped_per_ap(self):
        controller = self._two_ap_controller()
        controller.begin_frame(0, 0.25, [0])
        assert controller.for_ap(0).rss_offset_db(0) == -25.0
        assert controller.for_ap(1).rss_offset_db(0) == -7.0
        # The unscoped (single-AP pipeline) query means AP 0.
        assert controller.rss_offset_db(0) == -25.0

    def test_scoped_views_share_the_frame_clock(self):
        controller = self._two_ap_controller()
        view = controller.for_ap(1)
        controller.begin_frame(0, 0.25, [0])
        assert view.rss_offset_db(0) == -7.0
        controller.begin_frame(20, 0.75, [0])  # window over
        assert view.rss_offset_db(0) == 0.0

    def test_scoped_wrap_link_applies_ap_offset(self):
        controller = self._two_ap_controller()
        controller.begin_frame(0, 0.25, [0])
        link = _StubLink()
        wrapped = controller.for_ap(1).wrap_link(link)
        assert isinstance(wrapped, FaultedLinkModel)
        wrapped.delivery_probability(0, None, None, None)
        assert link.calls == [(0, -7.0)]

    def test_scoped_wrap_is_identity_without_attenuation(self):
        controller = _controller([
            FaultEvent(FaultKind.ERASURE, 0.0, 1.0, probability=0.5),
        ])
        link = _StubLink()
        assert controller.for_ap(1).wrap_link(link) is link

    def test_non_attenuation_queries_unscoped(self):
        controller = _controller([
            FaultEvent(FaultKind.FEEDBACK_LOSS, 0.0, 0.5, user=2),
            FaultEvent(FaultKind.ERASURE, 0.0, 0.5, probability=0.25),
        ])
        controller.begin_frame(0, 0.25, [0, 2])
        for view in (controller.for_ap(0), controller.for_ap(1)):
            assert view.feedback_lost(2)
            assert not view.feedback_lost(0)
            assert view.erasure_scale() == 0.75
            assert not view.beacon_lost()
