"""Strategy edge cases under beacon loss and fully blocked channels."""

import numpy as np
import pytest

from repro.core import (
    BeamTrackingStrategy,
    FrozenStrategy,
    RealtimeUpdateStrategy,
)
from repro.faults import FaultController, FaultEvent, FaultKind, FaultSchedule

from tests.faults.conftest import build_streamer


@pytest.fixture()
def planned_session(parts):
    """A session that has streamed one frame, so an allocation exists."""
    streamer = build_streamer(parts, seed=7)
    session = streamer.session(parts[3])
    session.run(1)
    return session


def _ctx(session):
    return session.frame_context(1)


class TestOnBeaconLostFallbacks:
    def test_realtime_keeps_last_allocation(self, planned_session):
        session = planned_session
        allocation = session.state.allocation
        result = RealtimeUpdateStrategy().on_beacon_lost(
            session, _ctx(session), session.state.last_estimated_state
        )
        assert result is allocation

    def test_frozen_is_frozen(self, planned_session):
        session = planned_session
        allocation = session.state.allocation
        result = FrozenStrategy().on_beacon_lost(
            session, _ctx(session), session.state.last_estimated_state
        )
        assert result is allocation

    def test_beam_tracking_without_any_estimate_keeps_allocation(
        self, planned_session
    ):
        session = planned_session
        allocation = session.state.allocation
        result = BeamTrackingStrategy().on_beacon_lost(
            session, _ctx(session), None
        )
        assert result is allocation

    def test_beam_tracking_retracks_on_stale_estimate(self, planned_session):
        session = planned_session
        allocation = session.state.allocation
        result = BeamTrackingStrategy().on_beacon_lost(
            session, _ctx(session), session.state.last_estimated_state
        )
        assert result is not allocation
        assert len(result.groups) == len(allocation.groups)
        assert result.time_s is allocation.time_s


class TestRetrackAllSectorsBlocked:
    def test_zero_channels_keep_frozen_beams(self, planned_session):
        """When every sector sees a dead channel (all gains zero), firmware
        tracking has nothing better to offer: beams stay frozen."""
        session = planned_session
        allocation = session.state.allocation
        live = session.state.last_estimated_state

        class BlockedState:
            channels = {
                u: np.zeros_like(h) for u, h in live.channels.items()
            }

        retracked = BeamTrackingStrategy.retrack_beams(
            session.streamer.codebook,
            session.streamer.channel_model,
            allocation,
            BlockedState(),
        )
        for before, after in zip(allocation.groups, retracked.groups):
            assert np.array_equal(before.plan.beam, after.plan.beam)


class TestFrozenUnderBeaconLoss:
    def test_frozen_session_never_replans_through_an_outage(self, parts):
        """A FrozenStrategy session under a full-session beacon outage plans
        exactly once (t=0) and streams to completion."""
        streamer = build_streamer(parts, seed=7)
        controller = FaultController(
            FaultSchedule(events=[
                FaultEvent(FaultKind.BEACON_LOSS, 0.0, 10.0),
            ])
        )
        session = streamer.session(
            parts[3], strategy=FrozenStrategy(), faults=controller
        )
        calls = []
        original = streamer._plan

        def counting_plan(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        streamer._plan = counting_plan
        outcome = session.run(12)  # crosses 3 beacon boundaries
        assert len(calls) == 1  # only the t=0 plan
        assert len(outcome.stats) == 12 * 2
        assert session.state.allocation is not None
