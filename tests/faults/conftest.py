"""Shared fixtures for the chaos suite: a small faultable streaming world."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beamforming import GroupBeamPlanner, SectorCodebook
from repro.core import MulticastStreamer, SystemConfig
from repro.scheduling.groups import GroupEnumerator
from repro.types import BeamformingScheme, Position

RES = dict(height=144, width=256)


@pytest.fixture(scope="package")
def parts(request):
    """(scenario, dnn, probes, trace) bundle shared by the session tests."""
    scenario = request.getfixturevalue("scenario")
    dnn = request.getfixturevalue("tiny_dnn")
    probes = [request.getfixturevalue("hr_probe")]
    trace = request.getfixturevalue("static_trace_2users")
    return scenario, dnn, probes, trace


@pytest.fixture(scope="package")
def tx_world(request):
    """A 2-user channel, enumerated groups and a probe (transmitter tests)."""
    scenario = request.getfixturevalue("scenario")
    hr_probe = request.getfixturevalue("hr_probe")
    rng = np.random.default_rng(21)
    users = {0: Position(3.0, 6.5), 1: Position(3.5, 5.5)}
    state = scenario.channel_model.snapshot(users, rng)
    codebook = SectorCodebook(scenario.array, num_beams=16, num_wide_beams=4)
    planner = GroupBeamPlanner(
        scenario.array, codebook, scenario.channel_model.budget,
        BeamformingScheme.OPTIMIZED_MULTICAST,
    )
    enum = GroupEnumerator(planner, rate_scale=56.25, min_rate_mbps=0.0)
    groups = enum.enumerate(state, [0, 1])
    return scenario, state, groups, hr_probe


def build_streamer(parts, seed=0, **overrides):
    """A streamer over the shared world with config overrides applied."""
    scenario, dnn, probes, _ = parts
    config = SystemConfig(**RES, **overrides)
    return MulticastStreamer(
        config, dnn, probes, scenario.channel_model, seed=seed
    )


def fingerprint(outcome):
    """Bit-exact digest of an outcome's per-(frame, user) stats."""
    return [
        (
            s.frame_index,
            s.user_id,
            float(s.ssim).hex(),
            float(s.psnr_db).hex(),
            tuple(float(b).hex() for b in s.bytes_received_per_layer),
            bool(s.deadline_met),
        )
        for s in outcome.stats
    ]
