"""Graceful degradation: stale-feedback decay and bounded beacon retries."""

import pytest

from repro.faults import FaultController, FaultEvent, FaultKind, FaultSchedule
from repro.obs import OBS, observed

from tests.faults.conftest import build_streamer


def _session_with(parts, events, seed=7, **overrides):
    streamer = build_streamer(parts, seed=seed, **overrides)
    controller = FaultController(
        FaultSchedule(events=list(events)), streamer.config.faults
    )
    return streamer.session(parts[3], faults=controller)


class TestFeedbackLossDegradation:
    def test_outage_decays_estimate_and_recovers(self, parts):
        """Frames 1-2 lose user 0's report (30 FPS: window [0.03, 0.09));
        the estimator decays instead of freezing, and the staleness clears
        with a recovery count once reports resume."""
        session = _session_with(parts, [
            FaultEvent(FaultKind.FEEDBACK_LOSS, 0.03, 0.06, user=0),
        ])
        with observed("counters"):
            session.run(4)
            counters = OBS.counters()
        assert counters["fault.feedback_loss.reports_lost"] == 2
        assert counters["fault.feedback_loss.recoveries"] == 1
        assert session.state.feedback_staleness == {}

    def test_outage_estimate_below_healthy_run(self, parts):
        """A long outage with decay must end with a lower estimate than the
        healthy replay of the same session."""
        _, _, _, trace = parts
        clean_session = build_streamer(parts, seed=7).session(trace)
        clean_session.run(5)
        clean = clean_session.state.bw_estimators[0].estimate_bytes_per_s

        session = _session_with(
            parts,
            [FaultEvent(FaultKind.FEEDBACK_LOSS, 0.02, 10.0, user=0)],
            faults={"stale_decay": 0.5},
        )
        session.run(5)
        # User 0 reported once (frame 0) then decayed four times at 0.5.
        faulted = session.state.bw_estimators[0].estimate_bytes_per_s
        assert faulted is not None and clean is not None
        assert session.state.feedback_staleness[0] == 4
        assert faulted < clean

    def test_untouched_user_unaffected(self, parts):
        """User 1 keeps observing normally during user 0's outage."""
        session = _session_with(parts, [
            FaultEvent(FaultKind.FEEDBACK_LOSS, 0.0, 10.0, user=0),
        ])
        session.run(3)
        assert session.state.bw_estimators[1].estimate_bytes_per_s is not None
        assert 1 not in session.state.feedback_staleness


class TestBeaconLossDegradation:
    def test_bounded_retry_then_timeout(self, parts):
        """A beacon outage spanning frames 3-6 retries up to the configured
        bound, then falls back through the strategy exactly once."""
        session = _session_with(parts, [
            FaultEvent(FaultKind.BEACON_LOSS, 0.09, 0.16),
        ])
        with observed("counters"):
            session.run(7)
            counters = OBS.counters()
        # Beacon due at frame 3 is lost; frames 4-6 keep it due (the retry
        # path leaves last_plan_time untouched) and stay inside the window.
        assert counters["fault.beacon.lost"] == 4
        assert counters["fault.beacon.timeouts"] == 1
        assert session.state.beacon_retries == 0
        assert session.state.allocation is not None

    def test_short_outage_never_times_out(self, parts):
        """One lost beacon with a healthy next frame: retried, no timeout."""
        session = _session_with(parts, [
            FaultEvent(FaultKind.BEACON_LOSS, 0.09, 0.03),
        ])
        with observed("counters"):
            session.run(7)
            counters = OBS.counters()
        assert counters["fault.beacon.lost"] == 1
        assert "fault.beacon.timeouts" not in counters

    def test_retry_bound_respected(self, parts):
        """max_beacon_retries=0 times out on the first lost beacon."""
        session = _session_with(
            parts,
            [FaultEvent(FaultKind.BEACON_LOSS, 0.09, 0.16)],
            faults={"max_beacon_retries": 0},
        )
        with observed("counters"):
            session.run(7)
            counters = OBS.counters()
        assert counters["fault.beacon.timeouts"] == pytest.approx(
            counters["fault.beacon.lost"]
        )
