"""Session-level chaos properties: determinism and graceful quality decay."""

import numpy as np

from repro.faults import (
    FaultConfig,
    FaultController,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)

from tests.faults.conftest import build_streamer, fingerprint

FRAMES = 4

#: A busy mixed schedule: every axis active.
CHAOS = dict(
    seed=13,
    blockage_rate_hz=4.0,
    feedback_loss_rate_hz=3.0,
    erasure_rate_hz=4.0,
    beacon_loss_rate_hz=3.0,
    snr_dip_rate_hz=2.0,
    churn_rate_hz=2.0,
    churn_downtime_s=0.05,
)


class TestDeterminism:
    def test_same_seed_chaos_runs_bit_identical(self, parts):
        """The acceptance property: one seeded chaos schedule, streamed
        twice from scratch, produces identical OutcomeStats."""
        _, _, _, trace = parts
        outcomes = []
        for _ in range(2):
            streamer = build_streamer(parts, seed=7, faults=CHAOS)
            outcomes.append(streamer.stream_trace(trace, num_frames=FRAMES))
        assert fingerprint(outcomes[0]) == fingerprint(outcomes[1])
        assert outcomes[0].stats  # chaos still produced scored frames

    def test_config_generated_controller_matches_explicit(self, parts):
        """stream_trace's internally drawn controller equals passing the
        equivalent from_config controller by hand."""
        _, _, _, trace = parts
        config = FaultConfig(**CHAOS)
        implicit = build_streamer(parts, seed=7, faults=CHAOS).stream_trace(
            trace, num_frames=FRAMES
        )
        streamer = build_streamer(parts, seed=7, faults=CHAOS)
        controller = FaultController.from_config(
            config, FRAMES / streamer.config.fps, trace.user_ids()
        )
        explicit = streamer.session(trace, faults=controller).run(FRAMES)
        assert fingerprint(implicit) == fingerprint(explicit)


class TestQualityDegradesWithErasure:
    def test_ssim_monotone_on_average_in_erasure_rate(self, parts):
        """Mean SSIM must not improve as the erasure probability grows.

        One full-session erasure window per probability level; identical
        streamer seeds, so scaling the delivery probabilities down can only
        remove deliveries.  Averaged over two seeds to wash out makeup-round
        divergence, with a small epsilon for scoring noise.
        """
        _, _, _, trace = parts
        probs = [0.0, 0.5, 0.95]
        means = []
        for prob in probs:
            samples = []
            for seed in (7, 21):
                streamer = build_streamer(parts, seed=seed)
                controller = FaultController(
                    FaultSchedule(events=[
                        FaultEvent(
                            FaultKind.ERASURE, 0.0, 10.0, probability=prob
                        ),
                    ])
                )
                outcome = streamer.session(trace, faults=controller).run(
                    FRAMES
                )
                samples.append(outcome.mean_ssim)
            means.append(float(np.mean(samples)))
        for better, worse in zip(means, means[1:]):
            assert worse <= better + 1e-3
        assert means[-1] < means[0]  # near-total erasure really hurts

    def test_zero_probability_erasure_is_identity(self, parts):
        _, _, _, trace = parts
        clean = build_streamer(parts, seed=9).stream_trace(
            trace, num_frames=FRAMES
        )
        controller = FaultController(
            FaultSchedule(events=[
                FaultEvent(FaultKind.ERASURE, 0.0, 10.0, probability=0.0),
            ])
        )
        faulted = build_streamer(parts, seed=9).session(
            trace, faults=controller
        ).run(FRAMES)
        assert fingerprint(clean) == fingerprint(faulted)


class TestSweepIntegration:
    def test_fault_grid_variants_stream(self, parts):
        """fault_grid arms build configs the streamer accepts end to end."""
        from repro.emulation import fault_grid

        _, _, _, trace = parts
        variants = fault_grid(
            "erasure_rate_hz", [0.0, 8.0], base={"faults.seed": "3"}
        )
        means = {}
        for variant in variants:
            overrides = dict(variant.config_overrides)
            streamer = build_streamer(parts, seed=5, **overrides)
            means[variant.name] = streamer.stream_trace(
                trace, num_frames=FRAMES
            ).mean_ssim
        assert set(means) == {"erasure_rate_hz=0.0", "erasure_rate_hz=8.0"}
        assert np.isfinite(list(means.values())).all()
