"""Zero-intensity faults must be bit-identical to the golden 24-case suite.

A fault layer that perturbs the stream *when all its magnitudes are zero*
would silently invalidate every chaos experiment's baseline.  These tests
pin the two safety properties: a session with faults disabled entirely, and
a session running under an *active* schedule whose events all have zero
magnitude/probability, both reproduce the recorded golden snapshots bit for
bit (floats compared as IEEE-754 hex).
"""

import json

import pytest

from repro.core import MulticastStreamer, SystemConfig
from repro.faults import FaultController, FaultEvent, FaultKind, FaultSchedule
from repro.types import SchedulerKind

from tests.core.golden_cases import (
    CASES,
    GOLDEN_PATH,
    HEIGHT,
    NUM_FRAMES,
    POLICIES,
    STREAM_SEED,
    WIDTH,
    build_environment,
    case_key,
    serialize_stat,
)

#: A representative slice of the 24 golden cases (one per policy, plus the
#: round-robin/ablation corner) — each zero-intensity run streams the full
#: 7-frame session, so the whole matrix would be needlessly slow here.
SELECTED = [
    CASES[0],
    next(c for c in CASES if c[1] == "no_update"),
    next(c for c in CASES if c[1] == "no_update_frozen"),
    next(c for c in CASES if c[0] == "round_robin" and not c[2] and not c[3]),
]


def _zero_intensity_events(users):
    """An always-active schedule whose faults are all magnitude zero."""
    events = [
        FaultEvent(FaultKind.BLOCKAGE, 0.0, 10.0, user=u, magnitude_db=0.0)
        for u in users
    ]
    events.append(FaultEvent(FaultKind.SNR_DIP, 0.0, 10.0, magnitude_db=0.0))
    events.append(FaultEvent(FaultKind.ERASURE, 0.0, 10.0, probability=0.0))
    return events


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def environment():
    return build_environment()


def _stream_case(environment, case, faults):
    dnn, probes, channel_model, trace = environment
    scheduler, policy, source_coding, rate_control = case
    config = SystemConfig(
        height=HEIGHT,
        width=WIDTH,
        scheduler=SchedulerKind(scheduler),
        source_coding=source_coding,
        rate_control=rate_control,
        **POLICIES[policy],
    )
    streamer = MulticastStreamer(
        config, dnn, probes, channel_model, seed=STREAM_SEED
    )
    outcome = streamer.session(trace, faults=faults).run(NUM_FRAMES)
    return [serialize_stat(stat) for stat in outcome.stats]


class TestZeroIntensityGolden:
    @pytest.mark.parametrize(
        "case", SELECTED, ids=[case_key(*c) for c in SELECTED]
    )
    def test_zero_intensity_schedule_bit_identical(
        self, golden, environment, case
    ):
        _, _, _, trace = environment
        controller = FaultController(
            FaultSchedule(events=_zero_intensity_events(trace.user_ids()))
        )
        current = _stream_case(environment, case, controller)
        assert current == golden[case_key(*case)]

    def test_disabled_faults_never_instantiate_a_controller(
        self, golden, environment
    ):
        dnn, probes, channel_model, trace = environment
        config = SystemConfig(height=HEIGHT, width=WIDTH)
        streamer = MulticastStreamer(
            config, dnn, probes, channel_model, seed=STREAM_SEED
        )
        session = streamer.session(trace)
        current = [
            serialize_stat(s) for s in session.run(NUM_FRAMES).stats
        ]
        assert session.faults is None
        assert current == golden[case_key(*CASES[0])]
