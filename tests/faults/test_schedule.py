"""FaultEvent/FaultSchedule semantics plus the seeded-generation properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults import FaultConfig, FaultEvent, FaultKind, FaultSchedule


def _ev(kind, start, duration=0.0, **kwargs):
    return FaultEvent(kind, start, duration, **kwargs)


class TestFaultEvent:
    def test_windowed_needs_duration(self):
        with pytest.raises(ConfigurationError):
            _ev(FaultKind.BLOCKAGE, 0.0, 0.0, user=0)

    def test_churn_needs_user(self):
        with pytest.raises(ConfigurationError):
            _ev(FaultKind.LEAVE, 0.1)

    @pytest.mark.parametrize("bad", [
        dict(kind=FaultKind.ERASURE, start_s=-1.0, duration_s=0.1),
        dict(kind=FaultKind.ERASURE, start_s=0.0, duration_s=-0.1),
        dict(kind=FaultKind.ERASURE, start_s=0.0, duration_s=0.1,
             probability=1.5),
        dict(kind=FaultKind.BLOCKAGE, start_s=0.0, duration_s=0.1,
             magnitude_db=-2.0),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            FaultEvent(**bad)

    def test_window_half_open(self):
        event = _ev(FaultKind.SNR_DIP, 1.0, 0.5)
        assert not event.active_at(0.999)
        assert event.active_at(1.0)
        assert event.active_at(1.499)
        assert not event.active_at(1.5)
        assert event.end_s == 1.5

    def test_applies_to(self):
        targeted = _ev(FaultKind.BLOCKAGE, 0.0, 1.0, user=3)
        broadcast = _ev(FaultKind.SNR_DIP, 0.0, 1.0)
        assert targeted.applies_to(3) and not targeted.applies_to(4)
        assert broadcast.applies_to(3) and broadcast.applies_to(4)


class TestScheduleQueries:
    def test_events_sorted_by_start(self):
        schedule = FaultSchedule(events=[
            _ev(FaultKind.SNR_DIP, 0.5, 0.1),
            _ev(FaultKind.BLOCKAGE, 0.1, 0.1, user=0),
        ])
        assert [e.start_s for e in schedule.events] == [0.1, 0.5]
        assert len(schedule) == 2

    def test_attenuation_stacks(self):
        schedule = FaultSchedule(events=[
            _ev(FaultKind.BLOCKAGE, 0.0, 1.0, user=0, magnitude_db=18.0),
            _ev(FaultKind.SNR_DIP, 0.0, 1.0, magnitude_db=6.0),
        ])
        assert schedule.rss_offset_db(0.5, 0) == -24.0
        assert schedule.rss_offset_db(0.5, 1) == -6.0  # blockage targets 0
        assert schedule.rss_offset_db(2.0, 0) == 0.0  # outside both windows

    def test_erasure_probabilities_combine_independently(self):
        schedule = FaultSchedule(events=[
            _ev(FaultKind.ERASURE, 0.0, 1.0, probability=0.5),
            _ev(FaultKind.ERASURE, 0.5, 1.0, probability=0.5),
        ])
        assert schedule.erasure_prob(0.25) == pytest.approx(0.5)
        assert schedule.erasure_prob(0.75) == pytest.approx(0.75)
        assert schedule.erasure_prob(2.0) == 0.0

    def test_feedback_and_beacon_windows(self):
        schedule = FaultSchedule(events=[
            _ev(FaultKind.FEEDBACK_LOSS, 0.0, 0.2, user=1),
            _ev(FaultKind.BEACON_LOSS, 0.1, 0.1),
        ])
        assert schedule.feedback_lost(0.1, 1)
        assert not schedule.feedback_lost(0.1, 0)
        assert not schedule.feedback_lost(0.3, 1)
        assert schedule.beacon_lost(0.15)
        assert not schedule.beacon_lost(0.05)

    def test_active_filters_kind_time_user(self):
        blockage = _ev(FaultKind.BLOCKAGE, 0.0, 1.0, user=0, magnitude_db=1.0)
        schedule = FaultSchedule(events=[
            blockage, _ev(FaultKind.ERASURE, 0.0, 1.0, probability=0.1),
        ])
        assert schedule.active(FaultKind.BLOCKAGE, 0.5, user=0) == [blockage]
        assert schedule.active(FaultKind.BLOCKAGE, 0.5, user=1) == []
        assert len(schedule.events_active_at(0.5)) == 2

    def test_churn_toggles_presence(self):
        schedule = FaultSchedule(events=[
            _ev(FaultKind.LEAVE, 0.1, user=1),
            _ev(FaultKind.JOIN, 0.3, user=1),
        ])
        assert schedule.active_users([0, 1], 0.0) == [0, 1]
        assert schedule.active_users([0, 1], 0.2) == [0]
        assert schedule.active_users([0, 1], 0.3) == [0, 1]

    def test_late_joiner_via_leave_at_zero(self):
        schedule = FaultSchedule(events=[
            _ev(FaultKind.LEAVE, 0.0, user=0),
            _ev(FaultKind.JOIN, 0.5, user=0),
        ])
        assert schedule.active_users([0], 0.0) == []
        assert schedule.active_users([0], 0.5) == [0]

    def test_summary_counts_kinds(self):
        schedule = FaultSchedule(events=[
            _ev(FaultKind.ERASURE, 0.0, 1.0),
            _ev(FaultKind.ERASURE, 1.0, 1.0),
            _ev(FaultKind.LEAVE, 0.0, user=0),
        ])
        assert schedule.summary() == {"erasure": 2, "leave": 1}


class TestGeneration:
    def test_zero_rates_empty(self):
        schedule = FaultSchedule.generate(FaultConfig(), 1.0, [0, 1])
        assert len(schedule) == 0

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.generate(FaultConfig(), 0.0, [0])

    def test_extra_events_kept(self):
        extra = _ev(FaultKind.ERASURE, 0.0, 1.0, probability=0.3)
        schedule = FaultSchedule.generate(
            FaultConfig(), 1.0, [0], extra_events=[extra]
        )
        assert schedule.events == [extra]

    def test_churn_pairs_leave_with_join(self):
        config = FaultConfig(seed=3, churn_rate_hz=2.0, churn_downtime_s=0.25)
        schedule = FaultSchedule.generate(config, 2.0, [0, 1])
        summary = schedule.summary()
        assert summary.get("leave", 0) == summary.get("join", 0)
        for event in schedule.events:
            if event.kind is FaultKind.JOIN:
                assert any(
                    other.kind is FaultKind.LEAVE
                    and other.user == event.user
                    and other.start_s == pytest.approx(event.start_s - 0.25)
                    for other in schedule.events
                )

    @given(
        seed=st.integers(0, 2**20),
        blockage=st.floats(0.0, 4.0),
        feedback=st.floats(0.0, 4.0),
        churn=st.floats(0.0, 2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_seed_reproducible(self, seed, blockage, feedback, churn):
        """Property: a (config, duration, users) triple fully determines the
        timeline — chaos runs are replayable by construction."""
        config = FaultConfig(
            seed=seed,
            blockage_rate_hz=blockage,
            feedback_loss_rate_hz=feedback,
            churn_rate_hz=churn,
        )
        first = FaultSchedule.generate(config, 1.0, [0, 1, 2])
        second = FaultSchedule.generate(config, 1.0, [0, 1, 2])
        assert first.events == second.events

    @given(seed=st.integers(0, 2**20), rate=st.floats(0.1, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_generated_events_well_formed(self, seed, rate):
        """Property: starts land in [0, duration), targets are real users,
        and every windowed event carries its configured shape."""
        config = FaultConfig(
            seed=seed, blockage_rate_hz=rate, erasure_rate_hz=rate,
            beacon_loss_rate_hz=rate,
        )
        users = [0, 7]
        duration = 1.5
        schedule = FaultSchedule.generate(config, duration, users)
        for event in schedule.events:
            assert 0.0 <= event.start_s < duration
            if event.user is not None:
                assert event.user in users
            if event.kind is FaultKind.BLOCKAGE:
                assert event.magnitude_db == config.blockage_depth_db
            if event.kind is FaultKind.ERASURE:
                assert event.probability == config.erasure_prob


class TestPerApEvents:
    """AP-tagged events scope to one AP's link; untagged hit every AP."""

    def test_untagged_event_reaches_every_ap(self):
        event = _ev(FaultKind.BLOCKAGE, 0.0, 0.5, user=0, magnitude_db=10)
        assert event.applies_to_ap(None)
        assert event.applies_to_ap(0)
        assert event.applies_to_ap(3)

    def test_tagged_event_reaches_only_its_ap(self):
        event = _ev(
            FaultKind.BLOCKAGE, 0.0, 0.5, user=0, magnitude_db=10, ap=1
        )
        assert event.applies_to_ap(1)
        assert not event.applies_to_ap(0)
        # An untagged query is the single-AP pipeline, which means AP 0.
        assert not event.applies_to_ap(None)

    def test_ap0_tag_matches_untagged_query(self):
        event = _ev(
            FaultKind.BLOCKAGE, 0.0, 0.5, user=0, magnitude_db=10, ap=0
        )
        assert event.applies_to_ap(None)

    def test_rss_offset_scoped_per_ap(self):
        schedule = FaultSchedule(events=[
            _ev(FaultKind.BLOCKAGE, 0.0, 1.0, user=0, magnitude_db=20, ap=0),
            _ev(FaultKind.BLOCKAGE, 0.0, 1.0, user=0, magnitude_db=5, ap=1),
            _ev(FaultKind.SNR_DIP, 0.0, 1.0, magnitude_db=3),  # every AP
        ])
        assert schedule.rss_offset_db(0.5, 0, ap=0) == -23.0
        assert schedule.rss_offset_db(0.5, 0, ap=1) == -8.0
        assert schedule.rss_offset_db(0.5, 0) == -23.0  # None -> AP 0

    def test_multi_ap_generation_keeps_ap0_draws(self):
        """AP 0's blockage timeline inside a 2-AP schedule must replay the
        single-AP schedule's draws exactly — the failover sweep's 1-AP arm
        depends on it."""
        config = FaultConfig(seed=11, blockage_rate_hz=6.0)
        single = FaultSchedule.generate(config, 1.0, [0, 1])
        double = FaultSchedule.generate(config, 1.0, [0, 1], n_aps=2)
        single_blockage = [
            e for e in single.events if e.kind is FaultKind.BLOCKAGE
        ]
        ap0_blockage = [
            e for e in double.events
            if e.kind is FaultKind.BLOCKAGE and e.ap == 0
        ]
        assert [
            (e.start_s, e.duration_s, e.user, e.magnitude_db)
            for e in ap0_blockage
        ] == [
            (e.start_s, e.duration_s, e.user, e.magnitude_db)
            for e in single_blockage
        ]

    def test_multi_ap_generation_tags_only_blockage(self):
        config = FaultConfig(
            seed=3, blockage_rate_hz=4.0, erasure_rate_hz=4.0,
            snr_dip_rate_hz=4.0,
        )
        schedule = FaultSchedule.generate(config, 1.0, [0], n_aps=2)
        for event in schedule.events:
            if event.kind is FaultKind.BLOCKAGE:
                assert event.ap in (0, 1)
            else:
                assert event.ap is None

    def test_single_ap_generation_stays_untagged(self):
        config = FaultConfig(seed=3, blockage_rate_hz=4.0)
        schedule = FaultSchedule.generate(config, 1.0, [0])
        assert all(e.ap is None for e in schedule.events)
