"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_beamforming_defaults(self):
        args = build_parser().parse_args(["beamforming"])
        assert args.users == 3
        assert args.distance == 3.0
        assert args.range is None

    def test_range_placement(self):
        args = build_parser().parse_args(
            ["scheduler", "--range", "8", "16", "--mas", "120"]
        )
        assert args.range == [8.0, 16.0]
        assert args.mas == 120.0

    def test_ablation_axis_choices(self):
        args = build_parser().parse_args(["ablation", "--axis", "rate_control"])
        assert args.axis == "rate_control"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "--axis", "magic"])

    def test_mobile_args(self):
        args = build_parser().parse_args(
            ["mobile", "--users", "3", "--moving", "0", "1", "--regime", "low"]
        )
        assert args.moving == [0, 1]
        assert args.regime == "low"

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "42", "quality-model"])
        assert args.seed == 42

    def test_sweep_shard_flags(self):
        args = build_parser().parse_args([
            "sweep", "--variant", "base", "--shards", "4",
            "--checkpoint", "ck.jsonl", "--resume", "--jobs", "2",
            "--task-timeout", "30", "--result-json", "out.json",
            "--quick-context",
        ])
        assert args.shards == 4
        assert str(args.checkpoint) == "ck.jsonl"
        assert args.resume
        assert args.jobs == 2
        assert args.task_timeout == 30.0
        assert str(args.result_json) == "out.json"
        assert args.quick_context

    def test_sweep_defaults_to_unsharded(self):
        args = build_parser().parse_args(["sweep", "--variant", "base"])
        assert args.shards is None
        assert args.checkpoint is None
        assert not args.resume

    def test_shards_without_checkpoint_rejected(self, capsys):
        exit_code = main([
            "sweep", "--variant", "base", "--shards", "2",
        ])
        assert exit_code == 2
        assert "--checkpoint" in capsys.readouterr().out

    def test_resume_without_shards_rejected(self, capsys):
        exit_code = main([
            "sweep", "--variant", "base", "--resume",
            "--checkpoint", "ck.jsonl",
        ])
        assert exit_code == 2
        assert "--resume requires --shards" in capsys.readouterr().out

    def test_ap_grid_flag_parsed(self):
        args = build_parser().parse_args([
            "sweep", "--fault-grid", "blockage_depth_db",
            "--fault-values", "0,25", "--ap-grid", "1,2",
        ])
        assert args.ap_grid == "1,2"

    def test_ap_grid_without_fault_grid_rejected(self, capsys):
        exit_code = main(["sweep", "--variant", "base", "--ap-grid", "1,2"])
        assert exit_code == 2
        assert "--fault-grid" in capsys.readouterr().out

    def test_unknown_fault_base_preset_rejected(self, capsys):
        exit_code = main([
            "sweep", "--fault-grid", "blockage_depth_db",
            "--fault-values", "0,25", "--fault-base", "preset:warp",
        ])
        assert exit_code == 2
        assert "blockage_failover" in capsys.readouterr().out

    def test_blockage_failover_preset_carries_events(self):
        """The preset must produce arms that actually schedule blockage —
        a rate-less preset would make every depth arm a clean run."""
        from repro.cli import FAULT_BASE_PRESETS
        from repro.emulation.sweep import ap_fault_grid
        from repro.faults import FaultSchedule

        variants = ap_fault_grid(
            "blockage_depth_db", [25],
            base=FAULT_BASE_PRESETS["blockage_failover"],
        )
        for variant in variants:
            faults = variant.config_overrides["faults"]
            assert faults.blockage_rate_hz > 0
            schedule = FaultSchedule.generate(faults, 1.0, [0, 1])
            assert schedule.summary().get("blockage", 0) > 0


class TestExecution:
    def test_quality_model_command_runs(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # Patch the trainer to a fast configuration.
        from repro.quality.model import train_quality_models as real_train

        def fast_train(dnn_epochs, seed):
            from repro.video.synthetic import make_standard_videos
            from repro.video.dataset import generate_dataset

            videos = make_standard_videos(height=144, width=256, num_frames=4)
            dataset = generate_dataset(
                videos[:2], frames_per_video=1, samples_per_frame=8, seed=seed
            )
            return real_train(dataset=dataset, dnn_epochs=30, seed=seed)

        import repro.quality

        monkeypatch.setattr(repro.quality, "train_quality_models", fast_train)
        exit_code = main(["quality-model", "--epochs", "30"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Quality model test MSE" in output
        assert "dnn" in output
