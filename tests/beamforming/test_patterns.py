"""Tests for beam-pattern analysis."""

import numpy as np
import pytest

from repro.beamforming.multicast import max_min_multicast_beam
from repro.beamforming.patterns import (
    analyze_pattern,
    ascii_pattern,
    coverage_fraction,
    pattern_cut,
)
from repro.errors import BeamformingError
from repro.phy.antenna import PhasedArray


@pytest.fixture(scope="module")
def array():
    return PhasedArray(32, 2)


class TestPatternCut:
    def test_matched_beam_peaks_at_target(self, array):
        target = 0.3
        beam = array.conjugate_beam(array.steering_vector(target))
        azimuths, gains = pattern_cut(array, beam, num_points=721)
        peak_azimuth = azimuths[np.argmax(gains)]
        assert peak_azimuth == pytest.approx(target, abs=0.03)

    def test_peak_gain_near_element_count(self, array):
        beam = array.conjugate_beam(array.steering_vector(0.0))
        _, gains = pattern_cut(array, beam)
        # 2-bit quantisation costs a little; still within 3 dB of N.
        assert gains.max() > array.num_elements / 2

    def test_wrong_beam_shape_rejected(self, array):
        with pytest.raises(BeamformingError):
            pattern_cut(array, np.ones(7, dtype=complex))


class TestAnalyzePattern:
    def test_pencil_beam_stats(self, array):
        beam = array.conjugate_beam(array.steering_vector(0.0))
        stats = analyze_pattern(array, beam)
        assert stats.peak_azimuth_rad == pytest.approx(0.0, abs=0.02)
        # 32-element ULA: ~0.055 rad (3.2 deg) half-power width.
        assert 0.02 < stats.beamwidth_rad < 0.15
        assert stats.sidelobe_level_db < -5

    def test_multicast_beam_has_multiple_lobes(self, array):
        """The multicast beam for two well-separated users must light up
        both directions (Sec 4.2.1: multi-lobe pattern)."""
        channels = [
            1e-4 * array.steering_vector(-0.45),
            1e-4 * array.steering_vector(0.45),
        ]
        beam = max_min_multicast_beam(array, channels)
        stats = analyze_pattern(array, beam)
        assert stats.num_lobes >= 2

    def test_unicast_beam_single_strong_lobe(self, array):
        beam = array.conjugate_beam(array.steering_vector(0.2))
        stats = analyze_pattern(array, beam)
        assert stats.num_lobes <= 3  # main lobe + quantisation artefacts


class TestCoverage:
    def test_wide_beam_covers_more(self, array):
        from repro.beamforming.codebook import SectorCodebook

        codebook = SectorCodebook(array, num_beams=8, num_wide_beams=4)
        narrow = coverage_fraction(array, codebook.beam(4))
        wide = coverage_fraction(array, codebook.beam(8 + 2))
        assert wide > narrow

    def test_coverage_in_unit_range(self, array):
        beam = array.conjugate_beam(array.steering_vector(0.0))
        assert 0.0 < coverage_fraction(array, beam) < 1.0


class TestAsciiPattern:
    def test_renders_two_rows(self, array):
        beam = array.conjugate_beam(array.steering_vector(0.0))
        rows = ascii_pattern(array, beam, width=40)
        assert len(rows) == 2
        assert len(rows[0]) == 40
        assert "@" in rows[0]  # the peak renders at full intensity
