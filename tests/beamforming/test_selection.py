"""Tests for scheme-aware beam/rate planning (and SLS)."""

import numpy as np
import pytest

from repro.beamforming.codebook import SectorCodebook
from repro.beamforming.selection import GroupBeamPlanner
from repro.beamforming.sls import sector_sweep
from repro.errors import BeamformingError
from repro.types import BeamformingScheme, Position


@pytest.fixture(scope="module")
def world(request):
    scenario = request.getfixturevalue("scenario")
    rng = np.random.default_rng(42)
    users = {
        0: Position(3.0, 6.5),
        1: Position(3.2, 5.5),
        2: Position(8.0, 7.0),
    }
    state = scenario.channel_model.snapshot(users, rng)
    codebook = SectorCodebook(scenario.array, num_beams=16, num_wide_beams=4)
    return scenario, state, codebook


class TestSls:
    def test_best_beam_has_max_gain(self, world, rng):
        scenario, state, codebook = world
        result = sector_sweep(codebook, state.channels[0])
        assert result.best_gain == pytest.approx(result.per_beam_gain.max())

    def test_measurement_noise_requires_rng(self, world):
        _, state, codebook = world
        with pytest.raises(ValueError):
            sector_sweep(codebook, state.channels[0], measurement_noise_db=1.0)

    def test_noise_can_change_selection(self, world, rng):
        _, state, codebook = world
        clean = sector_sweep(codebook, state.channels[0]).best_index
        picks = {
            sector_sweep(codebook, state.channels[0], rng, 6.0).best_index
            for _ in range(30)
        }
        assert clean in picks or len(picks) > 1


class TestGroupBeamPlanner:
    def test_unicast_scheme_rejects_groups(self, world):
        scenario, state, codebook = world
        planner = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.OPTIMIZED_UNICAST,
        )
        assert not planner.allows_multiuser_groups
        with pytest.raises(BeamformingError):
            planner.plan_group(state, [0, 1])

    def test_multicast_scheme_allows_groups(self, world):
        scenario, state, codebook = world
        planner = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.OPTIMIZED_MULTICAST,
        )
        plan = planner.plan_group(state, [0, 1])
        assert plan.user_ids == (0, 1)
        assert plan.rate_mbps > 0

    def test_min_rss_is_group_minimum(self, world):
        scenario, state, codebook = world
        planner = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.OPTIMIZED_MULTICAST,
        )
        plan = planner.plan_group(state, [0, 1, 2])
        assert plan.min_rss_dbm == pytest.approx(
            min(plan.per_user_rss_dbm.values())
        )

    def test_backoff_reduces_selected_mcs(self, world):
        scenario, state, codebook = world
        aggressive = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.OPTIMIZED_UNICAST, mcs_backoff_db=0.0,
        )
        cautious = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.OPTIMIZED_UNICAST, mcs_backoff_db=10.0,
        )
        rate_fast = aggressive.plan_group(state, [2]).rate_mbps
        rate_safe = cautious.plan_group(state, [2]).rate_mbps
        assert rate_safe <= rate_fast

    def test_optimized_beats_predefined_unicast(self, world):
        scenario, state, codebook = world
        optimized = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.OPTIMIZED_UNICAST,
        )
        predefined = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.PREDEFINED_UNICAST,
        )
        assert (
            optimized.plan_group(state, [2]).min_rss_dbm
            >= predefined.plan_group(state, [2]).min_rss_dbm - 1e-9
        )

    def test_predefined_multicast_uses_codebook_beam(self, world):
        scenario, state, codebook = world
        planner = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.PREDEFINED_MULTICAST,
        )
        plan = planner.plan_group(state, [0, 1])
        matches = [
            np.allclose(plan.beam, codebook.beam(k)) for k in range(len(codebook))
        ]
        assert any(matches)

    def test_empty_group_rejected(self, world):
        scenario, state, codebook = world
        planner = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
        )
        with pytest.raises(BeamformingError):
            planner.beam_for_group([])
