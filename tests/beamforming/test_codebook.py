"""Tests for the predefined sector codebook."""

import numpy as np
import pytest

from repro.beamforming.codebook import SectorCodebook
from repro.errors import BeamformingError
from repro.phy.antenna import PhasedArray


@pytest.fixture(scope="module")
def codebook():
    return SectorCodebook(PhasedArray(32, 2), num_beams=16, num_wide_beams=4)


class TestConstruction:
    def test_total_beam_count(self, codebook):
        # 16 narrow + 4 wide + max(2, 2) wider + 1 near-omni.
        assert len(codebook) == 16 + 4 + 2 + 1

    def test_beams_unit_norm(self, codebook):
        norms = np.linalg.norm(codebook.beams, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_hardware_limit_enforced(self):
        with pytest.raises(BeamformingError):
            SectorCodebook(PhasedArray(32, 2), num_beams=128, num_wide_beams=8)

    def test_no_wide_beams_option(self):
        codebook = SectorCodebook(PhasedArray(16, 2), num_beams=8, num_wide_beams=0)
        assert len(codebook) == 8


class TestGains:
    def test_narrow_beam_peaks_at_its_angle(self, codebook):
        array = codebook.array
        for index in (0, 5, 10):
            angle = codebook.beam_angle_rad(index)
            channel = array.steering_vector(angle) * 1e-4
            gains = codebook.gains(channel)
            # The designated beam should be within a hair of the best.
            assert gains[index] >= 0.8 * gains.max()

    def test_wide_beams_have_lower_peak_but_wider_coverage(self, codebook):
        array = codebook.array
        narrow = codebook.beam(8)  # mid narrow sector
        wide = codebook.beam(16 + 2)  # a wide sector
        angles = np.linspace(-0.4, 0.4, 41)
        narrow_gains = [
            array.beam_gain(narrow, array.steering_vector(a)) for a in angles
        ]
        wide_gains = [
            array.beam_gain(wide, array.steering_vector(a)) for a in angles
        ]
        assert max(narrow_gains) > max(wide_gains)
        # Coverage: angles where gain is within 6 dB of that beam's peak.
        narrow_cov = np.mean(np.asarray(narrow_gains) > max(narrow_gains) / 4)
        wide_cov = np.mean(np.asarray(wide_gains) > max(wide_gains) / 4)
        assert wide_cov > narrow_cov

    def test_gains_multi_shape(self, codebook, rng):
        channels = [
            (rng.normal(size=32) + 1j * rng.normal(size=32)) for _ in range(3)
        ]
        gains = codebook.gains_multi(channels)
        assert gains.shape == (len(codebook), 3)

    def test_wrong_channel_shape_rejected(self, codebook):
        with pytest.raises(BeamformingError):
            codebook.gains(np.ones(31, dtype=complex))

    def test_bad_beam_index_rejected(self, codebook):
        with pytest.raises(BeamformingError):
            codebook.beam(len(codebook))
