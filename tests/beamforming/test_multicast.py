"""Tests for multicast beamforming (SVD max-sum + max-min refinement)."""

import numpy as np
import pytest

from repro.beamforming.multicast import (
    max_min_gain,
    max_min_multicast_beam,
    per_user_gains,
    svd_multicast_beam,
)
from repro.errors import BeamformingError
from repro.phy.antenna import PhasedArray


@pytest.fixture(scope="module")
def array():
    return PhasedArray(32, 2)


def _steering_channels(array, angles, amplitude=1e-4):
    return [amplitude * array.steering_vector(a) for a in angles]


class TestSvdBeam:
    def test_single_user_matches_conjugate(self, array, rng):
        h = (rng.normal(size=32) + 1j * rng.normal(size=32)) * 1e-4
        svd_gain = array.beam_gain(svd_multicast_beam(array, [h]), h)
        conj_gain = array.beam_gain(array.conjugate_beam(h), h)
        assert svd_gain == pytest.approx(conj_gain, rel=0.25)

    def test_two_user_split(self, array):
        channels = _steering_channels(array, [0.2, -0.3])
        beam = svd_multicast_beam(array, channels)
        gains = per_user_gains(beam, channels)
        single = float(np.linalg.norm(channels[0]) ** 2)
        # Each user should get a meaningful share (> 1/8 of matched gain).
        assert min(gains) > single / 8

    def test_empty_group_rejected(self, array):
        with pytest.raises(BeamformingError):
            svd_multicast_beam(array, [])

    def test_zero_channel_rejected(self, array):
        with pytest.raises(BeamformingError):
            svd_multicast_beam(array, [np.zeros(32, dtype=complex)])


class TestMaxMinBeam:
    def test_beats_or_matches_plain_svd_min_gain(self, array, rng):
        wins = 0
        for trial in range(8):
            channels = [
                (rng.normal(size=32) + 1j * rng.normal(size=32))
                * 10 ** rng.uniform(-5, -4)
                for _ in range(3)
            ]
            refined = max_min_gain(max_min_multicast_beam(array, channels), channels)
            plain = max_min_gain(svd_multicast_beam(array, channels), channels)
            if refined >= plain * 0.99:
                wins += 1
        assert wins >= 6  # quantisation can occasionally reorder

    def test_balances_unequal_users(self, array):
        """A near user must not starve a far user."""
        channels = _steering_channels(array, [0.3, -0.2])
        channels[0] = channels[0] * 10  # user 0 is 20 dB stronger
        beam = max_min_multicast_beam(array, channels)
        gains = per_user_gains(beam, channels)
        weak_matched = float(np.linalg.norm(channels[1]) ** 2)
        assert gains[1] > weak_matched / 10

    def test_single_user_fast_path(self, array, rng):
        h = (rng.normal(size=32) + 1j * rng.normal(size=32)) * 1e-4
        beam = max_min_multicast_beam(array, [h])
        np.testing.assert_allclose(beam, array.conjugate_beam(h))

    def test_output_is_hardware_realisable(self, array, rng):
        channels = [
            (rng.normal(size=32) + 1j * rng.normal(size=32)) for _ in range(4)
        ]
        beam = max_min_multicast_beam(array, channels)
        assert np.linalg.norm(beam) == pytest.approx(1.0)
        magnitudes = np.abs(beam)
        np.testing.assert_allclose(magnitudes, magnitudes[0], rtol=1e-9)

    def test_more_users_lower_min_gain(self, array):
        two = _steering_channels(array, [0.1, -0.1])
        six = _steering_channels(array, np.linspace(-0.5, 0.5, 6))
        gain_two = max_min_gain(max_min_multicast_beam(array, two), two)
        gain_six = max_min_gain(max_min_multicast_beam(array, six), six)
        assert gain_six < gain_two


class TestHelpers:
    def test_per_user_gains_matches_beam_gain(self, array, rng):
        channels = [
            (rng.normal(size=32) + 1j * rng.normal(size=32)) for _ in range(2)
        ]
        beam = max_min_multicast_beam(array, channels)
        gains = per_user_gains(beam, channels)
        for gain, channel in zip(gains, channels):
            assert gain == pytest.approx(array.beam_gain(beam, channel))

    def test_max_min_is_minimum(self, array, rng):
        channels = [
            (rng.normal(size=32) + 1j * rng.normal(size=32)) for _ in range(3)
        ]
        beam = max_min_multicast_beam(array, channels)
        assert max_min_gain(beam, channels) == pytest.approx(
            min(per_user_gains(beam, channels))
        )
