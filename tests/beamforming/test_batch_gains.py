"""Equivalence of the batched gain paths against the scalar reference.

``per_user_gains_batch`` collapses the planner's inner loop into one
stacked matmul; the BLAS gemm can differ from the scalar ``vdot`` loop by
1-2 ulp, so the contract is ``allclose``-equivalence (not bit-identity)
plus identical *decisions* (MCS, rates, user ordering) when driven
through :meth:`GroupBeamPlanner.plan_groups`.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.beamforming.codebook import SectorCodebook
from repro.beamforming.multicast import (
    max_min_gain,
    max_min_gain_batch,
    per_user_gains,
    per_user_gains_batch,
)
from repro.beamforming.selection import GroupBeamPlanner
from repro.errors import BeamformingError
from repro.types import BeamformingScheme

NT = 32


def _random_channels(rng, count, nt=NT, scale=1e-4):
    return [
        (rng.normal(size=nt) + 1j * rng.normal(size=nt)) * scale
        for _ in range(count)
    ]


def _random_beam(rng, nt=NT):
    raw = rng.normal(size=nt) + 1j * rng.normal(size=nt)
    return raw / np.linalg.norm(raw)


class TestBatchGains:
    def test_matches_scalar_per_group(self, rng):
        groups = [_random_channels(rng, size) for size in (1, 2, 4, 7)]
        beams = [_random_beam(rng) for _ in groups]
        batched = per_user_gains_batch(beams, groups)
        assert len(batched) == len(groups)
        for beam, group, gains in zip(beams, groups, batched):
            np.testing.assert_allclose(
                gains, per_user_gains(beam, group), rtol=1e-12
            )

    def test_max_min_matches_scalar(self, rng):
        groups = [_random_channels(rng, size) for size in (3, 1, 5)]
        beams = [_random_beam(rng) for _ in groups]
        batched = max_min_gain_batch(beams, groups)
        scalar = [max_min_gain(b, g) for b, g in zip(beams, groups)]
        np.testing.assert_allclose(batched, scalar, rtol=1e-12)

    def test_empty_batch(self):
        assert per_user_gains_batch([], []) == []

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(BeamformingError):
            per_user_gains_batch([_random_beam(rng)], [])

    def test_empty_group_rejected(self, rng):
        with pytest.raises(BeamformingError):
            per_user_gains_batch([_random_beam(rng)], [[]])

    def test_beam_channel_length_mismatch_rejected(self, rng):
        with pytest.raises(BeamformingError):
            per_user_gains_batch(
                [_random_beam(rng, nt=16)], [_random_channels(rng, 2)]
            )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        sizes=st.lists(
            st.integers(min_value=1, max_value=6), min_size=1, max_size=5
        ),
    )
    def test_property_batch_equals_scalar(self, seed, sizes):
        rng = np.random.default_rng(seed)
        groups = [_random_channels(rng, size) for size in sizes]
        beams = [_random_beam(rng) for _ in groups]
        batched = per_user_gains_batch(beams, groups)
        for beam, group, gains in zip(beams, groups, batched):
            np.testing.assert_allclose(
                gains, per_user_gains(beam, group), rtol=1e-12
            )


class TestPlanGroupsBatch:
    @pytest.fixture(scope="class")
    def planner_state(self, request):
        scenario = request.getfixturevalue("scenario")
        positions = scenario.place_arc(4, 3.0, 90, seed=17)
        state = scenario.channel_model.snapshot(
            {i: p for i, p in enumerate(positions)},
            np.random.default_rng(17),
        )
        codebook = SectorCodebook(scenario.array, num_beams=16, num_wide_beams=4)
        planner = GroupBeamPlanner(
            scenario.array, codebook, scenario.channel_model.budget,
            BeamformingScheme.OPTIMIZED_MULTICAST,
        )
        return planner, state

    def test_matches_plan_group_decisions(self, planner_state):
        planner, state = planner_state
        groups = [[0], [1], [2, 3], [0, 1, 2]]
        batched = planner.plan_groups(state, groups)
        for group, plan in zip(groups, batched):
            scalar = planner.plan_group(state, group)
            assert plan.user_ids == scalar.user_ids
            assert plan.mcs == scalar.mcs
            assert plan.rate_mbps == scalar.rate_mbps
            np.testing.assert_allclose(plan.beam, scalar.beam)
            assert plan.min_rss_dbm == pytest.approx(
                scalar.min_rss_dbm, abs=1e-9
            )
            for user in plan.user_ids:
                assert plan.per_user_rss_dbm[user] == pytest.approx(
                    scalar.per_user_rss_dbm[user], abs=1e-9
                )

    def test_singleton_batch_shape(self, planner_state):
        """The multi-AP repair planner's usage: one singleton per user."""
        planner, state = planner_state
        plans = planner.plan_groups(state, [[u] for u in range(4)])
        assert [p.user_ids for p in plans] == [(u,) for u in range(4)]
        assert all(p.mcs is not None for p in plans)
