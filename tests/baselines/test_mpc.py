"""Tests for Robust/Fast MPC and the ABR session simulator."""

import numpy as np
import pytest

from repro.baselines.abr import BitrateLadder, FreezeModel, RateQualityModel
from repro.baselines.mpc import (
    FastMpc,
    RobustMpc,
    simulate_abr_session,
)
from repro.errors import ConfigurationError
from repro.types import Richness


@pytest.fixture()
def quality():
    # Controller-only tests use the full-4K pixel count with unscaled rates.
    return RateQualityModel(richness=Richness.HIGH, pixels_per_frame=3840 * 2160)


@pytest.fixture()
def quality_scaled():
    # Session tests run at the emulated resolution with scaled link rates;
    # bits-per-pixel (and thus quality) is invariant to the joint scaling.
    from tests.conftest import TEST_HEIGHT, TEST_WIDTH

    return RateQualityModel(
        richness=Richness.HIGH, pixels_per_frame=TEST_HEIGHT * TEST_WIDTH
    )


@pytest.fixture()
def ladder():
    return BitrateLadder()


class TestControllers:
    def test_high_throughput_picks_top_rung(self, ladder, quality):
        controller = FastMpc(ladder, quality)
        for _ in range(5):
            controller.observe_throughput(1000.0)
        assert controller.choose_bitrate(buffer_s=0.5) == ladder.rates_mbps[-1]

    def test_low_throughput_picks_low_rung(self, ladder, quality):
        controller = FastMpc(ladder, quality)
        for _ in range(5):
            controller.observe_throughput(12.0)
        assert controller.choose_bitrate(buffer_s=0.0) <= 16.0

    def test_robust_never_exceeds_fast(self, ladder, quality):
        """The robustness discount makes Robust MPC at most as aggressive."""
        robust = RobustMpc(ladder, quality)
        fast = FastMpc(ladder, quality)
        samples = [100.0, 30.0, 120.0, 20.0, 90.0]
        for controller in (robust, fast):
            for s in samples:
                controller.choose_bitrate(0.0)
                controller.observe_throughput(s)
        assert robust.predict_throughput() <= fast.predict_throughput()

    def test_cold_start_is_conservative(self, ladder, quality):
        controller = RobustMpc(ladder, quality)
        assert controller.choose_bitrate(0.0) <= ladder.rates_mbps[1]

    def test_harmonic_mean_penalises_dips(self, ladder, quality):
        controller = FastMpc(ladder, quality)
        for s in (100.0, 100.0, 5.0):
            controller.observe_throughput(s)
        assert controller.predict_throughput() < np.mean([100, 100, 5])


class TestAbrSession:
    def test_session_produces_all_frames(
        self, scenario, static_trace_2users, quality_scaled, hr_video
    ):
        freeze = FreezeModel.from_video(hr_video, max_gap=8)
        outcome = simulate_abr_session(
            RobustMpc, static_trace_2users, scenario.channel_model,
            quality_scaled, freeze, num_frames=15, rate_scale=56.25,
        )
        assert len(outcome.stats) == 15 * 2
        assert 0.0 <= outcome.mean_ssim <= 1.0

    def test_static_close_range_quality_near_ladder_top(
        self, scenario, static_trace_2users, quality_scaled, hr_video
    ):
        freeze = FreezeModel.from_video(hr_video, max_gap=8)
        outcome = simulate_abr_session(
            FastMpc, static_trace_2users, scenario.channel_model,
            quality_scaled, freeze, num_frames=30, rate_scale=56.25,
        )
        # After warm-up the controller should reach a high rung.
        tail = [s.ssim for s in outcome.stats if s.frame_index >= 15]
        assert np.mean(tail) > 0.9

    def test_zero_frames_rejected(
        self, scenario, static_trace_2users, quality_scaled, hr_video
    ):
        freeze = FreezeModel.from_video(hr_video, max_gap=8)
        with pytest.raises(ConfigurationError):
            simulate_abr_session(
                FastMpc, static_trace_2users, scenario.channel_model,
                quality_scaled, freeze, num_frames=0,
            )

    def test_series_per_user(
        self, scenario, static_trace_2users, quality_scaled, hr_video
    ):
        freeze = FreezeModel.from_video(hr_video, max_gap=8)
        outcome = simulate_abr_session(
            RobustMpc, static_trace_2users, scenario.channel_model,
            quality_scaled, freeze, num_frames=10, rate_scale=56.25,
        )
        assert len(outcome.ssim_series(0)) == 10
        assert len(outcome.ssim_series(1)) == 10
