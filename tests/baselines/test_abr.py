"""Tests for the ABR rate-quality, freeze and ladder models."""

import pytest

from repro.baselines.abr import (
    DASH_4K_LADDER_MBPS,
    BitrateLadder,
    FreezeModel,
    RateQualityModel,
)
from repro.errors import ConfigurationError
from repro.types import Richness


class TestRateQuality:
    def _model(self, richness=Richness.HIGH):
        return RateQualityModel(richness=richness, pixels_per_frame=3840 * 2160)

    def test_monotone_in_bitrate(self):
        model = self._model()
        values = [model.ssim_at(b) for b in (10, 40, 100, 400)]
        assert values == sorted(values)

    def test_bounded(self):
        model = self._model()
        assert 0.0 <= model.ssim_at(1.0) <= 1.0
        assert model.ssim_at(0.0) == 0.0

    def test_100mbps_4k_is_about_095(self):
        assert self._model().ssim_at(100.0) == pytest.approx(0.954, abs=0.01)

    def test_lr_scores_higher_at_same_rate(self):
        hr = self._model(Richness.HIGH)
        lr = self._model(Richness.LOW)
        assert lr.ssim_at(40.0) > hr.ssim_at(40.0)

    def test_psnr_monotone(self):
        model = self._model()
        assert model.psnr_at(100.0) > model.psnr_at(10.0)


class TestFreezeModel:
    def test_decays_with_gap(self, hr_video):
        freeze = FreezeModel.from_video(hr_video, max_gap=8)
        assert freeze.ssim_at_gap(1) > freeze.ssim_at_gap(8)

    def test_zero_gap_is_perfect(self, hr_video):
        freeze = FreezeModel.from_video(hr_video, max_gap=8)
        assert freeze.ssim_at_gap(0) == 1.0

    def test_too_short_video_rejected(self):
        from repro.video.synthetic import SyntheticVideo

        tiny = SyntheticVideo("t", Richness.LOW, 144, 256, num_frames=1, seed=0)
        with pytest.raises(ConfigurationError):
            FreezeModel.from_video(tiny)


class TestBitrateLadder:
    def test_default_is_dash_4k_ladder(self):
        ladder = BitrateLadder()
        assert tuple(ladder.rates_mbps) == DASH_4K_LADDER_MBPS

    def test_rate_scale_divides_rungs(self):
        ladder = BitrateLadder(rate_scale=10.0)
        assert ladder.rates_mbps[0] == pytest.approx(1.0)

    def test_highest_sustainable(self):
        ladder = BitrateLadder()
        assert ladder.highest_sustainable(70.0) == 60.0
        assert ladder.highest_sustainable(5.0) == 10.0  # floor rung
        assert ladder.highest_sustainable(1e9) == 400.0

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            BitrateLadder(rates_mbps=[])
