"""Shared fixtures: small videos, codec, probes, a tiny trained DNN.

Heavy objects are session-scoped; every test resolution is deliberately
small (the library is resolution-agnostic) so the whole suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.emulation import EmulationScenario
from repro.phy.csi import CsiTrace
from repro.quality import DNNQualityModel
from repro.types import Richness
from repro.video import JigsawCodec, SyntheticVideo
from repro.video.dataset import FrameQualityProbe, generate_dataset

TEST_HEIGHT = 144
TEST_WIDTH = 256


@pytest.fixture(scope="session")
def hr_video() -> SyntheticVideo:
    """A small high-richness test video."""
    return SyntheticVideo(
        name="hr_test", richness=Richness.HIGH,
        height=TEST_HEIGHT, width=TEST_WIDTH, num_frames=10, seed=3,
    )


@pytest.fixture(scope="session")
def lr_video() -> SyntheticVideo:
    """A small low-richness test video."""
    return SyntheticVideo(
        name="lr_test", richness=Richness.LOW,
        height=TEST_HEIGHT, width=TEST_WIDTH, num_frames=10, seed=4,
    )


@pytest.fixture(scope="session")
def codec() -> JigsawCodec:
    """Codec matching the test resolution."""
    return JigsawCodec(TEST_HEIGHT, TEST_WIDTH)


@pytest.fixture(scope="session")
def hr_probe(codec, hr_video) -> FrameQualityProbe:
    """Encoded probe of the first HR frame."""
    return FrameQualityProbe.from_frame(codec, hr_video.frame(0))


@pytest.fixture(scope="session")
def lr_probe(codec, lr_video) -> FrameQualityProbe:
    """Encoded probe of the first LR frame."""
    return FrameQualityProbe.from_frame(codec, lr_video.frame(0))


@pytest.fixture(scope="session")
def small_dataset(hr_video, lr_video):
    """A small quality dataset over both test videos."""
    return generate_dataset(
        [hr_video, lr_video], frames_per_video=3, samples_per_frame=24, seed=0
    )


@pytest.fixture(scope="session")
def tiny_dnn(small_dataset) -> DNNQualityModel:
    """A quickly trained DNN — accurate enough for optimizer tests."""
    model = DNNQualityModel(epochs=300, batch_size=32, seed=0)
    model.fit(small_dataset.features, small_dataset.ssim)
    return model


@pytest.fixture(scope="session")
def scenario() -> EmulationScenario:
    """A shared physical world."""
    return EmulationScenario(seed=0)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def static_trace_2users(scenario) -> CsiTrace:
    """A 1-second static trace with two users at 3 m."""
    positions = scenario.place_arc(2, 3.0, 60, seed=5)
    return scenario.static_trace(positions, duration_s=0.5, seed=6)
