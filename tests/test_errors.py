"""The exception hierarchy must hang off one catchable base class."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.VideoFormatError,
    errors.CodecError,
    errors.QualityModelError,
    errors.ChannelError,
    errors.BeamformingError,
    errors.FountainCodeError,
    errors.SchedulingError,
    errors.TransportError,
    errors.EmulationError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_base_catches_subclass():
    with pytest.raises(errors.ReproError):
        raise errors.CodecError("boom")


def test_public_reexport():
    import repro

    assert repro.ReproError is errors.ReproError
