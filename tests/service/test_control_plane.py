"""Control-plane behaviour: lifecycle, membership, rejection, metrics.

Each test spins up a real :class:`ServiceServer` on ephemeral localhost
ports inside ``asyncio.run`` and talks to it over actual sockets — the
same path external receivers take.
"""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.service import ReceiverClient, ServiceServer, http_request
from repro.service.session import SessionSpec


def _spec(users=2, frames=3, seed=5, **kw):
    return {"users": users, "frames": frames, "seed": seed, **kw}


async def _wait_done(host, port, session_id, timeout=60.0):
    """Poll /sessions/<id> until the session leaves the running state."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        _, body = await http_request(host, port, "GET",
                                     f"/sessions/{session_id}")
        if body["state"] != "running":
            return body
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"session {session_id} still running")
        await asyncio.sleep(0.02)


def _run(service_ctx, fn, **server_kw):
    """Start a server, run ``fn(server)``, always shut down."""

    async def main():
        server = ServiceServer(service_ctx, log=None, **server_kw)
        await server.start()
        try:
            return await fn(server)
        finally:
            await server.shutdown()

    return asyncio.run(main())


class TestSessionLifecycle:
    def test_concurrent_sessions_run_to_completion(self, service_ctx):
        async def scenario(server):
            host, port = server.host, server.control_port
            starts = await asyncio.gather(*[
                http_request(host, port, "POST", "/start",
                             _spec(users=2, frames=2, seed=seed))
                for seed in (3, 4, 5)
            ])
            ids = [body["session"] for _, body in starts]
            assert sorted(ids) == ["s1", "s2", "s3"]
            finals = await asyncio.gather(*[
                _wait_done(host, port, session_id) for session_id in ids
            ])
            assert all(body["state"] == "finished" for body in finals)
            assert all(body["frames_streamed"] == 2 for body in finals)
            _, status = await http_request(host, port, "GET", "/status")
            assert len(status["sessions"]) == 3
            assert status["state"] == "running"
            # Distinct seeds -> distinct streams.
            prints = {body["outcome"]["fingerprint"] for body in finals}
            assert len(prints) == 3

        _run(service_ctx, scenario)

    def test_stop_interrupts_at_frame_boundary(self, service_ctx):
        async def scenario(server):
            host, port = server.host, server.control_port
            _, body = await http_request(
                host, port, "POST", "/start", _spec(frames=500)
            )
            session_id = body["session"]
            _, stopped = await http_request(
                host, port, "POST", "/stop", {"session": session_id}
            )
            assert stopped["state"] == "stopped"
            assert stopped["frames_streamed"] < 500
            assert "fingerprint" in stopped["outcome"]

        _run(service_ctx, scenario, frame_interval_s=0.02)

    def test_bad_requests_rejected(self, service_ctx):
        async def scenario(server):
            host, port = server.host, server.control_port
            status, body = await http_request(
                host, port, "POST", "/start", {"users": 0, "frames": 3}
            )
            assert status == 400 and "users" in body["error"]
            status, body = await http_request(
                host, port, "POST", "/start", _spec(bogus_field=1)
            )
            assert status == 400 and "bogus_field" in body["error"]
            status, _ = await http_request(
                host, port, "POST", "/stop", {"session": "s99"}
            )
            assert status == 404
            status, _ = await http_request(
                host, port, "GET", "/sessions/s99"
            )
            assert status == 404
            status, _ = await http_request(host, port, "GET", "/nowhere")
            assert status == 404
            status, _ = await http_request(host, port, "GET", "/start")
            assert status == 405

        _run(service_ctx, scenario)


class TestMembership:
    def test_join_leave_reflected_in_status(self, service_ctx):
        async def scenario(server):
            host = server.host
            _, body = await http_request(
                host, server.control_port, "POST", "/start",
                _spec(users=3, frames=400)
            )
            session_id = body["session"]
            client = await ReceiverClient.connect(host, server.receiver_port)
            try:
                resp, _ = await client.leave(session_id, 1)
                assert resp["members"] == [0, 2]
                _, detail = await http_request(
                    host, server.control_port, "GET",
                    f"/sessions/{session_id}"
                )
                assert detail["members"] == [0, 2]
                assert detail["leaves"] == 1
                resp, _ = await client.join(session_id, 1)
                assert resp["members"] == [0, 1, 2]
                # Rejoining a member is acknowledged but changes nothing.
                resp, _ = await client.join(session_id, 1)
                assert resp["changed"] is False
            finally:
                await client.close()

        _run(service_ctx, scenario, frame_interval_s=0.02)

    def test_disconnect_auto_leaves(self, service_ctx):
        async def scenario(server):
            host = server.host
            _, body = await http_request(
                host, server.control_port, "POST", "/start",
                _spec(users=3, frames=400)
            )
            session_id = body["session"]
            client = await ReceiverClient.connect(host, server.receiver_port)
            await client.join(session_id, 2)
            await client.close()
            deadline = asyncio.get_running_loop().time() + 10.0
            while True:
                _, detail = await http_request(
                    host, server.control_port, "GET",
                    f"/sessions/{session_id}"
                )
                if detail["members"] == [0, 1]:
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)

        _run(service_ctx, scenario, frame_interval_s=0.02)

    def test_feedback_recorded_and_malformed_rejected(self, service_ctx):
        async def scenario(server):
            host = server.host
            _, body = await http_request(
                host, server.control_port, "POST", "/start",
                _spec(users=2, frames=400)
            )
            session_id = body["session"]
            client = await ReceiverClient.connect(host, server.receiver_port)
            try:
                resp, rtt = await client.feedback(session_id, 0, 0.75)
                assert resp["type"] == "feedback_ack"
                assert rtt > 0.0
                _, detail = await http_request(
                    host, server.control_port, "GET",
                    f"/sessions/{session_id}"
                )
                assert detail["feedback_reports"] == 1
                assert detail["last_feedback"] == {"0": 0.75}

                # Rejections: each gets an error response, none kills the
                # connection.
                with pytest.raises(ServiceError, match="unknown control"):
                    await client.request({"type": "subscribe"})
                with pytest.raises(ServiceError, match="missing required"):
                    await client.request({"type": "join", "session": session_id})
                with pytest.raises(ServiceError, match="unknown session"):
                    await client.feedback("s77", 0, 0.5)
                with pytest.raises(ServiceError, match="not part of"):
                    await client.feedback(session_id, 55, 0.5)
                resp, _ = await client.ping()
                assert resp["type"] == "pong"
            finally:
                await client.close()

        _run(service_ctx, scenario, frame_interval_s=0.02)

    def test_framing_violation_is_fatal_but_server_survives(self, service_ctx):
        async def scenario(server):
            host = server.host
            bad = await ReceiverClient.connect(host, server.receiver_port)
            await bad.send_raw(b"\xff\xff\xff\xff")  # absurd length prefix
            await asyncio.wait_for(bad.closed.wait(), 10.0)
            assert bad.protocol_errors >= 1
            await bad.close()
            # The server keeps serving other clients.
            good = await ReceiverClient.connect(host, server.receiver_port)
            resp, _ = await good.ping()
            assert resp["type"] == "pong"
            await good.close()

        _run(service_ctx, scenario)


class TestMetrics:
    def test_metrics_surface_session_scopes(self, service_ctx):
        from repro import obs

        async def scenario(server):
            host, port = server.host, server.control_port
            _, body = await http_request(
                host, port, "POST", "/start", _spec(users=2, frames=2)
            )
            session_id = body["session"]
            await _wait_done(host, port, session_id)
            _, metrics = await http_request(host, port, "GET", "/metrics")
            assert metrics["obs_mode"] == "counters"
            scoped = metrics["sessions"][session_id]
            assert scoped["frames.streamed"] == 2
            assert scoped["finished"] == 1
            assert metrics["counters"]["service.sessions.started"] == 1

        with obs.observed("counters"):
            _run(service_ctx, scenario)

    def test_spec_round_trip(self):
        spec = SessionSpec.from_dict(
            {"users": 4, "frames": 7, "seed": 11,
             "placement": ["range", 2, 9, 120],
             "overrides": {"fps": "24"}}
        )
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "raw, match",
        [
            ({"users": 1}, "frames"),
            ({"frames": 1}, "users"),
            ({"users": 1, "frames": 1, "placement": ["orbit", 2]},
             "placement"),
            ({"users": 1, "frames": 1, "overrides": {"fps": 24}},
             "overrides"),
            ({"users": "two", "frames": 1}, "non-integer"),
        ],
    )
    def test_spec_rejections(self, raw, match):
        with pytest.raises(ServiceError, match=match):
            SessionSpec.from_dict(raw)
