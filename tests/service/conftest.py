"""Shared service-layer fixtures.

The control-plane tests run real asyncio servers on ephemeral localhost
ports.  ``pytest-asyncio`` is an optional dev extra, so every test drives
its coroutine through ``asyncio.run`` inside a plain sync function — the
suite must pass in environments where the plugin is absent.
"""

import os

import pytest

from repro.emulation import build_context


@pytest.fixture(scope="package")
def service_cache(tmp_path_factory):
    """Point the DNN disk cache at a temp dir for the whole package."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    cache_dir = str(tmp_path_factory.mktemp("service_cache"))
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    yield cache_dir
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="package")
def service_ctx(service_cache):
    """A small shared experiment context for service tests."""
    return build_context(
        height=144, width=256, dnn_epochs=60, probe_frames=2, seed=0
    )
