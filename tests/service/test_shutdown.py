"""Graceful-shutdown regression: SIGTERM must leave complete traces.

ISSUE 8 satellite: a SIGTERM'd server has to flush and close every open
``repro.obs`` JSONL trace recorder and drain in-flight feedback before
exiting.  This test runs the real ``repro-wigig serve`` CLI in a
subprocess, starts a traced session, parks a receiver with in-flight
traffic on the wire, SIGTERMs the process and then validates every trace
file it left behind with the strict :func:`repro.obs.read_jsonl` loader.
"""

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import repro
from repro.obs import read_jsonl
from repro.service import ReceiverClient, http_request

SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])
STARTUP_TIMEOUT_S = 120.0
EXIT_TIMEOUT_S = 60.0


class _ServeProcess:
    """The serve CLI in a subprocess, with parsed ephemeral ports."""

    def __init__(self, tmp_path, cache_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT
        env["REPRO_CACHE_DIR"] = cache_dir
        self.server_trace = tmp_path / "server_obs.jsonl"
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--quick-context", "--frame-interval", "0.05",
                "--obs", "trace", "--trace", str(self.server_trace),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        self.lines = []
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        self.receiver_port = None
        self.control_port = None
        self._wait_for_ports()

    def _pump(self):
        for line in self.proc.stdout:
            self.lines.append(line.rstrip("\n"))

    def _wait_for_ports(self):
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        while time.monotonic() < deadline:
            for line in list(self.lines):
                if line.startswith("receiver plane"):
                    self.receiver_port = int(line.rsplit(":", 1)[1])
                elif line.startswith("control plane"):
                    self.control_port = int(line.rsplit(":", 1)[1])
            if self.receiver_port and self.control_port:
                return
            if self.proc.poll() is not None:
                raise AssertionError(
                    "serve exited during startup:\n" + "\n".join(self.lines)
                )
            time.sleep(0.05)
        raise AssertionError(
            "serve never reported its ports:\n" + "\n".join(self.lines)
        )

    def terminate_and_wait(self):
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=EXIT_TIMEOUT_S)
        finally:
            self._reader.join(timeout=5.0)

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10.0)


def test_sigterm_flushes_traces_and_drains_feedback(tmp_path, service_cache):
    serve = _ServeProcess(tmp_path, service_cache)
    session_trace = tmp_path / "session_s1.jsonl"
    try:
        async def drive():
            host = "127.0.0.1"
            _, body = await http_request(
                host, serve.control_port, "POST", "/start",
                {"users": 2, "frames": 2000, "seed": 9,
                 "trace_path": str(session_trace)},
            )
            assert body["session"] == "s1"
            client = await ReceiverClient.connect(host, serve.receiver_port)
            await client.feedback("s1", 0, 0.5)
            # Let a few frames stream so the trace has real events.
            await asyncio.sleep(0.4)

            # SIGTERM with the receiver still connected and one more
            # feedback in flight: the drain window must ack it and the
            # server must push `bye` before the socket dies.
            serve.proc.send_signal(signal.SIGTERM)
            resp, _ = await client.feedback("s1", 1, 0.25)
            assert resp["type"] == "feedback_ack"
            await asyncio.wait_for(client.bye.wait(), EXIT_TIMEOUT_S)
            await client.close()

        asyncio.run(drive())
        assert serve.terminate_and_wait() == 0
    finally:
        serve.kill()

    # Per-session recorder: flushed, parseable, and complete — frame
    # events plus the closing marker written on shutdown.
    events = read_jsonl(session_trace)
    stages = [event["stage"] for event in events]
    assert stages.count("service.frame") >= 1
    assert stages[-1] == "service.session.closed"
    closing = events[-1]
    assert closing["state"] == "stopped"
    assert closing["frames_streamed"] == stages.count("service.frame")

    # Server-wide obs trace: flushed on the shutdown path, parseable, and
    # carrying pipeline spans from the streamed frames.
    server_events = read_jsonl(serve.server_trace)
    assert any(
        event["stage"].startswith("frame.") for event in server_events
    )

    # The drained feedback actually landed before exit.
    out = "\n".join(serve.lines)
    assert "shutdown: complete" in out
