"""Wire-protocol framing and control-message validation."""

import asyncio
import json
import struct

import pytest

from repro.errors import ProtocolError
from repro.service import (
    MAX_MESSAGE_BYTES,
    encode_message,
    read_message,
    validate_control_message,
)


def _read(payload: bytes):
    """Feed raw bytes into a StreamReader and read one message."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return await read_message(reader)

    return asyncio.run(run())


class TestFraming:
    def test_round_trip(self):
        message = {"type": "join", "session": "s1", "user": 3, "seq": 9}
        assert _read(encode_message(message)) == message

    def test_two_messages_back_to_back(self):
        first = encode_message({"type": "ping", "seq": 0})
        second = encode_message({"type": "ping", "seq": 1})

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(first + second)
            reader.feed_eof()
            return [await read_message(reader), await read_message(reader),
                    await read_message(reader)]

        a, b, eof = asyncio.run(run())
        assert (a["seq"], b["seq"]) == (0, 1)
        assert eof is None

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read(b"\x00\x00")

    def test_eof_mid_payload_raises(self):
        frame = encode_message({"type": "ping"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read(frame[:-2])

    def test_oversize_declared_length_rejected(self):
        header = struct.pack(">I", MAX_MESSAGE_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            _read(header)

    def test_invalid_json_rejected(self):
        payload = b"{nope"
        with pytest.raises(ProtocolError, match="invalid JSON"):
            _read(struct.pack(">I", len(payload)) + payload)

    def test_non_object_payload_rejected(self):
        payload = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError, match="JSON object"):
            _read(struct.pack(">I", len(payload)) + payload)

    def test_missing_type_rejected(self):
        payload = json.dumps({"session": "s1"}).encode()
        with pytest.raises(ProtocolError, match="'type'"):
            _read(struct.pack(">I", len(payload)) + payload)

    def test_encode_rejects_oversize_message(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_message({"type": "x", "blob": "a" * MAX_MESSAGE_BYTES})

    def test_encode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            encode_message(["type", "ping"])


class TestValidation:
    @pytest.mark.parametrize(
        "message, kind",
        [
            ({"type": "ping"}, "ping"),
            ({"type": "join", "session": "s1", "user": 0}, "join"),
            ({"type": "leave", "session": "s1", "user": 2}, "leave"),
            ({"type": "feedback", "session": "s1", "user": 1,
              "fraction": 0.5}, "feedback"),
        ],
    )
    def test_valid_messages(self, message, kind):
        assert validate_control_message(message) == kind

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown control message"):
            validate_control_message({"type": "subscribe"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing required field"):
            validate_control_message({"type": "join", "session": "s1"})

    def test_ill_typed_session_rejected(self):
        with pytest.raises(ProtocolError, match="'session'"):
            validate_control_message({"type": "join", "session": 1, "user": 0})

    def test_ill_typed_user_rejected(self):
        with pytest.raises(ProtocolError, match="'user'"):
            validate_control_message(
                {"type": "leave", "session": "s1", "user": "zero"}
            )

    @pytest.mark.parametrize("fraction", [-0.1, 1.5, True, "half"])
    def test_bad_feedback_fraction_rejected(self, fraction):
        with pytest.raises(ProtocolError, match="fraction"):
            validate_control_message(
                {"type": "feedback", "session": "s1", "user": 0,
                 "fraction": fraction}
            )
