"""Served sessions are bit-identical to the in-process sweep engine.

The ISSUE 8 acceptance criterion: a session served over the wire — with
live control-plane traffic that does not change membership — produces
per-frame outcomes bit-identical to the same seeded spec run through the
batch engine.  Two anchors:

* the full per-frame/per-user ``OutcomeStats`` fingerprint against an
  in-process :meth:`SessionSpec.build` run, and
* the hex-exact session means against ``run_variant_sweep`` for the
  matching seed-schedule point (``seed_base + 0 * stride`` = seed 1000).
"""

import asyncio

from repro.emulation.sweep import Variant, run_variant_sweep
from repro.service import ReceiverClient, ServiceServer, http_request
from repro.service.session import SessionSpec

USERS = 2
FRAMES = 3
PLACEMENT = ("arc", 3, 60)


def _serve_session(ctx, spec_dict, with_traffic=False, frame_interval_s=0.0):
    """Run one session to completion over the wire; return its detail."""

    async def main():
        server = ServiceServer(ctx, log=None,
                               frame_interval_s=frame_interval_s)
        await server.start()
        try:
            host, port = server.host, server.control_port
            _, body = await http_request(host, port, "POST", "/start",
                                         spec_dict)
            session_id = body["session"]
            if with_traffic:
                # Telemetry-only control traffic: pings and external
                # feedback reports must not perturb the stream.
                client = await ReceiverClient.connect(
                    host, server.receiver_port
                )
                for _ in range(3):
                    await client.ping()
                    await client.feedback(session_id, 0, 0.5)
                await client.close()
            while True:
                _, detail = await http_request(
                    host, port, "GET", f"/sessions/{session_id}"
                )
                if detail["state"] != "running":
                    return detail
                await asyncio.sleep(0.01)
        finally:
            await server.shutdown()

    return asyncio.run(main())


def _inprocess_fingerprint(ctx, spec: SessionSpec):
    session = spec.build(ctx)
    total = session.begin(spec.frames)
    for frame_index in range(total):
        session.stream_frame(frame_index)
    return session.outcome


class TestServedDeterminism:
    def test_served_equals_inprocess_session(self, service_ctx):
        spec = SessionSpec(users=USERS, frames=FRAMES, seed=42,
                           placement=PLACEMENT)
        reference = _inprocess_fingerprint(service_ctx, spec)
        detail = _serve_session(service_ctx, spec.to_dict())
        assert detail["state"] == "finished"
        outcome = detail["outcome"]
        assert outcome["fingerprint"] == reference.fingerprint()
        assert outcome["mean_ssim_hex"] == float(reference.mean_ssim).hex()
        assert outcome["mean_psnr_db_hex"] == float(
            reference.mean_psnr_db
        ).hex()

    def test_control_traffic_does_not_perturb(self, service_ctx):
        spec = SessionSpec(users=USERS, frames=FRAMES, seed=42,
                           placement=PLACEMENT)
        quiet = _serve_session(service_ctx, spec.to_dict())
        # Paced so the telemetry lands mid-session; wall-clock pacing must
        # not affect the outcome either.
        noisy = _serve_session(service_ctx, spec.to_dict(),
                               with_traffic=True, frame_interval_s=0.1)
        assert noisy["feedback_reports"] == 3
        assert (noisy["outcome"]["fingerprint"]
                == quiet["outcome"]["fingerprint"])

    def test_served_matches_sweep_engine_sample(self, service_ctx):
        """Seed 1000 is run 0 of the sweep schedule — means match bit-for-bit."""
        merged = run_variant_sweep(
            service_ctx, [Variant("base")], USERS, PLACEMENT,
            runs=1, frames=FRAMES,
        )
        spec = SessionSpec(users=USERS, frames=FRAMES, seed=1000,
                           placement=PLACEMENT)
        detail = _serve_session(service_ctx, spec.to_dict())
        served_ssim = float.fromhex(detail["outcome"]["mean_ssim_hex"])
        served_psnr = float.fromhex(detail["outcome"]["mean_psnr_db_hex"])
        assert served_ssim == merged["base"]["ssim"][0]
        assert served_psnr == merged["base"]["psnr"][0]

    def test_membership_churn_changes_outcome(self, service_ctx):
        """The flip side: a leave/rejoin genuinely alters the stream."""

        async def main():
            server = ServiceServer(service_ctx, log=None,
                                   frame_interval_s=0.03)
            await server.start()
            try:
                host, port = server.host, server.control_port
                _, body = await http_request(
                    host, port, "POST", "/start",
                    {"users": USERS, "frames": 6, "seed": 42,
                     "placement": list(PLACEMENT)},
                )
                session_id = body["session"]
                client = await ReceiverClient.connect(
                    host, server.receiver_port
                )
                await client.leave(session_id, 1)
                await asyncio.sleep(0.1)
                await client.join(session_id, 1)
                await client.close()
                while True:
                    _, detail = await http_request(
                        host, port, "GET", f"/sessions/{session_id}"
                    )
                    if detail["state"] != "running":
                        return detail
                    await asyncio.sleep(0.02)
            finally:
                await server.shutdown()

        churned = asyncio.run(main())
        spec = SessionSpec(users=USERS, frames=6, seed=42,
                           placement=PLACEMENT)
        reference = _inprocess_fingerprint(service_ctx, spec)
        assert churned["leaves"] >= 1 and churned["joins"] >= 1
        assert (churned["outcome"]["fingerprint"]
                != reference.fingerprint())
