"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fountain.gf256 import gf_inverse, gf_multiply
from repro.fountain.raptor import FountainDecoder, FountainEncoder
from repro.phy.antenna import PhasedArray
from repro.scheduling.allocation import _project_capped_simplex
from repro.transport.leaky_bucket import LeakyBucket
from repro.transport.link import packet_error_rate
from repro.video.frame import VideoFrame
from repro.video.jigsaw import JigsawCodec
from repro.video.metrics import psnr, ssim

_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=25
)

gf_elem = st.integers(min_value=0, max_value=255)


class TestGf256Properties:
    @given(a=gf_elem, b=gf_elem, c=gf_elem)
    @settings(**_SETTINGS)
    def test_field_laws(self, a, b, c):
        av, bv, cv = (np.uint8(v) for v in (a, b, c))
        # commutativity
        assert gf_multiply(av, bv) == gf_multiply(bv, av)
        # associativity
        assert gf_multiply(gf_multiply(av, bv), cv) == gf_multiply(
            av, gf_multiply(bv, cv)
        )
        # distributivity over XOR (field addition)
        assert gf_multiply(av, np.uint8(b ^ c)) == (
            gf_multiply(av, bv) ^ gf_multiply(av, cv)
        )

    @given(a=st.integers(min_value=1, max_value=255))
    @settings(**_SETTINGS)
    def test_inverse_law(self, a):
        assert int(gf_multiply(np.uint8(a), np.uint8(gf_inverse(a)))) == 1


class TestFountainProperties:
    @given(
        data=st.binary(min_size=1, max_size=2000),
        symbol_size=st.integers(min_value=16, max_value=400),
        extra=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**_SETTINGS)
    def test_any_sufficient_symbol_subset_decodes(
        self, data, symbol_size, extra, seed
    ):
        """K+extra random distinct symbols decode the block (w.h.p.; the
        ~256^-(extra+1) failure tail is far below test noise)."""
        encoder = FountainEncoder(1, data, symbol_size)
        decoder = FountainDecoder(1, len(data), symbol_size)
        k = encoder.num_source_symbols
        rng = np.random.default_rng(seed)
        ids = rng.choice(3 * k + 8, size=k + extra, replace=False)
        for symbol_id in ids:
            decoder.add_symbol(encoder.symbol(int(symbol_id)))
        assert decoder.decode() == data

    @given(
        data=st.binary(min_size=1, max_size=500),
        symbol_size=st.integers(min_value=8, max_value=64),
    )
    @settings(**_SETTINGS)
    def test_padding_roundtrip(self, data, symbol_size):
        encoder = FountainEncoder(2, data, symbol_size)
        decoder = FountainDecoder(2, len(data), symbol_size)
        for symbol in encoder.symbols(0, encoder.num_source_symbols):
            decoder.add_symbol(symbol)
        assert decoder.decode() == data


class TestCodecProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(deadline=None, max_examples=8)
    def test_roundtrip_near_lossless_on_random_frames(self, seed):
        rng = np.random.default_rng(seed)
        h, w = 48, 64
        base = rng.integers(60, 200, size=(h, w))
        texture = rng.normal(0, 15, size=(h, w))
        y = np.clip(base + texture, 0, 255).astype(np.uint8)
        u = rng.integers(0, 256, size=(h // 2, w // 2), dtype=np.uint8).astype(np.uint8)
        frame = VideoFrame(y, u, u.copy())
        codec = JigsawCodec(h, w)
        decoded = codec.decode_fractions(codec.encode(frame), [1, 1, 1, 1])
        assert psnr(frame, decoded) > 40

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        fractions=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4
        ),
    )
    @settings(deadline=None, max_examples=10)
    def test_any_fraction_vector_decodes_in_bounds(self, seed, fractions):
        rng = np.random.default_rng(seed)
        h, w = 48, 64
        y = rng.integers(0, 256, size=(h, w), dtype=np.uint8).astype(np.uint8)
        u = np.full((h // 2, w // 2), 128, dtype=np.uint8)
        frame = VideoFrame(y, u, u.copy())
        codec = JigsawCodec(h, w)
        decoded = codec.decode_fractions(codec.encode(frame), fractions)
        quality = ssim(frame, decoded)
        assert -1.0 <= quality <= 1.0
        assert decoded.y.shape == frame.y.shape


class TestQuantisationProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(**_SETTINGS)
    def test_quantised_weights_always_realisable(self, seed):
        rng = np.random.default_rng(seed)
        array = PhasedArray(16, 2)
        weights = rng.normal(size=16) + 1j * rng.normal(size=16)
        quantised = array.quantise_weights(weights)
        assert np.linalg.norm(quantised) == pytest.approx(1.0)
        mags = np.abs(quantised)
        np.testing.assert_allclose(mags, mags[0], rtol=1e-9)


class TestSimplexProjectionProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        budget=st.floats(min_value=1e-4, max_value=1.0),
    )
    @settings(**_SETTINGS)
    def test_projection_feasible(self, seed, budget):
        rng = np.random.default_rng(seed)
        time = rng.normal(0, 1, size=(4, 4))
        projected = _project_capped_simplex(time, budget)
        assert np.all(projected >= 0)
        assert projected.sum() <= budget + 1e-9


class TestTransportProperties:
    @given(
        rate=st.floats(min_value=100.0, max_value=1e7),
        capacity=st.floats(min_value=10.0, max_value=1e5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**_SETTINGS)
    def test_bucket_never_exceeds_rate(self, rate, capacity, seed):
        """Sustained sends can never exceed capacity + rate * elapsed."""
        rng = np.random.default_rng(seed)
        bucket = LeakyBucket(rate, capacity)
        sent = 0.0
        now = 0.0
        for _ in range(200):
            now += float(rng.uniform(0, 1e-3))
            size = float(rng.uniform(1, capacity))
            if bucket.try_send(size, now):
                sent += size
        assert sent <= capacity + rate * now + 1e-6

    @given(margin=st.floats(min_value=-30, max_value=30))
    @settings(**_SETTINGS)
    def test_per_is_probability(self, margin):
        per = packet_error_rate(margin)
        assert 0.0 < per < 1.0


class TestY4mProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_frames=st.integers(min_value=1, max_value=3),
    )
    @settings(deadline=None, max_examples=10)
    def test_y4m_roundtrip_random_frames(self, seed, num_frames, tmp_path_factory):
        import io as _io

        from repro.video.io import Y4mReader, Y4mWriter

        rng = np.random.default_rng(seed)
        h, w = 32, 48
        buffer = _io.BytesIO()
        frames = []
        with Y4mWriter(buffer, w, h) as writer:
            for _ in range(num_frames):
                y = rng.integers(0, 256, size=(h, w), dtype=np.uint8).astype(np.uint8)
                u = rng.integers(0, 256, size=(h // 2, w // 2), dtype=np.uint8).astype(np.uint8)
                frame = VideoFrame(y, u, u.copy())
                frames.append(frame)
                writer.write_frame(frame)
        buffer.seek(0)
        with Y4mReader(buffer) as reader:
            restored = reader.read_all()
        assert len(restored) == num_frames
        for original, copy in zip(frames, restored):
            np.testing.assert_array_equal(original.y, copy.y)
            np.testing.assert_array_equal(original.u, copy.u)


class TestCodingGroupProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_groups=st.integers(min_value=1, max_value=4),
    )
    @settings(deadline=None, max_examples=15)
    def test_greedy_never_exceeds_budgets(self, seed, num_groups):
        from repro.beamforming.selection import BeamPlan
        from repro.phy.mcs import entry_for_index
        from repro.scheduling.coding_groups import assign_coding_groups
        from repro.scheduling.groups import CandidateGroup

        rng = np.random.default_rng(seed)
        unit = 1000.0
        groups = []
        for gi in range(num_groups):
            members = tuple(
                sorted(rng.choice(4, size=int(rng.integers(1, 4)), replace=False))
            )
            plan = BeamPlan(
                user_ids=tuple(int(u) for u in members),
                beam=np.ones(4) / 2,
                per_user_rss_dbm={int(u): -55.0 for u in members},
                min_rss_dbm=-55.0,
                mcs=entry_for_index(4),
                rate_mbps=850.0,
            )
            groups.append(CandidateGroup(index=gi, plan=plan))
        budgets = rng.uniform(0, 5 * unit, size=(num_groups, 4))
        assignments = assign_coding_groups(budgets.copy(), groups, unit)
        spent = np.zeros_like(budgets)
        for a in assignments:
            assert a.nbytes >= 0
            spent[a.group_index, a.layer] += a.nbytes
        assert np.all(spent <= budgets + 1e-6)
