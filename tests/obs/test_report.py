"""Tests for the aggregate observability report."""

import json

import numpy as np

from repro.obs import ObsRegistry, build_report, format_report, write_report
from repro.obs.report import PIPELINE_STAGES


def _populated_registry() -> ObsRegistry:
    registry = ObsRegistry(mode="trace")
    for i in range(10):
        registry.record_span("frame.stream", 0.0, 0.030 + 0.001 * i, frame=i)
        registry.record_span("transport.transmit", 0.0, 0.010, frame=i)
    registry.record_span("encode.fountain", 0.0, 0.5)
    registry.count("fountain.symbols_encoded", 5000)
    registry.observe("decode.fountain", 0.25)
    registry.count("fountain.symbols_received", 1000)
    registry.count("transport.user.0.delivered", 90)
    registry.count("transport.user.0.lost", 10)
    registry.count("transport.user.1.delivered", 50)
    registry.count("frames.streamed", 10)
    registry.count("frames.deadline_missed", 2)
    return registry


class TestBuildReport:
    def test_stage_latency_stats(self):
        report = build_report(_populated_registry())
        stream = report["stages"]["frame.stream"]
        assert stream["count"] == 10
        assert stream["mean_ms"] > 30.0
        assert stream["p50_ms"] <= stream["p95_ms"] <= stream["p99_ms"]
        assert stream["max_ms"] >= stream["p99_ms"]
        # Stages with no samples are absent, not zero-filled.
        assert "emulation.run" not in report["stages"]

    def test_throughput_from_counters_and_histograms(self):
        report = build_report(_populated_registry())
        assert report["throughput"]["fountain_encode_symbols_per_s"] == (
            5000 / 0.5
        )
        assert report["throughput"]["fountain_decode_symbols_per_s"] == (
            1000 / 0.25
        )

    def test_per_receiver_delivery_ratios(self):
        report = build_report(_populated_registry())
        assert report["delivery"]["0"]["ratio"] == 0.9
        # A user with no losses gets ratio 1.0.
        assert report["delivery"]["1"]["ratio"] == 1.0

    def test_frame_deadline_ratio(self):
        report = build_report(_populated_registry())
        assert report["frames"]["deadline_hit_ratio"] == 0.8

    def test_empty_registry_report(self):
        report = build_report(ObsRegistry(mode="off"))
        assert report["stages"] == {}
        assert report["throughput"] == {}
        assert report["delivery"] == {}
        assert np.isnan(report["frames"]["deadline_hit_ratio"])

    def test_pipeline_stage_list_covers_required_stages(self):
        required = {
            "frame.stream", "encode.jigsaw", "encode.fountain",
            "decode.fountain", "schedule.allocate", "transport.transmit",
        }
        assert required <= set(PIPELINE_STAGES)


class TestRendering:
    def test_format_report_mentions_key_numbers(self):
        text = format_report(build_report(_populated_registry()))
        assert "frame.stream" in text
        assert "fountain_encode_symbols_per_s" in text
        assert "deadline hit ratio" in text

    def test_write_report_round_trips_as_json(self, tmp_path):
        report = build_report(_populated_registry())
        path = write_report(report, tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == 1
        assert loaded["stages"]["frame.stream"]["count"] == 10
