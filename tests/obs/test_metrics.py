"""Tests for the observability metric primitives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("packets")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_negative_increments(self):
        counter = Counter("packets")
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)


class TestGauge:
    def test_starts_nan_then_tracks_last_value(self):
        gauge = Gauge("queue_depth")
        assert np.isnan(gauge.value)
        gauge.set(4)
        gauge.set(2.5)
        assert gauge.value == pytest.approx(2.5)


class TestHistogram:
    def test_empty_histogram_aggregates(self):
        hist = Histogram("latency")
        assert hist.count == 0
        assert hist.sum == 0.0
        assert np.isnan(hist.mean)
        assert np.isnan(hist.max)
        assert np.isnan(hist.quantile(0.5))

    def test_quantiles_match_numpy(self, rng):
        hist = Histogram("latency")
        samples = rng.exponential(scale=0.01, size=500)
        for value in samples:
            hist.observe(value)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(np.quantile(samples, q))
        batched = hist.quantiles((0.5, 0.95, 0.99))
        assert batched[0.5] == pytest.approx(np.quantile(samples, 0.5))
        assert batched[0.99] == pytest.approx(np.quantile(samples, 0.99))

    def test_buffer_doubles_without_losing_samples(self):
        hist = Histogram("latency", capacity=4)
        values = [float(i) for i in range(37)]
        for value in values:
            hist.observe(value)
        assert hist.count == 37
        assert list(hist.samples) == values
        assert hist.sum == pytest.approx(sum(values))
        assert hist.max == pytest.approx(36.0)

    def test_samples_view_is_read_only(self):
        hist = Histogram("latency")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.samples[0] = 2.0

    def test_invalid_quantile_rejected(self):
        hist = Histogram("latency")
        hist.observe(1.0)
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)
        with pytest.raises(ConfigurationError):
            hist.quantiles((0.5, -0.1))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("latency", capacity=0)
