"""Integration: a short instrumented emulation run yields a complete trace.

This is the end-to-end guarantee behind ``REPRO_OBS=trace``: every
instrumented pipeline stage shows up in the JSONL, frame-scoped events
cover every streamed frame, and the aggregate report is populated.
"""

import pytest

from repro.core import MulticastStreamer, SystemConfig
from repro.obs import OBS, build_report, observed, read_jsonl, stages_covered
from repro.video.dataset import FrameQualityProbe

#: The six stages the ISSUE requires in a trace-mode emulation run.
REQUIRED_STAGES = {
    "frame.stream",
    "encode.jigsaw",
    "encode.fountain",
    "decode.fountain",
    "schedule.allocate",
    "transport.transmit",
}

FRAMES = 4


@pytest.fixture(scope="module")
def observed_run(request, tmp_path_factory):
    """One short trace-mode run shared by the assertions below.

    Probes are (re-)encoded inside the observed block — exactly what the
    ``observe`` CLI command does — so the ``encode.jigsaw`` stage appears
    alongside the per-frame streaming stages.
    """
    scenario = request.getfixturevalue("scenario")
    dnn = request.getfixturevalue("tiny_dnn")
    codec = request.getfixturevalue("codec")
    hr_video = request.getfixturevalue("hr_video")
    lr_video = request.getfixturevalue("lr_video")
    positions = scenario.place_arc(3, 3.0, 60, seed=31)
    trace = scenario.static_trace(positions, duration_s=0.6, seed=32)

    trace_path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    with observed(mode="trace", trace_path=str(trace_path)) as registry:
        probes = [
            FrameQualityProbe.from_frame(codec, hr_video.frame(0)),
            FrameQualityProbe.from_frame(codec, lr_video.frame(0)),
        ]
        config = SystemConfig(height=144, width=256)
        streamer = MulticastStreamer(
            config, dnn, probes, scenario.channel_model, seed=17
        )
        outcome = streamer.stream_trace(trace, num_frames=FRAMES)
        report = build_report(registry)
        path = registry.trace.flush()
    return outcome, report, read_jsonl(path)


class TestTraceCompleteness:
    def test_all_required_stages_present(self, observed_run):
        _, _, events = observed_run
        assert REQUIRED_STAGES <= stages_covered(events)

    def test_every_frame_has_a_stream_event(self, observed_run):
        _, _, events = observed_run
        stream_frames = [
            e["frame"] for e in events if e["stage"] == "frame.stream"
        ]
        assert stream_frames == list(range(FRAMES))

    def test_frame_events_carry_transport_fields(self, observed_run):
        _, _, events = observed_run
        for event in events:
            if event["stage"] != "frame.stream":
                continue
            assert event["packets_sent"] > 0
            assert event["airtime_s"] > 0.0
            assert event["users"] == 3
            assert isinstance(event["deadline_met"], bool)

    def test_transmit_events_are_frame_scoped(self, observed_run):
        _, _, events = observed_run
        transmit_frames = {
            e["frame"] for e in events if e["stage"] == "transport.transmit"
        }
        assert transmit_frames == set(range(FRAMES))

    def test_durations_are_consistent(self, observed_run):
        _, _, events = observed_run
        for event in events:
            assert event["dur_s"] == pytest.approx(
                event["t_end_s"] - event["t_start_s"], abs=1e-9
            )
            assert event["dur_s"] >= 0.0


class TestAggregateReport:
    def test_report_has_stage_stats_and_throughput(self, observed_run):
        _, report, _ = observed_run
        for stage in REQUIRED_STAGES:
            assert stage in report["stages"], stage
            assert report["stages"][stage]["count"] > 0
        assert report["throughput"]["fountain_encode_symbols_per_s"] > 0
        assert report["throughput"]["fountain_decode_symbols_per_s"] > 0

    def test_report_has_per_receiver_delivery(self, observed_run):
        _, report, _ = observed_run
        assert set(report["delivery"]) == {"0", "1", "2"}
        for stats in report["delivery"].values():
            assert 0.0 <= stats["ratio"] <= 1.0

    def test_streamed_frames_counted(self, observed_run):
        outcome, report, _ = observed_run
        assert report["frames"]["streamed"] == FRAMES
        assert outcome.mean_ssim > 0.0

    def test_run_leaves_global_registry_off(self, observed_run):
        # The observed() context must not leak trace mode into other tests.
        del observed_run
        assert OBS.mode == 0
