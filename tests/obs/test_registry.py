"""Tests for the global observability registry, modes and spans."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    COUNTERS,
    OBS,
    OFF,
    TRACE,
    ObsRegistry,
    observed,
    parse_mode,
    timed,
)
from repro.obs.registry import _NULL_SPAN


class TestParseMode:
    @pytest.mark.parametrize(
        "value,expected",
        [(None, OFF), ("", OFF), ("off", OFF), ("counters", COUNTERS),
         ("TRACE", TRACE), (0, OFF), (2, TRACE)],
    )
    def test_valid_spellings(self, value, expected):
        assert parse_mode(value) == expected

    @pytest.mark.parametrize("value", ["verbose", 7, "1.5"])
    def test_invalid_spellings_rejected(self, value):
        with pytest.raises(ConfigurationError):
            parse_mode(value)


class TestDisabledMode:
    def test_span_returns_shared_null_singleton(self):
        registry = ObsRegistry(mode=OFF)
        span_a = registry.span("encode.jigsaw", frame=1)
        span_b = registry.span("transport.transmit")
        assert span_a is span_b is _NULL_SPAN
        # The null span is a working, field-swallowing context manager.
        with span_a as entered:
            entered.set(bytes=123)

    def test_metric_entry_points_are_noops(self):
        registry = ObsRegistry(mode=OFF)
        registry.count("packets")
        registry.set_gauge("depth", 3)
        registry.observe("latency", 0.1)
        registry.record_span("stage", 0.0, 1.0)
        registry.event("stage", 0.0, 1.0)
        assert registry.counters() == {}
        assert registry.gauges() == {}
        assert registry.histograms() == {}
        assert len(registry.trace) == 0

    def test_disabled_overhead_is_near_noop(self):
        """Off-mode instrumentation must stay within noise of a bare loop.

        Compares a loop of disabled count()+span() calls against the same
        loop doing equivalent plain-python work.  The bound is deliberately
        loose (10x) — this is an architecture guard (single branch + shared
        singleton, no allocation), not a microbenchmark.
        """
        registry = ObsRegistry(mode=OFF)
        iterations = 20_000

        def observed_loop():
            total = 0
            for i in range(iterations):
                registry.count("x")
                with registry.span("stage"):
                    total += i
            return total

        def bare_loop():
            total = 0
            for i in range(iterations):
                total += i
            return total

        observed_loop(), bare_loop()  # warm up
        t0 = time.perf_counter()
        observed_loop()
        observed_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        bare_loop()
        bare_s = time.perf_counter() - t0
        assert observed_s < bare_s * 10 + 0.05


class TestEnabledModes:
    def test_counters_mode_accumulates_without_trace(self):
        registry = ObsRegistry(mode=COUNTERS)
        with registry.span("stage.x", frame=0, bytes=10):
            pass
        registry.count("packets", 3)
        assert registry.counters()["stage.x.calls"] == 1
        assert registry.counters()["packets"] == 3
        assert registry.histograms()["stage.x"].count == 1
        assert len(registry.trace) == 0

    def test_trace_mode_records_events_with_fields(self):
        registry = ObsRegistry(mode=TRACE)
        with registry.span("stage.x", frame=4, bytes=10) as span:
            span.set(packets=7)
        (event,) = registry.trace.events
        assert event["stage"] == "stage.x"
        assert event["frame"] == 4
        assert event["bytes"] == 10
        assert event["packets"] == 7
        assert event["dur_s"] >= 0.0

    def test_span_records_even_when_body_raises(self):
        registry = ObsRegistry(mode=COUNTERS)
        with pytest.raises(RuntimeError):
            with registry.span("stage.x"):
                raise RuntimeError("boom")
        assert registry.histograms()["stage.x"].count == 1

    def test_reset_clears_everything(self):
        registry = ObsRegistry(mode=TRACE)
        with registry.span("stage.x"):
            pass
        registry.reset()
        assert registry.counters() == {}
        assert registry.histograms() == {}
        assert len(registry.trace) == 0

    def test_snapshot_shape(self):
        registry = ObsRegistry(mode=COUNTERS)
        registry.observe("lat", 0.5)
        registry.set_gauge("depth", 2)
        snap = registry.snapshot()
        assert snap["mode"] == "counters"
        assert snap["gauges"]["depth"] == 2
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["trace_events"] == 0


class TestGlobalHelpers:
    def test_observed_restores_previous_state(self):
        previous_mode = OBS.mode
        previous_path = OBS.trace.path
        with observed(mode="counters") as registry:
            assert registry is OBS
            assert OBS.mode == COUNTERS
        assert OBS.mode == previous_mode
        assert OBS.trace.path == previous_path

    def test_observed_resets_metrics_on_entry(self):
        with observed(mode="counters"):
            OBS.count("stale")
        with observed(mode="counters"):
            assert "stale" not in OBS.counters()

    def test_timed_decorator_records_calls(self):
        @timed("helper.stage")
        def double(x):
            return 2 * x

        with observed(mode="counters"):
            assert double(21) == 42
            assert OBS.counters()["helper.stage.calls"] == 1
        # Disabled: passthrough, no metrics.
        assert double(1) == 2
