"""Tests for the JSONL trace recorder and reader."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    REQUIRED_EVENT_KEYS,
    TraceRecorder,
    read_jsonl,
    stages_covered,
)


class TestTraceRecorder:
    def test_events_are_epoch_relative(self):
        recorder = TraceRecorder()
        epoch = recorder.epoch
        recorder.record("encode.jigsaw", epoch + 1.0, epoch + 1.25, frame=2,
                        bytes=4096)
        (event,) = recorder.events
        assert event["stage"] == "encode.jigsaw"
        assert event["frame"] == 2
        assert event["t_start_s"] == pytest.approx(1.0)
        assert event["t_end_s"] == pytest.approx(1.25)
        assert event["dur_s"] == pytest.approx(0.25)
        assert event["bytes"] == 4096

    def test_clear_resets_buffer_and_epoch(self):
        recorder = TraceRecorder()
        recorder.record("x", recorder.epoch, recorder.epoch + 1.0)
        old_epoch = recorder.epoch
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.epoch >= old_epoch

    def test_write_without_path_rejected(self):
        recorder = TraceRecorder()
        recorder.record("x", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            recorder.write_jsonl()

    def test_flush_is_noop_when_pathless_or_empty(self, tmp_path):
        assert TraceRecorder().flush() is None
        empty = TraceRecorder(tmp_path / "trace.jsonl")
        assert empty.flush() is None
        assert not (tmp_path / "trace.jsonl").exists()


class TestJsonlRoundTrip:
    def test_round_trip_preserves_events(self, tmp_path):
        recorder = TraceRecorder(tmp_path / "trace.jsonl")
        epoch = recorder.epoch
        recorder.record("frame.stream", epoch, epoch + 0.03, frame=0, users=3)
        recorder.record("transport.transmit", epoch + 0.001, epoch + 0.02,
                        frame=0, packets_sent=411)
        path = recorder.flush()
        events = read_jsonl(path)
        assert len(events) == 2
        assert events == recorder.events
        assert stages_covered(events) == {"frame.stream", "transport.transmit"}
        for event in events:
            for key in REQUIRED_EVENT_KEYS:
                assert key in event

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"stage": "x", "t_start_s": 0')
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            read_jsonl(path)

    def test_missing_required_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"stage": "x", "t_start_s": 0.0}\n')
        with pytest.raises(ConfigurationError, match="missing keys"):
            read_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '\n{"stage": "x", "t_start_s": 0.0, "t_end_s": 1.0, "dur_s": 1.0}\n\n'
        )
        assert len(read_jsonl(path)) == 1
