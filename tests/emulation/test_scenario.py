"""Tests for emulation scenarios and trace generation."""

import numpy as np
import pytest

from repro.errors import EmulationError


class TestPlacements:
    def test_arc_distances(self, scenario):
        users = scenario.place_arc(3, 8.0, 60, seed=1)
        for user in users:
            assert user.distance_to(scenario.ap_position) == pytest.approx(8.0, abs=0.3)

    def test_range_within_bounds(self, scenario):
        users = scenario.place_random_range(4, 8.0, 16.0, 120, seed=2)
        assert len(users) == 4
        for user in users:
            assert scenario.room.contains(user)


class TestStaticTrace:
    def test_length_and_interval(self, scenario):
        users = scenario.place_arc(2, 3.0, 30, seed=3)
        trace = scenario.static_trace(users, duration_s=0.5, seed=4)
        assert len(trace) == 5
        assert trace.beacon_interval_s == pytest.approx(0.1)

    def test_estimates_differ_from_truth(self, scenario):
        users = scenario.place_arc(1, 3.0, 0, seed=5)
        trace = scenario.static_trace(users, duration_s=0.3, seed=6)
        snap = trace.snapshots[0]
        assert not np.allclose(
            snap.true_state.channels[0], snap.estimated_state.channels[0]
        )


class TestMobileTrace:
    def test_moving_user_changes_position(self, scenario):
        trace = scenario.mobile_receiver_trace(
            2, moving_users=[0], duration_s=1.0, rss_regime="high", seed=7
        )
        first = trace.snapshots[0].true_state.positions[0]
        last = trace.snapshots[-1].true_state.positions[0]
        assert first.distance_to(last) > 0.01

    def test_static_user_stays_put(self, scenario):
        trace = scenario.mobile_receiver_trace(
            2, moving_users=[0], duration_s=1.0, rss_regime="high", seed=7
        )
        first = trace.snapshots[0].true_state.positions[1]
        last = trace.snapshots[-1].true_state.positions[1]
        assert first == last

    def test_regimes_have_different_ranges(self, scenario):
        high = scenario.mobile_receiver_trace(
            1, [0], duration_s=1.0, rss_regime="high", seed=8
        )
        low = scenario.mobile_receiver_trace(
            1, [0], duration_s=1.0, rss_regime="low", seed=8
        )
        dist_high = np.mean([
            s.true_state.positions[0].distance_to(scenario.ap_position)
            for s in high.snapshots
        ])
        dist_low = np.mean([
            s.true_state.positions[0].distance_to(scenario.ap_position)
            for s in low.snapshots
        ])
        assert dist_low > dist_high

    def test_estimates_lag_one_beacon(self, scenario):
        """Mobile traces model beam-training staleness: the estimate at tick
        k derives from the true channel at tick k-1."""
        trace = scenario.mobile_receiver_trace(
            1, [0], duration_s=0.5, rss_regime="high", seed=9
        )
        prev_true = trace.snapshots[1].true_state.channels[0]
        estimate = trace.snapshots[2].estimated_state.channels[0]
        now_true = trace.snapshots[2].true_state.channels[0]
        err_prev = np.linalg.norm(estimate - prev_true)
        err_now = np.linalg.norm(estimate - now_true)
        assert err_prev < err_now

    def test_bad_regime_rejected(self, scenario):
        with pytest.raises(EmulationError):
            scenario.mobile_receiver_trace(1, [0], 1.0, rss_regime="medium")


class TestEnvironmentTrace:
    def test_static_positions_with_blockage_events(self, scenario):
        trace = scenario.moving_environment_trace(
            2, distance_m=5.0, mas_deg=60, duration_s=2.0, seed=10
        )
        first = trace.snapshots[0].true_state.positions[0]
        last = trace.snapshots[-1].true_state.positions[0]
        assert first == last
        # Channel magnitude should fluctuate over time (blockage events).
        magnitudes = [
            np.linalg.norm(s.true_state.channels[0]) for s in trace.snapshots
        ]
        assert max(magnitudes) / (min(magnitudes) + 1e-18) > 1.2
