"""Fault-injection campaigns through the sharded sweep scheduler.

ISSUE 8 satellite: ``fault_grid`` variants carry a nested ``FaultConfig``
dataclass in their config overrides, which must canonicalize into the
campaign hash (so checkpoints bind to the exact fault grid) and must
produce bit-identical merged results whether the campaign runs sharded
or through the plain in-process sweep.
"""

import pytest

from repro.emulation.shard import CampaignSpec, run_sharded_sweep
from repro.emulation.sweep import fault_grid, run_variant_sweep


def _grid():
    return fault_grid(
        "blockage_rate_hz", [0.0, 2.0], base={"faults.seed": "3"}
    )


class TestFaultGridSharding:
    def test_fault_variants_hash_canonically(self):
        spec = CampaignSpec(
            variants=tuple(_grid()),
            num_users=2,
            placement=("arc", 3, 60),
            runs=4,
            frames=1,
            shards=2,
        )
        # Stable across reconstruction (dataclass overrides canonicalize).
        again = CampaignSpec(
            variants=tuple(_grid()),
            num_users=2,
            placement=("arc", 3, 60),
            runs=4,
            frames=1,
            shards=2,
        )
        assert spec.spec_hash() == again.spec_hash()
        # ... and sensitive to the grid itself.
        other = CampaignSpec(
            variants=tuple(fault_grid("blockage_rate_hz", [0.0, 4.0])),
            num_users=2,
            placement=("arc", 3, 60),
            runs=4,
            frames=1,
            shards=2,
        )
        assert spec.spec_hash() != other.spec_hash()

    @pytest.mark.parametrize("shards", [1, 3])
    def test_sharded_fault_grid_bit_identical_to_unsharded(
        self, sweep_ctx, tmp_path, shards
    ):
        variants = _grid()
        reference = run_variant_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=3, frames=1
        )
        sharded = run_sharded_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=3, frames=1,
            shards=shards, checkpoint=tmp_path / "chaos.jsonl", jobs=1,
        )
        assert sharded == reference

    def test_faulty_arm_diverges_from_clean_arm(self, sweep_ctx, tmp_path):
        """The grid actually injects: a hard-blocked arm scores lower."""
        variants = fault_grid(
            "blockage_rate_hz",
            [0.0, 50.0],
            base={
                "faults.seed": "3",
                "faults.blockage_depth_db": "40",
            },
        )
        merged = run_sharded_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=2, frames=2,
            shards=2, checkpoint=tmp_path / "chaos.jsonl", jobs=1,
        )
        clean = sum(merged["blockage_rate_hz=0.0"]["ssim"])
        blocked = sum(merged["blockage_rate_hz=50.0"]["ssim"])
        assert blocked < clean
