"""Tests for experiment persistence and report rendering."""

import pytest

from repro.emulation.reporting import (
    load_records,
    record_from_runner_output,
    render_report,
    save_records,
)
from repro.errors import EmulationError


@pytest.fixture()
def record():
    return record_from_runner_output(
        "fig5",
        "beamforming, 2 users, 3 m",
        {
            "optimized_multicast": {"ssim": [0.95, 0.96], "psnr": [40.1, 41.2]},
            "predefined_unicast": {"ssim": [0.91, 0.93], "psnr": [36.0, 37.5]},
        },
        parameters={"runs": 2, "frames": 9},
    )


class TestRecord:
    def test_box_stats(self, record):
        stats = record.box_stats("ssim")
        assert stats["optimized_multicast"].mean == pytest.approx(0.955)

    def test_missing_metric_rejected(self, record):
        with pytest.raises(EmulationError):
            record.box_stats("vmaf")

    def test_markdown_contains_cases(self, record):
        markdown = record.to_markdown()
        assert "fig5" in markdown
        assert "optimized_multicast" in markdown
        assert "| case |" in markdown


class TestPersistence:
    def test_save_load_roundtrip(self, record, tmp_path):
        path = tmp_path / "records.json"
        save_records([record], path)
        loaded = load_records(path)
        assert len(loaded) == 1
        assert loaded[0].experiment_id == "fig5"
        assert loaded[0].samples["predefined_unicast"]["ssim"] == [0.91, 0.93]
        assert loaded[0].parameters["runs"] == 2

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(EmulationError):
            save_records([], tmp_path / "x.json")

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 99, "records": []}')
        with pytest.raises(EmulationError):
            load_records(path)


class TestReport:
    def test_report_over_multiple_records(self, record):
        other = record_from_runner_output(
            "fig8", "scheduler", {"optimized": {"ssim": [0.9]}}
        )
        report = render_report([record, other], title="Repro results")
        assert report.startswith("# Repro results")
        assert "fig5" in report and "fig8" in report

    def test_empty_report_rejected(self):
        with pytest.raises(EmulationError):
            render_report([])
