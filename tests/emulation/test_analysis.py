"""Tests for trace analysis utilities."""

import numpy as np
import pytest

from repro.emulation.analysis import (
    classify_regime,
    summarize_trace,
    trace_rss_series,
)
from repro.errors import EmulationError
from repro.phy.csi import CsiTrace


class TestRssSeries:
    def test_series_per_user_per_beacon(self, scenario):
        positions = scenario.place_arc(2, 4.0, 30, seed=81)
        trace = scenario.static_trace(positions, duration_s=0.5, seed=82)
        series = trace_rss_series(trace, scenario.channel_model)
        assert set(series) == {0, 1}
        assert all(len(v) == len(trace) for v in series.values())

    def test_close_users_have_higher_rss(self, scenario):
        near = scenario.static_trace(
            scenario.place_arc(1, 3.0, 0, seed=83), duration_s=0.3, seed=84
        )
        far = scenario.static_trace(
            scenario.place_arc(1, 15.0, 0, seed=83), duration_s=0.3, seed=84
        )
        rss_near = trace_rss_series(near, scenario.channel_model)[0].mean()
        rss_far = trace_rss_series(far, scenario.channel_model)[0].mean()
        assert rss_near > rss_far

    def test_estimates_option(self, scenario):
        trace = scenario.static_trace(
            scenario.place_arc(1, 4.0, 0, seed=85), duration_s=0.3, seed=86
        )
        truth = trace_rss_series(trace, scenario.channel_model)[0]
        estimated = trace_rss_series(
            trace, scenario.channel_model, use_estimates=True
        )[0]
        assert not np.allclose(truth, estimated)

    def test_empty_trace_rejected(self, scenario):
        with pytest.raises(EmulationError):
            trace_rss_series(CsiTrace(), scenario.channel_model)


class TestRegimeClassification:
    def test_near_trace_is_high(self, scenario):
        trace = scenario.static_trace(
            scenario.place_arc(2, 3.0, 30, seed=87), duration_s=0.3, seed=88
        )
        assert classify_regime(trace, scenario.channel_model) == "high"

    def test_generated_regimes_classify_correctly(self, scenario):
        high = scenario.mobile_receiver_trace(
            1, [0], duration_s=1.0, rss_regime="high", seed=89
        )
        assert classify_regime(high, scenario.channel_model) == "high"


class TestSummary:
    def test_summary_fields(self, scenario):
        trace = scenario.static_trace(
            scenario.place_arc(3, 6.0, 60, seed=90), duration_s=0.5, seed=91
        )
        summary = summarize_trace(trace, scenario.channel_model)
        assert summary.num_users == 3
        assert summary.duration_s == pytest.approx(0.5)
        assert summary.p10_rss_dbm <= summary.median_rss_dbm
        assert 0.0 <= summary.outage_fraction <= 1.0
        assert summary.median_best_rate_mbps >= 0
        assert "RSS" in summary.row()

    def test_close_range_has_no_outage(self, scenario):
        trace = scenario.static_trace(
            scenario.place_arc(1, 3.0, 0, seed=92), duration_s=0.3, seed=93
        )
        summary = summarize_trace(trace, scenario.channel_model)
        assert summary.outage_fraction == 0.0
        assert summary.median_best_rate_mbps >= 1850
