"""Tests for the experiment runners (small, fast configurations)."""

import numpy as np
import pytest

from repro.emulation.runner import (
    build_context,
    run_ablation,
    run_beamforming_comparison,
    run_mobile_comparison,
    run_scheduler_comparison,
)
from repro.errors import EmulationError
from repro.types import BeamformingScheme


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    import os

    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("cache"))
    try:
        return build_context(
            height=144, width=256, dnn_epochs=150, probe_frames=2, seed=0
        )
    finally:
        del os.environ["REPRO_CACHE_DIR"]


class TestBuildContext:
    def test_context_components(self, ctx):
        assert ctx.dnn.is_fitted
        assert len(ctx.probes) >= 2
        assert len(ctx.videos) == 6

    def test_dnn_cache_roundtrip(self, tmp_path):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(tmp_path)
        try:
            first = build_context(height=144, width=256, dnn_epochs=60,
                                  probe_frames=2, seed=1)
            second = build_context(height=144, width=256, dnn_epochs=60,
                                   probe_frames=2, seed=1)
            x = first.probes[0].features([1, 0.5, 0, 0])
            np.testing.assert_allclose(first.dnn.predict(x), second.dnn.predict(x))
        finally:
            del os.environ["REPRO_CACHE_DIR"]

    def test_config_override(self, ctx):
        config = ctx.config(rate_control=False)
        assert not config.rate_control
        assert ctx.base_config.rate_control


class TestRunners:
    def test_beamforming_comparison_shape(self, ctx):
        results = run_beamforming_comparison(
            ctx, 2, ("arc", 3, 60),
            schemes=[BeamformingScheme.OPTIMIZED_MULTICAST,
                     BeamformingScheme.PREDEFINED_UNICAST],
            runs=1, frames=2,
        )
        assert set(results) == {"optimized_multicast", "predefined_unicast"}
        for entry in results.values():
            assert len(entry["ssim"]) == 1
            assert len(entry["psnr"]) == 1
            assert 0 <= entry["ssim"][0] <= 1

    def test_scheduler_comparison_shape(self, ctx):
        results = run_scheduler_comparison(ctx, 2, ("arc", 3, 60), runs=1, frames=2)
        assert set(results) == {"optimized", "round_robin"}

    def test_ablation_axes(self, ctx):
        results = run_ablation(ctx, "source_coding", 2, ("arc", 3, 60),
                               runs=1, frames=2)
        assert set(results) == {"with_source_coding", "without_source_coding"}

    def test_bad_ablation_axis_rejected(self, ctx):
        with pytest.raises(EmulationError):
            run_ablation(ctx, "magic", 2, ("arc", 3, 60), runs=1, frames=1)

    def test_bad_placement_rejected(self, ctx):
        with pytest.raises(EmulationError):
            run_beamforming_comparison(ctx, 2, ("sphere", 1), runs=1, frames=1)

    def test_mobile_comparison_series(self, ctx):
        series = run_mobile_comparison(
            ctx, 1, [0], "high", duration_s=0.5,
            approaches=("realtime_update", "fast_mpc"),
        )
        assert set(series) == {"realtime_update", "fast_mpc"}
        assert len(series["realtime_update"]) == 15
        assert all(0 <= v <= 1 for v in series["fast_mpc"])


class TestParallelDeterminism:
    """Fan-out and perf-mode must never change experiment results."""

    def test_jobs_do_not_change_results(self, ctx):
        serial = run_scheduler_comparison(
            ctx, 2, ("arc", 3, 60), runs=2, frames=2, jobs=1
        )
        fanned = run_scheduler_comparison(
            ctx, 2, ("arc", 3, 60), runs=2, frames=2, jobs=4
        )
        assert serial == fanned

    def test_seed_path_metrics_identical(self, ctx):
        from repro.perf import perf_mode

        optimized = run_scheduler_comparison(
            ctx, 2, ("arc", 3, 60), runs=1, frames=2, jobs=1
        )
        with perf_mode("seed"):
            reference = run_scheduler_comparison(
                ctx, 2, ("arc", 3, 60), runs=1, frames=2, jobs=1
            )
        assert optimized == reference
