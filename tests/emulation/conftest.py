"""Shared emulation fixtures."""

import pytest

from repro.emulation import build_context


@pytest.fixture(scope="package")
def sweep_ctx(tmp_path_factory, monkeypatch_package_cache):
    """A small shared experiment context for sweep-engine tests."""
    return build_context(
        height=144, width=256, dnn_epochs=100, probe_frames=2, seed=0
    )


@pytest.fixture(scope="package")
def monkeypatch_package_cache(tmp_path_factory):
    """Point the DNN disk cache at a temp dir for the whole package."""
    import os

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("sweep_cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
