"""Tests for box statistics."""

import pytest

from repro.emulation.stats import BoxStats, print_table, summarize
from repro.errors import EmulationError


class TestBoxStats:
    def test_five_number_summary(self):
        stats = BoxStats.from_samples([1, 2, 3, 4, 5])
        assert stats.minimum == 1
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.mean == 3
        assert stats.count == 5

    def test_quartiles(self):
        stats = BoxStats.from_samples(list(range(101)))
        assert stats.q1 == pytest.approx(25.0)
        assert stats.q3 == pytest.approx(75.0)

    def test_single_sample(self):
        stats = BoxStats.from_samples([0.9])
        assert stats.minimum == stats.maximum == stats.mean == 0.9

    def test_empty_rejected(self):
        with pytest.raises(EmulationError):
            BoxStats.from_samples([])

    def test_row_renders(self):
        row = BoxStats.from_samples([0.1, 0.2, 0.3]).row()
        assert "mean" in row and "n=3" in row

    def test_summarize_multiple(self):
        result = summarize({"a": [1, 2], "b": [3, 4]})
        assert result["a"].mean == 1.5
        assert result["b"].mean == 3.5

    def test_print_table(self, capsys):
        print_table("demo", summarize({"case1": [0.5, 0.7]}), header="hdr")
        output = capsys.readouterr().out
        assert "demo" in output and "case1" in output and "hdr" in output
