"""Tests for the generic variant-sweep engine."""

import pytest

from repro.emulation.sweep import (
    Variant,
    merge_runs,
    parse_config_overrides,
    run_session_sweep,
    run_variant_sweep,
    variant_from_spec,
)
from repro.errors import EmulationError
from repro.types import BeamformingScheme, SchedulerKind


class TestVariant:
    def test_requires_name(self):
        with pytest.raises(EmulationError):
            Variant("")

    def test_overrides_and_factory_exclusive(self):
        with pytest.raises(EmulationError):
            Variant("x", config_overrides={"fps": 30},
                    session_factory=lambda ctx, seed: None)


class TestOverrideParsing:
    def test_enum_bool_and_numeric_coercion(self):
        overrides = parse_config_overrides({
            "scheduler": "round_robin",
            "scheme": "predefined_unicast",
            "source_coding": "off",
            "fps": "24",
            "mcs_backoff_db": "1.5",
        })
        assert overrides["scheduler"] is SchedulerKind.ROUND_ROBIN
        assert overrides["scheme"] is BeamformingScheme.PREDEFINED_UNICAST
        assert overrides["source_coding"] is False
        assert overrides["fps"] == 24
        assert overrides["mcs_backoff_db"] == 1.5

    def test_unknown_field_rejected(self):
        with pytest.raises(EmulationError, match="unknown SystemConfig field"):
            parse_config_overrides({"warp_drive": "on"})

    def test_bad_bool_rejected(self):
        with pytest.raises(EmulationError, match="expects a boolean"):
            parse_config_overrides({"rate_control": "sideways"})

    def test_variant_from_spec(self):
        variant = variant_from_spec("rr:scheduler=round_robin,fps=24")
        assert variant.name == "rr"
        assert variant.config_overrides == {
            "scheduler": SchedulerKind.ROUND_ROBIN, "fps": 24
        }

    def test_variant_from_bare_name(self):
        variant = variant_from_spec("base")
        assert variant.name == "base"
        assert variant.config_overrides is None

    def test_variant_from_bad_spec(self):
        with pytest.raises(EmulationError, match="bad override"):
            variant_from_spec("x:fps")


class TestMergeRuns:
    def test_merges_in_run_order(self):
        merged = merge_runs(
            ["a", "b"],
            [{"a": (0.9, 30.0), "b": (0.8, 25.0)},
             {"a": (0.7, 28.0), "b": (0.6, 22.0)}],
        )
        assert merged == {
            "a": {"ssim": [0.9, 0.7], "psnr": [30.0, 28.0]},
            "b": {"ssim": [0.8, 0.6], "psnr": [25.0, 22.0]},
        }

    def test_partial_run_rejected_naming_offender(self):
        with pytest.raises(EmulationError, match=r"run 1.*missing \['b'\]"):
            merge_runs(
                ["a", "b"],
                [{"a": (0.9, 30.0), "b": (0.8, 25.0)},
                 {"a": (0.7, 28.0)}],
            )

    def test_unknown_key_rejected(self):
        with pytest.raises(EmulationError, match=r"unexpected \['zz'\]"):
            merge_runs(["a"], [{"a": (0.9, 30.0), "zz": (0.1, 1.0)}])


class TestSweepValidation:
    def test_duplicate_variant_names_rejected(self, sweep_ctx):
        variants = [Variant("same"), Variant("same", {"fps": 24})]
        with pytest.raises(EmulationError, match="duplicate"):
            run_variant_sweep(
                sweep_ctx, variants, 2, ("arc", 3, 60), runs=1, frames=1
            )

    def test_session_factory_variant_rejected_in_placement_sweep(self, sweep_ctx):
        variants = [Variant("x", session_factory=lambda ctx, seed: None)]
        with pytest.raises(EmulationError, match="run_session_sweep"):
            run_variant_sweep(
                sweep_ctx, variants, 2, ("arc", 3, 60), runs=1, frames=1
            )


class TestSweepEngine:
    def test_matches_legacy_scheduler_runner(self, sweep_ctx):
        """The generic engine with the scheduler seed schedule reproduces
        run_scheduler_comparison exactly."""
        from repro.emulation.runner import run_scheduler_comparison

        legacy = run_scheduler_comparison(
            sweep_ctx, 2, ("arc", 3, 60), runs=1, frames=2
        )
        generic = run_variant_sweep(
            sweep_ctx,
            [Variant(kind.value, {"scheduler": kind}) for kind in SchedulerKind],
            2, ("arc", 3, 60), runs=1, frames=2,
            seed_base=2000, seed_stride=13,
        )
        assert generic == legacy

    def test_session_sweep_shapes(self, sweep_ctx):
        """Mixed factory/override variants stream the same shared trace."""
        from repro.emulation.runner import mobile_variant

        trace = sweep_ctx.scenario.mobile_receiver_trace(
            2, moving_users=[0], duration_s=0.3, rss_regime="high", seed=11
        )
        series = run_session_sweep(
            sweep_ctx,
            [mobile_variant("realtime_update"), mobile_variant("fast_mpc")],
            trace, 2, num_frames=9, seed=11,
        )
        assert set(series) == {"realtime_update", "fast_mpc"}
        assert all(len(v) == 9 for v in series.values())

    def test_unknown_mobile_approach_rejected(self):
        from repro.emulation.runner import mobile_variant

        with pytest.raises(EmulationError, match="unknown mobile approach"):
            mobile_variant("teleport")
