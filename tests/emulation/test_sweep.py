"""Tests for the generic variant-sweep engine."""

import pytest

from repro.emulation.sweep import (
    Variant,
    ap_fault_grid,
    merge_runs,
    parse_config_overrides,
    run_session_sweep,
    run_variant_sweep,
    sweep_num_aps,
    variant_from_spec,
)
from repro.errors import EmulationError
from repro.phy.topology import TopologyConfig
from repro.types import BeamformingScheme, SchedulerKind


class TestVariant:
    def test_requires_name(self):
        with pytest.raises(EmulationError):
            Variant("")

    def test_overrides_and_factory_exclusive(self):
        with pytest.raises(EmulationError):
            Variant("x", config_overrides={"fps": 30},
                    session_factory=lambda ctx, seed: None)


class TestOverrideParsing:
    def test_enum_bool_and_numeric_coercion(self):
        overrides = parse_config_overrides({
            "scheduler": "round_robin",
            "scheme": "predefined_unicast",
            "source_coding": "off",
            "fps": "24",
            "mcs_backoff_db": "1.5",
        })
        assert overrides["scheduler"] is SchedulerKind.ROUND_ROBIN
        assert overrides["scheme"] is BeamformingScheme.PREDEFINED_UNICAST
        assert overrides["source_coding"] is False
        assert overrides["fps"] == 24
        assert overrides["mcs_backoff_db"] == 1.5

    def test_unknown_field_rejected(self):
        with pytest.raises(EmulationError, match="unknown SystemConfig field"):
            parse_config_overrides({"warp_drive": "on"})

    def test_bad_bool_rejected(self):
        with pytest.raises(EmulationError, match="expects a boolean"):
            parse_config_overrides({"rate_control": "sideways"})

    def test_variant_from_spec(self):
        variant = variant_from_spec("rr:scheduler=round_robin,fps=24")
        assert variant.name == "rr"
        assert variant.config_overrides == {
            "scheduler": SchedulerKind.ROUND_ROBIN, "fps": 24
        }

    def test_variant_from_bare_name(self):
        variant = variant_from_spec("base")
        assert variant.name == "base"
        assert variant.config_overrides is None

    def test_variant_from_bad_spec(self):
        with pytest.raises(EmulationError, match="bad override"):
            variant_from_spec("x:fps")


class TestMergeRuns:
    def test_merges_in_run_order(self):
        merged = merge_runs(
            ["a", "b"],
            [{"a": (0.9, 30.0), "b": (0.8, 25.0)},
             {"a": (0.7, 28.0), "b": (0.6, 22.0)}],
        )
        assert merged == {
            "a": {"ssim": [0.9, 0.7], "psnr": [30.0, 28.0]},
            "b": {"ssim": [0.8, 0.6], "psnr": [25.0, 22.0]},
        }

    def test_partial_run_rejected_naming_offender(self):
        with pytest.raises(EmulationError, match=r"run 1.*missing \['b'\]"):
            merge_runs(
                ["a", "b"],
                [{"a": (0.9, 30.0), "b": (0.8, 25.0)},
                 {"a": (0.7, 28.0)}],
            )

    def test_unknown_key_rejected(self):
        with pytest.raises(EmulationError, match=r"unexpected \['zz'\]"):
            merge_runs(["a"], [{"a": (0.9, 30.0), "zz": (0.1, 1.0)}])


class TestSweepValidation:
    def test_duplicate_variant_names_rejected(self, sweep_ctx):
        variants = [Variant("same"), Variant("same", {"fps": 24})]
        with pytest.raises(EmulationError, match="duplicate"):
            run_variant_sweep(
                sweep_ctx, variants, 2, ("arc", 3, 60), runs=1, frames=1
            )

    def test_session_factory_variant_rejected_in_placement_sweep(self, sweep_ctx):
        variants = [Variant("x", session_factory=lambda ctx, seed: None)]
        with pytest.raises(EmulationError, match="run_session_sweep"):
            run_variant_sweep(
                sweep_ctx, variants, 2, ("arc", 3, 60), runs=1, frames=1
            )


class TestSweepEngine:
    def test_matches_legacy_scheduler_runner(self, sweep_ctx):
        """The generic engine with the scheduler seed schedule reproduces
        run_scheduler_comparison exactly."""
        from repro.emulation.runner import run_scheduler_comparison

        legacy = run_scheduler_comparison(
            sweep_ctx, 2, ("arc", 3, 60), runs=1, frames=2
        )
        generic = run_variant_sweep(
            sweep_ctx,
            [Variant(kind.value, {"scheduler": kind}) for kind in SchedulerKind],
            2, ("arc", 3, 60), runs=1, frames=2,
            seed_base=2000, seed_stride=13,
        )
        assert generic == legacy

    def test_session_sweep_shapes(self, sweep_ctx):
        """Mixed factory/override variants stream the same shared trace."""
        from repro.emulation.runner import mobile_variant

        trace = sweep_ctx.scenario.mobile_receiver_trace(
            2, moving_users=[0], duration_s=0.3, rss_regime="high", seed=11
        )
        series = run_session_sweep(
            sweep_ctx,
            [mobile_variant("realtime_update"), mobile_variant("fast_mpc")],
            trace, 2, num_frames=9, seed=11,
        )
        assert set(series) == {"realtime_update", "fast_mpc"}
        assert all(len(v) == 9 for v in series.values())

    def test_unknown_mobile_approach_rejected(self):
        from repro.emulation.runner import mobile_variant

        with pytest.raises(EmulationError, match="unknown mobile approach"):
            mobile_variant("teleport")


class TestTopologyOverrides:
    def test_topology_dotted_overrides_merge(self):
        overrides = parse_config_overrides({
            "topology.num_aps": "2",
            "topology.hysteresis_db": "5",
            "topology.cross_ap_repair": "off",
        })
        topology = overrides["topology"]
        assert topology == TopologyConfig(
            num_aps=2, hysteresis_db=5.0, cross_ap_repair=False
        )

    def test_topology_composes_with_fault_overrides(self):
        overrides = parse_config_overrides({
            "topology.num_aps": "2",
            "faults.blockage_rate_hz": "6",
            "fps": "24",
        })
        assert overrides["topology"].num_aps == 2
        assert overrides["faults"].blockage_rate_hz == 6.0
        assert overrides["fps"] == 24

    def test_unknown_topology_field_rejected(self):
        with pytest.raises(EmulationError, match="topology"):
            parse_config_overrides({"topology.warp": "9"})

    def test_bare_topology_key_rejected(self):
        with pytest.raises(EmulationError, match="topology"):
            parse_config_overrides({"topology": "2"})


class TestApFaultGrid:
    def test_arm_names_and_overrides(self):
        variants = ap_fault_grid("blockage_depth_db", [0, 25])
        assert [v.name for v in variants] == [
            "1ap:blockage_depth_db=0", "1ap:blockage_depth_db=25",
            "2ap:blockage_depth_db=0", "2ap:blockage_depth_db=25",
        ]
        one_ap, two_ap = variants[1], variants[3]
        # 1-AP arms carry no topology block at all: they must build the
        # exact pre-topology SystemConfig.
        assert "topology" not in one_ap.config_overrides
        assert two_ap.config_overrides["topology"].num_aps == 2
        assert one_ap.config_overrides["faults"].blockage_depth_db == 25.0
        assert two_ap.config_overrides["faults"].blockage_depth_db == 25.0

    def test_base_overrides_shared_by_every_arm(self):
        variants = ap_fault_grid(
            "blockage_depth_db", [25],
            base={"faults.seed": "11", "fps": "24"},
        )
        for variant in variants:
            assert variant.config_overrides["faults"].seed == 11
            assert variant.config_overrides["fps"] == 24

    def test_empty_values_rejected(self):
        with pytest.raises(EmulationError):
            ap_fault_grid("blockage_depth_db", [])
        with pytest.raises(EmulationError):
            ap_fault_grid("blockage_depth_db", [1], ap_counts=())

    def test_sweep_num_aps_is_widest_arm(self):
        variants = ap_fault_grid("blockage_depth_db", [0, 25], ap_counts=(1, 2))
        assert sweep_num_aps(variants) == 2
        assert sweep_num_aps([Variant("plain")]) == 1
        assert sweep_num_aps([]) == 1
