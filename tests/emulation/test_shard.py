"""Tests for the sharded, resumable sweep scheduler and its checkpoints."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulation.shard import (
    CampaignSpec,
    CheckpointError,
    _encode_shard_line,
    load_checkpoint,
    merge_shards,
    merged_to_jsonable,
    plan_shards,
    run_sharded_sweep,
    write_results_json,
)
from repro.emulation.sweep import Variant, merge_runs, run_variant_sweep
from repro.errors import EmulationError

VARIANTS = (Variant("base"), Variant("rr", {"fps": 24}))


def _spec(runs=6, shards=3, variants=VARIANTS) -> CampaignSpec:
    return CampaignSpec(
        variants=tuple(variants),
        num_users=2,
        placement=("arc", 3, 60),
        runs=runs,
        frames=2,
        shards=shards,
    )


def _fake_run_result(run: int) -> dict:
    """Synthetic per-run result with awkward (non-round) floats."""
    return {
        "base": (0.9 + run / 7.0, 30.0 + run / 3.0),
        "rr": (0.8 - run / 11.0, 25.0 + run / 9.0),
    }


def _write_checkpoint(path: Path, spec: CampaignSpec, shard_ids) -> None:
    """A checkpoint with the given finished shards, synthetic payloads."""
    plan = plan_shards(spec.runs, spec.shards)
    header = dict(spec.to_dict())
    header.update(kind="header", spec_hash=spec.spec_hash())
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for shard_id in shard_ids:
        results = [(run, _fake_run_result(run)) for run in plan[shard_id]]
        lines.append(_encode_shard_line(shard_id, results))
    path.write_text("\n".join(lines) + "\n")


class TestPlanShards:
    def test_contiguous_partition(self):
        assert plan_shards(7, 3) == [(0, 1, 2), (3, 4), (5, 6)]

    def test_one_shard_takes_everything(self):
        assert plan_shards(4, 1) == [(0, 1, 2, 3)]

    def test_shard_per_run(self):
        assert plan_shards(3, 3) == [(0,), (1,), (2,)]

    def test_invalid_counts_rejected(self):
        with pytest.raises(EmulationError):
            plan_shards(0, 1)
        with pytest.raises(EmulationError):
            plan_shards(3, 4)
        with pytest.raises(EmulationError):
            plan_shards(3, 0)

    @given(
        runs=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_run_in_exactly_one_shard(self, runs, data):
        shards = data.draw(st.integers(min_value=1, max_value=runs))
        plan = plan_shards(runs, shards)
        flat = [run for chunk in plan for run in chunk]
        assert flat == list(range(runs))
        assert len(plan) == shards


class TestCampaignSpec:
    def test_points(self):
        assert _spec(runs=6).points == 12

    def test_hash_is_stable(self):
        assert _spec().spec_hash() == _spec().spec_hash()

    def test_hash_tracks_every_field(self):
        base = _spec().spec_hash()
        assert _spec(runs=7).spec_hash() != base
        assert _spec(shards=2).spec_hash() != base
        assert _spec(variants=(Variant("base"),)).spec_hash() != base

    def test_session_factory_variants_rejected(self):
        with pytest.raises(EmulationError, match="cannot be sharded"):
            _spec(variants=(
                Variant("x", session_factory=lambda ctx, seed: None),
            ))

    def test_duplicate_names_rejected(self):
        with pytest.raises(EmulationError, match="duplicate"):
            _spec(variants=(Variant("same"), Variant("same", {"fps": 24})))

    def test_shards_bounds_enforced(self):
        with pytest.raises(EmulationError):
            _spec(runs=2, shards=3)


class TestCheckpointCorruption:
    def test_round_trip(self, tmp_path):
        spec = _spec()
        path = tmp_path / "ck.jsonl"
        _write_checkpoint(path, spec, [0, 2])
        finished, dropped = load_checkpoint(path, spec)
        assert not dropped
        assert set(finished) == {0, 2}
        # Hex-float serialization is bit-exact across the JSON round trip.
        plan = plan_shards(spec.runs, spec.shards)
        assert finished[0] == [
            (run, _fake_run_result(run)) for run in plan[0]
        ]

    def test_truncated_trailing_line_dropped(self, tmp_path):
        spec = _spec()
        path = tmp_path / "ck.jsonl"
        _write_checkpoint(path, spec, [0, 1])
        text = path.read_text()
        path.write_text(text[:-30])  # SIGKILL mid-append
        finished, dropped = load_checkpoint(path, spec)
        assert dropped
        assert set(finished) == {0}

    def test_unparsable_terminated_trailing_line_dropped(self, tmp_path):
        spec = _spec()
        path = tmp_path / "ck.jsonl"
        _write_checkpoint(path, spec, [0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "shard", "shard_id":\n')
        finished, dropped = load_checkpoint(path, spec)
        assert dropped
        assert set(finished) == {0}

    def test_spec_hash_mismatch_raises_naming_file(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        _write_checkpoint(path, _spec(), [0])
        with pytest.raises(CheckpointError, match=str(path)):
            load_checkpoint(path, _spec(runs=7, shards=3))

    def test_duplicate_shard_ids_raise_naming_file(self, tmp_path):
        spec = _spec()
        path = tmp_path / "ck.jsonl"
        _write_checkpoint(path, spec, [0, 1])
        duplicate = path.read_text().splitlines()[1]
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(duplicate + "\n")
        with pytest.raises(CheckpointError, match="duplicate shard id"):
            load_checkpoint(path, spec)

    def test_corrupt_interior_line_raises(self, tmp_path):
        spec = _spec()
        path = tmp_path / "ck.jsonl"
        _write_checkpoint(path, spec, [0, 1])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # mangle a non-trailing record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt line 2"):
            load_checkpoint(path, spec)

    def test_missing_header_raises(self, tmp_path):
        spec = _spec()
        path = tmp_path / "ck.jsonl"
        _write_checkpoint(path, spec, [0])
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")
        with pytest.raises(CheckpointError, match="not a campaign header"):
            load_checkpoint(path, spec)

    def test_out_of_range_shard_id_raises(self, tmp_path):
        spec = _spec()
        path = tmp_path / "ck.jsonl"
        _write_checkpoint(path, spec, [0])
        bad = _encode_shard_line(99, [(0, _fake_run_result(0))])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(bad + "\n")
        with pytest.raises(CheckpointError, match="out of range"):
            load_checkpoint(path, spec)

    def test_empty_file_is_fresh(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("")
        assert load_checkpoint(path, _spec()) == ({}, False)


class TestMergeShards:
    @given(
        runs=st.integers(min_value=1, max_value=60),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_shard_count_and_order_merges_identically(self, runs, data):
        """ISSUE 7: shard count / completion order never change the merge."""
        shards = data.draw(st.integers(min_value=1, max_value=runs))
        per_run = [_fake_run_result(run) for run in range(runs)]
        reference = merge_runs(["base", "rr"], per_run)

        plan = plan_shards(runs, shards)
        order = data.draw(st.permutations(range(shards)))
        finished = {
            shard_id: [(run, per_run[run]) for run in plan[shard_id]]
            for shard_id in order
        }
        assert merge_shards(["base", "rr"], runs, finished) == reference

    def test_missing_run_raises(self):
        with pytest.raises(EmulationError, match="unexecuted runs"):
            merge_shards(["base", "rr"], 3, {0: [(0, _fake_run_result(0))]})


class TestShardedSweepEngine:
    """End-to-end equivalence on a real (tiny) streaming campaign."""

    @pytest.mark.parametrize("shards,jobs", [(1, 1), (3, 1), (4, 2)])
    def test_bit_identical_to_unsharded(self, sweep_ctx, tmp_path, shards, jobs):
        variants = [Variant("base"), Variant("rr", {"fps": 24})]
        reference = run_variant_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=4, frames=1
        )
        sharded = run_sharded_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=4, frames=1,
            shards=shards, checkpoint=tmp_path / "ck.jsonl", jobs=jobs,
        )
        assert sharded == reference

    def test_resume_from_partial_checkpoint_is_bit_identical(
        self, sweep_ctx, tmp_path
    ):
        variants = [Variant("base"), Variant("rr", {"fps": 24})]
        ck = tmp_path / "ck.jsonl"
        full = run_sharded_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=4, frames=1,
            shards=4, checkpoint=ck, jobs=1,
        )
        # Simulate an interrupt: keep the header and the first two shards.
        lines = ck.read_text().splitlines(keepends=True)
        partial = tmp_path / "partial.jsonl"
        partial.write_text("".join(lines[:3]))
        resumed = run_sharded_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=4, frames=1,
            shards=4, checkpoint=partial, jobs=1, resume=True,
        )
        assert resumed == full
        # Only the two missing shards were appended on resume.
        assert len(partial.read_text().splitlines()) == 5

    def test_resume_refuses_checkpoint_from_other_campaign(
        self, sweep_ctx, tmp_path
    ):
        variants = [Variant("base")]
        ck = tmp_path / "ck.jsonl"
        run_sharded_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=2, frames=1,
            shards=2, checkpoint=ck, jobs=1,
        )
        with pytest.raises(CheckpointError, match="different campaign"):
            run_sharded_sweep(
                sweep_ctx, variants, 2, ("arc", 3, 60), runs=3, frames=1,
                shards=2, checkpoint=ck, jobs=1, resume=True,
            )

    def test_fresh_run_overwrites_stale_checkpoint(self, sweep_ctx, tmp_path):
        variants = [Variant("base")]
        ck = tmp_path / "ck.jsonl"
        ck.write_text("not a checkpoint at all\n")
        result = run_sharded_sweep(
            sweep_ctx, variants, 2, ("arc", 3, 60), runs=2, frames=1,
            shards=2, checkpoint=ck, jobs=1,
        )
        assert set(result) == {"base"}
        header = json.loads(ck.read_text().splitlines()[0])
        assert header["kind"] == "header"


class TestResultsJson:
    def test_hex_round_trip(self, tmp_path):
        merged = {"base": {"ssim": [0.1 + 0.2], "psnr": [30.000000001]}}
        path = write_results_json(tmp_path / "res.json", merged)
        loaded = json.loads(path.read_text())
        assert loaded["results"] == merged_to_jsonable(merged)
        assert float.fromhex(
            loaded["results"]["base"]["ssim"][0]
        ) == 0.1 + 0.2

    def test_spec_hash_embedded(self, tmp_path):
        spec = _spec()
        path = write_results_json(
            tmp_path / "res.json", {"base": {"ssim": [], "psnr": []}}, spec
        )
        assert json.loads(path.read_text())["spec_hash"] == spec.spec_hash()
