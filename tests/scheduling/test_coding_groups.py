"""Tests for the Problem-4 greedy coding-group assignment."""

import numpy as np
import pytest

from repro.beamforming.selection import BeamPlan
from repro.errors import SchedulingError
from repro.phy.mcs import entry_for_index
from repro.scheduling.coding_groups import (
    assign_coding_groups,
    decoded_bytes_per_user,
)
from repro.scheduling.groups import CandidateGroup

UNIT = 1000.0


def _group(index, users, rate_mbps=800.0):
    plan = BeamPlan(
        user_ids=tuple(users),
        beam=np.ones(4) / 2.0,
        per_user_rss_dbm={u: -55.0 for u in users},
        min_rss_dbm=-55.0,
        mcs=entry_for_index(4),
        rate_mbps=rate_mbps,
    )
    return CandidateGroup(index=index, plan=plan)


class TestGreedyAssignment:
    def test_single_group_fills_units_in_order(self):
        groups = [_group(0, (0,))]
        budgets = np.zeros((1, 4))
        budgets[0, 1] = 2.5 * UNIT  # 2.5 units of layer 1
        assignments = assign_coding_groups(budgets, groups, UNIT)
        layer1 = [a for a in assignments if a.layer == 1]
        assert [a.sublayer for a in layer1] == [0, 1, 2]
        assert [a.nbytes for a in layer1] == [UNIT, UNIT, 0.5 * UNIT]

    def test_overlapping_groups_share_units(self):
        """A user in two groups aggregates symbols: the second group only
        covers the residual deficit."""
        groups = [_group(0, (0, 1)), _group(1, (1, 2))]
        budgets = np.zeros((2, 4))
        budgets[0, 0] = 0.6 * UNIT
        budgets[1, 0] = UNIT
        assignments = assign_coding_groups(budgets, groups, UNIT)
        unit0 = [a for a in assignments if a.layer == 0 and a.sublayer == 0]
        # Group 0 sends 0.6 units; group 1 tops user 1/2 up to a full unit.
        assert unit0[0].group_index == 0
        assert unit0[0].nbytes == pytest.approx(0.6 * UNIT)
        assert unit0[1].group_index == 1
        assert unit0[1].nbytes == pytest.approx(UNIT)  # user 2 needs a full unit

    def test_transmission_order_is_layer_major(self):
        groups = [_group(0, (0,))]
        budgets = np.full((1, 4), 1.2 * UNIT)
        assignments = assign_coding_groups(budgets, groups, UNIT)
        layers = [a.layer for a in assignments]
        assert layers == sorted(layers)

    def test_budget_never_exceeded(self):
        groups = [_group(0, (0, 1)), _group(1, (1,))]
        budgets = np.array([[2.3 * UNIT, 0, UNIT, 0], [UNIT, UNIT, 0, 0]])
        assignments = assign_coding_groups(budgets.copy(), groups, UNIT)
        spent = np.zeros_like(budgets)
        for a in assignments:
            spent[a.group_index, a.layer] += a.nbytes
        assert np.all(spent <= budgets + 1e-6)

    def test_shape_mismatch_rejected(self):
        groups = [_group(0, (0,))]
        with pytest.raises(SchedulingError):
            assign_coding_groups(np.zeros((2, 4)), groups, UNIT)

    def test_bad_unit_size_rejected(self):
        groups = [_group(0, (0,))]
        with pytest.raises(SchedulingError):
            assign_coding_groups(np.zeros((1, 4)), groups, 0.0)


class TestDecodedBytes:
    def test_complete_units_count(self):
        groups = [_group(0, (0,))]
        budgets = np.zeros((1, 4))
        budgets[0, 0] = 2.0 * UNIT
        assignments = assign_coding_groups(budgets, groups, UNIT)
        decoded = decoded_bytes_per_user(assignments, groups, UNIT)
        assert decoded[0][0] == pytest.approx(2 * UNIT)  # two complete units

    def test_partial_units_do_not_count(self):
        groups = [_group(0, (0,))]
        budgets = np.zeros((1, 4))
        budgets[0, 1] = 0.4 * UNIT
        assignments = assign_coding_groups(budgets, groups, UNIT)
        decoded = decoded_bytes_per_user(assignments, groups, UNIT)
        assert decoded[0][1] == 0.0

    def test_aggregation_across_groups_decodes(self):
        groups = [_group(0, (0, 1)), _group(1, (0,))]
        budgets = np.zeros((2, 4))
        budgets[0, 0] = 0.5 * UNIT
        budgets[1, 0] = 0.5 * UNIT
        assignments = assign_coding_groups(budgets, groups, UNIT)
        decoded = decoded_bytes_per_user(assignments, groups, UNIT)
        assert decoded[0][0] == pytest.approx(UNIT)  # aggregated to a full unit
        assert decoded[1][0] == 0.0  # user 1 only saw half a unit
