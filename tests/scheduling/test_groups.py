"""Tests for candidate-group enumeration."""

import numpy as np
import pytest

from repro.beamforming import GroupBeamPlanner, SectorCodebook
from repro.errors import SchedulingError
from repro.scheduling.groups import GroupEnumerator
from repro.types import BeamformingScheme, Position


@pytest.fixture(scope="module")
def snapshot(request):
    scenario = request.getfixturevalue("scenario")
    rng = np.random.default_rng(9)
    users = {
        0: Position(3.0, 7.0),
        1: Position(3.5, 6.0),
        2: Position(4.0, 5.0),
    }
    return scenario, scenario.channel_model.snapshot(users, rng)


def _enumerator(scenario, scheme, **kwargs):
    codebook = SectorCodebook(scenario.array, num_beams=16, num_wide_beams=4)
    planner = GroupBeamPlanner(
        scenario.array, codebook, scenario.channel_model.budget, scheme
    )
    return GroupEnumerator(planner, **kwargs)


class TestEnumeration:
    def test_multicast_enumerates_all_subsets(self, snapshot):
        scenario, state = snapshot
        enum = _enumerator(scenario, BeamformingScheme.OPTIMIZED_MULTICAST,
                           min_rate_mbps=0.0)
        groups = enum.enumerate(state, [0, 1, 2])
        subsets = {g.user_ids for g in groups}
        assert (0,) in subsets and (1,) in subsets and (2,) in subsets
        assert (0, 1, 2) in subsets
        assert len(subsets) <= 7

    def test_unicast_only_singletons(self, snapshot):
        scenario, state = snapshot
        enum = _enumerator(scenario, BeamformingScheme.OPTIMIZED_UNICAST)
        groups = enum.enumerate(state, [0, 1, 2])
        assert all(len(g.user_ids) == 1 for g in groups)

    def test_pruning_threshold_drops_weak_groups(self, snapshot):
        scenario, state = snapshot
        permissive = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_MULTICAST, min_rate_mbps=0.0
        )
        strict = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_MULTICAST, min_rate_mbps=2400.0
        )
        assert len(strict.enumerate(state, [0, 1, 2])) <= len(
            permissive.enumerate(state, [0, 1, 2])
        )

    def test_singletons_survive_pruning(self, snapshot):
        scenario, state = snapshot
        strict = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_MULTICAST, min_rate_mbps=1e9
        )
        groups = strict.enumerate(state, [0, 1, 2])
        singleton_users = {g.user_ids[0] for g in groups if len(g.user_ids) == 1}
        assert singleton_users  # at least the reachable users remain

    def test_contiguous_restriction_above_limit(self, snapshot):
        scenario, state = snapshot
        enum = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_MULTICAST,
            min_rate_mbps=0.0, exhaustive_max_users=2,
        )
        groups = enum.enumerate(state, [0, 1, 2])
        # With the contiguous restriction there are at most n(n+1)/2 + n
        # candidates before pruning.
        assert len(groups) <= 6

    def test_indices_are_sequential(self, snapshot):
        scenario, state = snapshot
        enum = _enumerator(scenario, BeamformingScheme.OPTIMIZED_MULTICAST)
        groups = enum.enumerate(state, [0, 1, 2])
        assert [g.index for g in groups] == list(range(len(groups)))

    def test_empty_users_rejected(self, snapshot):
        scenario, state = snapshot
        enum = _enumerator(scenario, BeamformingScheme.OPTIMIZED_MULTICAST)
        with pytest.raises(SchedulingError):
            enum.enumerate(state, [])

    def test_rate_scale_divides_rates(self, snapshot):
        scenario, state = snapshot
        plain = _enumerator(scenario, BeamformingScheme.OPTIMIZED_UNICAST)
        scaled = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_UNICAST, rate_scale=10.0
        )
        rate_plain = plain.enumerate(state, [0])[0].rate_mbps
        rate_scaled = scaled.enumerate(state, [0])[0].rate_mbps
        assert rate_scaled == pytest.approx(rate_plain / 10.0)

    def test_bad_rate_scale_rejected(self, snapshot):
        scenario, _ = snapshot
        with pytest.raises(SchedulingError):
            _enumerator(scenario, BeamformingScheme.OPTIMIZED_UNICAST, rate_scale=0)


class TestMaxGroupSize:
    def test_cap_limits_exhaustive_subsets(self, snapshot):
        scenario, state = snapshot
        enum = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_MULTICAST,
            min_rate_mbps=0.0, max_group_size=2,
        )
        groups = enum.enumerate(state, [0, 1, 2])
        assert all(len(g.user_ids) <= 2 for g in groups)
        # Pairs are still enumerated, only the triple is gone.
        assert any(len(g.user_ids) == 2 for g in groups)

    def test_cap_limits_azimuth_windows(self, snapshot):
        scenario, state = snapshot
        enum = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_MULTICAST,
            min_rate_mbps=0.0, exhaustive_max_users=2, max_group_size=2,
        )
        groups = enum.enumerate(state, [0, 1, 2])
        assert all(len(g.user_ids) <= 2 for g in groups)

    def test_none_is_unbounded(self, snapshot):
        scenario, state = snapshot
        capped = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_MULTICAST,
            min_rate_mbps=0.0, max_group_size=3,
        )
        unbounded = _enumerator(
            scenario, BeamformingScheme.OPTIMIZED_MULTICAST,
            min_rate_mbps=0.0, max_group_size=None,
        )
        sets_capped = {g.user_ids for g in capped.enumerate(state, [0, 1, 2])}
        sets_unbounded = {g.user_ids for g in unbounded.enumerate(state, [0, 1, 2])}
        assert sets_capped == sets_unbounded

    def test_bad_cap_rejected(self, snapshot):
        scenario, _ = snapshot
        with pytest.raises(SchedulingError):
            _enumerator(
                scenario, BeamformingScheme.OPTIMIZED_MULTICAST, max_group_size=1
            )
