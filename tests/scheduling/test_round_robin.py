"""Tests for the round-robin baseline scheduler."""

import numpy as np
import pytest

from repro.beamforming.selection import BeamPlan
from repro.errors import SchedulingError
from repro.phy.mcs import entry_for_index
from repro.quality.curves import FrameFeatureContext
from repro.scheduling.groups import CandidateGroup
from repro.scheduling.round_robin import SLOT_S, round_robin_allocation


def _group(index, users, rate_mbps=800.0):
    plan = BeamPlan(
        user_ids=tuple(users),
        beam=np.ones(4) / 2.0,
        per_user_rss_dbm={u: -55.0 for u in users},
        min_rss_dbm=-55.0,
        mcs=entry_for_index(4),
        rate_mbps=rate_mbps,
    )
    return CandidateGroup(index=index, plan=plan)


@pytest.fixture()
def context(hr_probe):
    return FrameFeatureContext.from_probe(hr_probe)


class TestRoundRobin:
    def test_equal_time_across_groups(self, context):
        groups = [_group(0, (0,)), _group(1, (1,)), _group(2, (0, 1))]
        contexts = {0: context, 1: context}
        result = round_robin_allocation(groups, contexts, frame_budget_s=33 * SLOT_S)
        per_group = result.time_s.sum(axis=1)
        # 33 slots over 3 groups -> 11 each, minus per-group layer caps.
        assert per_group.max() - per_group.min() <= SLOT_S + 1e-9

    def test_fills_layers_bottom_up(self, context):
        groups = [_group(0, (0,), rate_mbps=50.0)]
        result = round_robin_allocation(groups, {0: context}, frame_budget_s=1 / 30)
        bytes_alloc = result.bytes_allocated[0]
        sizes = np.asarray(context.layer_sizes)
        # Low rate: layer 0 filled first, later layers only after.
        assert bytes_alloc[0] == pytest.approx(
            min(sizes[0], groups[0].rate_bytes_per_s / 30), rel=1e-6
        )

    def test_layer_caps_respected(self, context):
        groups = [_group(0, (0,), rate_mbps=5000.0)]
        result = round_robin_allocation(groups, {0: context}, frame_budget_s=1 / 30)
        sizes = np.asarray(context.layer_sizes)
        assert np.all(result.bytes_allocated[0] <= sizes + 1e-6)

    def test_budget_respected(self, context):
        groups = [_group(i, (i % 2,)) for i in range(5)]
        result = round_robin_allocation(
            groups, {0: context, 1: context}, frame_budget_s=1 / 30
        )
        assert result.total_time_s <= 1 / 30 + 1e-9

    def test_redundancy_across_overlapping_groups(self, context):
        """RR re-fills low layers per group — the redundancy the optimizer
        avoids: a user in two groups is allocated layer 0 twice."""
        groups = [_group(0, (0,)), _group(1, (0, 1))]
        result = round_robin_allocation(
            groups, {0: context, 1: context}, frame_budget_s=1 / 30
        )
        sizes = np.asarray(context.layer_sizes)
        assert result.per_user_bytes[0][0] > sizes[0] * 1.5

    def test_empty_groups_rejected(self, context):
        with pytest.raises(SchedulingError):
            round_robin_allocation([], {0: context})

    def test_empty_contexts_rejected(self):
        with pytest.raises(SchedulingError):
            round_robin_allocation([_group(0, (0,))], {})
