"""Cross-validation of the SLSQP solver against the projected-gradient one."""

import numpy as np
import pytest

from repro.beamforming import GroupBeamPlanner, SectorCodebook
from repro.errors import SchedulingError
from repro.quality.curves import FrameFeatureContext
from repro.scheduling.allocation import TimeAllocationOptimizer
from repro.scheduling.groups import GroupEnumerator
from repro.scheduling.scipy_allocation import ScipyAllocationOptimizer
from repro.types import BeamformingScheme, Position


@pytest.fixture(scope="module")
def problem(request):
    scenario = request.getfixturevalue("scenario")
    tiny_dnn = request.getfixturevalue("tiny_dnn")
    hr_probe = request.getfixturevalue("hr_probe")
    rng = np.random.default_rng(71)
    users = {0: Position(3.0, 7.0), 1: Position(4.0, 5.5)}
    state = scenario.channel_model.snapshot(users, rng)
    codebook = SectorCodebook(scenario.array, num_beams=16, num_wide_beams=4)
    planner = GroupBeamPlanner(
        scenario.array, codebook, scenario.channel_model.budget,
        BeamformingScheme.OPTIMIZED_MULTICAST,
    )
    groups = GroupEnumerator(planner, rate_scale=56.25).enumerate(state, [0, 1])
    context = FrameFeatureContext.from_probe(hr_probe)
    return groups, {0: context, 1: context}, tiny_dnn


def _objective(result, dnn, contexts, lam=1e-9):
    total = 0.0
    for user, amount in result.per_user_bytes.items():
        feats = contexts[user].features_for_bytes(amount)
        total += float(dnn.predict(feats)[0]) - lam * float(amount.sum())
    return total


class TestScipySolver:
    def test_feasible(self, problem):
        groups, contexts, dnn = problem
        result = ScipyAllocationOptimizer(dnn).optimize(groups, contexts, 1 / 30)
        assert result.total_time_s <= 1 / 30 + 1e-9
        assert np.all(result.time_s >= -1e-12)

    def test_comparable_to_projected_gradient(self, problem):
        """Two independent solvers must land on similar objective values —
        a strong check that neither is silently broken."""
        groups, contexts, dnn = problem
        pg = TimeAllocationOptimizer(dnn, iterations=150).optimize(
            groups, contexts, 1 / 30
        )
        slsqp = ScipyAllocationOptimizer(dnn).optimize(groups, contexts, 1 / 30)
        obj_pg = _objective(pg, dnn, contexts)
        obj_slsqp = _objective(slsqp, dnn, contexts)
        assert obj_slsqp >= obj_pg - 0.05 * max(abs(obj_pg), 1e-9)

    def test_predicted_quality_populated(self, problem):
        groups, contexts, dnn = problem
        result = ScipyAllocationOptimizer(dnn).optimize(groups, contexts, 1 / 30)
        assert set(result.predicted_quality) == {0, 1}

    def test_rejects_empty_groups(self, problem):
        _, contexts, dnn = problem
        with pytest.raises(SchedulingError):
            ScipyAllocationOptimizer(dnn).optimize([], contexts)

    def test_rejects_negative_lambda(self, problem):
        _, _, dnn = problem
        with pytest.raises(SchedulingError):
            ScipyAllocationOptimizer(dnn, traffic_penalty_per_byte=-1)
