"""Tests for the Problem-1 time-allocation optimizer."""

import numpy as np
import pytest

from repro.beamforming import GroupBeamPlanner, SectorCodebook
from repro.errors import SchedulingError
from repro.quality.curves import FrameFeatureContext
from repro.scheduling.allocation import (
    TimeAllocationOptimizer,
    _project_capped_simplex,
)
from repro.scheduling.groups import GroupEnumerator
from repro.types import BeamformingScheme, Position


@pytest.fixture(scope="module")
def problem(request):
    """A 3-user allocation problem with groups, contexts and the DNN."""
    scenario = request.getfixturevalue("scenario")
    tiny_dnn = request.getfixturevalue("tiny_dnn")
    hr_probe = request.getfixturevalue("hr_probe")
    rng = np.random.default_rng(11)
    users = {0: Position(3.0, 7.0), 1: Position(3.5, 6.0), 2: Position(4.0, 5.0)}
    state = scenario.channel_model.snapshot(users, rng)
    codebook = SectorCodebook(scenario.array, num_beams=16, num_wide_beams=4)
    planner = GroupBeamPlanner(
        scenario.array, codebook, scenario.channel_model.budget,
        BeamformingScheme.OPTIMIZED_MULTICAST,
    )
    enum = GroupEnumerator(planner, rate_scale=56.25)
    groups = enum.enumerate(state, [0, 1, 2])
    context = FrameFeatureContext.from_probe(hr_probe)
    contexts = {u: context for u in range(3)}
    return groups, contexts, tiny_dnn


class TestOptimizer:
    def test_budget_respected(self, problem):
        groups, contexts, dnn = problem
        result = TimeAllocationOptimizer(dnn, iterations=80).optimize(
            groups, contexts, frame_budget_s=1 / 30
        )
        assert result.total_time_s <= 1 / 30 + 1e-9
        assert np.all(result.time_s >= -1e-12)

    def test_bytes_equal_time_times_rate(self, problem):
        groups, contexts, dnn = problem
        result = TimeAllocationOptimizer(dnn, iterations=40).optimize(
            groups, contexts, frame_budget_s=1 / 30
        )
        rates = np.array([g.rate_bytes_per_s for g in groups])
        np.testing.assert_allclose(
            result.bytes_allocated, result.time_s * rates[:, None]
        )

    def test_per_user_bytes_sum_memberships(self, problem):
        groups, contexts, dnn = problem
        result = TimeAllocationOptimizer(dnn, iterations=40).optimize(
            groups, contexts, frame_budget_s=1 / 30
        )
        for user in range(3):
            expected = np.zeros(4)
            for gi, group in enumerate(groups):
                if user in group.user_ids:
                    expected += result.bytes_allocated[gi]
            np.testing.assert_allclose(result.per_user_bytes[user], expected)

    def test_base_layer_always_served(self, problem):
        """No user may end up without base-layer data (the DNN penalises the
        hole, so the optimizer must fill it)."""
        groups, contexts, dnn = problem
        result = TimeAllocationOptimizer(dnn, iterations=150).optimize(
            groups, contexts, frame_budget_s=1 / 30
        )
        sizes = np.asarray(contexts[0].layer_sizes)
        for user in range(3):
            assert result.per_user_bytes[user][0] >= 0.8 * sizes[0]

    def test_predicted_quality_reasonable(self, problem):
        groups, contexts, dnn = problem
        result = TimeAllocationOptimizer(dnn, iterations=150).optimize(
            groups, contexts, frame_budget_s=1 / 30
        )
        for quality in result.predicted_quality.values():
            assert 0.5 < quality <= 1.05

    def test_more_budget_never_hurts_quality(self, problem):
        groups, contexts, dnn = problem
        optimizer = TimeAllocationOptimizer(dnn, iterations=120)
        tight = optimizer.optimize(groups, contexts, frame_budget_s=1 / 120)
        loose = optimizer.optimize(groups, contexts, frame_budget_s=1 / 30)
        assert (
            np.mean(list(loose.predicted_quality.values()))
            >= np.mean(list(tight.predicted_quality.values())) - 0.02
        )

    def test_empty_groups_rejected(self, problem):
        _, contexts, dnn = problem
        with pytest.raises(SchedulingError):
            TimeAllocationOptimizer(dnn).optimize([], contexts)

    def test_negative_lambda_rejected(self, problem):
        _, _, dnn = problem
        with pytest.raises(SchedulingError):
            TimeAllocationOptimizer(dnn, traffic_penalty_per_byte=-1.0)

    def test_nonzero_entries_lists_allocations(self, problem):
        groups, contexts, dnn = problem
        result = TimeAllocationOptimizer(dnn, iterations=40).optimize(
            groups, contexts, frame_budget_s=1 / 30
        )
        entries = result.nonzero_entries()
        assert entries
        total = sum(t for _, _, t in entries)
        assert total == pytest.approx(result.total_time_s, rel=1e-6)


class TestSimplexProjection:
    def test_already_feasible_unchanged(self):
        time = np.array([[0.001, 0.002], [0.0, 0.003]])
        projected = _project_capped_simplex(time, budget=0.01)
        np.testing.assert_allclose(projected, time)

    def test_projects_to_budget(self, rng):
        time = rng.uniform(0, 1, size=(5, 4))
        projected = _project_capped_simplex(time, budget=0.5)
        assert projected.sum() == pytest.approx(0.5, abs=1e-9)
        assert np.all(projected >= 0)

    def test_clips_negatives(self):
        time = np.array([[-0.5, 0.2]])
        projected = _project_capped_simplex(time, budget=1.0)
        assert projected[0, 0] == 0.0
        assert projected[0, 1] == pytest.approx(0.2)

    def test_projection_is_idempotent(self, rng):
        time = rng.uniform(0, 1, size=(3, 4))
        once = _project_capped_simplex(time, budget=0.3)
        twice = _project_capped_simplex(once, budget=0.3)
        np.testing.assert_allclose(once, twice, atol=1e-12)
