"""Tests for the YUV420 frame container."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.video.frame import VideoFrame, blank_frame


def _planes(h=16, w=32):
    y = np.zeros((h, w), dtype=np.uint8)
    u = np.zeros((h // 2, w // 2), dtype=np.uint8)
    v = np.zeros((h // 2, w // 2), dtype=np.uint8)
    return y, u, v


class TestVideoFrame:
    def test_valid_frame_roundtrips_dimensions(self):
        frame = VideoFrame(*_planes(32, 64))
        assert frame.height == 32
        assert frame.width == 64
        assert frame.num_pixels == 32 * 64

    def test_raw_size_is_1_5_bytes_per_pixel(self):
        frame = VideoFrame(*_planes(32, 64))
        assert frame.raw_size_bytes() == int(32 * 64 * 1.5)

    def test_rejects_non_uint8(self):
        y, u, v = _planes()
        with pytest.raises(VideoFormatError):
            VideoFrame(y.astype(np.float32), u, v)

    def test_rejects_odd_dimensions(self):
        y = np.zeros((15, 32), dtype=np.uint8)
        u = np.zeros((7, 16), dtype=np.uint8)
        with pytest.raises(VideoFormatError):
            VideoFrame(y, u, u.copy())

    def test_rejects_mismatched_chroma(self):
        y, u, v = _planes()
        with pytest.raises(VideoFormatError):
            VideoFrame(y, u[:-1], v)

    def test_rejects_1d_plane(self):
        y, u, v = _planes()
        with pytest.raises(VideoFormatError):
            VideoFrame(y.ravel(), u, v)

    def test_copy_is_deep(self):
        frame = VideoFrame(*_planes())
        duplicate = frame.copy()
        duplicate.y[0, 0] = 200
        assert frame.y[0, 0] == 0


class TestBlankFrame:
    def test_default_is_black_with_neutral_chroma(self):
        frame = blank_frame(16, 32)
        assert int(frame.y.max()) == 0
        assert int(frame.u.min()) == 128
        assert int(frame.v.max()) == 128

    def test_custom_luma(self):
        frame = blank_frame(16, 32, luma=200)
        assert int(frame.y.min()) == 200

    def test_rejects_out_of_range_luma(self):
        with pytest.raises(VideoFormatError):
            blank_frame(16, 32, luma=300)
