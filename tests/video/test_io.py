"""Tests for Y4M reading/writing."""

import io

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.video.io import Y4mReader, Y4mWriter, load_y4m, save_y4m


class TestRoundtrip:
    def test_file_roundtrip(self, hr_video, tmp_path):
        frames = [hr_video.frame(i) for i in range(3)]
        path = tmp_path / "clip.y4m"
        save_y4m(path, frames, fps=(30, 1))
        loaded = load_y4m(path)
        assert len(loaded) == 3
        for original, restored in zip(frames, loaded):
            np.testing.assert_array_equal(original.y, restored.y)
            np.testing.assert_array_equal(original.u, restored.u)
            np.testing.assert_array_equal(original.v, restored.v)

    def test_stream_roundtrip(self, hr_video):
        buffer = io.BytesIO()
        with Y4mWriter(buffer, hr_video.width, hr_video.height) as writer:
            writer.write_frame(hr_video.frame(0))
        buffer.seek(0)
        with Y4mReader(buffer) as reader:
            assert reader.width == hr_video.width
            frames = reader.read_all()
        assert len(frames) == 1

    def test_limit(self, hr_video, tmp_path):
        path = tmp_path / "clip.y4m"
        save_y4m(path, [hr_video.frame(i) for i in range(5)])
        assert len(load_y4m(path, limit=2)) == 2

    def test_iterator_protocol(self, hr_video, tmp_path):
        path = tmp_path / "clip.y4m"
        save_y4m(path, [hr_video.frame(i) for i in range(2)])
        with Y4mReader(path) as reader:
            count = sum(1 for _ in reader)
        assert count == 2

    def test_fps_preserved(self, hr_video, tmp_path):
        path = tmp_path / "clip.y4m"
        save_y4m(path, [hr_video.frame(0)], fps=(24000, 1001))
        with Y4mReader(path) as reader:
            assert reader.fps == (24000, 1001)


class TestHeaderValidation:
    def test_not_y4m_rejected(self):
        with pytest.raises(VideoFormatError):
            Y4mReader(io.BytesIO(b"RIFF....webp\n"))

    def test_unsupported_chroma_rejected(self):
        header = b"YUV4MPEG2 W64 H32 F30:1 C444\nFRAME\n"
        with pytest.raises(VideoFormatError):
            Y4mReader(io.BytesIO(header))

    def test_interlaced_rejected(self):
        header = b"YUV4MPEG2 W64 H32 F30:1 It\n"
        with pytest.raises(VideoFormatError):
            Y4mReader(io.BytesIO(header))

    def test_missing_dimensions_rejected(self):
        with pytest.raises(VideoFormatError):
            Y4mReader(io.BytesIO(b"YUV4MPEG2 F30:1\n"))

    def test_truncated_frame_rejected(self):
        header = b"YUV4MPEG2 W64 H32 F30:1 C420\nFRAME\nabc"
        with pytest.raises(VideoFormatError):
            Y4mReader(io.BytesIO(header)).read_frame()

    def test_bad_frame_marker_rejected(self):
        header = b"YUV4MPEG2 W64 H32 F30:1 C420\nGARBAGE\n" + b"\0" * 3072
        with pytest.raises(VideoFormatError):
            Y4mReader(io.BytesIO(header)).read_frame()


class TestWriterValidation:
    def test_wrong_size_frame_rejected(self, hr_video):
        writer = Y4mWriter(io.BytesIO(), 64, 32)
        with pytest.raises(VideoFormatError):
            writer.write_frame(hr_video.frame(0))

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(VideoFormatError):
            save_y4m(tmp_path / "x.y4m", [])

    def test_odd_dimensions_rejected(self):
        with pytest.raises(VideoFormatError):
            Y4mWriter(io.BytesIO(), 63, 32)


class TestPipelineIntegration:
    def test_y4m_frame_streams_through_codec(self, hr_video, tmp_path, codec):
        """A frame loaded from disk goes through encode/decode unchanged."""
        from repro.video.metrics import ssim

        path = tmp_path / "clip.y4m"
        save_y4m(path, [hr_video.frame(0)])
        frame = load_y4m(path)[0]
        layered = codec.encode(frame)
        decoded = codec.decode_fractions(layered, [1, 1, 1, 1])
        assert ssim(frame, decoded) > 0.99
