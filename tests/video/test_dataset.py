"""Tests for quality-model dataset generation."""

import numpy as np
import pytest

from repro.video.dataset import (
    NUM_FEATURES,
    generate_dataset,
)


class TestFrameQualityProbe:
    def test_cumulative_ssim_is_monotone(self, hr_probe):
        values = hr_probe.cumulative_ssim
        assert np.all(np.diff(values) >= -1e-9)

    def test_full_layers_reach_near_one(self, hr_probe):
        assert hr_probe.cumulative_ssim[-1] > 0.99

    def test_blank_ssim_below_base_layer(self, hr_probe):
        assert hr_probe.blank_ssim < hr_probe.cumulative_ssim[0]

    def test_features_have_nine_dims(self, hr_probe):
        feats = hr_probe.features([0.5, 0.5, 0.0, 0.0])
        assert feats.shape == (NUM_FEATURES,)

    def test_features_clip_fractions(self, hr_probe):
        feats = hr_probe.features([2.0, -1.0, 0.5, 0.0])
        assert feats[0] == 1.0
        assert feats[1] == 0.0

    def test_measure_matches_sample(self, hr_probe):
        quality, _ = hr_probe.measure([1, 0.5, 0, 0])
        feats, sampled = hr_probe.sample([1, 0.5, 0, 0])
        assert sampled == pytest.approx(quality)
        np.testing.assert_allclose(feats, hr_probe.features([1, 0.5, 0, 0]))

    def test_measure_masks_agrees_with_fractions(self, codec, hr_probe):
        fractions = [1, 0.5, 0.25, 0]
        masks = codec.masks_for_fractions(fractions)
        via_masks, _ = hr_probe.measure_masks(masks)
        via_fracs, _ = hr_probe.measure(fractions)
        assert via_masks == pytest.approx(via_fracs)

    def test_lr_base_layer_scores_higher_than_hr(self, hr_probe, lr_probe):
        """LR content concentrates energy in the base layer (Sec 2.3)."""
        assert lr_probe.cumulative_ssim[0] > hr_probe.cumulative_ssim[0]


class TestGenerateDataset:
    def test_shapes(self, small_dataset):
        n = len(small_dataset)
        assert small_dataset.features.shape == (n, NUM_FEATURES)
        assert small_dataset.ssim.shape == (n,)
        assert small_dataset.psnr.shape == (n,)

    def test_labels_in_valid_range(self, small_dataset):
        assert np.all(small_dataset.ssim <= 1.0 + 1e-9)
        assert np.all(small_dataset.ssim >= -1.0)
        assert np.all(small_dataset.psnr > 0)

    def test_covers_hole_vectors(self, small_dataset):
        """The mode-3 sampler must include missing-lower-layer samples."""
        fractions = small_dataset.features[:, :4]
        holes = (fractions[:, 0] == 0.0) & (fractions[:, 1:].max(axis=1) > 0.4)
        assert holes.any()

    def test_split_is_disjoint_and_sized(self, small_dataset):
        train, test = small_dataset.split(train_fraction=0.7, seed=1)
        assert len(train) + len(test) == len(small_dataset)
        assert len(train) == int(round(0.7 * len(small_dataset)))

    def test_split_deterministic(self, small_dataset):
        a, _ = small_dataset.split(seed=3)
        b, _ = small_dataset.split(seed=3)
        np.testing.assert_array_equal(a.features, b.features)

    def test_deterministic_generation(self, hr_video):
        a = generate_dataset([hr_video], frames_per_video=1,
                             samples_per_frame=4, seed=5)
        b = generate_dataset([hr_video], frames_per_video=1,
                             samples_per_frame=4, seed=5)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.ssim, b.ssim)
