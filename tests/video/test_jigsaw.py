"""Tests for the Jigsaw-style layered codec."""

import numpy as np
import pytest

from repro.errors import CodecError, VideoFormatError
from repro.video.frame import VideoFrame
from repro.video.jigsaw import (
    SUBLAYER_COUNTS,
    LayeredFrame,
    LayerStructure,
    _merge_sublayers,
    _split_sublayers,
)
from repro.video.metrics import psnr, ssim


class TestLayerStructure:
    def test_sublayer_counts_match_paper(self):
        structure = LayerStructure(144, 256)
        assert structure.sublayer_counts == (3, 4, 16, 64)

    def test_sublayer_bytes_is_one_per_8x8_block(self):
        structure = LayerStructure(144, 256)
        assert structure.sublayer_nbytes == (144 // 8) * (256 // 8)

    def test_layer_sizes_are_count_times_sublayer(self):
        structure = LayerStructure(144, 256)
        sizes = structure.layer_sizes()
        expected = np.array([3, 4, 16, 64]) * structure.sublayer_nbytes
        np.testing.assert_array_equal(sizes, expected)

    def test_total_bytes(self):
        structure = LayerStructure(144, 256)
        assert structure.total_nbytes == 87 * structure.sublayer_nbytes

    def test_4k_sublayer_is_about_130kb(self):
        structure = LayerStructure(2160, 3840)
        assert structure.sublayer_nbytes == 270 * 480

    def test_rejects_non_multiple_of_8(self):
        with pytest.raises(VideoFormatError):
            LayerStructure(100, 256)


class TestSublayerReshaping:
    @pytest.mark.parametrize("grid", [2, 4, 8])
    def test_split_merge_roundtrip(self, grid, rng):
        plane = rng.integers(-128, 128, size=(16 * grid, 24 * grid)).astype(np.int8)
        merged = _merge_sublayers(_split_sublayers(plane, grid), grid)
        np.testing.assert_array_equal(merged, plane)

    def test_split_k_indexes_intra_block_position(self):
        # Build a plane where the value equals the intra-block position.
        grid = 2
        plane = np.zeros((8 * grid, 8 * grid), dtype=np.int8)
        for r in range(grid):
            for c in range(grid):
                plane[r::grid, c::grid] = r * grid + c
        subs = _split_sublayers(plane, grid)
        for k in range(grid * grid):
            assert np.all(subs[k] == k)


class TestCodecRoundtrip:
    def test_full_reception_is_near_lossless(self, codec, hr_video):
        frame = hr_video.frame(0)
        layered = codec.encode(frame)
        decoded = codec.decode_fractions(layered, [1, 1, 1, 1])
        assert ssim(frame, decoded) > 0.995
        assert psnr(frame, decoded) > 45.0

    def test_quality_monotone_in_layers(self, codec, hr_video):
        frame = hr_video.frame(0)
        layered = codec.encode(frame)
        qualities = []
        for upto in range(4):
            fractions = [1.0 if j <= upto else 0.0 for j in range(4)]
            decoded = codec.decode_fractions(layered, fractions)
            qualities.append(ssim(frame, decoded))
        assert qualities == sorted(qualities)

    def test_partial_sublayers_improve_quality(self, codec, hr_video):
        frame = hr_video.frame(0)
        layered = codec.encode(frame)
        base = ssim(frame, codec.decode_fractions(layered, [1, 0, 0, 0]))
        half = ssim(frame, codec.decode_fractions(layered, [1, 0.5, 0, 0]))
        assert half > base

    def test_sublayers_are_independent_corrections(self, codec, hr_video):
        """Applying layer 2 without layer 1 must still decode (and help)."""
        frame = hr_video.frame(0)
        layered = codec.encode(frame)
        masks = codec.masks_for_fractions([1, 0, 0, 0])
        masks[2][:] = True  # layer 2 complete, layer 1 missing
        decoded = codec.decode(layered, masks)
        baseline = codec.decode_fractions(layered, [1, 0, 0, 0])
        assert ssim(frame, decoded) > ssim(frame, baseline)

    def test_missing_base_layer_falls_back_to_grey(self, codec, hr_video):
        layered = codec.encode(hr_video.frame(0))
        masks = codec.masks_for_fractions([0, 0, 0, 0])
        decoded = codec.decode(layered, masks)
        assert decoded.u[0, 0] == 128

    def test_wrong_frame_size_rejected(self, codec):
        other = VideoFrame(
            np.zeros((64, 64), dtype=np.uint8),
            np.zeros((32, 32), dtype=np.uint8),
            np.zeros((32, 32), dtype=np.uint8),
        )
        with pytest.raises(CodecError):
            codec.encode(other)


class TestPayloads:
    def test_payload_roundtrip_reconstructs_frame(self, codec, hr_video):
        frame = hr_video.frame(1)
        layered = codec.encode(frame)
        rebuilt = LayeredFrame.empty(codec.structure)
        for layer in range(4):
            for sub in range(SUBLAYER_COUNTS[layer]):
                rebuilt.set_sublayer_payload(
                    layer, sub, layered.sublayer_payload(layer, sub)
                )
        original = codec.decode_fractions(layered, [1, 1, 1, 1])
        copy = codec.decode_fractions(rebuilt, [1, 1, 1, 1])
        np.testing.assert_array_equal(original.y, copy.y)

    def test_payload_has_sublayer_size(self, codec, hr_probe):
        payload = hr_probe.layered.sublayer_payload(2, 5)
        assert len(payload) == codec.structure.sublayer_nbytes

    def test_bad_payload_length_rejected(self, codec, hr_probe):
        with pytest.raises(CodecError):
            hr_probe.layered.set_sublayer_payload(1, 0, b"short")

    def test_bad_sublayer_index_rejected(self, hr_probe):
        with pytest.raises(CodecError):
            hr_probe.layered.sublayer_payload(1, 4)
        with pytest.raises(CodecError):
            hr_probe.layered.sublayer_payload(4, 0)


class TestMasks:
    def test_fraction_to_mask_uses_ceiling(self, codec):
        masks = codec.masks_for_fractions([0.01, 0.3, 0.5, 0.0])
        assert masks[0].sum() == 1  # ceil(0.01 * 3)
        assert masks[1].sum() == 2  # ceil(0.3 * 4)
        assert masks[2].sum() == 8
        assert masks[3].sum() == 0

    def test_rejects_bad_fraction(self, codec):
        with pytest.raises(CodecError):
            codec.masks_for_fractions([1.5, 0, 0, 0])

    def test_rejects_wrong_mask_shape(self, codec, hr_probe):
        masks = codec.masks_for_fractions([1, 1, 1, 1])
        masks[1] = masks[1][:-1]
        with pytest.raises(CodecError):
            codec.decode(hr_probe.layered, masks)
