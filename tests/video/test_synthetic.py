"""Tests for the procedural video corpus."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.types import Richness
from repro.video.metrics import ssim
from repro.video.synthetic import (
    SyntheticVideo,
    evaluation_videos,
    make_standard_videos,
)


class TestSyntheticVideo:
    def test_determinism_same_seed(self):
        a = SyntheticVideo("a", Richness.HIGH, 144, 256, num_frames=3, seed=9)
        b = SyntheticVideo("b", Richness.HIGH, 144, 256, num_frames=3, seed=9)
        np.testing.assert_array_equal(a.frame(2).y, b.frame(2).y)

    def test_different_seeds_differ(self):
        a = SyntheticVideo("a", Richness.HIGH, 144, 256, num_frames=2, seed=1)
        b = SyntheticVideo("b", Richness.HIGH, 144, 256, num_frames=2, seed=2)
        assert not np.array_equal(a.frame(0).y, b.frame(0).y)

    def test_hr_has_higher_variance_than_lr(self, hr_video, lr_video):
        assert hr_video.y_variance() > lr_video.y_variance()

    def test_temporal_coherence(self, hr_video):
        """Adjacent frames are similar; distant frames less so."""
        near = ssim(hr_video.frame(0), hr_video.frame(1))
        far = ssim(hr_video.frame(0), hr_video.frame(8))
        assert near > far

    def test_motion_moves_content(self):
        video = SyntheticVideo("m", Richness.HIGH, 144, 256,
                               num_frames=4, motion=4.0, seed=2)
        assert not np.array_equal(video.frame(0).y, video.frame(1).y)

    def test_frame_index_bounds(self, hr_video):
        with pytest.raises(VideoFormatError):
            hr_video.frame(hr_video.num_frames)
        with pytest.raises(VideoFormatError):
            hr_video.frame(-1)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(VideoFormatError):
            SyntheticVideo("x", Richness.HIGH, 100, 256, num_frames=2)

    def test_frames_returns_all(self):
        video = SyntheticVideo("f", Richness.LOW, 144, 256, num_frames=3, seed=1)
        assert len(video.frames()) == 3

    def test_chroma_has_content(self, hr_video):
        frame = hr_video.frame(0)
        assert frame.u.std() > 1.0


class TestCorpus:
    def test_standard_corpus_is_3_hr_3_lr(self):
        videos = make_standard_videos(height=144, width=256, num_frames=2)
        richness = [v.richness for v in videos]
        assert richness.count(Richness.HIGH) == 3
        assert richness.count(Richness.LOW) == 3

    def test_corpus_videos_are_distinct(self):
        videos = make_standard_videos(height=144, width=256, num_frames=2)
        first_frames = [v.frame(0).y for v in videos]
        for i in range(len(videos)):
            for j in range(i + 1, len(videos)):
                assert not np.array_equal(first_frames[i], first_frames[j])

    def test_hr_lr_split_holds_statistically(self):
        videos = make_standard_videos(height=144, width=256, num_frames=2)
        hr = np.mean([v.y_variance() for v in videos if v.richness is Richness.HIGH])
        lr = np.mean([v.y_variance() for v in videos if v.richness is Richness.LOW])
        assert hr > lr

    def test_evaluation_subset_is_2_hr_2_lr(self):
        videos = evaluation_videos(height=144, width=256, num_frames=2)
        richness = [v.richness for v in videos]
        assert richness.count(Richness.HIGH) == 2
        assert richness.count(Richness.LOW) == 2
