"""Tests for SSIM and PSNR."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.video.frame import blank_frame
from repro.video.metrics import PSNR_CAP_DB, psnr, ssim, ssim_to_psnr_rough


def _image(rng, h=64, w=64):
    return rng.integers(0, 256, size=(h, w)).astype(np.uint8)


class TestSsim:
    def test_identical_images_score_one(self, rng):
        image = _image(rng)
        assert ssim(image, image) == pytest.approx(1.0, abs=1e-9)

    def test_noise_reduces_ssim(self, rng):
        # Use a smooth reference: SSIM is contrast-normalised, so noise on a
        # noise image barely registers, but noise on structure does.
        yy, xx = np.mgrid[0:64, 0:64]
        image = (128 + 60 * np.sin(xx / 6.0)).astype(np.uint8)
        noisy = np.clip(
            image.astype(int) + rng.normal(0, 20, image.shape), 0, 255
        ).astype(np.uint8)
        assert ssim(image, noisy) < 0.9

    def test_more_noise_scores_lower(self, rng):
        image = _image(rng)
        mild = np.clip(image.astype(int) + rng.normal(0, 5, image.shape), 0, 255)
        harsh = np.clip(image.astype(int) + rng.normal(0, 40, image.shape), 0, 255)
        assert ssim(image, harsh.astype(np.uint8)) < ssim(image, mild.astype(np.uint8))

    def test_bounded_by_one(self, rng):
        a, b = _image(rng), _image(rng)
        assert -1.0 <= ssim(a, b) <= 1.0

    def test_accepts_video_frames(self, hr_video):
        frame = hr_video.frame(0)
        assert ssim(frame, frame) == pytest.approx(1.0, abs=1e-9)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(VideoFormatError):
            ssim(_image(rng, 64, 64), _image(rng, 32, 32))

    def test_symmetry(self, rng):
        a, b = _image(rng), _image(rng)
        assert ssim(a, b) == pytest.approx(ssim(b, a), abs=1e-9)

    def test_blank_frame_ssim_is_low_for_rich_content(self, hr_video):
        frame = hr_video.frame(0)
        blank = blank_frame(frame.height, frame.width)
        assert ssim(frame, blank) < 0.4

    def test_float32_matches_float64(self, rng, hr_video):
        # The default float32 working precision must agree with a full
        # float64 computation far beyond the 3-decimal reporting precision.
        pairs = [
            (_image(rng), _image(rng)),
            (hr_video.frame(0), hr_video.frame(1)),
        ]
        for reference, distorted in pairs:
            fast = ssim(reference, distorted, dtype=np.float32)
            exact = ssim(reference, distorted, dtype=np.float64)
            assert fast == pytest.approx(exact, abs=1e-4)


class TestPsnr:
    def test_identical_images_hit_cap(self, rng):
        image = _image(rng)
        assert psnr(image, image) == PSNR_CAP_DB

    def test_known_mse(self):
        a = np.zeros((16, 16), dtype=np.uint8)
        b = np.full((16, 16), 16, dtype=np.uint8)  # MSE = 256
        expected = 10 * np.log10(255**2 / 256)
        assert psnr(a, b) == pytest.approx(expected, abs=1e-6)

    def test_monotone_with_noise(self, rng):
        image = _image(rng)
        mild = np.clip(image.astype(int) + 4, 0, 255).astype(np.uint8)
        harsh = np.clip(image.astype(int) + 32, 0, 255).astype(np.uint8)
        assert psnr(image, harsh) < psnr(image, mild)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(VideoFormatError):
            psnr(_image(rng, 64, 64), _image(rng, 32, 32))


class TestSsimPsnrCorrespondence:
    def test_rough_mapping_is_monotone(self):
        values = [ssim_to_psnr_rough(v) for v in (0.8, 0.9, 0.95, 0.99)]
        assert values == sorted(values)

    def test_metrics_rank_distortions_consistently(self, codec, hr_video):
        """SSIM and PSNR must agree on which reception decodes better."""
        frame = hr_video.frame(0)
        layered = codec.encode(frame)
        low = codec.decode_fractions(layered, [1, 0.5, 0, 0])
        high = codec.decode_fractions(layered, [1, 1, 1, 0.5])
        assert ssim(frame, high) > ssim(frame, low)
        assert psnr(frame, high) > psnr(frame, low)
