"""Tests for the kernel-queue burst model."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.transport.kernel_queue import KernelQueue


class TestKernelQueue:
    def test_small_burst_fully_admitted(self, rng):
        queue = KernelQueue(capacity_packets=100)
        mask = queue.admitted_mask(50, 1000, 1e6, 0.033, rng)
        assert mask.all()

    def test_overflow_drops_excess(self, rng):
        queue = KernelQueue(capacity_packets=10)
        mask = queue.admitted_mask(1000, 1500, 1e5, 0.033, rng)
        drained = int(1e5 * 0.5 * 0.033 / 1500)
        assert mask.sum() == 10 + drained

    def test_drops_are_spread_not_tail(self, rng):
        queue = KernelQueue(capacity_packets=10)
        mask = queue.admitted_mask(1000, 1500, 1e5, 0.033, rng)
        dropped = np.nonzero(~mask)[0]
        # Random drops hit the first half too (tail-trim would not).
        assert (dropped < 500).any()

    def test_empty_burst(self, rng):
        queue = KernelQueue()
        assert queue.admitted_mask(0, 1000, 1e6, 0.03, rng).size == 0

    def test_drain_time(self):
        queue = KernelQueue()
        assert queue.drain_time_s(100, 1000, 1e6) == pytest.approx(0.1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(TransportError):
            KernelQueue(0)

    def test_bad_drain_rate_rejected(self):
        with pytest.raises(TransportError):
            KernelQueue().drain_time_s(10, 1000, 0)

    def test_deterministic_given_rng(self):
        queue = KernelQueue(capacity_packets=10)
        a = queue.admitted_mask(500, 1500, 1e5, 0.033, np.random.default_rng(1))
        b = queue.admitted_mask(500, 1500, 1e5, 0.033, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)
