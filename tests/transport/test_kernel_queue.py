"""Tests for the kernel-queue burst model."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.transport.kernel_queue import KernelQueue


class TestKernelQueue:
    def test_small_burst_fully_admitted(self, rng):
        queue = KernelQueue(capacity_packets=100)
        mask = queue.admitted_mask(50, 1000, 1e6, 0.033, rng)
        assert mask.all()

    def test_overflow_drops_excess(self, rng):
        queue = KernelQueue(capacity_packets=10)
        mask = queue.admitted_mask(1000, 1500, 1e5, 0.033, rng)
        drained = int(1e5 * 0.5 * 0.033 / 1500)
        assert mask.sum() == 10 + drained

    def test_drops_are_spread_not_tail(self, rng):
        queue = KernelQueue(capacity_packets=10)
        mask = queue.admitted_mask(1000, 1500, 1e5, 0.033, rng)
        dropped = np.nonzero(~mask)[0]
        # Random drops hit the first half too (tail-trim would not).
        assert (dropped < 500).any()

    def test_empty_burst(self, rng):
        queue = KernelQueue()
        assert queue.admitted_mask(0, 1000, 1e6, 0.03, rng).size == 0

    def test_drain_time(self):
        queue = KernelQueue()
        assert queue.drain_time_s(100, 1000, 1e6) == pytest.approx(0.1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(TransportError):
            KernelQueue(0)

    def test_bad_drain_rate_rejected(self):
        with pytest.raises(TransportError):
            KernelQueue().drain_time_s(10, 1000, 0)

    def test_deterministic_given_rng(self):
        queue = KernelQueue(capacity_packets=10)
        a = queue.admitted_mask(500, 1500, 1e5, 0.033, np.random.default_rng(1))
        b = queue.admitted_mask(500, 1500, 1e5, 0.033, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestArrayPacketSizes:
    """admitted_mask accepts per-packet size arrays (cohort fast path)."""

    def test_mask_dtype_and_shape(self, rng):
        queue = KernelQueue(capacity_packets=10)
        sizes = np.full(100, 1500.0)
        mask = queue.admitted_mask(100, sizes, 1e5, 0.033, rng)
        assert mask.dtype == np.bool_
        assert mask.shape == (100,)

    def test_uniform_array_matches_scalar(self):
        queue = KernelQueue(capacity_packets=10)
        scalar = queue.admitted_mask(
            1000, 1500, 1e5, 0.033, np.random.default_rng(3)
        )
        array = queue.admitted_mask(
            1000, np.full(1000, 1500.0), 1e5, 0.033, np.random.default_rng(3)
        )
        assert scalar.sum() == array.sum()

    def test_nonuniform_sizes_drain_cumulatively(self, rng):
        # Budget drains 0.5 * 0.033 * 1e5 = 1650 bytes: three 500 B packets
        # fit, a fourth does not.
        queue = KernelQueue(capacity_packets=1)
        sizes = np.full(10, 500.0)
        mask = queue.admitted_mask(10, sizes, 1e5, 0.033, rng)
        assert mask.sum() == 1 + 3

    def test_wrong_shape_rejected(self, rng):
        queue = KernelQueue()
        with pytest.raises(TransportError):
            queue.admitted_mask(10, np.ones(5), 1e6, 0.03, rng)

    def test_integer_dtype_accepted(self, rng):
        queue = KernelQueue(capacity_packets=100)
        mask = queue.admitted_mask(
            50, np.full(50, 1000, dtype=np.int64), 1e6, 0.033, rng
        )
        assert mask.dtype == np.bool_ and mask.all()
