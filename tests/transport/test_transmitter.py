"""Tests for the per-frame packet transmitter."""

import numpy as np
import pytest

from repro.beamforming import GroupBeamPlanner, SectorCodebook
from repro.errors import TransportError
from repro.fountain.block import FrameBlockEncoder
from repro.scheduling.coding_groups import UnitAssignment
from repro.scheduling.groups import GroupEnumerator
from repro.transport import FrameTransmitter, LinkModel
from repro.types import BeamformingScheme, Position


@pytest.fixture(scope="module")
def world(request):
    """A 2-user channel, enumerated groups and a frame encoder."""
    scenario = request.getfixturevalue("scenario")
    hr_probe = request.getfixturevalue("hr_probe")
    rng = np.random.default_rng(21)
    users = {0: Position(3.0, 6.5), 1: Position(3.5, 5.5)}
    state = scenario.channel_model.snapshot(users, rng)
    codebook = SectorCodebook(scenario.array, num_beams=16, num_wide_beams=4)
    planner = GroupBeamPlanner(
        scenario.array, codebook, scenario.channel_model.budget,
        BeamformingScheme.OPTIMIZED_MULTICAST,
    )
    enum = GroupEnumerator(planner, rate_scale=56.25, min_rate_mbps=0.0)
    groups = enum.enumerate(state, [0, 1])
    return scenario, state, groups, hr_probe


def _encoder(hr_probe, frame_index=0):
    return FrameBlockEncoder(frame_index, hr_probe.layered)


def _assignments(encoder, group_index, layers=(0,), units_per_layer=3):
    from repro.video.jigsaw import SUBLAYER_COUNTS

    unit_bytes = encoder.unit_nbytes()
    out = []
    for layer in layers:
        for sub in range(min(units_per_layer, SUBLAYER_COUNTS[layer])):
            out.append(UnitAssignment(group_index, layer, sub, unit_bytes))
    return out


def _transmitter(scenario, **kwargs):
    return FrameTransmitter(
        link=LinkModel(scenario.channel_model, associated_user=0), **kwargs
    )


class TestPacedTransmission:
    def test_good_link_delivers_scheduled_units(self, world):
        scenario, state, groups, probe = world
        group = max(groups, key=lambda g: len(g.user_ids))
        encoder = _encoder(probe)
        assignments = _assignments(encoder, group.index, layers=(0,), units_per_layer=3)
        result = _transmitter(scenario).transmit(
            encoder, assignments, groups, state, 1 / 30, np.random.default_rng(1)
        )
        for user in group.user_ids:
            masks = result.receptions[user].decoder.sublayer_masks()
            assert masks[0].all()

    def test_airtime_within_budget(self, world):
        scenario, state, groups, probe = world
        encoder = _encoder(probe)
        assignments = _assignments(encoder, 0, layers=(0, 1, 2, 3),
                                   units_per_layer=4)
        result = _transmitter(scenario).transmit(
            encoder, assignments, groups, state, 1 / 30, np.random.default_rng(2)
        )
        assert result.airtime_s <= 1 / 30 + 1e-9

    def test_deadline_cuts_high_layers_first(self, world):
        """With a tiny budget, layer-0 units ship before layer-3 units."""
        scenario, state, groups, probe = world
        encoder = _encoder(probe)
        assignments = (
            _assignments(encoder, 0, layers=(0,), units_per_layer=3)
            + _assignments(encoder, 0, layers=(3,), units_per_layer=40)
        )
        result = _transmitter(scenario, max_feedback_rounds=0).transmit(
            encoder, assignments, groups, state, 1 / 600,
            np.random.default_rng(3),
        )
        user = groups[0].user_ids[0]
        masks = result.receptions[user].decoder.sublayer_masks()
        assert masks[0].sum() >= masks[3].sum()

    def test_rate_limit_slows_transmission(self, world):
        scenario, state, groups, probe = world
        encoder_a = _encoder(probe)
        encoder_b = _encoder(probe)
        assignments = _assignments(encoder_a, 0, layers=(0, 1), units_per_layer=3)
        assignments_b = _assignments(encoder_b, 0, layers=(0, 1), units_per_layer=3)
        fast = _transmitter(scenario, max_feedback_rounds=0).transmit(
            encoder_a, assignments, groups, state, 1 / 30,
            np.random.default_rng(4),
        )
        slow = _transmitter(scenario, max_feedback_rounds=0).transmit(
            encoder_b, assignments_b, groups, state, 1 / 30,
            np.random.default_rng(4),
            rate_limits_bytes_per_s={0: groups[0].rate_bytes_per_s / 4},
        )
        assert slow.airtime_s > fast.airtime_s

    def test_bad_budget_rejected(self, world):
        scenario, state, groups, probe = world
        encoder = _encoder(probe)
        with pytest.raises(TransportError):
            _transmitter(scenario).transmit(
                encoder, [], groups, state, 0.0, np.random.default_rng(5)
            )


class TestFeedbackRetransmission:
    def test_feedback_recovers_from_losses(self, world):
        """Force a lossy MCS and check makeup rounds recover units that the
        initial pass lost."""
        scenario, state, groups, probe = world
        encoder_a = _encoder(probe)
        encoder_b = _encoder(probe, frame_index=0)
        group = groups[0]
        assignments = _assignments(encoder_a, group.index, layers=(0, 1),
                                   units_per_layer=3)
        assignments_b = _assignments(encoder_b, group.index, layers=(0, 1),
                                     units_per_layer=3)

        # Degrade the channel so the selected MCS is marginal.
        weak_state = type(state)(
            channels={u: h * 10 ** (-4 / 20) for u, h in state.channels.items()},
            positions=state.positions,
        )
        without = _transmitter(scenario, max_feedback_rounds=0).transmit(
            encoder_a, assignments, groups, weak_state, 1 / 30,
            np.random.default_rng(6),
        )
        with_fb = _transmitter(scenario, max_feedback_rounds=3).transmit(
            encoder_b, assignments_b, groups, weak_state, 1 / 30,
            np.random.default_rng(6),
        )
        decoded_without = sum(
            len(r.decoder.decoded_units()) for r in without.receptions.values()
        )
        decoded_with = sum(
            len(r.decoder.decoded_units()) for r in with_fb.receptions.values()
        )
        assert decoded_with >= decoded_without

    def test_no_feedback_when_everything_arrived(self, world):
        scenario, state, groups, probe = world
        encoder = _encoder(probe)
        assignments = _assignments(encoder, 0, layers=(0,), units_per_layer=1)
        result = _transmitter(scenario, max_feedback_rounds=3).transmit(
            encoder, assignments, groups, state, 1 / 30, np.random.default_rng(7)
        )
        assert result.feedback_rounds_used <= 1


class TestSourceCodingModes:
    def test_plain_mode_duplicates_across_groups(self, world):
        """Without source coding, two overlapping groups send identical
        segments, so the shared user decodes no more than one group's worth."""
        scenario, state, groups, probe = world
        multi = [g for g in groups if len(g.user_ids) == 2]
        if not multi:
            pytest.skip("no 2-user group at this seed")
        group = multi[0]
        shared_user = group.user_ids[0]
        single = next(
            g for g in groups if g.user_ids == (shared_user,)
        )
        unit_bytes = probe.codec.structure.sublayer_nbytes

        def run(source_coding):
            encoder = _encoder(probe)
            half = [
                UnitAssignment(single.index, 1, 0, 0.6 * unit_bytes),
                UnitAssignment(group.index, 1, 0, 0.6 * unit_bytes),
            ]
            tx = _transmitter(
                scenario, source_coding=source_coding, max_feedback_rounds=0
            )
            result = tx.transmit(
                encoder, half, groups, state, 1 / 30, np.random.default_rng(8)
            )
            unit = encoder.units[3]  # layer 1, sublayer 0
            return result.receptions[shared_user].decoder.unit_decoder(unit)

        assert run(source_coding=True).is_decoded
        assert not run(source_coding=False).is_decoded

    def test_plain_mode_retransmits_missing_segments(self, world):
        scenario, state, groups, probe = world
        encoder = _encoder(probe)
        assignments = _assignments(encoder, 0, layers=(0,), units_per_layer=3)
        weak_state = type(state)(
            channels={u: h * 10 ** (-3 / 20) for u, h in state.channels.items()},
            positions=state.positions,
        )
        result = _transmitter(
            scenario, source_coding=False, max_feedback_rounds=3
        ).transmit(
            encoder, assignments, groups, weak_state, 1 / 30,
            np.random.default_rng(9),
        )
        assert result.packets_sent > 0


class TestUserStateLifecycle:
    def test_tallies_accumulate_across_frames(self, world):
        scenario, state, groups, probe = world
        group = max(groups, key=lambda g: len(g.user_ids))
        tx = _transmitter(scenario)
        for frame in range(2):
            encoder = _encoder(probe, frame_index=frame)
            tx.transmit(
                encoder, _assignments(encoder, group.index), groups, state,
                1 / 30, np.random.default_rng(30 + frame),
            )
        assert tx.tracked_users() == [0, 1]
        for user in (0, 1):
            tally = tx.user_state(user)
            assert tally.frames == 2
            if user in group.user_ids:
                assert tally.packets_received + tally.packets_lost > 0

    def test_evict_user_drops_state(self, world):
        """Regression: a departed receiver's per-user state must not leak
        for the lifetime of the transmitter."""
        scenario, state, groups, probe = world
        tx = _transmitter(scenario)
        encoder = _encoder(probe)
        tx.transmit(
            encoder, _assignments(encoder, 0), groups, state, 1 / 30,
            np.random.default_rng(32),
        )
        assert tx.user_state(1) is not None
        tx.evict_user(1)
        assert tx.user_state(1) is None
        assert tx.tracked_users() == [0]
        tx.evict_user(99)  # unknown user is a no-op
        assert tx.tracked_users() == [0]

    def test_rejoin_restarts_tally_from_scratch(self, world):
        scenario, state, groups, probe = world
        tx = _transmitter(scenario)
        for frame in range(3):
            encoder = _encoder(probe, frame_index=frame)
            tx.transmit(
                encoder, _assignments(encoder, 0), groups, state, 1 / 30,
                np.random.default_rng(40 + frame),
            )
            if frame == 0:
                tx.evict_user(1)
        assert tx.user_state(0).frames == 3
        assert tx.user_state(1).frames == 2

    def test_active_users_restricts_receptions_and_tallies(self, world):
        scenario, state, groups, probe = world
        tx = _transmitter(scenario)
        encoder = _encoder(probe)
        result = tx.transmit(
            encoder, _assignments(encoder, 0), groups, state, 1 / 30,
            np.random.default_rng(33), active_users=[0],
        )
        assert set(result.receptions) == {0}
        assert tx.tracked_users() == [0]


class TestBurstMode:
    def test_no_rate_control_uses_queue(self, world):
        scenario, state, groups, probe = world
        encoder = _encoder(probe)
        assignments = _assignments(encoder, 0, layers=(0, 1, 2, 3),
                                   units_per_layer=10)
        result = _transmitter(
            scenario, rate_control=False, max_feedback_rounds=0
        ).transmit(
            encoder, assignments, groups, state, 1 / 30, np.random.default_rng(10)
        )
        assert result.packets_sent > 0
        assert result.packets_dropped_at_queue >= 0
