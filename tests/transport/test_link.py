"""Tests for the PER model and pseudo multicast."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.phy.mcs import entry_for_index
from repro.transport.link import LinkModel, packet_error_rate
from repro.types import Position


class TestPerCurve:
    def test_monotone_decreasing_in_margin(self):
        margins = np.linspace(-6, 6, 25)
        pers = [packet_error_rate(m) for m in margins]
        assert all(b <= a + 1e-12 for a, b in zip(pers, pers[1:]))

    def test_at_sensitivity(self):
        assert packet_error_rate(0.0) == pytest.approx(1e-2)

    def test_floor_and_ceiling(self):
        assert packet_error_rate(20.0) == pytest.approx(1e-4)
        assert packet_error_rate(-20.0) == pytest.approx(0.97)

    def test_waterfall_above_sensitivity(self):
        assert packet_error_rate(1.0) == pytest.approx(1e-3)

    def test_collapse_below_sensitivity(self):
        assert packet_error_rate(-2.0) == pytest.approx(1e-1)


class TestLinkModel:
    @pytest.fixture()
    def setup(self, scenario, rng):
        users = {0: Position(3, 6), 1: Position(3.5, 7)}
        state = scenario.channel_model.snapshot(users, rng)
        beam = scenario.array.conjugate_beam(state.channels[0])
        return scenario, state, beam

    def test_strong_link_delivers(self, setup):
        scenario, state, beam = setup
        link = LinkModel(scenario.channel_model, associated_user=0)
        prob = link.delivery_probability(0, beam, state, entry_for_index(1))
        assert prob > 0.99

    def test_associated_user_gets_mac_retries(self, setup):
        scenario, state, beam = setup
        mcs = entry_for_index(12)
        plain = LinkModel(scenario.channel_model, associated_user=None)
        assoc = LinkModel(scenario.channel_model, associated_user=0, mac_retries=2)
        p_plain = plain.delivery_probability(0, beam, state, mcs)
        p_assoc = assoc.delivery_probability(0, beam, state, mcs)
        assert p_assoc >= p_plain

    def test_higher_mcs_lower_delivery(self, setup):
        scenario, state, beam = setup
        link = LinkModel(scenario.channel_model)
        p_low = link.delivery_probability(0, beam, state, entry_for_index(1))
        p_high = link.delivery_probability(0, beam, state, entry_for_index(12))
        assert p_high <= p_low

    def test_unknown_user_rejected(self, setup):
        scenario, state, beam = setup
        link = LinkModel(scenario.channel_model)
        with pytest.raises(TransportError):
            link.delivery_probability(9, beam, state, entry_for_index(1))

    def test_batch_probabilities(self, setup):
        scenario, state, beam = setup
        link = LinkModel(scenario.channel_model)
        probs = link.delivery_probabilities([0, 1], beam, state, entry_for_index(1))
        assert set(probs) == {0, 1}
        assert all(0.0 <= p <= 1.0 for p in probs.values())
