"""Tests for per-user AP association (strongest-RSS + hysteresis).

Association decisions must be pure functions of ``(channels, seed, call
sequence)`` — the multi-AP pipeline replays them every beacon, so any
hidden nondeterminism would break the sweep engine's bit-identity
contract.  Synthetic two-AP channel states make the geometry explicit:
gain magnitudes are chosen so the intended winner is unambiguous.
"""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.phy.channel import ChannelState
from repro.transport.association import (
    ApAssociationPolicy,
    association_rss_matrix,
)

NT = 32


def _channel(gain: float, rng=None, nt: int = NT) -> np.ndarray:
    """A random complex vector with ``||h||^2 == gain``."""
    rng = rng or np.random.default_rng(0)
    raw = rng.normal(size=nt) + 1j * rng.normal(size=nt)
    return raw * np.sqrt(gain) / np.linalg.norm(raw)


def _two_ap_state(gains_ap0, gains_ap1, seed=0) -> ChannelState:
    """A 2-AP snapshot with per-user matched-filter gains as given."""
    rng = np.random.default_rng(seed)
    ap0 = {u: _channel(g, rng) for u, g in gains_ap0.items()}
    ap1 = {u: _channel(g, rng) for u, g in gains_ap1.items()}
    return ChannelState(channels=ap0, ap_channels=[ap0, ap1])


@pytest.fixture(scope="module")
def budget(request):
    scenario = request.getfixturevalue("scenario")
    return scenario.channel_model.budget


class TestRssMatrix:
    def test_shape_and_ordering(self, budget):
        state = _two_ap_state({0: 1e-8, 1: 1e-9}, {0: 1e-10, 1: 1e-7})
        rss = association_rss_matrix(state, [0, 1], budget)
        assert rss.shape == (2, 2)
        # 10x gain = +10 dB, column order follows the users argument.
        assert rss[0, 0] > rss[0, 1]
        assert rss[1, 1] > rss[1, 0]

    def test_matches_scalar_budget_rss(self, budget):
        state = _two_ap_state({0: 3e-9}, {0: 5e-10})
        rss = association_rss_matrix(state, [0], budget)
        for ap in range(2):
            gain = float(
                np.sum(np.abs(state.ap_channels[ap][0]) ** 2)
            )
            assert rss[ap, 0] == pytest.approx(budget.rss_dbm(gain), abs=1e-9)

    def test_zero_channel_unreachable(self, budget):
        ap0 = {0: _channel(1e-9)}
        ap1 = {0: np.zeros(NT, dtype=complex)}
        state = ChannelState(channels=ap0, ap_channels=[ap0, ap1])
        rss = association_rss_matrix(state, [0], budget)
        assert rss[1, 0] == -np.inf

    def test_no_users_rejected(self, budget):
        state = _two_ap_state({0: 1e-9}, {0: 1e-9})
        with pytest.raises(TransportError):
            association_rss_matrix(state, [], budget)


class TestAssociationPolicy:
    def test_initial_association_is_strongest(self, budget):
        policy = ApAssociationPolicy(2, budget)
        state = _two_ap_state({0: 1e-8, 1: 1e-10}, {0: 1e-10, 1: 1e-8})
        serving = policy.update(state, [0, 1])
        assert serving == {0: 0, 1: 1}

    def test_hysteresis_blocks_small_improvement(self, budget):
        """A challenger inside the margin must not steal the user —
        ping-pong damping is the whole point of the hysteresis."""
        policy = ApAssociationPolicy(2, budget, hysteresis_db=3.0)
        policy.update(_two_ap_state({0: 1e-8}, {0: 1e-9}), [0])
        assert policy.serving[0] == 0
        # AP 1 now ~2 dB better: inside the 3 dB margin -> no handover.
        policy.update(_two_ap_state({0: 1e-8}, {0: 1.6e-8}), [0])
        assert policy.serving[0] == 0

    def test_handover_beyond_margin(self, budget):
        policy = ApAssociationPolicy(2, budget, hysteresis_db=3.0)
        policy.update(_two_ap_state({0: 1e-8}, {0: 1e-9}), [0])
        # AP 1 now 10 dB better: clears the margin -> handover.
        policy.update(_two_ap_state({0: 1e-8}, {0: 1e-7}), [0])
        assert policy.serving[0] == 1

    def test_secondary_is_runner_up(self, budget):
        policy = ApAssociationPolicy(2, budget)
        policy.update(_two_ap_state({0: 1e-8}, {0: 1e-9}), [0])
        assert policy.secondary(0) == 1

    def test_single_ap_has_no_secondary(self, budget):
        policy = ApAssociationPolicy(1, budget)
        ap0 = {0: _channel(1e-9)}
        policy.update(ChannelState(channels=ap0), [0])
        assert policy.secondary(0) is None

    def test_departed_user_evicted_and_rejoins_fresh(self, budget):
        policy = ApAssociationPolicy(2, budget, hysteresis_db=3.0)
        policy.update(_two_ap_state({0: 1e-8}, {0: 1e-9}), [0])
        assert policy.serving == {0: 0}
        policy.update(_two_ap_state({1: 1e-9}, {1: 1e-8}), [1])
        assert 0 not in policy.serving
        # Rejoin sees AP 1 slightly stronger; no sticky history survives,
        # so the fresh association picks AP 1 outright despite being
        # inside what would have been the hysteresis margin.
        policy.update(_two_ap_state({0: 1e-8, 1: 1e-9}, {0: 1.6e-8, 1: 1e-8}), [0, 1])
        assert policy.serving[0] == 1

    def test_users_of_partitions_population(self, budget):
        policy = ApAssociationPolicy(2, budget)
        state = _two_ap_state(
            {0: 1e-8, 1: 1e-10, 2: 1e-8}, {0: 1e-10, 1: 1e-8, 2: 1e-10}
        )
        policy.update(state, [0, 1, 2])
        assert policy.users_of(0) == [0, 2]
        assert policy.users_of(1) == [1]

    def test_bad_ap_count_rejected(self, budget):
        with pytest.raises(TransportError):
            ApAssociationPolicy(0, budget)


class TestHandoverDeterminism:
    """Noisy handover sequences replay exactly at equal seeds."""

    #: Near-tied geometry where measurement noise can flip decisions.
    def _states(self):
        return [
            _two_ap_state({0: 1e-8, 1: 2e-9}, {0: 9e-9, 1: 2.2e-9}, seed=s)
            for s in range(6)
        ]

    def _sequence(self, budget, seed):
        policy = ApAssociationPolicy(
            2, budget, hysteresis_db=1.0, noise_db=4.0, seed=seed
        )
        return [dict(policy.update(s, [0, 1])) for s in self._states()]

    def test_same_seed_same_sequence(self, budget):
        assert self._sequence(budget, seed=7) == self._sequence(budget, seed=7)

    def test_noise_actually_perturbs_some_seed(self, budget):
        """At least one seed in a small pool must deviate from the
        noiseless sequence — otherwise the noise knob is dead code."""
        noiseless = [
            dict(
                ApAssociationPolicy(2, budget, hysteresis_db=1.0).update(
                    s, [0, 1]
                )
            )
            for s in self._states()
        ]
        assert any(
            self._sequence(budget, seed) != noiseless for seed in range(8)
        )

    def test_zero_noise_ignores_seed(self, budget):
        policy_a = ApAssociationPolicy(2, budget, noise_db=0.0, seed=1)
        policy_b = ApAssociationPolicy(2, budget, noise_db=0.0, seed=999)
        for state in self._states():
            assert policy_a.update(state, [0, 1]) == policy_b.update(
                state, [0, 1]
            )
