"""Tests for the leaky-bucket pacer."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.transport.leaky_bucket import LeakyBucket


class TestLeakyBucket:
    def test_initial_credit_is_full(self):
        bucket = LeakyBucket(rate_bytes_per_s=1000, capacity_bytes=100)
        assert bucket.credit_bytes == 100

    def test_send_consumes_credit(self):
        bucket = LeakyBucket(1000, 100)
        assert bucket.try_send(60, now_s=0.0)
        assert bucket.credit_bytes == pytest.approx(40)

    def test_blocks_when_empty(self):
        bucket = LeakyBucket(1000, 100)
        assert bucket.try_send(100, 0.0)
        assert not bucket.try_send(1, 0.0)

    def test_refills_at_rate(self):
        bucket = LeakyBucket(1000, 100)
        bucket.try_send(100, 0.0)
        assert not bucket.try_send(50, 0.01)  # only 10 B refilled
        assert bucket.try_send(50, 0.05)      # 50 B refilled

    def test_credit_capped_at_capacity(self):
        bucket = LeakyBucket(1000, 100)
        bucket.try_send(10, 0.0)
        bucket._refill(100.0)  # long idle
        assert bucket.credit_bytes == 100

    def test_time_until_send(self):
        bucket = LeakyBucket(1000, 100, initial_credit_bytes=0)
        assert bucket.time_until_send(50, 0.0) == pytest.approx(0.05)
        assert bucket.time_until_send(0, 0.0) == 0.0

    def test_sustained_throughput_equals_rate(self):
        """Over a long window the pacer delivers exactly the configured
        rate (the capacity only shapes bursts)."""
        bucket = LeakyBucket(rate_bytes_per_s=10_000, capacity_bytes=500)
        sent = 0.0
        now = 0.0
        packet = 100.0
        while now < 1.0:
            if bucket.try_send(packet, now):
                sent += packet
            now += 0.001
        assert sent == pytest.approx(10_000, rel=0.06)

    def test_set_rate(self):
        bucket = LeakyBucket(1000, 100, initial_credit_bytes=0)
        bucket.set_rate(2000)
        assert bucket.time_until_send(100, 0.0) == pytest.approx(0.05)

    def test_time_backwards_rejected(self):
        bucket = LeakyBucket(1000, 100)
        bucket.try_send(10, 1.0)
        with pytest.raises(TransportError):
            bucket.try_send(10, 0.5)

    def test_bad_parameters_rejected(self):
        with pytest.raises(TransportError):
            LeakyBucket(0, 100)
        with pytest.raises(TransportError):
            LeakyBucket(100, 0)
        with pytest.raises(TransportError):
            LeakyBucket(100, 10).set_rate(0)


class TestBurstCreditMath:
    """Vectorized FIFO credit operations (cohort fast path)."""

    def test_mask_dtype_and_shape(self):
        bucket = LeakyBucket(1000, 500)
        mask = bucket.try_send_burst(np.full(10, 100.0), 0.0)
        assert mask.dtype == np.bool_
        assert mask.shape == (10,)

    def test_prefix_admission_consumes_credit(self):
        bucket = LeakyBucket(1000, 500)
        mask = bucket.try_send_burst(np.full(10, 100.0), 0.0)
        # 500 B of credit admits exactly the first five 100 B packets.
        np.testing.assert_array_equal(mask, np.arange(10) < 5)
        assert bucket.credit_bytes == pytest.approx(0.0)

    def test_head_of_line_blocking(self):
        # A too-big packet at the head blocks smaller ones behind it.
        bucket = LeakyBucket(1000, 100)
        mask = bucket.try_send_burst(np.array([150.0, 10.0, 10.0]), 0.0)
        assert not mask.any()
        assert bucket.credit_bytes == pytest.approx(100.0)

    def test_burst_matches_scalar_loop_for_uniform_sizes(self):
        batched = LeakyBucket(1000, 500)
        scalar = LeakyBucket(1000, 500)
        sizes = np.full(8, 90.0)
        mask = batched.try_send_burst(sizes, 0.0)
        reference = [scalar.try_send(90.0, 0.0) for _ in range(8)]
        np.testing.assert_array_equal(mask, reference)
        assert batched.credit_bytes == pytest.approx(scalar.credit_bytes)

    def test_refills_before_admitting(self):
        bucket = LeakyBucket(1000, 100, initial_credit_bytes=0)
        assert not bucket.try_send_burst(np.array([50.0]), 0.0).any()
        assert bucket.try_send_burst(np.array([50.0]), 0.05).all()

    def test_time_until_send_burst_cumulative(self):
        bucket = LeakyBucket(1000, 100, initial_credit_bytes=0)
        times = bucket.time_until_send_burst(np.array([50.0, 50.0, 50.0]), 0.0)
        assert times.dtype == np.float64
        np.testing.assert_allclose(times, [0.05, 0.10, 0.15])

    def test_time_until_send_burst_zero_when_credit_covers(self):
        bucket = LeakyBucket(1000, 500)
        times = bucket.time_until_send_burst(np.array([100.0, 100.0]), 0.0)
        np.testing.assert_array_equal(times, [0.0, 0.0])

    def test_empty_burst(self):
        bucket = LeakyBucket(1000, 100)
        assert bucket.try_send_burst(np.zeros(0), 0.0).size == 0

    def test_bad_burst_inputs_rejected(self):
        bucket = LeakyBucket(1000, 100)
        with pytest.raises(TransportError):
            bucket.try_send_burst(np.ones((2, 2)), 0.0)
        with pytest.raises(TransportError):
            bucket.try_send_burst(np.array([10.0, -1.0]), 0.0)
        with pytest.raises(TransportError):
            bucket.time_until_send_burst(np.ones((3, 1)), 0.0)
