"""Tests for the leaky-bucket pacer."""

import pytest

from repro.errors import TransportError
from repro.transport.leaky_bucket import LeakyBucket


class TestLeakyBucket:
    def test_initial_credit_is_full(self):
        bucket = LeakyBucket(rate_bytes_per_s=1000, capacity_bytes=100)
        assert bucket.credit_bytes == 100

    def test_send_consumes_credit(self):
        bucket = LeakyBucket(1000, 100)
        assert bucket.try_send(60, now_s=0.0)
        assert bucket.credit_bytes == pytest.approx(40)

    def test_blocks_when_empty(self):
        bucket = LeakyBucket(1000, 100)
        assert bucket.try_send(100, 0.0)
        assert not bucket.try_send(1, 0.0)

    def test_refills_at_rate(self):
        bucket = LeakyBucket(1000, 100)
        bucket.try_send(100, 0.0)
        assert not bucket.try_send(50, 0.01)  # only 10 B refilled
        assert bucket.try_send(50, 0.05)      # 50 B refilled

    def test_credit_capped_at_capacity(self):
        bucket = LeakyBucket(1000, 100)
        bucket.try_send(10, 0.0)
        bucket._refill(100.0)  # long idle
        assert bucket.credit_bytes == 100

    def test_time_until_send(self):
        bucket = LeakyBucket(1000, 100, initial_credit_bytes=0)
        assert bucket.time_until_send(50, 0.0) == pytest.approx(0.05)
        assert bucket.time_until_send(0, 0.0) == 0.0

    def test_sustained_throughput_equals_rate(self):
        """Over a long window the pacer delivers exactly the configured
        rate (the capacity only shapes bursts)."""
        bucket = LeakyBucket(rate_bytes_per_s=10_000, capacity_bytes=500)
        sent = 0.0
        now = 0.0
        packet = 100.0
        while now < 1.0:
            if bucket.try_send(packet, now):
                sent += packet
            now += 0.001
        assert sent == pytest.approx(10_000, rel=0.06)

    def test_set_rate(self):
        bucket = LeakyBucket(1000, 100, initial_credit_bytes=0)
        bucket.set_rate(2000)
        assert bucket.time_until_send(100, 0.0) == pytest.approx(0.05)

    def test_time_backwards_rejected(self):
        bucket = LeakyBucket(1000, 100)
        bucket.try_send(10, 1.0)
        with pytest.raises(TransportError):
            bucket.try_send(10, 0.5)

    def test_bad_parameters_rejected(self):
        with pytest.raises(TransportError):
            LeakyBucket(0, 100)
        with pytest.raises(TransportError):
            LeakyBucket(100, 0)
        with pytest.raises(TransportError):
            LeakyBucket(100, 10).set_rate(0)
