"""Bit-identity of the vectorized cohort path against the seed path.

The optimized transport core keeps per-receiver state in numpy cohort
arrays and draws one batched Bernoulli sample per coding group; the seed
path loops over users with scalar draws.  These properties pin the
contract that — at equal seeds — both paths produce *bit-identical*
``TransmissionResult`` and ``OutcomeStats``, across user counts, RNG
seeds and fault mixes (including churn evict/rejoin).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.beamforming import GroupBeamPlanner, SectorCodebook
from repro.core import MulticastStreamer, SystemConfig
from repro.faults import FaultController, FaultEvent, FaultKind, FaultSchedule
from repro.fountain.block import FrameBlockEncoder
from repro.perf import perf_mode
from repro.scheduling.coding_groups import UnitAssignment
from repro.scheduling.groups import GroupEnumerator
from repro.transport import FrameTransmitter, LinkModel
from repro.types import BeamformingScheme
from repro.video.jigsaw import SUBLAYER_COUNTS

from tests.faults.conftest import fingerprint

RES = dict(height=144, width=256)

# Small fault mixes exercising every feedback-loop branch the cohort path
# vectorizes: silent receivers (feedback loss), masked erasures, attenuated
# links, and receiver churn.
FAULT_MIXES = (
    {},
    {"erasure_rate_hz": 8.0, "erasure_prob": 0.6, "seed": 11},
    {"feedback_loss_rate_hz": 6.0, "feedback_loss_duration_s": 0.1, "seed": 12},
    {"blockage_rate_hz": 4.0, "blockage_depth_db": 15.0, "seed": 13},
    {"churn_rate_hz": 3.0, "churn_downtime_s": 0.07, "seed": 14},
    {
        "erasure_rate_hz": 5.0,
        "feedback_loss_rate_hz": 5.0,
        "churn_rate_hz": 2.0,
        "seed": 15,
    },
)


def _transmit_world(scenario, num_users, seed):
    """Channel snapshot plus capped candidate groups for ``num_users``."""
    positions = scenario.place_arc(num_users, 3.0, 90, seed=seed)
    state = scenario.channel_model.snapshot(
        {i: p for i, p in enumerate(positions)}, np.random.default_rng(seed)
    )
    codebook = SectorCodebook(scenario.array, num_beams=16, num_wide_beams=4)
    planner = GroupBeamPlanner(
        scenario.array, codebook, scenario.channel_model.budget,
        BeamformingScheme.OPTIMIZED_MULTICAST,
    )
    enum = GroupEnumerator(
        planner, rate_scale=56.25, min_rate_mbps=0.0, max_group_size=2
    )
    return state, enum.enumerate(state, sorted(state.channels))


def _assignments(encoder, groups):
    """Spread layer-0/1 units round-robin over all candidate groups."""
    unit_bytes = encoder.unit_nbytes()
    out = []
    turn = 0
    for layer in (0, 1):
        for sub in range(min(3, SUBLAYER_COUNTS[layer])):
            group = groups[turn % len(groups)]
            out.append(UnitAssignment(group.index, layer, sub, unit_bytes))
            turn += 1
    return out


def _result_digest(result):
    """Bit-exact digest of a TransmissionResult, path-agnostic."""
    per_user = []
    for user in sorted(result.receptions):
        reception = result.receptions[user]
        per_user.append(
            (
                user,
                reception.packets_received,
                reception.packets_lost,
                float(reception.delivered_payload_bytes).hex(),
                tuple(
                    mask.tobytes()
                    for mask in reception.decoder.sublayer_masks()
                ),
            )
        )
    return (
        float(result.airtime_s).hex(),
        result.packets_sent,
        result.packets_dropped_at_queue,
        result.feedback_rounds_used,
        tuple(per_user),
    )


class TestTransmitterEquivalence:
    """Seed and cohort transmit paths agree bit-for-bit at equal seeds."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        num_users=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**16),
        rate_control=st.booleans(),
    )
    @example(num_users=64, seed=0, rate_control=True)
    @example(num_users=1, seed=7, rate_control=False)
    def test_transmit_bit_identical(
        self, scenario, hr_probe, num_users, seed, rate_control
    ):
        state, groups = _transmit_world(scenario, num_users, seed)

        def run():
            transmitter = FrameTransmitter(
                link=LinkModel(scenario.channel_model, associated_user=0),
                rate_control=rate_control,
            )
            encoder = FrameBlockEncoder(0, hr_probe.layered)
            return transmitter.transmit(
                encoder,
                _assignments(encoder, groups),
                groups,
                state,
                1 / 30,
                np.random.default_rng(seed),
            )

        with perf_mode("seed"):
            reference = run()
        optimized = run()
        assert reference.cohort is None
        assert optimized.cohort is not None
        assert _result_digest(optimized) == _result_digest(reference)


class TestSessionEquivalence:
    """End-to-end outcomes agree bit-for-bit across the path switch."""

    def _outcomes(self, scenario, tiny_dnn, hr_probe, num_users, seed,
                  faults, frames=4, events=None):
        positions = scenario.place_arc(num_users, 3.0, 60, seed=seed)
        trace = scenario.static_trace(positions, duration_s=0.3, seed=seed + 1)
        results = []
        for mode in ("seed", "optimized"):
            with perf_mode(mode):
                config = SystemConfig(**RES, faults=dict(faults))
                streamer = MulticastStreamer(
                    config, tiny_dnn, [hr_probe], scenario.channel_model,
                    seed=seed,
                )
                controller = (
                    FaultController(FaultSchedule(events=list(events)))
                    if events is not None
                    else None
                )
                session = streamer.session(trace, faults=controller)
                results.append(fingerprint(session.run(frames)))
        return results

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        num_users=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=999),
        faults=st.sampled_from(FAULT_MIXES),
    )
    @example(num_users=4, seed=0, faults=FAULT_MIXES[5])
    def test_outcome_stats_bit_identical(
        self, scenario, tiny_dnn, hr_probe, num_users, seed, faults
    ):
        reference, optimized = self._outcomes(
            scenario, tiny_dnn, hr_probe, num_users, seed, faults
        )
        assert optimized == reference

    def test_churn_evict_rejoin_bit_identical(
        self, scenario, tiny_dnn, hr_probe
    ):
        """Deterministic leave/rejoin: cohort row eviction and re-admission
        replay the seed path's bandwidth-history reset exactly."""
        events = [
            FaultEvent(FaultKind.LEAVE, 0.05, user=1),
            FaultEvent(FaultKind.JOIN, 0.15, user=1),
        ]
        reference, optimized = self._outcomes(
            scenario, tiny_dnn, hr_probe, num_users=3, seed=5, faults={},
            frames=8, events=events,
        )
        assert optimized == reference


class TestThousandUserSmoke:
    """The cohort arrays hold up at three orders of magnitude."""

    def test_transmit_1000_users(self, scenario, hr_probe):
        state, groups = _transmit_world(scenario, 1000, seed=3)
        transmitter = FrameTransmitter(
            link=LinkModel(scenario.channel_model, associated_user=0)
        )
        encoder = FrameBlockEncoder(0, hr_probe.layered)
        result = transmitter.transmit(
            encoder,
            _assignments(encoder, groups),
            groups,
            state,
            1 / 30,
            np.random.default_rng(3),
        )
        assert result.cohort is not None
        assert len(result.receptions) == 1000
        assert result.packets_sent > 0
        # Spot-check a handful of rows materialize coherent decoders.
        for user in (0, 499, 999):
            masks = result.receptions[user].decoder.sublayer_masks()
            assert len(masks) == len(SUBLAYER_COUNTS)
