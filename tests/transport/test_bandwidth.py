"""Tests for the bandwidth estimator."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.transport.bandwidth import BandwidthEstimator


class TestBandwidthEstimator:
    def test_starts_unset(self):
        assert BandwidthEstimator().estimate_bytes_per_s is None

    def test_first_observation_sets_estimate(self, rng):
        estimator = BandwidthEstimator(noise_std_fraction=0.0)
        value = estimator.observe_window(1000.0, 0.1, rng)
        assert value == pytest.approx(10_000.0)

    def test_ewma_smoothing(self, rng):
        estimator = BandwidthEstimator(smoothing=0.5, noise_std_fraction=0.0)
        estimator.observe_window(1000.0, 1.0, rng)
        value = estimator.observe_window(2000.0, 1.0, rng)
        assert value == pytest.approx(1500.0)

    def test_tracks_drops(self, rng):
        estimator = BandwidthEstimator(smoothing=1.0, noise_std_fraction=0.0)
        estimator.observe_window(10_000.0, 1.0, rng)
        after = estimator.observe_window(1000.0, 1.0, rng)
        assert after == pytest.approx(1000.0)

    def test_fraction_interface(self, rng):
        estimator = BandwidthEstimator(smoothing=1.0, noise_std_fraction=0.0)
        value = estimator.observe_fraction(0.8, rng)
        assert value == pytest.approx(0.8)

    def test_fraction_out_of_range_rejected(self, rng):
        with pytest.raises(TransportError):
            BandwidthEstimator().observe_fraction(1.5, rng)

    def test_reset(self, rng):
        estimator = BandwidthEstimator()
        estimator.observe_window(1000.0, 1.0, rng)
        estimator.reset()
        assert estimator.estimate_bytes_per_s is None

    def test_noise_keeps_estimate_positive(self):
        estimator = BandwidthEstimator(noise_std_fraction=1.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            value = estimator.observe_window(100.0, 1.0, rng)
            assert value > 0

    def test_bad_parameters_rejected(self, rng):
        with pytest.raises(TransportError):
            BandwidthEstimator(smoothing=0.0)
        with pytest.raises(TransportError):
            BandwidthEstimator().observe_window(100.0, 0.0, rng)
