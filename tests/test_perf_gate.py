"""Tests for the CI perf-regression gate (benchmarks/perf_gate.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "perf_gate.py"
_spec = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def _report(scale: float = 1.0, **overrides) -> dict:
    """A synthetic benchmark report with throughputs scaled by ``scale``."""
    stages = {
        "jigsaw_encode": {"fps_serial": 1000.0 * scale},
        "fountain_encode": {"batched_warm_msymbols_per_s": 0.25 * scale},
        "precode": {
            "encode_msymbols_per_s": 2.5 * scale,
            "decode_subcubic": True,
            "roundtrip_identical": True,
        },
        "fountain_decode": {"incremental_msymbols_per_s": 0.04 * scale},
        "ssim": {"frames_per_s_float32": 300.0 * scale},
        "emulation": {
            "optimized_runs_per_s": 2.7 * scale,
            "metrics_identical": True,
            "decoded_frames_identical": True,
        },
        "emulation_scale": {
            "speedup_at_100_users": 15.0 * scale,
            "optimized_runs_per_s_at_100_users": 2.0 * scale,
            "metrics_identical": True,
        },
        "sweep_shard": {
            "points_per_s_persistent": 20.0 * scale,
            "persistent_vs_fork_ratio": 1.1,
            "merged_identical": True,
        },
        "service_load": {
            "control_msgs_per_s": 15.0 * scale,
            "zero_dropped": True,
            "membership_reflected": True,
            "clean_shutdown": True,
        },
        "multi_ap": {
            "two_ap_advantage_at_max_depth": 0.05,
            "two_ap_ssim_not_worse_under_blockage": True,
        },
    }
    for dotted, value in overrides.items():
        stage, key = dotted.split(".")
        stages[stage][key] = value
    return {"schema": 1, "stages": stages, "host": {"cpu_count": 1}}


class TestCompare:
    def test_identical_reports_pass(self):
        result = perf_gate.compare(_report(), _report())
        assert result["passed"]
        assert all(row["ok"] for row in result["metrics"])

    def test_injected_2x_slowdown_fails_every_metric(self):
        result = perf_gate.compare(_report(), _report(), slowdown=2.0)
        assert not result["passed"]
        assert all(not row["ok"] for row in result["metrics"])
        assert all(row["ratio"] == pytest.approx(0.5) for row in result["metrics"])

    def test_drop_within_tolerance_passes(self):
        result = perf_gate.compare(_report(), _report(scale=0.75), tolerance=0.30)
        assert result["passed"]

    def test_drop_beyond_tolerance_fails(self):
        result = perf_gate.compare(_report(), _report(scale=0.65), tolerance=0.30)
        assert not result["passed"]

    def test_improvement_never_fails(self):
        result = perf_gate.compare(_report(), _report(scale=3.0))
        assert result["passed"]

    def test_missing_candidate_metric_fails(self):
        candidate = _report()
        del candidate["stages"]["fountain_decode"]
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]
        (missing,) = [r for r in result["metrics"] if r["candidate"] is None]
        assert missing["metric"] == "fountain_decode.incremental_msymbols_per_s"

    def test_correctness_flag_failure_fails_gate(self):
        candidate = _report(**{"emulation.metrics_identical": False})
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]
        assert any(not f["ok"] for f in result["flags"])

    def test_scale_identity_flag_failure_fails_gate(self):
        candidate = _report(**{"emulation_scale.metrics_identical": False})
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]

    def test_scale_speedup_regression_fails_gate(self):
        candidate = _report(**{"emulation_scale.speedup_at_100_users": 5.0})
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]
        (bad,) = [r for r in result["metrics"] if not r["ok"]]
        assert bad["metric"] == "emulation_scale.speedup_at_100_users"

    def test_parallel_slower_than_serial_fails_gate(self):
        candidate = _report(**{"jigsaw_encode.fps_parallel": 400.0})
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]
        (flag,) = [
            f for f in result["flags"]
            if f["flag"] == "jigsaw_encode.parallel_not_slower"
        ]
        assert not flag["ok"]

    def test_parallel_at_least_serial_passes_gate(self):
        candidate = _report(**{"jigsaw_encode.fps_parallel": 1100.0})
        result = perf_gate.compare(_report(), candidate)
        assert result["passed"]

    def test_sweep_merge_mismatch_fails_gate(self):
        candidate = _report(**{"sweep_shard.merged_identical": False})
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]
        (flag,) = [
            f for f in result["flags"]
            if f["flag"] == "sweep_shard.merged_identical"
        ]
        assert not flag["ok"]

    def test_persistent_pool_slower_than_fork_fails_gate(self):
        candidate = _report(**{"sweep_shard.persistent_vs_fork_ratio": 0.5})
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]
        (flag,) = [
            f for f in result["flags"]
            if f["flag"] == "sweep_shard.persistent_not_slower_than_fork"
        ]
        assert not flag["ok"]

    @pytest.mark.parametrize(
        "flag",
        ["zero_dropped", "membership_reflected", "clean_shutdown"],
    )
    def test_service_load_flag_failure_fails_gate(self, flag):
        candidate = _report(**{f"service_load.{flag}": False})
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]
        (bad,) = [
            f for f in result["flags"] if f["flag"] == f"service_load.{flag}"
        ]
        assert not bad["ok"]

    def test_multi_ap_regression_fails_gate(self):
        candidate = _report(
            **{"multi_ap.two_ap_ssim_not_worse_under_blockage": False}
        )
        result = perf_gate.compare(_report(), candidate)
        assert not result["passed"]
        (bad,) = [
            f for f in result["flags"]
            if f["flag"] == "multi_ap.two_ap_ssim_not_worse_under_blockage"
        ]
        assert not bad["ok"]

    def test_persistent_pool_within_tolerance_passes_gate(self):
        candidate = _report(**{"sweep_shard.persistent_vs_fork_ratio": 0.85})
        result = perf_gate.compare(_report(), candidate)
        assert result["passed"]


class TestCli:
    def _write(self, path: Path, report: dict) -> Path:
        path.write_text(json.dumps(report))
        return path

    def test_main_pass_and_artifact(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", _report())
        candidate = self._write(tmp_path / "cand.json", _report())
        artifact = tmp_path / "comparison.json"
        code = perf_gate.main([
            "--baseline", str(baseline),
            "--candidate", str(candidate),
            "--output", str(artifact),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        saved = json.loads(artifact.read_text())
        assert saved["passed"] is True
        assert len(saved["metrics"]) == len(perf_gate.GATED_METRICS)

    def test_main_inject_slowdown_exits_nonzero(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", _report())
        candidate = self._write(tmp_path / "cand.json", _report())
        code = perf_gate.main([
            "--baseline", str(baseline),
            "--candidate", str(candidate),
            "--inject-slowdown", "2.0",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out


class TestPrecodeGate:
    def test_precode_metric_gated(self):
        result = perf_gate.compare(
            _report(), _report(**{"precode.encode_msymbols_per_s": 0.5})
        )
        assert not result["passed"]
        row = next(
            r for r in result["metrics"]
            if r["metric"] == "precode.encode_msymbols_per_s"
        )
        assert not row["ok"]

    @pytest.mark.parametrize(
        "flag", ["precode.decode_subcubic", "precode.roundtrip_identical"]
    )
    def test_precode_flags_required(self, flag):
        result = perf_gate.compare(_report(), _report(**{flag: False}))
        assert not result["passed"]
        assert any(f["flag"] == flag and not f["ok"] for f in result["flags"])
