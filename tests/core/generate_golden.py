"""Record the golden stream snapshots (see golden_cases.py for when).

Run from the repo root::

    PYTHONPATH=src:tests python -m core.generate_golden
"""

from __future__ import annotations

import json

from .golden_cases import (
    CASES,
    GOLDEN_PATH,
    NUM_FRAMES,
    STREAM_SEED,
    build_environment,
    case_key,
    run_case,
)


def main() -> None:
    dnn, probes, channel_model, trace = build_environment()
    golden = {
        "_meta": {
            "num_frames": NUM_FRAMES,
            "stream_seed": STREAM_SEED,
            "cases": len(CASES),
        }
    }
    for scheduler, policy, source_coding, rate_control in CASES:
        key = case_key(scheduler, policy, source_coding, rate_control)
        golden[key] = run_case(
            dnn, probes, channel_model, trace,
            scheduler, policy, source_coding, rate_control,
        )
        print(f"recorded {key}: {len(golden[key])} stats")
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True))
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
