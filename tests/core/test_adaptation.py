"""Tests for the adaptation policies and their ablation flags."""

import pytest

from repro.core import MulticastStreamer, SystemConfig
from repro.types import AdaptationPolicy

RES = dict(height=144, width=256)


@pytest.fixture(scope="module")
def mobile_trace(request):
    scenario = request.getfixturevalue("scenario")
    return scenario.mobile_receiver_trace(
        2, moving_users=[0], duration_s=1.5, rss_regime="high", seed=41
    )


def _run(request, trace, **overrides):
    scenario = request.getfixturevalue("scenario")
    dnn = request.getfixturevalue("tiny_dnn")
    probes = [request.getfixturevalue("hr_probe")]
    config = SystemConfig(**RES, **overrides)
    streamer = MulticastStreamer(config, dnn, probes, scenario.channel_model, seed=43)
    return streamer.stream_trace(trace, num_frames=20)


class TestAdaptationPolicies:
    def test_realtime_beats_fully_frozen(self, request, mobile_trace):
        realtime = _run(request, mobile_trace,
                        adaptation=AdaptationPolicy.REALTIME_UPDATE)
        frozen = _run(request, mobile_trace,
                      adaptation=AdaptationPolicy.NO_UPDATE,
                      no_update_beam_tracking=False)
        assert realtime.mean_ssim > frozen.mean_ssim

    def test_sector_tracking_helps_no_update(self, request, mobile_trace):
        """The firmware-tracking variant must be at least as good as the
        fully frozen one under receiver motion."""
        tracked = _run(request, mobile_trace,
                       adaptation=AdaptationPolicy.NO_UPDATE,
                       no_update_beam_tracking=True)
        frozen = _run(request, mobile_trace,
                      adaptation=AdaptationPolicy.NO_UPDATE,
                      no_update_beam_tracking=False)
        assert tracked.mean_ssim >= frozen.mean_ssim - 0.02

    def test_no_update_plans_exactly_once(self, request, mobile_trace):
        """Under NO_UPDATE without tracking, the allocation object must stay
        identical across the whole session."""
        scenario = request.getfixturevalue("scenario")
        dnn = request.getfixturevalue("tiny_dnn")
        probes = [request.getfixturevalue("hr_probe")]
        config = SystemConfig(**RES, adaptation=AdaptationPolicy.NO_UPDATE,
                              no_update_beam_tracking=False)
        streamer = MulticastStreamer(config, dnn, probes,
                                     scenario.channel_model, seed=44)
        calls = []
        original = streamer._plan

        def counting_plan(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        streamer._plan = counting_plan
        streamer.stream_trace(mobile_trace, num_frames=12)
        assert len(calls) == 1

    def test_realtime_replans_every_beacon(self, request, mobile_trace):
        scenario = request.getfixturevalue("scenario")
        dnn = request.getfixturevalue("tiny_dnn")
        probes = [request.getfixturevalue("hr_probe")]
        config = SystemConfig(**RES)
        streamer = MulticastStreamer(config, dnn, probes,
                                     scenario.channel_model, seed=45)
        calls = []
        original = streamer._plan

        def counting_plan(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        streamer._plan = counting_plan
        streamer.stream_trace(mobile_trace, num_frames=12)
        # 12 frames at 30 FPS = 0.4 s -> one plan per 100 ms beacon.
        assert len(calls) == 4
