"""Failure-injection tests: dead links, blocked users, degenerate traces."""

import numpy as np

from repro.core import MulticastStreamer, SystemConfig
from repro.phy.channel import ChannelState
from repro.phy.csi import CsiSnapshot, CsiTrace
from repro.types import Position

RES = dict(height=144, width=256)


def _dead_trace(scenario, ticks=4, attenuation_db=60.0):
    """A trace whose channels are attenuated into uselessness."""
    rng = np.random.default_rng(51)
    positions = {0: Position(16.0, 2.0), 1: Position(17.0, 10.0)}
    trace = CsiTrace()
    scale = 10 ** (-attenuation_db / 20)
    for tick in range(ticks):
        t = tick * 0.1
        state = scenario.channel_model.snapshot(positions, rng, time_s=t)
        dead = ChannelState(
            channels={u: h * scale for u, h in state.channels.items()},
            positions=state.positions,
            time_s=t,
        )
        trace.append(CsiSnapshot(t, dead, dead))
    return trace


class TestDeadChannel:
    def test_streamer_survives_unreachable_users(self, scenario, tiny_dnn, hr_probe):
        """With no decodable MCS anywhere, the system must degrade to blank
        frames without crashing (graceful, not fatal)."""
        trace = _dead_trace(scenario)
        config = SystemConfig(**RES)
        streamer = MulticastStreamer(
            config, tiny_dnn, [hr_probe], scenario.channel_model, seed=52
        )
        outcome = streamer.stream_trace(trace, num_frames=4)
        assert len(outcome.stats) == 8
        for stat in outcome.stats:
            assert 0.0 <= stat.ssim <= 1.0

    def test_one_blocked_user_does_not_starve_others(
        self, scenario, tiny_dnn, hr_probe
    ):
        """A single dead user must not drag every group to rate zero."""
        rng = np.random.default_rng(53)
        positions = {0: Position(3.0, 6.0), 1: Position(3.5, 7.0)}
        trace = CsiTrace()
        for tick in range(4):
            t = tick * 0.1
            state = scenario.channel_model.snapshot(positions, rng, time_s=t)
            state.channels[1] = state.channels[1] * 10 ** (-60 / 20)
            trace.append(CsiSnapshot(t, state, state))
        config = SystemConfig(**RES)
        streamer = MulticastStreamer(
            config, tiny_dnn, [hr_probe], scenario.channel_model, seed=54
        )
        outcome = streamer.stream_trace(trace, num_frames=4)
        per_user = outcome.per_user_ssim()
        assert per_user[0] > 0.8  # healthy user keeps streaming
        assert per_user[1] < per_user[0]


class TestDegenerateTraces:
    def test_single_snapshot_trace(self, scenario, tiny_dnn, hr_probe):
        positions = [Position(3.0, 6.0)]
        trace = scenario.static_trace(positions, duration_s=0.1, seed=55)
        assert len(trace) == 1
        config = SystemConfig(**RES)
        streamer = MulticastStreamer(
            config, tiny_dnn, [hr_probe], scenario.channel_model, seed=56
        )
        outcome = streamer.stream_trace(trace, num_frames=3)
        assert len(outcome.stats) == 3

    def test_trace_shorter_than_stream(self, scenario, tiny_dnn, hr_probe):
        """Streaming past the end of the trace holds the last snapshot."""
        positions = [Position(3.0, 6.0)]
        trace = scenario.static_trace(positions, duration_s=0.2, seed=57)
        config = SystemConfig(**RES)
        streamer = MulticastStreamer(
            config, tiny_dnn, [hr_probe], scenario.channel_model, seed=58
        )
        outcome = streamer.stream_trace(trace, num_frames=12)  # 0.4 s worth
        assert len(outcome.stats) == 12
        assert outcome.mean_ssim > 0.5
