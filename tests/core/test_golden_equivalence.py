"""Golden equivalence: the staged pipeline vs the pre-refactor streamer.

``golden_stream.json`` holds seed-fixed ``StreamOutcome`` snapshots (per
frame and user: SSIM, PSNR, bytes per layer, deadline flag — floats as
IEEE-754 hex) recorded from the monolithic ``_stream_frame`` loop before
the session-pipeline refactor.  Every scheduler x policy x ablation
combination must still be **bit-identical**.
"""

import json

import pytest

from .golden_cases import (
    CASES,
    GOLDEN_PATH,
    NUM_FRAMES,
    build_environment,
    case_key,
    run_case,
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def environment():
    return build_environment()


class TestGoldenEquivalence:
    def test_snapshot_covers_all_cases(self, golden):
        assert golden["_meta"]["cases"] == len(CASES)
        for case in CASES:
            assert case_key(*case) in golden

    @pytest.mark.parametrize(
        "scheduler,policy,source_coding,rate_control",
        CASES,
        ids=[case_key(*case) for case in CASES],
    )
    def test_stream_outcome_bit_identical(
        self, golden, environment, scheduler, policy, source_coding, rate_control
    ):
        dnn, probes, channel_model, trace = environment
        recorded = golden[case_key(scheduler, policy, source_coding, rate_control)]
        current = run_case(
            dnn, probes, channel_model, trace,
            scheduler, policy, source_coding, rate_control,
        )
        assert len(current) == len(recorded) > 0
        # Stats must exist for every (frame, user) pair of the session.
        assert {(s["frame_index"], s["user_id"]) for s in current} == {
            (f, u) for f in range(NUM_FRAMES) for u in (0, 1)
        }
        assert current == recorded
