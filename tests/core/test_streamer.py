"""Tests for the end-to-end multicast streamer."""

import numpy as np
import pytest

from repro.core import MulticastStreamer, SystemConfig
from repro.errors import ConfigurationError
from repro.types import (
    AdaptationPolicy,
    BeamformingScheme,
    SchedulerKind,
)

RES = dict(height=144, width=256)


@pytest.fixture(scope="module")
def streamer_parts(request):
    scenario = request.getfixturevalue("scenario")
    tiny_dnn = request.getfixturevalue("tiny_dnn")
    hr_probe = request.getfixturevalue("hr_probe")
    lr_probe = request.getfixturevalue("lr_probe")
    trace = request.getfixturevalue("static_trace_2users")
    return scenario, tiny_dnn, [hr_probe, lr_probe], trace


def _stream(parts, num_frames=5, seed=0, **config_overrides):
    scenario, dnn, probes, trace = parts
    config = SystemConfig(**RES, **config_overrides)
    streamer = MulticastStreamer(config, dnn, probes, scenario.channel_model, seed=seed)
    return streamer.stream_trace(trace, num_frames=num_frames)


class TestStreaming:
    def test_produces_stats_for_all_frames_and_users(self, streamer_parts):
        outcome = _stream(streamer_parts, num_frames=5)
        assert len(outcome.stats) == 5 * 2
        assert {s.user_id for s in outcome.stats} == {0, 1}

    def test_quality_is_high_at_close_range(self, streamer_parts):
        outcome = _stream(streamer_parts, num_frames=6)
        assert outcome.mean_ssim > 0.85
        assert outcome.mean_psnr_db > 30

    def test_deterministic_given_seed(self, streamer_parts):
        a = _stream(streamer_parts, num_frames=4, seed=3)
        b = _stream(streamer_parts, num_frames=4, seed=3)
        assert [s.ssim for s in a.stats] == [s.ssim for s in b.stats]

    def test_per_user_and_series_accessors(self, streamer_parts):
        outcome = _stream(streamer_parts, num_frames=4)
        per_user = outcome.per_user_ssim()
        assert set(per_user) == {0, 1}
        series = outcome.ssim_series(0)
        assert len(series) == 4

    def test_round_robin_scheduler_runs(self, streamer_parts):
        outcome = _stream(
            streamer_parts, num_frames=4, scheduler=SchedulerKind.ROUND_ROBIN
        )
        assert outcome.mean_ssim > 0.5

    def test_no_update_policy_runs(self, streamer_parts):
        outcome = _stream(
            streamer_parts, num_frames=4, adaptation=AdaptationPolicy.NO_UPDATE
        )
        assert outcome.mean_ssim > 0.5

    def test_all_beamforming_schemes_run(self, streamer_parts):
        for scheme in BeamformingScheme:
            outcome = _stream(streamer_parts, num_frames=2, scheme=scheme)
            assert np.isfinite(outcome.mean_ssim)

    def test_source_coding_off_runs(self, streamer_parts):
        outcome = _stream(streamer_parts, num_frames=3, source_coding=False)
        assert np.isfinite(outcome.mean_ssim)

    def test_rate_control_off_runs(self, streamer_parts):
        outcome = _stream(streamer_parts, num_frames=3, rate_control=False)
        assert np.isfinite(outcome.mean_ssim)

    def test_bytes_received_recorded(self, streamer_parts):
        outcome = _stream(streamer_parts, num_frames=3)
        for stat in outcome.stats:
            assert sum(stat.bytes_received_per_layer) > 0


class TestValidation:
    def test_resolution_mismatch_rejected(self, streamer_parts):
        scenario, dnn, probes, _ = streamer_parts
        config = SystemConfig(height=288, width=512)
        with pytest.raises(ConfigurationError):
            MulticastStreamer(config, dnn, probes, scenario.channel_model)

    def test_empty_probes_rejected(self, streamer_parts):
        scenario, dnn, _, _ = streamer_parts
        with pytest.raises(ConfigurationError):
            MulticastStreamer(SystemConfig(**RES), dnn, [], scenario.channel_model)

    def test_zero_frames_rejected(self, streamer_parts):
        scenario, dnn, probes, trace = streamer_parts
        streamer = MulticastStreamer(
            SystemConfig(**RES), dnn, probes, scenario.channel_model
        )
        with pytest.raises(ConfigurationError):
            streamer.stream_trace(trace, num_frames=0)

    def test_empty_outcome_stats(self):
        from repro.core.streamer import StreamOutcome

        outcome = StreamOutcome()
        assert np.isnan(outcome.mean_ssim)
        assert np.isnan(outcome.mean_psnr_db)
