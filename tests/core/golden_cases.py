"""Shared definitions for the golden stream-equivalence suite.

The golden snapshots in ``golden_stream.json`` were recorded from the
pre-refactor monolithic ``MulticastStreamer._stream_frame`` loop.  The
staged session pipeline must reproduce them **bit-identically** for every
scheduler x adaptation-policy x ablation combination: floats are stored as
IEEE-754 hex strings so the comparison is exact, not approximate.

Regenerate (only when an *intentional* behaviour change lands) with::

    PYTHONPATH=src:tests python -m core.generate_golden
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple

from repro.core import MulticastStreamer, SystemConfig
from repro.emulation import EmulationScenario
from repro.quality import DNNQualityModel
from repro.types import AdaptationPolicy, Richness, SchedulerKind
from repro.video import JigsawCodec, SyntheticVideo
from repro.video.dataset import FrameQualityProbe, generate_dataset

GOLDEN_PATH = Path(__file__).with_name("golden_stream.json")

HEIGHT = 144
WIDTH = 256
NUM_FRAMES = 7  # crosses two beacon boundaries at 30 FPS / 100 ms beacons
STREAM_SEED = 43

#: (scheduler, policy-name, source_coding, rate_control) -> case key.
POLICIES = {
    "realtime_update": dict(adaptation=AdaptationPolicy.REALTIME_UPDATE),
    "no_update": dict(adaptation=AdaptationPolicy.NO_UPDATE,
                      no_update_beam_tracking=True),
    "no_update_frozen": dict(adaptation=AdaptationPolicy.NO_UPDATE,
                             no_update_beam_tracking=False),
}

CASES: List[Tuple[str, str, bool, bool]] = [
    (scheduler.value, policy, source_coding, rate_control)
    for scheduler in SchedulerKind
    for policy in POLICIES
    for source_coding in (True, False)
    for rate_control in (True, False)
]


def case_key(scheduler: str, policy: str,
             source_coding: bool, rate_control: bool) -> str:
    return (
        f"{scheduler}/{policy}"
        f"/sc={'on' if source_coding else 'off'}"
        f"/rc={'on' if rate_control else 'off'}"
    )


def build_environment():
    """Deterministic (dnn, probes, channel_model, trace) shared by all cases.

    Independent from the conftest fixtures so the recorded goldens cannot
    drift when test fixtures are tuned.
    """
    hr_video = SyntheticVideo(
        name="golden_hr", richness=Richness.HIGH,
        height=HEIGHT, width=WIDTH, num_frames=10, seed=3,
    )
    lr_video = SyntheticVideo(
        name="golden_lr", richness=Richness.LOW,
        height=HEIGHT, width=WIDTH, num_frames=10, seed=4,
    )
    dataset = generate_dataset(
        [hr_video, lr_video], frames_per_video=3, samples_per_frame=24, seed=0
    )
    dnn = DNNQualityModel(epochs=120, batch_size=32, seed=0)
    dnn.fit(dataset.features, dataset.ssim)
    codec = JigsawCodec(HEIGHT, WIDTH)
    probes = [
        FrameQualityProbe.from_frame(codec, hr_video.frame(0)),
        FrameQualityProbe.from_frame(codec, lr_video.frame(0)),
    ]
    scenario = EmulationScenario(seed=0)
    # A moving receiver exercises replanning and the firmware beam-tracking
    # path; a static arc would make all three policies near-degenerate.
    trace = scenario.mobile_receiver_trace(
        2, moving_users=[0], duration_s=0.5, rss_regime="high", seed=41
    )
    return dnn, probes, scenario.channel_model, trace


def run_case(dnn, probes, channel_model, trace,
             scheduler: str, policy: str,
             source_coding: bool, rate_control: bool) -> List[Dict]:
    """Stream one configuration and serialise its per-(frame, user) stats."""
    config = SystemConfig(
        height=HEIGHT,
        width=WIDTH,
        scheduler=SchedulerKind(scheduler),
        source_coding=source_coding,
        rate_control=rate_control,
        **POLICIES[policy],
    )
    streamer = MulticastStreamer(
        config, dnn, probes, channel_model, seed=STREAM_SEED
    )
    outcome = streamer.stream_trace(trace, num_frames=NUM_FRAMES)
    return [serialize_stat(stat) for stat in outcome.stats]


def serialize_stat(stat) -> Dict:
    """A FrameStats as a JSON-safe dict with bit-exact float encoding."""
    return {
        "frame_index": stat.frame_index,
        "user_id": stat.user_id,
        "ssim": float(stat.ssim).hex(),
        "psnr_db": float(stat.psnr_db).hex(),
        "bytes_received_per_layer": [
            float(b).hex() for b in stat.bytes_received_per_layer
        ],
        "deadline_met": bool(stat.deadline_met),
    }
