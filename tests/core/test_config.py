"""Tests for SystemConfig."""

import pytest

from repro.core import SystemConfig
from repro.errors import ConfigurationError


class TestSystemConfig:
    def test_defaults_are_paper_values(self):
        config = SystemConfig()
        assert config.fps == 30
        assert config.beacon_interval_s == pytest.approx(0.1)
        assert config.frame_budget_s == pytest.approx(1 / 30)
        assert config.frames_per_beacon == 3

    def test_rate_scale_matches_pixel_ratio(self):
        config = SystemConfig(height=288, width=512)
        assert config.rate_scale == pytest.approx((3840 * 2160) / (288 * 512))

    def test_rate_scale_unity_at_4k(self):
        config = SystemConfig(height=2160, width=3840)
        assert config.rate_scale == pytest.approx(1.0)

    def test_rate_scale_disabled(self):
        config = SystemConfig(emulate_4k_load=False)
        assert config.rate_scale == 1.0

    def test_plan_budget_leaves_reserve(self):
        config = SystemConfig(retransmit_reserve=0.2)
        assert config.plan_budget_s == pytest.approx(0.8 / 30)

    def test_bad_resolution_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(height=100, width=512)

    def test_bad_fps_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(fps=0)

    def test_bad_reserve_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(retransmit_reserve=1.0)

    def test_bad_beacon_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(beacon_interval_s=0.0)
