"""Default-codec sessions must never touch the precode, and stay golden.

The RaptorQ-style precode is opt-in via ``SystemConfig.fountain_codec``.
Two safety properties keep the seed wire format trustworthy:

* a default-config session — seed mode *and* optimized mode — never
  instantiates a :class:`repro.fountain.precode.Precode` (the PR 4
  never-instantiate pattern: the constructor is rigged to explode), and
* the recorded golden snapshots reproduce bit-identically with the precode
  module imported and its process-wide cache cleared, so merely shipping
  the new codec cannot perturb ``tests/core/golden_stream.json``.

A precode-config session is also exercised end to end here: identical
stats across seed/optimized perf modes, sane quality, and the cohort fast
path correctly bypassed.
"""

import json

import pytest

from repro.core import MulticastStreamer, SystemConfig
from repro.errors import ConfigurationError
from repro.fountain.precode import Precode
from repro.perf import perf_mode
from repro.types import SchedulerKind

from tests.core.golden_cases import (
    CASES,
    GOLDEN_PATH,
    HEIGHT,
    NUM_FRAMES,
    POLICIES,
    STREAM_SEED,
    WIDTH,
    build_environment,
    case_key,
    serialize_stat,
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def environment():
    return build_environment()


def _stream(environment, mode="optimized", **config_kwargs):
    dnn, probes, channel_model, trace = environment
    config = SystemConfig(height=HEIGHT, width=WIDTH, **config_kwargs)
    streamer = MulticastStreamer(
        config, dnn, probes, channel_model, seed=STREAM_SEED
    )
    with perf_mode(mode):
        outcome = streamer.session(trace).run(NUM_FRAMES)
    return [serialize_stat(stat) for stat in outcome.stats]


class TestDenseSessionsNeverInstantiatePrecode:
    @pytest.mark.parametrize("mode", ["seed", "optimized"])
    def test_default_config_never_builds_a_precode(
        self, golden, environment, mode, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise AssertionError(
                "a dense-codec session instantiated the precode"
            )

        Precode.clear_cache()
        monkeypatch.setattr(Precode, "__init__", explode)
        current = _stream(environment, mode=mode)
        assert current == golden[case_key(*CASES[0])]

    def test_golden_stream_unchanged_with_precode_cache_cleared(
        self, golden, environment
    ):
        """Importing the codec and clearing its cache perturbs nothing."""
        Precode.clear_cache()
        scheduler, policy, source_coding, rate_control = CASES[0]
        current = _stream(
            environment,
            scheduler=SchedulerKind(scheduler),
            source_coding=source_coding,
            rate_control=rate_control,
            **POLICIES[policy],
        )
        assert current == golden[case_key(*CASES[0])]


class TestPrecodeSessions:
    def test_precode_session_identical_across_perf_modes(self, environment):
        optimized = _stream(
            environment, mode="optimized", fountain_codec="precode"
        )
        seeded = _stream(environment, mode="seed", fountain_codec="precode")
        assert optimized == seeded
        assert len(optimized) == len(seeded) > 0

    def test_precode_session_delivers_quality(self, environment):
        stats = _stream(environment, fountain_codec="precode")
        ssims = [float.fromhex(s["ssim"]) for s in stats]
        assert len(ssims) == NUM_FRAMES * 2
        assert min(ssims) > 0.3
        assert max(ssims) > 0.9

    def test_invalid_codec_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(fountain_codec="turbo")
