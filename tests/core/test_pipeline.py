"""Tests for the staged session pipeline and the adaptation strategies."""

import numpy as np
import pytest

from repro.core import (
    BeamTrackingStrategy,
    FrozenStrategy,
    MulticastStreamer,
    RealtimeUpdateStrategy,
    Scorer,
    SystemConfig,
    default_stages,
    strategy_for,
)
from repro.errors import ConfigurationError
from repro.types import AdaptationPolicy

RES = dict(height=144, width=256)


@pytest.fixture(scope="module")
def parts(request):
    scenario = request.getfixturevalue("scenario")
    dnn = request.getfixturevalue("tiny_dnn")
    probes = [request.getfixturevalue("hr_probe")]
    trace = request.getfixturevalue("static_trace_2users")
    return scenario, dnn, probes, trace


def _streamer(parts, seed=0, **overrides):
    scenario, dnn, probes, _ = parts
    config = SystemConfig(**RES, **overrides)
    return MulticastStreamer(config, dnn, probes, scenario.channel_model, seed=seed)


class TestStrategySelection:
    def test_realtime(self):
        config = SystemConfig(**RES)
        assert isinstance(strategy_for(config), RealtimeUpdateStrategy)

    def test_no_update_tracking(self):
        config = SystemConfig(**RES, adaptation=AdaptationPolicy.NO_UPDATE)
        assert isinstance(strategy_for(config), BeamTrackingStrategy)

    def test_no_update_frozen(self):
        config = SystemConfig(
            **RES,
            adaptation=AdaptationPolicy.NO_UPDATE,
            no_update_beam_tracking=False,
        )
        assert isinstance(strategy_for(config), FrozenStrategy)


class TestDefaultStages:
    def test_stage_order(self):
        names = [stage.name for stage in default_stages()]
        assert names == [
            "plan", "encode", "map", "transmit", "feedback", "score",
        ]


class TestStreamSession:
    def test_session_matches_stream_trace(self, parts):
        _, _, _, trace = parts
        direct = _streamer(parts, seed=5).stream_trace(trace, num_frames=3)
        session = _streamer(parts, seed=5).session(trace)
        staged = session.run(3)
        assert [s.ssim for s in staged.stats] == [s.ssim for s in direct.stats]

    def test_zero_frames_rejected(self, parts):
        _, _, _, trace = parts
        with pytest.raises(ConfigurationError):
            _streamer(parts).session(trace).run(0)

    def test_strategy_override_wins(self, parts):
        """A session-level strategy replaces the config-derived one."""
        _, _, _, trace = parts
        streamer = _streamer(parts, seed=5)  # realtime config...
        session = streamer.session(trace, strategy=FrozenStrategy())
        assert isinstance(session.strategy, FrozenStrategy)
        calls = []
        original = streamer._plan

        def counting_plan(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        streamer._plan = counting_plan
        session.run(12)  # 12 frames -> 4 beacon boundaries
        assert len(calls) == 1  # frozen: only the t=0 plan

    def test_custom_stage_list(self, parts):
        """Stages are pluggable: a spy stage sees every frame context."""
        _, _, _, trace = parts

        class SpyStage:
            name = "spy"

            def __init__(self):
                self.frames = []

            def run(self, ctx, session):
                self.frames.append(ctx.frame_index)
                assert ctx.result is not None  # runs after transmit

        spy = SpyStage()
        streamer = _streamer(parts, seed=2)
        session = streamer.session(trace, stages=default_stages() + [spy])
        session.run(4)
        assert spy.frames == [0, 1, 2, 3]

    def test_stage_removal_changes_behaviour(self, parts):
        """Dropping the Scorer yields an empty outcome — stages really are
        the only writers."""
        _, _, _, trace = parts
        stages = [s for s in default_stages() if not isinstance(s, Scorer)]
        session = _streamer(parts, seed=2).session(trace, stages=stages)
        outcome = session.run(2)
        assert outcome.stats == []


class TestRetrackBeams:
    def test_hoisted_retrack_matches_policy_object(self, parts):
        """The NO_UPDATE policy owns sector re-tracking; re-tracking a
        fresh allocation against the state it was planned on is a no-op."""
        scenario, _, _, trace = parts
        streamer = _streamer(parts, seed=3)
        snapshot = trace.at_time(0.0)
        users = trace.user_ids()
        from repro.quality.curves import FrameFeatureContext

        context = FrameFeatureContext.from_probe(streamer.probes[0])
        allocation = streamer._plan(
            snapshot.estimated_state, users, {u: context for u in users}
        )
        retracked = BeamTrackingStrategy.retrack_beams(
            streamer.codebook,
            streamer.channel_model,
            allocation,
            snapshot.estimated_state,
        )
        assert len(retracked.groups) == len(allocation.groups)
        assert retracked.bytes_allocated is allocation.bytes_allocated
        assert retracked.time_s is allocation.time_s

    def test_retrack_handles_missing_channels(self, parts):
        """Users absent from the estimated state keep their frozen beam."""
        _, _, _, trace = parts
        streamer = _streamer(parts, seed=3)
        snapshot = trace.at_time(0.0)
        users = trace.user_ids()
        from repro.quality.curves import FrameFeatureContext

        context = FrameFeatureContext.from_probe(streamer.probes[0])
        allocation = streamer._plan(
            snapshot.estimated_state, users, {u: context for u in users}
        )

        class EmptyState:
            channels = {}

        retracked = BeamTrackingStrategy.retrack_beams(
            streamer.codebook, streamer.channel_model, allocation, EmptyState()
        )
        for before, after in zip(allocation.groups, retracked.groups):
            assert np.array_equal(before.plan.beam, after.plan.beam)
