"""Multi-AP pipeline: stage selection, 1-AP bit-identity, failover, repair.

The load-bearing contract: the topology axis is purely *additive*.  A
config without a topology block (or with ``num_aps == 1``) must stream
bit-identically to the pre-topology system — including on a multi-AP
*superset* trace, whose AP-0 sub-trace carries exactly the channels a
single-AP recording would (that identity is what lets one shared trace
serve the 1-AP and 2-AP arms of a failover sweep).  On top of that, the
2-AP pipeline must actually earn its keep: under deep AP-0 blockage its
SSIM must hold up at least as well as the single AP's.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core import (
    MulticastStreamer,
    MultiApCodingGroupMapper,
    MultiApPlanner,
    MultiApTransmitter,
    SystemConfig,
)
from repro.errors import ConfigurationError
from repro.obs import OBS, observed
from repro.perf import perf_mode
from repro.phy.topology import TopologyConfig

from tests.faults.conftest import fingerprint

RES = dict(height=144, width=256)

#: Fault mixes for the identity properties: clean, blocked, and mixed.
FAULT_MIXES = (
    {},
    {"blockage_rate_hz": 5.0, "blockage_depth_db": 20.0, "seed": 21},
    {"blockage_rate_hz": 3.0, "erasure_rate_hz": 4.0, "seed": 22},
)

#: The bench's failover scenario: frequent deep blockage bursts.
BLOCKAGE = dict(
    seed=11, blockage_rate_hz=6.0, blockage_duration_s=0.25,
    blockage_depth_db=25.0,
)


def _trace(scenario, num_users, seed, num_aps=1, duration_s=0.3):
    positions = scenario.place_arc(num_users, 3.0, 60, seed=seed)
    return scenario.static_trace(
        positions, duration_s=duration_s, seed=seed + 1, num_aps=num_aps
    )


def _run(scenario, tiny_dnn, hr_probe, trace, seed=0, frames=4, **overrides):
    config = SystemConfig(**RES, **overrides)
    streamer = MulticastStreamer(
        config, tiny_dnn, [hr_probe], scenario.channel_model, seed=seed
    )
    return streamer.session(trace).run(frames)


class TestStageSelection:
    def test_multi_ap_config_selects_multi_ap_stages(
        self, scenario, tiny_dnn, hr_probe
    ):
        trace = _trace(scenario, 2, seed=3, num_aps=2)
        config = SystemConfig(**RES, topology=TopologyConfig(num_aps=2))
        streamer = MulticastStreamer(
            config, tiny_dnn, [hr_probe], scenario.channel_model, seed=0
        )
        session = streamer.session(trace)
        names = [type(stage) for stage in session.stages]
        assert MultiApPlanner in names
        assert MultiApCodingGroupMapper in names
        assert MultiApTransmitter in names

    def test_single_ap_topology_selects_default_stages(
        self, scenario, tiny_dnn, hr_probe
    ):
        trace = _trace(scenario, 2, seed=3)
        config = SystemConfig(**RES, topology=TopologyConfig(num_aps=1))
        streamer = MulticastStreamer(
            config, tiny_dnn, [hr_probe], scenario.channel_model, seed=0
        )
        session = streamer.session(trace)
        assert not any(
            isinstance(stage, MultiApTransmitter) for stage in session.stages
        )

    def test_insufficient_trace_rejected(self, scenario, tiny_dnn, hr_probe):
        """A 2-AP config on a 1-AP trace is a recording mistake, not
        something to paper over."""
        trace = _trace(scenario, 2, seed=3, num_aps=1)
        config = SystemConfig(**RES, topology=TopologyConfig(num_aps=2))
        streamer = MulticastStreamer(
            config, tiny_dnn, [hr_probe], scenario.channel_model, seed=0
        )
        with pytest.raises(ConfigurationError):
            streamer.session(trace)

    def test_topology_dict_coerced(self):
        config = SystemConfig(**RES, topology={"num_aps": 2})
        assert config.num_aps == 2
        assert config.multi_ap


class TestSingleApIdentity:
    """No-topology, 1-AP-topology and superset-trace runs are one system."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        num_users=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=999),
        faults=st.sampled_from(FAULT_MIXES),
    )
    @example(num_users=2, seed=0, faults=FAULT_MIXES[1])
    def test_superset_trace_identity(
        self, scenario, tiny_dnn, hr_probe, num_users, seed, faults
    ):
        """A 1-AP config streams the AP-0 sub-trace of a 2-AP superset
        recording bit-identically to a plain 1-AP recording — in both the
        seed and the optimized transport paths."""
        single = _trace(scenario, num_users, seed)
        superset = _trace(scenario, num_users, seed, num_aps=2)
        for mode in ("seed", "optimized"):
            with perf_mode(mode):
                reference = fingerprint(_run(
                    scenario, tiny_dnn, hr_probe, single,
                    seed=seed, faults=dict(faults),
                ))
                on_superset = fingerprint(_run(
                    scenario, tiny_dnn, hr_probe, superset,
                    seed=seed, faults=dict(faults),
                ))
            assert on_superset == reference

    def test_explicit_single_ap_topology_identity(
        self, scenario, tiny_dnn, hr_probe
    ):
        """``topology=TopologyConfig(num_aps=1)`` is indistinguishable from
        no topology block at all."""
        trace = _trace(scenario, 2, seed=7)
        without = fingerprint(
            _run(scenario, tiny_dnn, hr_probe, trace, seed=7)
        )
        with_block = fingerprint(_run(
            scenario, tiny_dnn, hr_probe, trace, seed=7,
            topology=TopologyConfig(num_aps=1),
        ))
        assert with_block == without


class TestMultiApSession:
    def _two_ap_outcome(self, scenario, tiny_dnn, hr_probe, seed=0,
                        frames=6, **overrides):
        trace = _trace(scenario, 3, seed=9, num_aps=2, duration_s=0.4)
        return _run(
            scenario, tiny_dnn, hr_probe, trace, seed=seed, frames=frames,
            topology=TopologyConfig(num_aps=2), **overrides,
        )

    def test_two_ap_session_runs_and_scores(
        self, scenario, tiny_dnn, hr_probe
    ):
        outcome = self._two_ap_outcome(scenario, tiny_dnn, hr_probe)
        assert {(s.frame_index, s.user_id) for s in outcome.stats} == {
            (f, u) for f in range(6) for u in range(3)
        }
        assert all(0.0 <= s.ssim <= 1.0 for s in outcome.stats)

    def test_two_ap_session_deterministic(self, scenario, tiny_dnn, hr_probe):
        first = fingerprint(self._two_ap_outcome(
            scenario, tiny_dnn, hr_probe, faults=dict(BLOCKAGE),
        ))
        second = fingerprint(self._two_ap_outcome(
            scenario, tiny_dnn, hr_probe, faults=dict(BLOCKAGE),
        ))
        assert first == second

    def test_frame_context_carries_topology_state(
        self, scenario, tiny_dnn, hr_probe
    ):
        """The per-AP planning products are visible to downstream stages."""
        seen = []

        class Spy:
            name = "spy"

            def run(self, ctx, session):
                seen.append((
                    ctx.association, ctx.ap_users,
                    ctx.ap_allocations, ctx.repair_plans,
                ))

        trace = _trace(scenario, 3, seed=9, num_aps=2, duration_s=0.4)
        config = SystemConfig(**RES, topology=TopologyConfig(num_aps=2))
        streamer = MulticastStreamer(
            config, tiny_dnn, [hr_probe], scenario.channel_model, seed=0
        )
        from repro.core.multi_ap import multi_ap_stages
        session = streamer.session(trace, stages=multi_ap_stages() + [Spy()])
        session.run(2)
        assert len(seen) == 2
        for association, ap_users, ap_allocations, repair_plans in seen:
            assert set(association) == {0, 1, 2}
            assert all(ap in (0, 1) for ap in association.values())
            assert len(ap_users) == 2
            assert sorted(u for users in ap_users for u in users) == [0, 1, 2]
            assert len(ap_allocations) == 2
            assert repair_plans is not None

    def test_cross_ap_repair_delivers_symbols_under_blockage(
        self, scenario, tiny_dnn, hr_probe
    ):
        """Deep AP-0 blockage leaves decode deficits the secondary AP's
        repair symbols actually fill."""
        with observed("counters"):
            self._two_ap_outcome(
                scenario, tiny_dnn, hr_probe, faults=dict(BLOCKAGE),
            )
            counters = OBS.counters()
        assert counters.get("core.multi_ap.repair.users", 0) > 0
        assert counters.get("core.multi_ap.repair.delivered", 0) > 0

    def test_two_ap_holds_ssim_under_blockage(
        self, scenario, tiny_dnn, hr_probe
    ):
        """The failover claim, in miniature: with deep AP-0 blockage the
        2-AP pipeline's mean SSIM must not fall below the 1-AP pipeline's
        on the same superset trace (deterministic seeds: this is the
        bench_multi_ap acceptance flag as a unit test)."""
        trace = _trace(scenario, 3, seed=9, num_aps=2, duration_s=0.4)
        single = _run(
            scenario, tiny_dnn, hr_probe, trace, seed=0, frames=8,
            faults=dict(BLOCKAGE),
        )
        double = _run(
            scenario, tiny_dnn, hr_probe, trace, seed=0, frames=8,
            topology=TopologyConfig(num_aps=2), faults=dict(BLOCKAGE),
        )
        def mean_ssim(outcome):
            return float(np.mean([s.ssim for s in outcome.stats]))

        assert mean_ssim(double) >= mean_ssim(single) - 1e-9
