"""Tests for GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FountainCodeError
from repro.fountain.gf256 import (
    gf2_matmul,
    gf_inverse,
    gf_matmul,
    gf_matmul_blocked,
    gf_matmul_reference,
    gf_multiply,
    gf_scale_row,
    gf_solve,
)
from repro.obs import observed


class TestMultiply:
    def test_zero_annihilates(self):
        a = np.arange(256, dtype=np.uint8)
        assert np.all(gf_multiply(a, np.zeros_like(a)) == 0)

    def test_one_is_identity(self):
        a = np.arange(256, dtype=np.uint8)
        np.testing.assert_array_equal(gf_multiply(a, np.ones_like(a)), a)

    def test_commutative(self, rng):
        a = rng.integers(0, 256, 100, dtype=np.uint8)
        b = rng.integers(0, 256, 100, dtype=np.uint8)
        np.testing.assert_array_equal(gf_multiply(a, b), gf_multiply(b, a))

    def test_associative(self, rng):
        a, b, c = (rng.integers(0, 256, 50, dtype=np.uint8) for _ in range(3))
        left = gf_multiply(gf_multiply(a, b), c)
        right = gf_multiply(a, gf_multiply(b, c))
        np.testing.assert_array_equal(left, right)

    def test_distributes_over_xor(self, rng):
        a, b, c = (rng.integers(0, 256, 50, dtype=np.uint8) for _ in range(3))
        left = gf_multiply(a, b ^ c)
        right = gf_multiply(a, b) ^ gf_multiply(a, c)
        np.testing.assert_array_equal(left, right)

    def test_known_value(self):
        # In GF(256) with 0x11D: 2 * 128 = 0x1D = 29.
        assert int(gf_multiply(np.uint8(2), np.uint8(128))) == 29


class TestInverse:
    def test_all_nonzero_elements_invert(self):
        for value in range(1, 256):
            inverse = gf_inverse(value)
            product = int(gf_multiply(np.uint8(value), np.uint8(inverse)))
            assert product == 1

    def test_zero_rejected(self):
        with pytest.raises(FountainCodeError):
            gf_inverse(0)


class TestScaleRow:
    def test_scale_by_zero(self, rng):
        row = rng.integers(0, 256, 16, dtype=np.uint8)
        assert np.all(gf_scale_row(row, 0) == 0)

    def test_scale_then_unscale(self, rng):
        row = rng.integers(0, 256, 16, dtype=np.uint8)
        scaled = gf_scale_row(row, 7)
        unscaled = gf_scale_row(scaled, gf_inverse(7))
        np.testing.assert_array_equal(unscaled, row)


class TestSolve:
    def test_identity_system(self, rng):
        rhs = rng.integers(0, 256, (4, 10), dtype=np.uint8)
        solution, _ = gf_solve(np.eye(4, dtype=np.uint8), rhs)
        np.testing.assert_array_equal(solution, rhs)

    def test_random_invertible_system(self, rng):
        k = 8
        x = rng.integers(0, 256, (k, 32), dtype=np.uint8)
        matrix = rng.integers(0, 256, (k, k), dtype=np.uint8)
        rhs = gf_matmul(matrix, x)
        result = gf_solve(matrix, rhs)
        if result is not None:  # random matrix is invertible w.h.p.
            np.testing.assert_array_equal(result[0], x)

    def test_overdetermined_consistent(self, rng):
        k = 5
        x = rng.integers(0, 256, (k, 8), dtype=np.uint8)
        matrix = rng.integers(0, 256, (k + 3, k), dtype=np.uint8)
        rhs = gf_matmul(matrix, x)
        result = gf_solve(matrix, rhs)
        assert result is not None
        np.testing.assert_array_equal(result[0], x)

    def test_rank_deficient_returns_none(self):
        matrix = np.array([[1, 2], [2, 4], [0, 0]], dtype=np.uint8)
        # Row 2 = 2 * row 1 in GF(256)? 2*[1,2] = [2,4] indeed.
        rhs = np.zeros((3, 4), dtype=np.uint8)
        assert gf_solve(matrix, rhs) is None

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FountainCodeError):
            gf_solve(np.eye(3, dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8))

    def test_matmul_shape_mismatch_rejected(self):
        with pytest.raises(FountainCodeError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8))


class TestBlockedMatmul:
    """The table-blocked kernel pinned against reference accumulation."""

    @given(
        m=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=0, max_value=40),
        n=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(deadline=None, max_examples=60)
    def test_blocked_matches_reference(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (m, k), dtype=np.uint8)
        b = rng.integers(0, 256, (k, n), dtype=np.uint8)
        np.testing.assert_array_equal(
            gf_matmul_blocked(a, b), gf_matmul_reference(a, b)
        )

    @given(
        m=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=20),
        n=st.integers(min_value=1, max_value=20),
        block_elems=st.integers(min_value=1, max_value=256),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(deadline=None, max_examples=60)
    def test_block_size_does_not_change_result(self, m, k, n, block_elems, seed):
        """Tiny block budgets force multi-block paths; output is invariant."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (m, k), dtype=np.uint8)
        b = rng.integers(0, 256, (k, n), dtype=np.uint8)
        np.testing.assert_array_equal(
            gf_matmul_blocked(a, b, block_elems=block_elems),
            gf_matmul_reference(a, b),
        )

    @given(
        m=st.integers(min_value=2, max_value=30),
        k=st.integers(min_value=1, max_value=30),
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(deadline=None, max_examples=60)
    def test_gf_matmul_multi_row_uses_blocked_result(self, m, k, n, seed):
        """The gf_matmul fallback is the blocked kernel, not a column loop."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (m, k), dtype=np.uint8)
        b = rng.integers(0, 256, (k, n), dtype=np.uint8)
        np.testing.assert_array_equal(
            gf_matmul(a, b), gf_matmul_reference(a, b)
        )

    def test_single_row_fast_path_matches(self, rng):
        a = rng.integers(0, 256, (1, 50), dtype=np.uint8)
        b = rng.integers(0, 256, (50, 64), dtype=np.uint8)
        np.testing.assert_array_equal(
            gf_matmul(a, b), gf_matmul_reference(a, b)
        )


class TestGF2Matmul:
    """Bit-sliced parity matmul pinned against reference XOR accumulation."""

    @given(
        m=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(deadline=None, max_examples=60)
    def test_matches_reference_accumulation(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        mask = rng.integers(0, 2, (m, k)).astype(bool)
        b = rng.integers(0, 256, (k, n), dtype=np.uint8)
        # A boolean mask is a GF(256) coefficient matrix of zeros and ones.
        expected = gf_matmul_reference(mask.astype(np.uint8), b)
        np.testing.assert_array_equal(gf2_matmul(mask, b), expected)

    def test_empty_selection_is_zero(self):
        mask = np.zeros((3, 5), dtype=bool)
        b = np.arange(5 * 4, dtype=np.uint8).reshape(5, 4)
        np.testing.assert_array_equal(
            gf2_matmul(mask, b), np.zeros((3, 4), dtype=np.uint8)
        )

    def test_full_selection_is_xor_of_all_rows(self, rng):
        b = rng.integers(0, 256, (7, 16), dtype=np.uint8)
        mask = np.ones((1, 7), dtype=bool)
        np.testing.assert_array_equal(
            gf2_matmul(mask, b)[0], np.bitwise_xor.reduce(b, axis=0)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FountainCodeError):
            gf2_matmul(np.ones((2, 3), dtype=bool), np.zeros((4, 2), dtype=np.uint8))


class TestSolveInstrumentation:
    """gf_solve reports elimination effort through obs counters."""

    def test_counters_emitted_inside_observed(self, rng):
        k = 6
        matrix = rng.integers(0, 256, (k, k), dtype=np.uint8)
        rhs = rng.integers(0, 256, (k, 8), dtype=np.uint8)
        with observed("counters") as registry:
            gf_solve(matrix, rhs)
        counters = registry.counters()
        assert counters.get("fountain.gf.solve_calls") == 1.0
        assert counters.get("fountain.gf.solve_row_ops", 0) > 0
        assert counters.get("fountain.gf.solve_elem_ops", 0) > 0

    def test_no_counters_outside_observed(self, rng):
        k = 4
        matrix = rng.integers(0, 256, (k, k), dtype=np.uint8)
        rhs = rng.integers(0, 256, (k, 4), dtype=np.uint8)
        with observed("counters") as registry:
            pass
        gf_solve(matrix, rhs)
        assert "fountain.gf.solve_calls" not in registry.counters()

    def test_singular_solve_still_counts(self):
        matrix = np.array([[1, 2], [2, 4]], dtype=np.uint8)
        rhs = np.zeros((2, 3), dtype=np.uint8)
        with observed("counters") as registry:
            assert gf_solve(matrix, rhs) is None
        assert registry.counters().get("fountain.gf.solve_calls") == 1.0
