"""Tests for GF(256) arithmetic."""

import numpy as np
import pytest

from repro.errors import FountainCodeError
from repro.fountain.gf256 import (
    gf_inverse,
    gf_matmul,
    gf_multiply,
    gf_scale_row,
    gf_solve,
)


class TestMultiply:
    def test_zero_annihilates(self):
        a = np.arange(256, dtype=np.uint8)
        assert np.all(gf_multiply(a, np.zeros_like(a)) == 0)

    def test_one_is_identity(self):
        a = np.arange(256, dtype=np.uint8)
        np.testing.assert_array_equal(gf_multiply(a, np.ones_like(a)), a)

    def test_commutative(self, rng):
        a = rng.integers(0, 256, 100, dtype=np.uint8)
        b = rng.integers(0, 256, 100, dtype=np.uint8)
        np.testing.assert_array_equal(gf_multiply(a, b), gf_multiply(b, a))

    def test_associative(self, rng):
        a, b, c = (rng.integers(0, 256, 50, dtype=np.uint8) for _ in range(3))
        left = gf_multiply(gf_multiply(a, b), c)
        right = gf_multiply(a, gf_multiply(b, c))
        np.testing.assert_array_equal(left, right)

    def test_distributes_over_xor(self, rng):
        a, b, c = (rng.integers(0, 256, 50, dtype=np.uint8) for _ in range(3))
        left = gf_multiply(a, b ^ c)
        right = gf_multiply(a, b) ^ gf_multiply(a, c)
        np.testing.assert_array_equal(left, right)

    def test_known_value(self):
        # In GF(256) with 0x11D: 2 * 128 = 0x1D = 29.
        assert int(gf_multiply(np.uint8(2), np.uint8(128))) == 29


class TestInverse:
    def test_all_nonzero_elements_invert(self):
        for value in range(1, 256):
            inverse = gf_inverse(value)
            product = int(gf_multiply(np.uint8(value), np.uint8(inverse)))
            assert product == 1

    def test_zero_rejected(self):
        with pytest.raises(FountainCodeError):
            gf_inverse(0)


class TestScaleRow:
    def test_scale_by_zero(self, rng):
        row = rng.integers(0, 256, 16, dtype=np.uint8)
        assert np.all(gf_scale_row(row, 0) == 0)

    def test_scale_then_unscale(self, rng):
        row = rng.integers(0, 256, 16, dtype=np.uint8)
        scaled = gf_scale_row(row, 7)
        unscaled = gf_scale_row(scaled, gf_inverse(7))
        np.testing.assert_array_equal(unscaled, row)


class TestSolve:
    def test_identity_system(self, rng):
        rhs = rng.integers(0, 256, (4, 10), dtype=np.uint8)
        solution, _ = gf_solve(np.eye(4, dtype=np.uint8), rhs)
        np.testing.assert_array_equal(solution, rhs)

    def test_random_invertible_system(self, rng):
        k = 8
        x = rng.integers(0, 256, (k, 32), dtype=np.uint8)
        matrix = rng.integers(0, 256, (k, k), dtype=np.uint8)
        rhs = gf_matmul(matrix, x)
        result = gf_solve(matrix, rhs)
        if result is not None:  # random matrix is invertible w.h.p.
            np.testing.assert_array_equal(result[0], x)

    def test_overdetermined_consistent(self, rng):
        k = 5
        x = rng.integers(0, 256, (k, 8), dtype=np.uint8)
        matrix = rng.integers(0, 256, (k + 3, k), dtype=np.uint8)
        rhs = gf_matmul(matrix, x)
        result = gf_solve(matrix, rhs)
        assert result is not None
        np.testing.assert_array_equal(result[0], x)

    def test_rank_deficient_returns_none(self):
        matrix = np.array([[1, 2], [2, 4], [0, 0]], dtype=np.uint8)
        # Row 2 = 2 * row 1 in GF(256)? 2*[1,2] = [2,4] indeed.
        rhs = np.zeros((3, 4), dtype=np.uint8)
        assert gf_solve(matrix, rhs) is None

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FountainCodeError):
            gf_solve(np.eye(3, dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8))

    def test_matmul_shape_mismatch_rejected(self):
        with pytest.raises(FountainCodeError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8))
