"""Equivalence tests: batched/incremental fountain paths vs the seed path.

The optimized codec (cached coefficient rows, one-matmul batch encode,
incremental Gaussian elimination) must be *bit-identical* to the original
per-symbol / re-solve implementation for every reception pattern.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fountain.raptor import (
    COEFFICIENT_CACHE,
    CoefficientCache,
    FountainDecoder,
    FountainEncoder,
    _coefficients,
)
from repro.perf import perf_mode

_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=25
)


def _payload(seed: int, nbytes: int) -> bytes:
    return (
        np.random.default_rng(seed)
        .integers(0, 256, size=nbytes, dtype=np.uint8)
        .tobytes()
    )


def _round_trip(block_id, data, symbol_size, symbol_ids):
    """Encode, deliver exactly ``symbol_ids``, decode (None if rank-short).

    A set of exactly ``k`` symbols containing random repair rows is
    singular with probability ~1/255, so undecodability is a legitimate
    outcome the caller must compare across paths, not an error.
    """
    encoder = FountainEncoder(block_id, data, symbol_size)
    decoder = FountainDecoder(block_id, len(data), symbol_size)
    for symbol_id in symbol_ids:
        decoder.add_symbol(encoder.symbol(symbol_id))
    return decoder.decode() if decoder.is_decoded else None


class TestBatchedEncodeEquivalence:
    @given(
        nbytes=st.integers(min_value=1, max_value=600),
        symbol_size=st.integers(min_value=8, max_value=64),
        block_id=st.integers(min_value=0, max_value=2**31),
        count=st.integers(min_value=1, max_value=12),
        data_seed=st.integers(min_value=0, max_value=999),
    )
    @settings(**_SETTINGS)
    def test_batch_matches_per_symbol_seed_path(
        self, nbytes, symbol_size, block_id, count, data_seed
    ):
        data = _payload(data_seed, nbytes)
        encoder = FountainEncoder(block_id, data, symbol_size)
        k = encoder.num_source_symbols
        start = max(0, k - 2)  # straddle the systematic/repair boundary
        batched = encoder.symbols(start, count)
        with perf_mode("seed"):
            reference = [encoder.symbol(start + i) for i in range(count)]
        assert [s.payload for s in batched] == [s.payload for s in reference]
        assert [s.symbol_id for s in batched] == [s.symbol_id for s in reference]

    def test_cache_rows_match_coefficient_derivation(self):
        cache = CoefficientCache()
        k = 20
        for symbol_id in (20, 21, 57, 300):
            row = cache.row(77, k, symbol_id)
            np.testing.assert_array_equal(row, _coefficients(77, symbol_id, k))

    def test_cache_eviction_bounds_memory(self):
        cache = CoefficientCache(max_blocks=4)
        for block_id in range(10):
            cache.row(block_id, 5, 7)
        assert len(cache._blocks) <= 4
        # Evicted entries are recomputed correctly on the next request.
        np.testing.assert_array_equal(
            cache.row(0, 5, 7), _coefficients(0, 7, 5)
        )


class TestRoundTripEquivalence:
    """Decoded bytes identical across paths for every reception pattern."""

    @given(
        nbytes=st.integers(min_value=1, max_value=400),
        symbol_size=st.integers(min_value=8, max_value=48),
        loss_seed=st.integers(min_value=0, max_value=999),
        extra=st.integers(min_value=0, max_value=4),
    )
    @settings(**_SETTINGS)
    def test_random_loss(self, nbytes, symbol_size, loss_seed, extra):
        data = _payload(loss_seed + 5000, nbytes)
        encoder = FountainEncoder(42, data, symbol_size)
        k = encoder.num_source_symbols
        rng = np.random.default_rng(loss_seed)
        lost = rng.random(k) < 0.35
        ids = [i for i in range(k) if not lost[i]]
        ids += list(range(k, k + int(lost.sum()) + extra))
        rng.shuffle(ids)
        optimized = _round_trip(42, data, symbol_size, ids)
        with perf_mode("seed"):
            reference = _round_trip(42, data, symbol_size, ids)
        # Paths must agree on decodability; when decodable, on the bytes.
        assert optimized == reference
        if optimized is not None:
            assert optimized == data
        else:
            # Only an exactly-k set with repair rows may legitimately come
            # up rank-short (singular random submatrix).
            assert extra == 0 and int(lost.sum()) > 0

    @pytest.mark.parametrize(
        "pattern", ["systematic_only", "repair_only", "exactly_k", "k_plus_h"]
    )
    def test_canonical_patterns(self, pattern):
        data = _payload(7, 333)
        symbol_size = 21
        encoder = FountainEncoder(9, data, symbol_size)
        k = encoder.num_source_symbols
        ids = {
            "systematic_only": list(range(k)),
            "repair_only": list(range(k, 2 * k + 2)),
            "exactly_k": [0, 2] + list(range(k, 2 * k - 2)),
            "k_plus_h": list(range(3, k)) + list(range(k, k + 6)),
        }[pattern]
        optimized = _round_trip(9, data, symbol_size, ids)
        with perf_mode("seed"):
            reference = _round_trip(9, data, symbol_size, ids)
        assert optimized == reference == data


class TestIncrementalDecoder:
    def test_rank_grows_online(self):
        data = _payload(3, 200)
        encoder = FountainEncoder(5, data, 20)
        k = encoder.num_source_symbols
        decoder = FountainDecoder(5, len(data), 20)
        for i, symbol_id in enumerate(range(k, 2 * k)):
            decoder.add_symbol(encoder.symbol(symbol_id))
            assert decoder.rank == i + 1
        assert decoder.is_decoded

    def test_dependent_symbols_add_no_rank(self):
        data = _payload(4, 200)
        encoder = FountainEncoder(6, data, 20)
        k = encoder.num_source_symbols
        decoder = FountainDecoder(6, len(data), 20)
        for symbol_id in range(k - 1):
            decoder.add_symbol(encoder.symbol(symbol_id))
        # A duplicate id is ignored outright.
        decoder.add_symbol(encoder.symbol(0))
        assert decoder.rank == k - 1
        assert not decoder.is_decoded
        decoder.add_symbol(encoder.symbol(k - 1))
        assert decoder.is_decoded
        assert decoder.decode() == data

    def test_decodability_identical_to_seed_path_stepwise(self):
        """Both decoders flip to decoded on exactly the same symbol."""
        data = _payload(8, 310)
        symbol_size = 17
        encoder = FountainEncoder(11, data, symbol_size)
        k = encoder.num_source_symbols
        rng = np.random.default_rng(2)
        ids = list(rng.permutation(np.arange(2, k + 8)))
        incremental = FountainDecoder(11, len(data), symbol_size)
        with perf_mode("seed"):
            reference = FountainDecoder(11, len(data), symbol_size)
        for symbol_id in ids:
            symbol = encoder.symbol(int(symbol_id))
            with perf_mode("seed"):
                ref_done = reference.add_symbol(symbol)
            assert incremental.add_symbol(symbol) == ref_done
        assert incremental.decode() == reference.decode() == data

    def test_shared_cache_isolated_per_block(self):
        COEFFICIENT_CACHE.clear()
        a, b = _payload(1, 100), _payload(2, 100)
        ids = list(range(10, 22))  # k = 10: repair-only, two spare
        out_a = _round_trip(100, a, 10, ids)
        out_b = _round_trip(101, b, 10, ids)
        assert out_a == a and out_b == b
