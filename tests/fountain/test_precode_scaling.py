"""Decode-cost scaling regression: inactivation must stay sub-cubic in K.

The tentpole claim is that precode decoding stops scaling as full ``O(K^3)``
Gaussian elimination.  This suite makes that claim a tier-1 regression
test rather than prose: elimination effort is read from the ``obs``
counters (``fountain.inactivation.elem_ops`` for the precode,
``fountain.gf.solve_elem_ops`` for the dense control on the instrumented
seed path) and the growth exponent is bounded via a log-log fit over a K
ladder.

Measured on the seed ladder (K = 32..256, all-repair reception, +8
overhead): the dense exponent sits near 2.9 and the precode exponent near
1.5, two orders of magnitude apart in absolute ops at K = 256 — the
asserted bounds leave wide margin on both sides.
"""

import numpy as np
import pytest

from repro.fountain.precode import PrecodeDecoder, PrecodeEncoder
from repro.fountain.raptor import FountainDecoder, FountainEncoder
from repro.obs import observed
from repro.perf import perf_mode

K_LADDER = [32, 64, 128, 256]
SYMBOL_SIZE = 8
OVERHEAD = 8


def _payload(seed: int, nbytes: int) -> bytes:
    return (
        np.random.default_rng(seed)
        .integers(0, 256, size=nbytes, dtype=np.uint8)
        .tobytes()
    )


def _precode_elem_ops(k: int) -> int:
    """Elimination element-ops for one all-repair precode decode."""
    data = _payload(k, k * SYMBOL_SIZE)
    encoder = PrecodeEncoder(0, data, SYMBOL_SIZE)
    decoder = PrecodeDecoder(0, len(data), SYMBOL_SIZE)
    with observed("counters") as registry:
        for symbol in encoder.symbols(k, k + OVERHEAD):
            decoder.add_symbol(symbol)
        assert decoder.decode() == data
    counters = registry.counters()
    assert counters["fountain.inactivation.solves"] >= 1
    assert decoder.last_stats is not None
    # The registry total and the returned stats agree on the tally source.
    assert counters["fountain.inactivation.elem_ops"] > 0
    return int(decoder.last_stats.elem_ops)


def _dense_elem_ops(k: int) -> int:
    """Elimination element-ops for the dense control (seed-path gf_solve)."""
    data = _payload(k, k * SYMBOL_SIZE)
    with perf_mode("seed"):
        with observed("counters") as registry:
            encoder = FountainEncoder(0, data, SYMBOL_SIZE)
            decoder = FountainDecoder(0, len(data), SYMBOL_SIZE)
            for symbol in encoder.symbols(k, k + OVERHEAD):
                decoder.add_symbol(symbol)
            assert decoder.decode() == data
    ops = registry.counters().get("fountain.gf.solve_elem_ops", 0.0)
    assert ops > 0
    return int(ops)


def _growth_exponent(ks, ops) -> float:
    slope, _ = np.polyfit(np.log(ks), np.log(ops), 1)
    return float(slope)


class TestDecodeCostScaling:
    def test_inactivation_ops_grow_subcubically(self):
        ops = [_precode_elem_ops(k) for k in K_LADDER]
        exponent = _growth_exponent(K_LADDER, ops)
        assert exponent < 2.0, (
            f"inactivation decode ops grew as K^{exponent:.2f} "
            f"(ops={ops}) — precode no longer sub-cubic"
        )

    def test_dense_control_scales_cubically(self):
        """The control: full elimination really is ~K^3 on the same ladder."""
        ops = [_dense_elem_ops(k) for k in K_LADDER]
        exponent = _growth_exponent(K_LADDER, ops)
        assert exponent > 2.3, (
            f"dense control decode ops grew as K^{exponent:.2f} "
            f"(ops={ops}) — control no longer exercises full elimination"
        )

    def test_precode_absolute_advantage(self):
        """At the top of the ladder the gap is orders of magnitude."""
        k = K_LADDER[-1]
        assert _dense_elem_ops(k) > 20 * _precode_elem_ops(k)

    @pytest.mark.parametrize("k", K_LADDER)
    def test_core_stays_small(self, k):
        """The dense core handed to gf_solve stays far below K."""
        data = _payload(k, k * SYMBOL_SIZE)
        encoder = PrecodeEncoder(0, data, SYMBOL_SIZE)
        decoder = PrecodeDecoder(0, len(data), SYMBOL_SIZE)
        for symbol in encoder.symbols(k, k + OVERHEAD):
            decoder.add_symbol(symbol)
        assert decoder.decode() == data
        stats = decoder.last_stats
        assert stats is not None
        assert stats.core_cols <= max(24, k // 4)
        assert stats.peeled + stats.inactivated == encoder.precode.w
