"""Differential codec harness: precode vs dense decoder equivalence.

The precode codec must be a drop-in replacement for the dense random-linear
code at the :mod:`repro.fountain.block` seam: same systematic wire framing,
same recovered payloads, same ``FountainCodeError`` surface.  This suite
drives both codecs through identical reception patterns — hypothesis-chosen
and adversarial (prefix loss, every-other, all-repair, duplicates) — and
asserts the observable behaviour matches.

Decode *success* at minimal overhead is probabilistic and legitimately
differs between the codes (each fails on a ~1/256-ish sliver of symbol
sets), so equivalence is asserted where it is information-theoretically
forced: both must fail below K distinct symbols, both must succeed at the
overhead margin the adversarial patterns provide, and every success must
reproduce the original payload bit-exactly.

The default run sweeps a representative K ladder; set ``REPRO_FULL_K_SWEEP=1``
(nightly CI) to widen the hypothesis K range to the full [1, 256].
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FountainCodeError
from repro.fountain.precode import Precode, PrecodeDecoder, PrecodeEncoder
from repro.fountain.raptor import FountainDecoder, FountainEncoder

FULL_SWEEP = os.environ.get("REPRO_FULL_K_SWEEP", "") == "1"

#: Hypothesis K range: full [1, 256] nightly, a cheaper span by default.
MAX_K = 256 if FULL_SWEEP else 48

#: Deterministic K ladder for the parametrised adversarial patterns.
K_LADDER = list(range(1, 257)) if FULL_SWEEP else [1, 2, 3, 5, 8, 20, 47, 64, 128, 256]

_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=40 if FULL_SWEEP else 20,
)


def _payload(seed: int, nbytes: int) -> bytes:
    return (
        np.random.default_rng(seed)
        .integers(0, 256, size=nbytes, dtype=np.uint8)
        .tobytes()
    )


def _deliver(codec_pair, symbol_ids):
    """Feed the same symbol-id stream through both codecs.

    Returns ``(dense_payload_or_None, precode_payload_or_None)``.
    """
    (d_enc, d_dec), (p_enc, p_dec) = codec_pair
    for sid in symbol_ids:
        d_dec.add_symbol(d_enc.symbol(sid))
        p_dec.add_symbol(p_enc.symbol(sid))
    dense = d_dec.decode() if d_dec.is_decoded else None
    pre = p_dec.decode() if p_dec.is_decoded else None
    return dense, pre


def _pair(block_id, data, symbol_size):
    return (
        (
            FountainEncoder(block_id, data, symbol_size),
            FountainDecoder(block_id, len(data), symbol_size),
        ),
        (
            PrecodeEncoder(block_id, data, symbol_size),
            PrecodeDecoder(block_id, len(data), symbol_size),
        ),
    )


class TestWireContract:
    """Both codecs present the same symbol framing and systematic prefix."""

    @given(
        k=st.integers(min_value=1, max_value=MAX_K),
        symbol_size=st.integers(min_value=1, max_value=40),
        block_id=st.integers(min_value=0, max_value=2**20),
        data_seed=st.integers(min_value=0, max_value=99),
        short=st.integers(min_value=0, max_value=30),
    )
    @settings(**_SETTINGS)
    def test_systematic_symbols_identical(
        self, k, symbol_size, block_id, data_seed, short
    ):
        nbytes = max(1, k * symbol_size - (short % symbol_size))
        data = _payload(data_seed, nbytes)
        dense = FountainEncoder(block_id, data, symbol_size)
        pre = PrecodeEncoder(block_id, data, symbol_size)
        assert pre.num_source_symbols == dense.num_source_symbols
        assert pre.data_len == dense.data_len
        for sid in range(dense.num_source_symbols):
            d_sym = dense.symbol(sid)
            p_sym = pre.symbol(sid)
            assert p_sym.payload == d_sym.payload
            assert p_sym.block_id == d_sym.block_id
            assert p_sym.symbol_id == d_sym.symbol_id

    @given(
        k=st.integers(min_value=1, max_value=MAX_K),
        symbol_size=st.integers(min_value=1, max_value=24),
        data_seed=st.integers(min_value=0, max_value=99),
    )
    @settings(**_SETTINGS)
    def test_systematic_reception_decodes_identically(
        self, k, symbol_size, data_seed
    ):
        data = _payload(data_seed, k * symbol_size)
        dense, pre = _deliver(_pair(5, data, symbol_size), range(k))
        assert dense == data
        assert pre == data


class TestAdversarialPatterns:
    """Constructed erasure patterns with a safe overhead margin."""

    @pytest.mark.parametrize("k", K_LADDER)
    def test_prefix_loss(self, k):
        """The first source symbol never arrives; repair fills the hole."""
        symbol_size = 12
        data = _payload(k, k * symbol_size)
        ids = list(range(1, k)) + list(range(k, k + 4))
        dense, pre = _deliver(_pair(7, data, symbol_size), ids)
        assert dense == data
        assert pre == data

    @pytest.mark.parametrize("k", K_LADDER)
    def test_every_other_symbol(self, k):
        symbol_size = 12
        data = _payload(k + 1, k * symbol_size)
        ids = list(range(0, 2 * k + 8, 2))
        dense, pre = _deliver(_pair(9, data, symbol_size), ids)
        assert dense == data
        assert pre == data

    @pytest.mark.parametrize("k", K_LADDER)
    def test_all_repair(self, k):
        """No systematic symbol at all — pure rateless recovery."""
        symbol_size = 12
        data = _payload(k + 2, k * symbol_size)
        ids = list(range(k, 2 * k + 8))
        dense, pre = _deliver(_pair(11, data, symbol_size), ids)
        assert dense == data
        assert pre == data

    @pytest.mark.parametrize("k", K_LADDER)
    def test_duplicates_add_no_information(self, k):
        """Duplicate symbols count once and never trigger a decode."""
        symbol_size = 12
        data = _payload(k + 3, k * symbol_size)
        below = list(range(1, k))  # k-1 distinct: undecodable
        pair = _pair(13, data, symbol_size)
        (d_enc, d_dec), (p_enc, p_dec) = pair
        for sid in below + below + below[:1] * 3:
            assert d_dec.add_symbol(d_enc.symbol(sid)) is False
            assert p_dec.add_symbol(p_enc.symbol(sid)) is False
        assert d_dec.received_count == p_dec.received_count == len(below)
        assert d_dec.received_ids() == p_dec.received_ids() == set(below)
        # Fresh repair symbols complete the decode despite the duplicates.
        dense, pre = _deliver(pair, range(k, k + 4))
        assert dense == data
        assert pre == data


class TestUndecodableSets:
    """Below K distinct symbols both codecs must refuse, identically."""

    @pytest.mark.parametrize("k", [k for k in K_LADDER if k > 1])
    def test_insufficient_symbols_raise(self, k):
        symbol_size = 8
        data = _payload(k + 4, k * symbol_size)
        ids = list(range(k - 1)) + [0, 0]  # duplicates don't help
        (d_enc, d_dec), (p_enc, p_dec) = _pair(17, data, symbol_size)
        for sid in ids:
            assert d_dec.add_symbol(d_enc.symbol(sid)) is False
            assert p_dec.add_symbol(p_enc.symbol(sid)) is False
        with pytest.raises(FountainCodeError) as dense_err:
            d_dec.decode()
        with pytest.raises(FountainCodeError) as pre_err:
            p_dec.decode()
        assert str(dense_err.value) == str(pre_err.value)
        assert not d_dec.is_decoded and not p_dec.is_decoded
        assert d_dec.symbols_missing == p_dec.symbols_missing == 1

    @given(
        k=st.integers(min_value=2, max_value=MAX_K),
        symbol_size=st.integers(min_value=1, max_value=16),
        drop=st.integers(min_value=1, max_value=4),
        data_seed=st.integers(min_value=0, max_value=99),
    )
    @settings(**_SETTINGS)
    def test_distinct_below_k_never_decodes(self, k, symbol_size, drop, data_seed):
        data = _payload(data_seed, k * symbol_size)
        n_distinct = k - min(drop, k - 1)
        ids = list(range(k, k + n_distinct))  # repair-only, still < k
        dense, pre = _deliver(_pair(19, data, symbol_size), ids)
        assert dense is None
        assert pre is None


class TestRandomizedEquivalence:
    """Hypothesis-chosen reception patterns at decodable overhead."""

    @given(
        k=st.integers(min_value=1, max_value=MAX_K),
        symbol_size=st.integers(min_value=1, max_value=24),
        data_seed=st.integers(min_value=0, max_value=999),
        pattern_seed=st.integers(min_value=0, max_value=999),
        short=st.integers(min_value=0, max_value=30),
    )
    @settings(**_SETTINGS)
    def test_random_patterns_roundtrip(
        self, k, symbol_size, data_seed, pattern_seed, short
    ):
        nbytes = max(1, k * symbol_size - (short % symbol_size))
        data = _payload(data_seed, nbytes)
        rng = np.random.default_rng(pattern_seed)
        # Overhead 3 over a window twice the block: erasures everywhere,
        # margin enough that both codecs are expected to succeed.
        ids = rng.choice(2 * k + 8, size=k + 3, replace=False).tolist()
        dense, pre = _deliver(_pair(23, data, symbol_size), ids)
        if dense is not None:
            assert dense == data
        if pre is not None:
            assert pre == data
        # At +3 overhead a failure is a ~1e-7-class event for either codec;
        # flag it loudly rather than letting silent skews accumulate.
        assert dense is not None
        assert pre is not None

    @given(
        k=st.integers(min_value=1, max_value=MAX_K),
        data_seed=st.integers(min_value=0, max_value=999),
    )
    @settings(**_SETTINGS)
    def test_decode_is_idempotent(self, k, data_seed):
        symbol_size = 10
        data = _payload(data_seed, k * symbol_size)
        (_, _), (p_enc, p_dec) = _pair(29, data, symbol_size)
        for sid in range(k, 2 * k + 4):
            p_dec.add_symbol(p_enc.symbol(sid))
        first = p_dec.decode()
        assert p_dec.decode() == first == data
        # Late symbols after decode are accepted and change nothing.
        assert p_dec.add_symbol(p_enc.symbol(0)) is True
        assert p_dec.decode() == data


class TestPrecodeStructure:
    """Structural invariants of the cached per-K precode."""

    @pytest.mark.parametrize("k", K_LADDER)
    def test_constraint_dimensions(self, k):
        pre = Precode.for_k(k)
        assert pre.l == pre.k + pre.s + pre.h
        assert pre.w == pre.k + pre.s
        assert pre.encode_matrix.shape == (pre.l, pre.k)
        assert pre.s >= 3 and pre.h >= 4

    def test_for_k_caches(self):
        assert Precode.for_k(20) is Precode.for_k(20)

    def test_lt_rows_block_independent(self):
        """Same (K, symbol_id) row regardless of which block asks."""
        pre = Precode.for_k(20)
        a_active, a_pi = pre.lt_indices(57)
        b_active, b_pi = Precode.for_k(20).lt_indices(57)
        np.testing.assert_array_equal(a_active, b_active)
        np.testing.assert_array_equal(a_pi, b_pi)

    @pytest.mark.parametrize("k", K_LADDER)
    def test_repair_rows_sparse(self, k):
        """Mean LT degree stays bounded — the sparsity the speedup rests on."""
        pre = Precode.for_k(k)
        degrees = [
            len(pre.lt_indices(sid)[0]) + len(pre.lt_indices(sid)[1])
            for sid in range(k, k + 200)
        ]
        assert max(degrees) <= 32
        assert float(np.mean(degrees)) < 12.0
