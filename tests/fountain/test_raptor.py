"""Tests for the systematic fountain code."""

import numpy as np
import pytest

from repro.errors import FountainCodeError
from repro.fountain.raptor import (
    FountainDecoder,
    FountainEncoder,
    decode_failure_probability,
)


@pytest.fixture()
def payload(rng):
    return rng.integers(0, 256, size=4321, dtype=np.uint8).tobytes()


class TestEncoder:
    def test_k_from_data_and_symbol_size(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        assert encoder.num_source_symbols == 9  # ceil(4321/500)

    def test_systematic_symbols_are_source(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        assert encoder.symbol(0).payload == payload[:500]
        assert encoder.symbol(1).payload == payload[500:1000]

    def test_repair_symbols_differ_from_source(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        repair = encoder.symbol(encoder.num_source_symbols + 3)
        assert repair.payload != payload[:500]
        assert len(repair.payload) == 500

    def test_symbols_deterministic(self, payload):
        a = FountainEncoder(7, payload, 500)
        b = FountainEncoder(7, payload, 500)
        assert a.symbol(20).payload == b.symbol(20).payload

    def test_different_block_ids_give_different_repair(self, payload):
        a = FountainEncoder(1, payload, 500)
        b = FountainEncoder(2, payload, 500)
        sid = a.num_source_symbols + 1
        assert a.symbol(sid).payload != b.symbol(sid).payload

    def test_empty_data_rejected(self):
        with pytest.raises(FountainCodeError):
            FountainEncoder(1, b"", 500)

    def test_bad_symbol_size_rejected(self, payload):
        with pytest.raises(FountainCodeError):
            FountainEncoder(1, payload, 0)


class TestDecoder:
    def test_systematic_roundtrip(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        decoder = FountainDecoder(1, len(payload), 500)
        for symbol in encoder.symbols(0, encoder.num_source_symbols):
            decoder.add_symbol(symbol)
        assert decoder.decode() == payload

    def test_repair_only_roundtrip(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        decoder = FountainDecoder(1, len(payload), 500)
        k = encoder.num_source_symbols
        for symbol in encoder.symbols(k, k + 2):  # only repair symbols
            decoder.add_symbol(symbol)
        assert decoder.is_decoded
        assert decoder.decode() == payload

    def test_mixed_roundtrip_with_losses(self, payload, rng):
        encoder = FountainEncoder(1, payload, 500)
        decoder = FountainDecoder(1, len(payload), 500)
        for symbol in encoder.symbols(0, 2 * encoder.num_source_symbols):
            if rng.random() > 0.45:
                decoder.add_symbol(symbol)
        assert decoder.decode() == payload

    def test_duplicates_add_nothing(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        decoder = FountainDecoder(1, len(payload), 500)
        symbol = encoder.symbol(0)
        for _ in range(10):
            decoder.add_symbol(symbol)
        assert decoder.received_count == 1
        assert not decoder.is_decoded

    def test_insufficient_symbols_raise(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        decoder = FountainDecoder(1, len(payload), 500)
        decoder.add_symbol(encoder.symbol(0))
        with pytest.raises(FountainCodeError):
            decoder.decode()

    def test_wrong_block_rejected(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        decoder = FountainDecoder(2, len(payload), 500)
        with pytest.raises(FountainCodeError):
            decoder.add_symbol(encoder.symbol(0))

    def test_wrong_payload_size_rejected(self, payload):
        decoder = FountainDecoder(1, len(payload), 500)
        from repro.fountain.raptor import FountainSymbol

        with pytest.raises(FountainCodeError):
            decoder.add_symbol(FountainSymbol(1, 0, b"short"))

    def test_received_ids_tracked(self, payload):
        encoder = FountainEncoder(1, payload, 500)
        decoder = FountainDecoder(1, len(payload), 500)
        decoder.add_symbol(encoder.symbol(3))
        decoder.add_symbol(encoder.symbol(12))
        assert decoder.received_ids() == {3, 12}

    def test_single_symbol_block(self):
        encoder = FountainEncoder(1, b"tiny", 500)
        decoder = FountainDecoder(1, 4, 500)
        decoder.add_symbol(encoder.symbol(0))
        assert decoder.decode() == b"tiny"


class TestOverheadProperty:
    def test_exact_k_decodes_with_high_probability(self, rng):
        """Receiving exactly K random repair symbols should almost always
        decode (failure ~ 1/256 per missing rank)."""
        data = rng.integers(0, 256, size=3000, dtype=np.uint8).tobytes()
        successes = 0
        trials = 30
        for trial in range(trials):
            encoder = FountainEncoder(trial, data, 300)
            decoder = FountainDecoder(trial, len(data), 300)
            k = encoder.num_source_symbols
            for symbol in encoder.symbols(k + trial, k):  # K repair symbols
                decoder.add_symbol(symbol)
            successes += decoder.is_decoded
        assert successes >= trials - 2

    def test_failure_probability_formula(self):
        assert decode_failure_probability(0) == pytest.approx(1 / 256)
        assert decode_failure_probability(1) == pytest.approx(1 / 256**2)
        assert decode_failure_probability(-1) == 1.0
