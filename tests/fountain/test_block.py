"""Tests for the sublayer <-> fountain-block mapping."""

import numpy as np
import pytest

from repro.errors import FountainCodeError
from repro.fountain.block import (
    DEFAULT_SYMBOL_SIZE,
    DENSE_CODEC,
    PRECODE_CODEC,
    TARGET_SYMBOLS_PER_UNIT,
    CodingUnitId,
    FrameBlockDecoder,
    FrameBlockEncoder,
    all_unit_ids,
    symbol_size_for,
)
from repro.video.jigsaw import LayerStructure
from repro.video.metrics import ssim


class TestCodingUnitId:
    def test_block_id_roundtrip(self):
        for unit in all_unit_ids(0) + all_unit_ids(7):
            assert CodingUnitId.from_block_id(unit.block_id) == unit

    def test_87_units_per_frame(self):
        assert len(all_unit_ids(0)) == 87

    def test_block_ids_unique_across_frames(self):
        ids_f0 = {u.block_id for u in all_unit_ids(0)}
        ids_f1 = {u.block_id for u in all_unit_ids(1)}
        assert not ids_f0 & ids_f1

    def test_bad_layer_rejected(self):
        with pytest.raises(FountainCodeError):
            CodingUnitId(0, 4, 0)
        with pytest.raises(FountainCodeError):
            CodingUnitId(0, 1, 4)

    def test_sublayer_base_derived_from_counts(self):
        from dataclasses import fields

        from repro.video.jigsaw import SUBLAYER_COUNTS

        expected = []
        total = 0
        for count in SUBLAYER_COUNTS:
            expected.append(total)
            total += count
        assert CodingUnitId._SUBLAYER_BASE == tuple(expected) == (0, 3, 7, 23)
        # A ClassVar, not a per-instance dataclass field.
        assert "_SUBLAYER_BASE" not in {f.name for f in fields(CodingUnitId)}


class TestSymbolSizing:
    def test_small_resolution_keeps_20_symbols(self):
        structure = LayerStructure(144, 256)
        size = symbol_size_for(structure)
        k = -(-structure.sublayer_nbytes // size)
        assert k == TARGET_SYMBOLS_PER_UNIT

    def test_4k_capped_at_6000(self):
        structure = LayerStructure(2160, 3840)
        assert symbol_size_for(structure) == DEFAULT_SYMBOL_SIZE


class TestFrameBlockRoundtrip:
    def test_full_delivery_reconstructs(self, codec, hr_probe):
        encoder = FrameBlockEncoder(0, hr_probe.layered)
        decoder = FrameBlockDecoder(0, codec.structure, encoder.symbol_size)
        k = encoder.symbols_per_unit()
        for unit in encoder.units:
            for symbol in encoder.next_symbols(unit, k):
                decoder.ingest(symbol)
        layered, masks = decoder.assemble()
        assert all(mask.all() for mask in masks)
        reference = codec.decode_fractions(hr_probe.layered, [1, 1, 1, 1])
        rebuilt = codec.decode(layered, masks)
        np.testing.assert_array_equal(reference.y, rebuilt.y)

    def test_partial_delivery_decodes_partial(self, codec, hr_probe, hr_video):
        encoder = FrameBlockEncoder(0, hr_probe.layered)
        decoder = FrameBlockDecoder(0, codec.structure, encoder.symbol_size)
        k = encoder.symbols_per_unit()
        for unit in encoder.units:
            if unit.layer <= 1:
                for symbol in encoder.next_symbols(unit, k):
                    decoder.ingest(symbol)
        layered, masks = decoder.assemble()
        assert masks[0].all() and masks[1].all()
        assert not masks[2].any()
        rebuilt = codec.decode(layered, masks)
        quality = ssim(hr_video.frame(0), rebuilt)
        assert quality == pytest.approx(hr_probe.cumulative_ssim[1], abs=0.01)

    def test_lossy_delivery_with_makeup_symbols(self, codec, hr_probe, rng):
        encoder = FrameBlockEncoder(0, hr_probe.layered)
        decoder = FrameBlockDecoder(0, codec.structure, encoder.symbol_size)
        k = encoder.symbols_per_unit()
        unit = encoder.units[0]
        for symbol in encoder.next_symbols(unit, k):
            if rng.random() > 0.3:
                decoder.ingest(symbol)
        missing = k - decoder.unit_decoder(unit).received_count
        if missing > 0:
            for symbol in encoder.next_symbols(unit, missing + 1):
                decoder.ingest(symbol)
        assert decoder.unit_decoder(unit).is_decoded

    def test_stream_continues_across_calls(self, hr_probe):
        encoder = FrameBlockEncoder(0, hr_probe.layered)
        unit = encoder.units[0]
        first = encoder.next_symbols(unit, 5)
        second = encoder.next_symbols(unit, 5)
        ids = [s.symbol_id for s in first + second]
        assert ids == list(range(10))
        assert encoder.emitted_count(unit) == 10

    def test_symbol_at_is_stable(self, hr_probe):
        encoder = FrameBlockEncoder(0, hr_probe.layered)
        unit = encoder.units[3]
        assert encoder.symbol_at(unit, 2).payload == encoder.symbol_at(unit, 2).payload

    def test_wrong_frame_symbol_rejected(self, codec, hr_probe):
        encoder = FrameBlockEncoder(1, hr_probe.layered)
        decoder = FrameBlockDecoder(0, codec.structure, encoder.symbol_size)
        symbol = encoder.next_symbols(encoder.units[0], 1)[0]
        with pytest.raises(FountainCodeError):
            decoder.ingest(symbol)

    def test_bytes_received_accounting(self, codec, hr_probe):
        encoder = FrameBlockEncoder(0, hr_probe.layered)
        decoder = FrameBlockDecoder(0, codec.structure, encoder.symbol_size)
        unit = encoder.units[0]  # layer 0
        for symbol in encoder.next_symbols(unit, 5):
            decoder.ingest(symbol)
        per_layer = decoder.bytes_received_per_layer()
        assert per_layer[0] == 5 * encoder.symbol_size
        assert per_layer[1:].sum() == 0


class TestCodecSelection:
    def test_default_codec_is_dense(self, codec, hr_probe):
        encoder = FrameBlockEncoder(0, hr_probe.layered)
        decoder = FrameBlockDecoder(0, codec.structure, encoder.symbol_size)
        assert encoder.codec == DENSE_CODEC
        assert decoder.codec == DENSE_CODEC
        unit = encoder.units[0]
        assert isinstance(
            encoder._encoders[unit], __import__(
                "repro.fountain.raptor", fromlist=["FountainEncoder"]
            ).FountainEncoder
        )

    def test_unknown_codec_rejected(self, codec, hr_probe):
        with pytest.raises(FountainCodeError):
            FrameBlockEncoder(0, hr_probe.layered, codec="turbo")
        with pytest.raises(FountainCodeError):
            FrameBlockDecoder(0, codec.structure, codec="turbo")

    def test_precode_full_delivery_reconstructs(self, codec, hr_probe):
        encoder = FrameBlockEncoder(0, hr_probe.layered, codec=PRECODE_CODEC)
        decoder = FrameBlockDecoder(
            0, codec.structure, encoder.symbol_size, codec=PRECODE_CODEC
        )
        assert encoder.codec == decoder.codec == PRECODE_CODEC
        k = encoder.symbols_per_unit()
        for unit in encoder.units:
            for symbol in encoder.next_symbols(unit, k):
                decoder.ingest(symbol)
        layered, masks = decoder.assemble()
        assert all(mask.all() for mask in masks)
        reference = codec.decode_fractions(hr_probe.layered, [1, 1, 1, 1])
        rebuilt = codec.decode(layered, masks)
        np.testing.assert_array_equal(reference.y, rebuilt.y)

    def test_precode_repair_only_delivery(self, codec, hr_probe):
        """Drop every systematic symbol; repair symbols still reconstruct."""
        encoder = FrameBlockEncoder(0, hr_probe.layered, codec=PRECODE_CODEC)
        decoder = FrameBlockDecoder(
            0, codec.structure, encoder.symbol_size, codec=PRECODE_CODEC
        )
        k = encoder.symbols_per_unit()
        unit = encoder.units[0]
        encoder.next_symbols(unit, k)  # discarded: simulate total loss
        for symbol in encoder.next_symbols(unit, k + 3):
            decoder.ingest(symbol)
        assert decoder.unit_decoder(unit).is_decoded
        payload = decoder.unit_decoder(unit).decode()
        assert payload == hr_probe.layered.sublayer_payload(
            unit.layer, unit.sublayer
        )

    def test_precode_systematic_symbols_match_dense_wire(self, hr_probe):
        dense = FrameBlockEncoder(0, hr_probe.layered, codec=DENSE_CODEC)
        pre = FrameBlockEncoder(0, hr_probe.layered, codec=PRECODE_CODEC)
        unit = dense.units[0]
        k = dense.symbols_per_unit()
        for d_sym, p_sym in zip(
            dense.next_symbols(unit, k), pre.next_symbols(unit, k)
        ):
            assert d_sym.payload == p_sym.payload
            assert d_sym.symbol_id == p_sym.symbol_id
            assert d_sym.block_id == p_sym.block_id
