"""Tests for the paper's DNN quality model (architecture, training,
input gradients, persistence)."""

import numpy as np
import pytest

from repro.errors import QualityModelError
from repro.quality.dnn import HIDDEN_LAYERS, INPUT_FEATURES, DNNQualityModel


class TestArchitecture:
    def test_parameter_shapes_match_paper(self, small_dataset):
        model = DNNQualityModel(epochs=1, seed=0)
        model.fit(small_dataset.features[:32], small_dataset.ssim[:32])
        params = model._params
        assert len(params) == 2 * (HIDDEN_LAYERS + 1)
        for layer in range(HIDDEN_LAYERS):
            assert params[2 * layer].shape == (INPUT_FEATURES, INPUT_FEATURES)
            assert params[2 * layer + 1].shape == (INPUT_FEATURES,)
        assert params[-2].shape == (INPUT_FEATURES, 1)
        assert params[-1].shape == (1,)

    def test_wrong_feature_count_rejected(self, tiny_dnn):
        with pytest.raises(QualityModelError):
            tiny_dnn.predict(np.zeros(7))

    def test_unfitted_predict_raises(self):
        with pytest.raises(QualityModelError):
            DNNQualityModel().predict(np.zeros(INPUT_FEATURES))


class TestTraining:
    def test_loss_decreases(self, small_dataset):
        model = DNNQualityModel(epochs=60, seed=0)
        model.fit(small_dataset.features, small_dataset.ssim)
        losses = model.training_loss
        assert losses[-1] < losses[0]

    def test_beats_mean_predictor(self, tiny_dnn, small_dataset):
        mean_mse = float(np.var(small_dataset.ssim))
        assert tiny_dnn.mse(small_dataset.features, small_dataset.ssim) < mean_mse / 4

    def test_deterministic_given_seed(self, small_dataset):
        a = DNNQualityModel(epochs=10, seed=5)
        a.fit(small_dataset.features, small_dataset.ssim)
        b = DNNQualityModel(epochs=10, seed=5)
        b.fit(small_dataset.features, small_dataset.ssim)
        np.testing.assert_array_equal(
            a.predict(small_dataset.features), b.predict(small_dataset.features)
        )

    def test_shape_mismatch_rejected(self, rng):
        model = DNNQualityModel(epochs=1)
        with pytest.raises(QualityModelError):
            model.fit(rng.normal(size=(10, 9)), np.zeros(9))


class TestInputGradient:
    def test_matches_finite_differences(self, tiny_dnn, small_dataset):
        x = small_dataset.features[:3].copy()
        _, analytic = tiny_dnn.predict_with_input_grad(x)
        eps = 1e-6
        for row in range(x.shape[0]):
            for col in range(x.shape[1]):
                plus = x.copy()
                plus[row, col] += eps
                minus = x.copy()
                minus[row, col] -= eps
                numeric = (
                    tiny_dnn.predict(plus)[row] - tiny_dnn.predict(minus)[row]
                ) / (2 * eps)
                assert analytic[row, col] == pytest.approx(numeric, abs=1e-5)

    def test_predictions_consistent_with_predict(self, tiny_dnn, small_dataset):
        x = small_dataset.features[:8]
        plain = tiny_dnn.predict(x)
        with_grad, _ = tiny_dnn.predict_with_input_grad(x)
        np.testing.assert_allclose(plain, with_grad)

    def test_more_base_layer_data_helps(self, tiny_dnn, hr_probe):
        """The learned surface must reward base-layer reception."""
        low = hr_probe.features([0.1, 0, 0, 0])
        high = hr_probe.features([1.0, 0, 0, 0])
        assert tiny_dnn.predict(high)[0] > tiny_dnn.predict(low)[0]


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_dnn, small_dataset, tmp_path):
        path = tmp_path / "model.npz"
        tiny_dnn.save(path)
        loaded = DNNQualityModel.load(path)
        np.testing.assert_allclose(
            tiny_dnn.predict(small_dataset.features),
            loaded.predict(small_dataset.features),
        )

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(QualityModelError):
            DNNQualityModel().save(tmp_path / "nope.npz")

    def test_loaded_hyperparams(self, tiny_dnn, tmp_path):
        path = tmp_path / "model.npz"
        tiny_dnn.save(path)
        loaded = DNNQualityModel.load(path)
        assert loaded.epochs == tiny_dnn.epochs
        assert loaded.batch_size == tiny_dnn.batch_size
