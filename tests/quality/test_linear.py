"""Tests for the linear-regression quality model."""

import numpy as np
import pytest

from repro.errors import QualityModelError
from repro.quality.linear import LinearRegressionModel


class TestLinearRegression:
    def test_recovers_exact_linear_relationship(self, rng):
        x = rng.normal(size=(200, 5))
        w = np.array([1.0, -2.0, 0.5, 3.0, 0.0])
        y = x @ w + 4.0
        model = LinearRegressionModel().fit(x, y)
        assert model.mse(x, y) < 1e-20

    def test_predict_single_vector(self, rng):
        x = rng.normal(size=(50, 3))
        y = x.sum(axis=1)
        model = LinearRegressionModel().fit(x, y)
        prediction = model.predict(np.array([1.0, 1.0, 1.0]))
        assert prediction.shape == (1,)
        assert prediction[0] == pytest.approx(3.0, abs=1e-8)

    def test_unfitted_predict_raises(self):
        with pytest.raises(QualityModelError):
            LinearRegressionModel().predict(np.zeros(3))

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(QualityModelError):
            LinearRegressionModel().fit(rng.normal(size=(10, 3)), np.zeros(8))

    def test_is_fitted_flag(self, rng):
        model = LinearRegressionModel()
        assert not model.is_fitted
        model.fit(rng.normal(size=(10, 2)), np.zeros(10))
        assert model.is_fitted

    def test_underfits_nonlinear_target(self, small_dataset):
        """On the real quality data a linear model has visible error."""
        model = LinearRegressionModel().fit(
            small_dataset.features, small_dataset.ssim
        )
        assert model.mse(small_dataset.features, small_dataset.ssim) > 1e-5
