"""Tests for frame feature contexts and progressive quality curves."""

import numpy as np
import pytest

from repro.errors import QualityModelError
from repro.quality.curves import FrameFeatureContext, ProgressiveQualityCurve


class TestFrameFeatureContext:
    def test_from_probe_copies_static_features(self, hr_probe):
        context = FrameFeatureContext.from_probe(hr_probe)
        np.testing.assert_allclose(
            context.cumulative_ssim, hr_probe.cumulative_ssim
        )
        assert context.blank_ssim == pytest.approx(hr_probe.blank_ssim)

    def test_features_for_bytes_single(self, hr_probe):
        context = FrameFeatureContext.from_probe(hr_probe)
        sizes = np.asarray(context.layer_sizes)
        feats = context.features_for_bytes(sizes * 0.5)
        np.testing.assert_allclose(feats[:4], 0.5)
        assert feats.shape == (9,)

    def test_features_for_bytes_batched(self, hr_probe):
        context = FrameFeatureContext.from_probe(hr_probe)
        sizes = np.asarray(context.layer_sizes)
        batch = np.stack([sizes * 0.2, sizes * 1.5])
        feats = context.features_for_bytes(batch)
        assert feats.shape == (2, 9)
        np.testing.assert_allclose(feats[0, :4], 0.2)
        np.testing.assert_allclose(feats[1, :4], 1.0)  # clipped

    def test_matches_probe_features(self, hr_probe):
        context = FrameFeatureContext.from_probe(hr_probe)
        sizes = np.asarray(context.layer_sizes)
        fractions = np.array([1.0, 0.5, 0.25, 0.0])
        np.testing.assert_allclose(
            context.features_for_bytes(sizes * fractions),
            hr_probe.features(fractions),
        )

    def test_rejects_wrong_dims(self, hr_probe):
        context = FrameFeatureContext.from_probe(hr_probe)
        with pytest.raises(QualityModelError):
            context.features_for_bytes(np.zeros(3))

    def test_rejects_bad_construction(self):
        with pytest.raises(QualityModelError):
            FrameFeatureContext((0.5, 0.6), 0.1, (1, 2, 3, 4))
        with pytest.raises(QualityModelError):
            FrameFeatureContext((0.5, 0.6, 0.7, 0.8), 0.1, (0, 2, 3, 4))


class TestProgressiveQualityCurve:
    @pytest.fixture(scope="class")
    def curve(self, request):
        probe = request.getfixturevalue("hr_probe")
        return ProgressiveQualityCurve(probe, points_per_layer=2)

    def test_monotone_nondecreasing(self, curve):
        samples = [curve.ssim_at(p) for p in np.linspace(0, 4, 17)]
        assert all(b >= a - 1e-6 for a, b in zip(samples, samples[1:]))

    def test_endpoints(self, curve, hr_probe):
        assert curve.ssim_at(4.0) == pytest.approx(
            hr_probe.cumulative_ssim[-1], abs=1e-6
        )
        assert curve.ssim_at(0.0) <= hr_probe.cumulative_ssim[0]

    def test_psnr_also_monotone(self, curve):
        samples = [curve.psnr_at(p) for p in np.linspace(0, 4, 9)]
        assert all(b >= a - 1e-6 for a, b in zip(samples, samples[1:]))

    def test_progress_of_fractions(self, curve):
        assert curve.progress_of_fractions([1, 1, 0.5, 0]) == pytest.approx(2.5)

    def test_rejects_bad_points(self, hr_probe):
        with pytest.raises(QualityModelError):
            ProgressiveQualityCurve(hr_probe, points_per_layer=0)
