"""Tests for the epsilon-insensitive SVR quality model."""

import numpy as np
import pytest

from repro.errors import QualityModelError
from repro.quality.svm import SVRModel


class TestSvr:
    def test_fits_linear_data_within_epsilon(self, rng):
        x = rng.normal(size=(300, 3))
        y = x @ np.array([0.5, -0.25, 0.1]) + 0.4
        model = SVRModel(epsilon=0.05, epochs=300, seed=0).fit(x, y)
        residual = np.abs(model.predict(x) - y)
        assert np.mean(residual) < 0.2

    def test_epsilon_tube_limits_accuracy(self, rng):
        """With a wide tube the model stops caring about small errors — the
        reason SVM is the worst Table 1 entry."""
        x = rng.normal(size=(300, 2))
        y = 0.5 * x[:, 0]
        tight = SVRModel(epsilon=0.01, epochs=300, seed=0).fit(x, y)
        loose = SVRModel(epsilon=0.3, epochs=300, seed=0).fit(x, y)
        assert tight.mse(x, y) < loose.mse(x, y)

    def test_unfitted_predict_raises(self):
        with pytest.raises(QualityModelError):
            SVRModel().predict(np.zeros(3))

    def test_bad_epsilon_rejected(self):
        with pytest.raises(QualityModelError):
            SVRModel(epsilon=-0.1)

    def test_bad_c_rejected(self):
        with pytest.raises(QualityModelError):
            SVRModel(c=0.0)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(QualityModelError):
            SVRModel().fit(rng.normal(size=(10, 3)), np.zeros(9))

    def test_deterministic_with_seed(self, rng):
        x = rng.normal(size=(100, 3))
        y = x.sum(axis=1)
        a = SVRModel(epochs=50, seed=7).fit(x, y).predict(x)
        b = SVRModel(epochs=50, seed=7).fit(x, y).predict(x)
        np.testing.assert_array_equal(a, b)
