"""Tests for the Table 1 training harness."""

import pytest

from repro.quality.model import train_quality_models


@pytest.fixture(scope="module")
def trained(small_dataset_module):
    return train_quality_models(
        dataset=small_dataset_module, dnn_epochs=500, dnn_batch_size=16, seed=0
    )


@pytest.fixture(scope="module")
def small_dataset_module(request):
    # Re-expose the session dataset fixture at module scope.
    return request.getfixturevalue("small_dataset")


class TestTrainQualityModels:
    def test_all_three_models_present(self, trained):
        assert set(trained.models) == {"svm", "linear_regression", "dnn"}

    def test_table1_ordering_dnn_best_svm_worst(self, trained):
        """Table 1: DNN < Linear Regression < SVM in test MSE."""
        mse = trained.test_mse
        assert mse["dnn"] < mse["linear_regression"] < mse["svm"]

    def test_dnn_mse_is_small(self, trained):
        assert trained.test_mse["dnn"] < 0.01

    def test_split_is_70_30(self, trained):
        total = len(trained.train) + len(trained.test)
        assert len(trained.train) == int(round(0.7 * total))

    def test_per_layer_accuracy_reasonable(self, trained):
        import math

        seen = 0
        for layer in range(4):
            acc = trained.per_layer_accuracy(layer)
            if math.isnan(acc["mean"]):
                continue  # small test split may leave a layer unsampled
            seen += 1
            assert 0.5 <= acc["mean"] <= 1.0
            assert acc["min"] <= acc["mean"] <= acc["max"]
        assert seen >= 2

    def test_dnn_property_returns_dnn(self, trained):
        from repro.quality.dnn import DNNQualityModel

        assert isinstance(trained.dnn, DNNQualityModel)


class TestPsnrMetric:
    """Sec 2.3: the methodology also supports PSNR as the target metric."""

    def test_psnr_metric_trains(self, small_dataset_module):
        from repro.quality.model import train_quality_models

        trained = train_quality_models(
            dataset=small_dataset_module, dnn_epochs=200, dnn_batch_size=16,
            metric="psnr", seed=0,
        )
        # Targets are normalised dB; the DNN must beat the mean predictor.
        import numpy as np

        variance = float(np.var(trained.train.psnr / 100.0))
        assert trained.test_mse["dnn"] < variance

    def test_unknown_metric_rejected(self, small_dataset_module):
        from repro.errors import QualityModelError
        from repro.quality.model import train_quality_models

        with pytest.raises(QualityModelError):
            train_quality_models(dataset=small_dataset_module, metric="vmaf")
