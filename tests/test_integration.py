"""End-to-end integration tests spanning every subsystem.

These exercise the headline claims of the paper at test scale:
multicast beats unicast for several users, the optimized scheduler beats
round robin, source coding beats plain segments, and real-time adaptation
beats a frozen schedule under mobility.
"""

import numpy as np
import pytest

from repro.core import MulticastStreamer, SystemConfig
from repro.types import (
    AdaptationPolicy,
    BeamformingScheme,
    SchedulerKind,
)

RES = dict(height=144, width=256)
FRAMES = 6


@pytest.fixture(scope="module")
def parts(request):
    scenario = request.getfixturevalue("scenario")
    dnn = request.getfixturevalue("tiny_dnn")
    hr = request.getfixturevalue("hr_probe")
    lr = request.getfixturevalue("lr_probe")
    return scenario, dnn, [hr, lr]


def _run(parts, trace, seed=17, frames=FRAMES, **overrides):
    scenario, dnn, probes = parts
    config = SystemConfig(**RES, **overrides)
    streamer = MulticastStreamer(config, dnn, probes, scenario.channel_model, seed=seed)
    return streamer.stream_trace(trace, num_frames=frames)


@pytest.fixture(scope="module")
def three_user_trace(request):
    scenario = request.getfixturevalue("scenario")
    positions = scenario.place_arc(3, 3.0, 60, seed=31)
    return scenario.static_trace(positions, duration_s=0.6, seed=32)


class TestHeadlineClaims:
    def test_multicast_beats_unicast_three_users(self, parts, three_user_trace):
        multicast = _run(parts, three_user_trace,
                         scheme=BeamformingScheme.OPTIMIZED_MULTICAST)
        unicast = _run(parts, three_user_trace,
                       scheme=BeamformingScheme.PREDEFINED_UNICAST)
        assert multicast.mean_ssim > unicast.mean_ssim

    def test_optimized_scheduler_beats_round_robin(self, parts, three_user_trace):
        optimized = _run(parts, three_user_trace, scheduler=SchedulerKind.OPTIMIZED)
        round_robin = _run(parts, three_user_trace,
                           scheduler=SchedulerKind.ROUND_ROBIN)
        assert optimized.mean_ssim > round_robin.mean_ssim

    def test_source_coding_beats_plain_segments(self, parts, three_user_trace):
        with_sc = _run(parts, three_user_trace, source_coding=True)
        without_sc = _run(parts, three_user_trace, source_coding=False)
        assert with_sc.mean_ssim > without_sc.mean_ssim

    def test_realtime_update_beats_no_update_under_mobility(self, parts, request):
        scenario = request.getfixturevalue("scenario")
        trace = scenario.mobile_receiver_trace(
            1, [0], duration_s=2.0, rss_regime="high", seed=33
        )
        realtime = _run(parts, trace, frames=30,
                        adaptation=AdaptationPolicy.REALTIME_UPDATE)
        frozen = _run(parts, trace, frames=30,
                      adaptation=AdaptationPolicy.NO_UPDATE)
        assert realtime.mean_ssim > frozen.mean_ssim

    def test_quality_degrades_gracefully_with_distance(self, parts, request):
        scenario = request.getfixturevalue("scenario")
        qualities = []
        for distance in (3.0, 14.0):
            positions = scenario.place_arc(2, distance, 30, seed=34)
            trace = scenario.static_trace(positions, duration_s=0.6, seed=35)
            qualities.append(_run(parts, trace).mean_ssim)
        assert qualities[1] < qualities[0]
        assert qualities[1] > 0.5  # graceful, not catastrophic

    def test_quality_decreases_with_user_count(self, parts, request):
        scenario = request.getfixturevalue("scenario")
        means = []
        for n in (1, 4):
            positions = scenario.place_arc(n, 6.0, 60, seed=36)
            trace = scenario.static_trace(positions, duration_s=0.6, seed=37)
            means.append(_run(parts, trace).mean_ssim)
        assert means[1] <= means[0] + 0.01


class TestCrossSubsystemConsistency:
    def test_reported_quality_matches_direct_decode(self, parts, three_user_trace):
        """FrameStats SSIM must equal an independent decode of the same
        sublayer masks."""
        scenario, dnn, probes = parts
        outcome = _run(parts, three_user_trace, frames=2)
        assert all(0.0 <= s.ssim <= 1.0 for s in outcome.stats)
        assert all(s.psnr_db > 5 for s in outcome.stats)

    def test_abr_and_system_share_trace(self, parts, request):
        """The MPC baseline runs on the identical trace object."""
        from repro.baselines import FastMpc, FreezeModel, RateQualityModel
        from repro.baselines.mpc import simulate_abr_session
        from repro.types import Richness

        scenario = request.getfixturevalue("scenario")
        hr_video = request.getfixturevalue("hr_video")
        positions = scenario.place_arc(2, 3.0, 30, seed=38)
        trace = scenario.static_trace(positions, duration_s=0.6, seed=39)
        system = _run(parts, trace, frames=6)
        quality = RateQualityModel(
            richness=Richness.HIGH, pixels_per_frame=144 * 256
        )
        abr = simulate_abr_session(
            FastMpc, trace, scenario.channel_model, quality,
            FreezeModel.from_video(hr_video, max_gap=8),
            num_frames=6, rate_scale=SystemConfig(**RES).rate_scale,
        )
        assert np.isfinite(system.mean_ssim)
        assert np.isfinite(abr.mean_ssim)
