"""Tests for the image-method ray tracer and user placement."""

import numpy as np
import pytest

from repro.errors import ChannelError
from repro.obs import OBS, observed
from repro.phy.raytracer import (
    RayTracer,
    Room,
    _validated_placement,
    place_users_arc,
    place_users_random_range,
)
from repro.types import Position


@pytest.fixture()
def tracer():
    return RayTracer(Room(20, 12), Position(1.0, 6.0))


class TestRoom:
    def test_contains(self):
        room = Room(10, 8)
        assert room.contains(Position(5, 4))
        assert not room.contains(Position(11, 4))

    def test_clamp(self):
        room = Room(10, 8)
        clamped = room.clamp(-3, 100, margin=0.5)
        assert clamped == Position(0.5, 7.5)

    def test_bad_dimensions(self):
        with pytest.raises(ChannelError):
            Room(-1, 5)


class TestRayTracer:
    def test_path_count_with_two_bounces(self, tracer):
        paths = tracer.trace(Position(10, 6))
        # 1 LoS + 4 first-order + 12 second-order images.
        assert len(paths) == 17

    def test_los_is_strongest(self, tracer):
        paths = tracer.trace(Position(10, 6))
        assert paths[0].is_los
        assert paths[0].loss_db == min(p.loss_db for p in paths)

    def test_los_geometry(self, tracer):
        paths = tracer.trace(Position(10, 6))
        los = paths[0]
        assert los.length_m == pytest.approx(9.0)
        assert los.aod_rad == pytest.approx(0.0, abs=1e-9)

    def test_reflection_longer_and_lossier(self, tracer):
        paths = tracer.trace(Position(10, 6))
        los = paths[0]
        for path in paths[1:]:
            assert path.length_m > los.length_m
            assert path.loss_db > los.loss_db

    def test_first_order_image_length(self):
        """Reflection off the y=0 wall has the mirror-image length."""
        tracer = RayTracer(Room(20, 12), Position(1.0, 6.0), max_bounces=1)
        receiver = Position(5.0, 6.0)
        paths = tracer.trace(receiver)
        mirror_len = np.hypot(5.0 - 1.0, -6.0 - 6.0)
        lengths = [p.length_m for p in paths if p.num_bounces == 1]
        assert any(abs(length - mirror_len) < 1e-6 for length in lengths)

    def test_aod_measured_from_boresight(self):
        tracer = RayTracer(Room(20, 12), Position(1.0, 6.0),
                           ap_boresight_rad=np.pi / 2)
        paths = tracer.trace(Position(1.0, 10.0))
        assert paths[0].aod_rad == pytest.approx(0.0, abs=1e-9)

    def test_receiver_outside_rejected(self, tracer):
        with pytest.raises(ChannelError):
            tracer.trace(Position(25, 6))

    def test_max_bounces_validation(self):
        with pytest.raises(ChannelError):
            RayTracer(Room(), Position(1, 6), max_bounces=3)


class TestPlacement:
    def test_arc_distance_respected(self, rng):
        room = Room(20, 12)
        ap = Position(0.5, 6.0)
        users = place_users_arc(ap, room, 4, 5.0, np.deg2rad(60), rng)
        for user in users:
            assert user.distance_to(ap) == pytest.approx(5.0, abs=0.2)

    def test_arc_mas_respected(self, rng):
        room = Room(20, 12)
        ap = Position(0.5, 6.0)
        users = place_users_arc(ap, room, 3, 5.0, np.deg2rad(40), rng)
        angles = sorted(u.angle_from(ap) for u in users)
        assert angles[-1] - angles[0] == pytest.approx(np.deg2rad(40), abs=0.02)

    def test_range_placement_within_bounds(self, rng):
        room = Room(20, 12)
        ap = Position(0.5, 6.0)
        users = place_users_random_range(ap, room, 6, 8, 16, np.deg2rad(120), rng)
        assert len(users) == 6
        for user in users:
            assert room.contains(user)

    def test_single_user_allowed(self, rng):
        users = place_users_arc(Position(0.5, 6), Room(20, 12), 1, 3,
                                np.deg2rad(30), rng)
        assert len(users) == 1

    def test_bad_args_rejected(self, rng):
        with pytest.raises(ChannelError):
            place_users_arc(Position(0.5, 6), Room(), 0, 3, 0.5, rng)
        with pytest.raises(ChannelError):
            place_users_random_range(Position(0.5, 6), Room(), 2, 5, 3, 0.5, rng)


class TestValidatedPlacement:
    """Placement validation: clamp-identical outputs, counted violations."""

    def test_in_room_draw_is_plain_clamp(self):
        room = Room(20, 12)
        assert _validated_placement(room, 5.0, 6.0) == room.clamp(5.0, 6.0)

    def test_out_of_room_draw_matches_clamp_bitwise(self):
        """Validation must not move a single bit of the legacy clamp —
        placements feed seeded traces pinned by the golden suite."""
        room = Room(20, 12)
        for x, y in [(-3.0, 100.0), (25.0, -1.0), (20.0001, 6.0)]:
            validated = _validated_placement(room, x, y)
            clamped = room.clamp(x, y)
            assert float(validated.x).hex() == float(clamped.x).hex()
            assert float(validated.y).hex() == float(clamped.y).hex()
            assert room.contains(validated)

    def test_out_of_room_draw_counted(self):
        room = Room(20, 12)
        with observed("counters"):
            _validated_placement(room, 5.0, 6.0)  # inside: no count
            _validated_placement(room, -3.0, 6.0)
            _validated_placement(room, 5.0, 99.0)
            counters = OBS.counters()
        assert counters.get("phy.placement.out_of_room") == 2

    def test_counter_silent_when_obs_off(self):
        with observed("counters"):
            OBS.reset()
        assert OBS.mode == 0
        _validated_placement(Room(20, 12), -3.0, 6.0)
        assert "phy.placement.out_of_room" not in OBS.counters()

    def test_placement_helpers_stay_inside_tight_room(self, rng):
        """A far arc in a small room forces out-of-room draws; every
        emitted position must still satisfy ``Room.contains``."""
        room = Room(4, 3)
        ap = Position(0.3, 1.5)
        with observed("counters"):
            arc = place_users_arc(ap, room, 5, 6.0, np.deg2rad(120), rng)
            ranged = place_users_random_range(
                ap, room, 5, 4.0, 8.0, np.deg2rad(120), rng
            )
            counters = OBS.counters()
        for user in arc + ranged:
            assert room.contains(user)
        assert counters["phy.placement.out_of_room"] >= 1
