"""Tests for mobility models."""

import numpy as np
import pytest

from repro.errors import ChannelError
from repro.phy.mobility import EnvironmentMotionModel, RandomWalkModel
from repro.phy.raytracer import Room
from repro.types import Position


class TestRandomWalk:
    def test_stays_in_room(self):
        room = Room(10, 8)
        walker = RandomWalkModel(room=room, start=Position(5, 4), seed=1)
        for _ in range(200):
            position = walker.step(0.1)
            assert room.contains(position)

    def test_moves_at_roughly_configured_speed(self):
        walker = RandomWalkModel(
            room=Room(50, 50), start=Position(25, 25), speed_mps=1.0, seed=2
        )
        previous = walker.position
        steps = []
        for _ in range(100):
            current = walker.step(0.1)
            steps.append(current.distance_to(previous))
            previous = current
        assert np.mean(steps) == pytest.approx(0.1, rel=0.35)

    def test_deterministic_given_seed(self):
        a = RandomWalkModel(room=Room(), start=Position(5, 5), seed=3)
        b = RandomWalkModel(room=Room(), start=Position(5, 5), seed=3)
        for _ in range(10):
            assert a.step() == b.step()

    def test_start_outside_rejected(self):
        with pytest.raises(ChannelError):
            RandomWalkModel(room=Room(10, 8), start=Position(20, 4))

    def test_bad_speed_rejected(self):
        with pytest.raises(ChannelError):
            RandomWalkModel(room=Room(), start=Position(5, 5), speed_mps=0)


class TestEnvironmentMotion:
    def test_blockers_move(self):
        env = EnvironmentMotionModel(
            room=Room(), ap_position=Position(0.5, 6), num_blockers=2, seed=4
        )
        before = [p.as_array().copy() for p in env.blocker_positions()]
        for _ in range(20):
            env.step()
        after = [p.as_array() for p in env.blocker_positions()]
        assert any(np.linalg.norm(a - b) > 0.1 for a, b in zip(before, after))

    def test_blockage_triggers_when_blocker_on_path(self):
        env = EnvironmentMotionModel(
            room=Room(), ap_position=Position(0.5, 6), num_blockers=1, seed=5
        )
        # Place the blocker exactly on the LoS segment.
        env._walkers[0]._position = Position(5.0, 6.0)
        losses = env.los_extra_loss_db({0: Position(10.0, 6.0)})
        assert losses[0] > 0

    def test_no_blockage_off_path(self):
        env = EnvironmentMotionModel(
            room=Room(), ap_position=Position(0.5, 6), num_blockers=1, seed=6
        )
        env._walkers[0]._position = Position(5.0, 1.0)
        losses = env.los_extra_loss_db({0: Position(10.0, 6.0)})
        assert losses[0] == 0.0

    def test_zero_blockers_allowed(self):
        env = EnvironmentMotionModel(
            room=Room(), ap_position=Position(0.5, 6), num_blockers=0
        )
        env.step()
        assert env.los_extra_loss_db({0: Position(5, 5)}) == {0: 0.0}

    def test_negative_blockers_rejected(self):
        with pytest.raises(ChannelError):
            EnvironmentMotionModel(
                room=Room(), ap_position=Position(0.5, 6), num_blockers=-1
            )
