"""Tests for multi-AP room topologies and the topology config block."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.raytracer import Room
from repro.phy.topology import (
    MAX_APS,
    AccessPoint,
    Topology,
    TopologyConfig,
    coerce_topology,
    topology_num_aps,
)
from repro.types import Position


class TestAccessPoint:
    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessPoint(-1, Position(1.0, 1.0))


class TestTopology:
    def test_for_room_single_ap_is_legacy_placement(self):
        room = Room(20, 12)
        topo = Topology.for_room(room, 1)
        assert topo.num_aps == 1
        assert topo[0].position == Position(0.3, 6.0)
        assert topo[0].boresight_rad == 0.0

    def test_for_room_two_aps_face_each_other(self):
        room = Room(20, 12)
        topo = Topology.for_room(room, 2)
        assert topo[1].position == Position(19.7, 6.0)
        assert topo[1].boresight_rad == pytest.approx(np.pi)

    def test_for_room_four_aps_one_per_wall(self):
        room = Room(20, 12)
        topo = Topology.for_room(room, 4)
        assert [ap.ap_id for ap in topo] == [0, 1, 2, 3]
        assert topo[2].position == Position(10.0, 0.3)
        assert topo[3].position == Position(10.0, 11.7)
        for ap in topo:
            assert room.contains(ap.position)

    def test_first_ap_override_kept(self):
        room = Room(20, 12)
        custom = Position(2.0, 3.0)
        topo = Topology.for_room(room, 2, first_ap=custom)
        assert topo[0].position == custom

    def test_ap_count_bounds(self):
        room = Room(20, 12)
        with pytest.raises(ConfigurationError):
            Topology.for_room(room, 0)
        with pytest.raises(ConfigurationError):
            Topology.for_room(room, MAX_APS + 1)

    def test_non_contiguous_ids_rejected(self):
        room = Room(20, 12)
        with pytest.raises(ConfigurationError):
            Topology(room=room, aps=(AccessPoint(1, Position(1, 1)),))

    def test_ap_outside_room_rejected(self):
        room = Room(10, 8)
        with pytest.raises(ConfigurationError):
            Topology(room=room, aps=(AccessPoint(0, Position(11, 1)),))


class TestTopologyConfig:
    def test_defaults_are_single_ap(self):
        config = TopologyConfig()
        assert config.num_aps == 1
        assert not config.enabled

    def test_enabled_with_two_aps(self):
        assert TopologyConfig(num_aps=2).enabled

    def test_build_respects_wall_margin(self):
        topo = TopologyConfig(num_aps=2, ap_wall_margin_m=1.0).build(Room(20, 12))
        assert topo[0].position == Position(1.0, 6.0)
        assert topo[1].position == Position(19.0, 6.0)

    @pytest.mark.parametrize("bad", [
        dict(num_aps=0),
        dict(num_aps=MAX_APS + 1),
        dict(hysteresis_db=-1.0),
        dict(handover_noise_db=-0.5),
        dict(ap_wall_margin_m=0.0),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            TopologyConfig(**bad)


class TestCoercion:
    def test_none_passthrough(self):
        assert coerce_topology(None) is None

    def test_config_passthrough(self):
        config = TopologyConfig(num_aps=2)
        assert coerce_topology(config) is config

    def test_mapping_coerced(self):
        config = coerce_topology({"num_aps": 2, "hysteresis_db": 5.0})
        assert config == TopologyConfig(num_aps=2, hysteresis_db=5.0)

    def test_bad_type_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_topology(3)

    def test_num_aps_helper(self):
        assert topology_num_aps(None) == 1
        assert topology_num_aps(TopologyConfig(num_aps=3)) == 3
