"""Tests for channel synthesis and the link budget."""

import numpy as np
import pytest

from repro.errors import ChannelError
from repro.phy.antenna import PhasedArray
from repro.phy.channel import ChannelModel, LinkBudget
from repro.phy.raytracer import RayTracer, Room
from repro.types import Position


@pytest.fixture()
def model():
    return ChannelModel(
        RayTracer(Room(20, 12), Position(0.5, 6.0)), PhasedArray(32, 2)
    )


class TestLinkBudget:
    def test_rss_formula(self):
        budget = LinkBudget(tx_power_dbm=18, rx_gain_db=3, implementation_loss_db=2)
        assert budget.rss_dbm(1.0) == pytest.approx(19.0)
        assert budget.rss_dbm(0.1) == pytest.approx(9.0)

    def test_zero_gain_is_minus_infinity(self):
        assert LinkBudget().rss_dbm(0.0) == -np.inf


class TestChannelModel:
    def test_vector_length_matches_array(self, model, rng):
        h = model.channel_vector(Position(5, 6), rng)
        assert h.shape == (32,)
        assert h.dtype == complex

    def test_magnitude_decays_with_distance(self, model, rng):
        near = np.mean([
            np.linalg.norm(model.channel_vector(Position(3, 6), rng))
            for _ in range(10)
        ])
        far = np.mean([
            np.linalg.norm(model.channel_vector(Position(15, 6), rng))
            for _ in range(10)
        ])
        assert near > far

    def test_blockage_reduces_energy(self, model, rng):
        clear = np.mean([
            np.linalg.norm(model.channel_vector(Position(5, 6), rng)) ** 2
            for _ in range(10)
        ])
        blocked = np.mean([
            np.linalg.norm(
                model.channel_vector(Position(5, 6), rng, los_extra_loss_db=22)
            ) ** 2
            for _ in range(10)
        ])
        assert blocked < clear

    def test_conjugate_rss_in_table2_range(self, model, rng):
        """At 3 m a matched beam should land comfortably inside Table 2."""
        h = model.channel_vector(Position(3.5, 6), rng)
        beam = model.array.conjugate_beam(h)
        rss = model.rss_dbm(beam, h)
        assert -60 < rss < -35

    def test_snapshot_contains_all_users(self, model, rng):
        users = {0: Position(3, 6), 1: Position(5, 7)}
        state = model.snapshot(users, rng, time_s=1.5)
        assert state.user_ids == [0, 1]
        assert state.time_s == 1.5
        assert state.positions[1] == Position(5, 7)


class TestChannelState:
    def test_stacked_shape(self, model, rng):
        state = model.snapshot({0: Position(3, 6), 1: Position(5, 7)}, rng)
        stacked = state.stacked([0, 1])
        assert stacked.shape == (2, 32)

    def test_stacked_missing_user_rejected(self, model, rng):
        state = model.snapshot({0: Position(3, 6)}, rng)
        with pytest.raises(ChannelError):
            state.stacked([0, 7])
