"""Tests for the phased-array model."""

import numpy as np
import pytest

from repro.errors import BeamformingError
from repro.phy.antenna import PhasedArray


class TestSteeringVector:
    def test_norm_is_sqrt_n(self):
        array = PhasedArray(32, 2)
        vector = array.steering_vector(0.3)
        assert np.linalg.norm(vector) == pytest.approx(np.sqrt(32))

    def test_broadside_is_all_ones(self):
        array = PhasedArray(16, 2)
        np.testing.assert_allclose(array.steering_vector(0.0), np.ones(16))

    def test_unit_modulus_entries(self):
        array = PhasedArray(16, 2)
        np.testing.assert_allclose(
            np.abs(array.steering_vector(-0.7)), np.ones(16)
        )


class TestQuantisation:
    def test_output_has_unit_norm(self, rng):
        array = PhasedArray(32, 2)
        weights = rng.normal(size=32) + 1j * rng.normal(size=32)
        quantised = array.quantise_weights(weights)
        assert np.linalg.norm(quantised) == pytest.approx(1.0)

    def test_phases_are_quantised(self, rng):
        array = PhasedArray(32, 2)
        weights = rng.normal(size=32) + 1j * rng.normal(size=32)
        quantised = array.quantise_weights(weights)
        phases = np.angle(quantised)
        step = 2 * np.pi / 4
        remainder = np.mod(phases + 1e-9, step)
        assert np.all((remainder < 1e-6) | (remainder > step - 1e-6))

    def test_more_bits_less_loss(self, rng):
        channel = rng.normal(size=32) + 1j * rng.normal(size=32)
        coarse = PhasedArray(32, 1)
        fine = PhasedArray(32, 6)
        gain_coarse = coarse.beam_gain(coarse.conjugate_beam(channel), channel)
        gain_fine = fine.beam_gain(fine.conjugate_beam(channel), channel)
        assert gain_fine > gain_coarse

    def test_wrong_shape_rejected(self):
        array = PhasedArray(8, 2)
        with pytest.raises(BeamformingError):
            array.quantise_weights(np.ones(7, dtype=complex))


class TestConjugateBeam:
    def test_near_matched_filter_gain(self, rng):
        """A 6-bit quantised conjugate beam captures nearly ||h||^2."""
        array = PhasedArray(32, 6)
        steering = array.steering_vector(0.4)
        channel = 1e-4 * steering
        beam = array.conjugate_beam(channel)
        ideal = float(np.linalg.norm(channel) ** 2)
        assert array.beam_gain(beam, channel) > 0.95 * ideal

    def test_two_bit_loss_is_bounded(self, rng):
        array = PhasedArray(32, 2)
        channel = (rng.normal(size=32) + 1j * rng.normal(size=32)) * 1e-4
        beam = array.conjugate_beam(channel)
        ideal = float(np.linalg.norm(channel) ** 2)
        gain = array.beam_gain(beam, channel)
        # 2-bit phases + constant modulus cost at most ~4 dB.
        assert gain > ideal * 10 ** (-4 / 10)

    def test_zero_channel_rejected(self):
        array = PhasedArray(8, 2)
        with pytest.raises(BeamformingError):
            array.conjugate_beam(np.zeros(8, dtype=complex))


class TestValidation:
    def test_bad_element_count(self):
        with pytest.raises(BeamformingError):
            PhasedArray(0, 2)

    def test_bad_phase_bits(self):
        with pytest.raises(BeamformingError):
            PhasedArray(8, 0)
