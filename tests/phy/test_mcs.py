"""Tests for the MCS table (paper Table 2)."""

import pytest

from repro.errors import ChannelError
from repro.phy.mcs import (
    HIGH_RSS_THRESHOLD_DBM,
    MCS_TABLE,
    entry_for_index,
    highest_supported_mcs,
    rate_for_rss_mbps,
    rate_ladder_mbps,
    snr_margin_db,
    supported_entries,
)


class TestTableContents:
    def test_fourteen_entries(self):
        assert len(MCS_TABLE) == 14

    def test_unsupported_indices_match_paper(self):
        unsupported = {e.index for e in MCS_TABLE if not e.supported}
        assert unsupported == {0, 5, 9, 9.1}

    def test_mcs12_values(self):
        entry = entry_for_index(12)
        assert entry.sensitivity_dbm == -53.0
        assert entry.udp_throughput_mbps == 2400.0

    def test_mcs1_values(self):
        entry = entry_for_index(1)
        assert entry.sensitivity_dbm == -68.0
        assert entry.udp_throughput_mbps == 300.0

    def test_supported_throughputs_increase_with_index(self):
        rates = [e.udp_throughput_mbps for e in supported_entries()]
        assert rates == sorted(rates)

    def test_high_rss_threshold_is_mcs8_sensitivity(self):
        assert HIGH_RSS_THRESHOLD_DBM == entry_for_index(8).sensitivity_dbm

    def test_unknown_index_rejected(self):
        with pytest.raises(ChannelError):
            entry_for_index(13)


class TestRssMapping:
    def test_strong_signal_gets_mcs12(self):
        assert highest_supported_mcs(-40.0).index == 12

    def test_weak_signal_gets_mcs1(self):
        assert highest_supported_mcs(-67.0).index == 1

    def test_dead_link_gets_none(self):
        assert highest_supported_mcs(-75.0) is None
        assert rate_for_rss_mbps(-75.0) == 0.0

    def test_boundary_is_inclusive(self):
        assert highest_supported_mcs(-53.0).index == 12
        assert highest_supported_mcs(-53.01).index == 11

    def test_rate_monotone_in_rss(self):
        rates = [rate_for_rss_mbps(rss) for rss in range(-70, -50)]
        assert rates == sorted(rates)

    def test_ladder_is_supported_rates(self):
        ladder = rate_ladder_mbps()
        assert ladder[0] == 300.0
        assert ladder[-1] == 2400.0
        assert len(ladder) == 10

    def test_snr_margin(self):
        entry = entry_for_index(8)
        assert snr_margin_db(-58.0, entry) == pytest.approx(3.0)
        assert snr_margin_db(-64.0, entry) == pytest.approx(-3.0)
