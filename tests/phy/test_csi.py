"""Tests for CSI estimation and trace persistence."""

import numpy as np
import pytest

from repro.errors import ChannelError
from repro.phy.channel import ChannelState
from repro.phy.csi import CsiEstimator, CsiSnapshot, CsiTrace
from repro.types import Position


def _state(rng, time_s=0.0, users=(0, 1)):
    channels = {
        u: (rng.normal(size=8) + 1j * rng.normal(size=8)) * 1e-4 for u in users
    }
    positions = {u: Position(float(u), 1.0) for u in users}
    return ChannelState(channels, positions, time_s)


class TestCsiEstimator:
    def test_estimate_close_to_truth(self, rng):
        estimator = CsiEstimator(relative_error_std=0.05)
        truth = _state(rng)
        estimate = estimator.estimate(truth.channels[0], rng)
        relative = np.linalg.norm(estimate - truth.channels[0]) / np.linalg.norm(
            truth.channels[0]
        )
        assert relative < 0.2

    def test_error_scales_with_std(self, rng):
        truth = _state(rng).channels[0]
        tight = CsiEstimator(0.01)
        loose = CsiEstimator(0.5)
        err_tight = np.mean([
            np.linalg.norm(tight.estimate(truth, rng) - truth) for _ in range(20)
        ])
        err_loose = np.mean([
            np.linalg.norm(loose.estimate(truth, rng) - truth) for _ in range(20)
        ])
        assert err_loose > err_tight

    def test_estimate_state_preserves_users(self, rng):
        estimator = CsiEstimator()
        state = _state(rng)
        estimated = estimator.estimate_state(state, rng)
        assert estimated.user_ids == state.user_ids
        assert estimated.positions == state.positions


class TestCsiTrace:
    def _trace(self, rng, ticks=5):
        trace = CsiTrace(beacon_interval_s=0.1)
        estimator = CsiEstimator()
        for tick in range(ticks):
            t = tick * 0.1
            state = _state(rng, time_s=t)
            trace.append(CsiSnapshot(t, state, estimator.estimate_state(state, rng)))
        return trace

    def test_at_time_zero_order_hold(self, rng):
        trace = self._trace(rng)
        assert trace.at_time(0.05).time_s == pytest.approx(0.0)
        assert trace.at_time(0.25).time_s == pytest.approx(0.2)
        assert trace.at_time(99.0).time_s == pytest.approx(0.4)

    def test_duration(self, rng):
        trace = self._trace(rng, ticks=5)
        assert trace.duration_s == pytest.approx(0.5)

    def test_empty_trace_rejected(self):
        with pytest.raises(ChannelError):
            CsiTrace().at_time(0.0)
        with pytest.raises(ChannelError):
            CsiTrace().save("nope.npz")

    def test_save_load_roundtrip(self, rng, tmp_path):
        trace = self._trace(rng)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = CsiTrace.load(path)
        assert len(loaded) == len(trace)
        assert loaded.user_ids() == trace.user_ids()
        original = trace.snapshots[2].true_state.channels[1]
        restored = loaded.snapshots[2].true_state.channels[1]
        np.testing.assert_allclose(original, restored)
        assert loaded.snapshots[3].estimated_state.positions[0] == Position(0.0, 1.0)
