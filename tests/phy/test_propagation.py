"""Tests for 60 GHz propagation primitives."""

import numpy as np
import pytest

from repro.errors import ChannelError
from repro.phy.propagation import (
    WAVELENGTH_M,
    free_space_path_loss_db,
    path_amplitude,
    path_phase_rad,
    segment_point_distance,
)


class TestPathLoss:
    def test_one_metre_value(self):
        """FSPL at 1 m, 60.48 GHz is ~68 dB."""
        assert free_space_path_loss_db(1.0) == pytest.approx(68.08, abs=0.2)

    def test_inverse_square_law(self):
        """Doubling distance adds ~6 dB."""
        delta = free_space_path_loss_db(8.0) - free_space_path_loss_db(4.0)
        assert delta == pytest.approx(6.02, abs=0.1)

    def test_oxygen_absorption_included(self):
        spread_only = 20 * np.log10(2.0)
        delta = free_space_path_loss_db(200.0) - free_space_path_loss_db(100.0)
        assert delta > spread_only  # extra ~1.5 dB from O2 over 100 m

    def test_near_field_rejected(self):
        with pytest.raises(ChannelError):
            free_space_path_loss_db(0.001)


class TestAmplitudePhase:
    def test_amplitude_matches_loss(self):
        assert path_amplitude(20.0) == pytest.approx(0.1)

    def test_phase_wraps(self):
        phase = path_phase_rad(3.123)
        assert 0.0 <= phase < 2 * np.pi

    def test_half_wavelength_flips_phase(self):
        a = path_phase_rad(1.0)
        b = path_phase_rad(1.0 + WAVELENGTH_M / 2)
        diff = (a - b) % (2 * np.pi)
        assert diff == pytest.approx(np.pi, abs=1e-6)


class TestSegmentDistance:
    def test_point_on_segment(self):
        d = segment_point_distance([0, 0], [10, 0], [5, 0])
        assert d == pytest.approx(0.0)

    def test_perpendicular_distance(self):
        d = segment_point_distance([0, 0], [10, 0], [5, 3])
        assert d == pytest.approx(3.0)

    def test_beyond_endpoint_uses_endpoint(self):
        d = segment_point_distance([0, 0], [10, 0], [13, 4])
        assert d == pytest.approx(5.0)

    def test_degenerate_segment(self):
        d = segment_point_distance([2, 2], [2, 2], [5, 6])
        assert d == pytest.approx(5.0)
