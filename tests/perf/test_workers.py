"""Tests for the persistent worker pool and shared-memory shipping."""

import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ParallelWorkerError
from repro.perf.workers import (
    PersistentPool,
    SharedPayload,
)

# Worker functions must be importable top-level callables.

_STATE = {}


def _install(handle):
    _STATE["obj"] = handle.load()


def _lookup(i):
    return float(_STATE["obj"]["plane"][i])


def _double(x):
    return x * 2


def _crash_marker(path_and_value):
    """Die hard (skipping cleanup) the first time the marker file exists."""
    path, value = path_and_value
    if path is not None and os.path.exists(path):
        os.remove(path)
        os._exit(13)
    return value * 10


def _sleep_marker(path_and_value):
    """Hang (sleep) the first time the marker file exists."""
    path, value = path_and_value
    if path is not None and os.path.exists(path):
        os.remove(path)
        time.sleep(60.0)
    return value * 10


def _always_exit(_):
    os._exit(1)


def _raise_value_error(x):
    raise ValueError(f"bad item {x}")


def _init_boom():
    raise RuntimeError("init exploded")


class TestSharedPayload:
    def test_numpy_planes_go_out_of_band(self):
        plane = np.arange(4096, dtype=np.float64)
        with SharedPayload({"plane": plane, "tag": "x"}) as payload:
            assert payload.nbytes_shared >= plane.nbytes
            restored = payload.handle.load()
            assert restored["tag"] == "x"
            np.testing.assert_array_equal(restored["plane"], plane)

    def test_pure_python_payload_has_no_segment(self):
        with SharedPayload({"a": 1, "b": [2, 3]}) as payload:
            assert payload.nbytes_shared == 0
            assert payload.handle.load() == {"a": 1, "b": [2, 3]}

    def test_close_is_idempotent(self):
        payload = SharedPayload({"plane": np.zeros(16)})
        payload.close()
        payload.close()

    def test_workers_read_shared_planes(self):
        plane = np.linspace(0.0, 1.0, 64)
        with SharedPayload({"plane": plane}) as payload:
            with PersistentPool(
                _lookup, jobs=2, initializer=_install,
                initargs=(payload.handle,), heartbeat_s=0.1,
            ) as pool:
                got = pool.run_tasks([0, 5, 63])
        assert got == [plane[0], plane[5], plane[63]]


class TestPersistentPool:
    def test_results_in_submission_order(self):
        with PersistentPool(_double, jobs=3, heartbeat_s=0.1) as pool:
            assert pool.run_tasks(list(range(20))) == [x * 2 for x in range(20)]

    def test_pool_reusable_across_batches(self):
        with PersistentPool(_double, jobs=2, heartbeat_s=0.1) as pool:
            assert pool.run_tasks([1, 2]) == [2, 4]
            assert pool.run_tasks([]) == []
            assert pool.run_tasks([5]) == [10]
        assert pool.worker_respawns == 0

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            PersistentPool(_double, jobs=0)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            PersistentPool(_double, jobs=1, task_timeout_s=0.0)

    def test_closed_pool_rejects_tasks(self):
        pool = PersistentPool(_double, jobs=1, heartbeat_s=0.1)
        pool.close()
        with pytest.raises(ConfigurationError):
            pool.run_tasks([1])

    def test_worker_exception_raises_parallel_worker_error(self):
        with PersistentPool(_raise_value_error, jobs=2, heartbeat_s=0.1) as pool:
            with pytest.raises(ParallelWorkerError) as excinfo:
                pool.run_tasks([1, 2])
        message = str(excinfo.value)
        assert "ValueError" in message
        assert "worker traceback" in message

    def test_initializer_failure_surfaces(self):
        with PersistentPool(
            _double, jobs=1, initializer=_init_boom, heartbeat_s=0.1
        ) as pool:
            with pytest.raises(ParallelWorkerError, match="initializer"):
                pool.run_tasks([1])

    def test_dead_worker_task_requeued(self, tmp_path):
        marker = tmp_path / "die_once"
        marker.touch()
        with PersistentPool(
            _crash_marker, jobs=2, heartbeat_s=0.05, task_timeout_s=30.0
        ) as pool:
            got = pool.run_tasks([
                (str(marker), 1), (None, 2), (None, 3),
            ])
            assert got == [10, 20, 30]
            assert pool.worker_respawns >= 1

    def test_hung_worker_killed_and_task_requeued(self, tmp_path):
        marker = tmp_path / "hang_once"
        marker.touch()
        with PersistentPool(
            _sleep_marker, jobs=2, heartbeat_s=0.05, task_timeout_s=0.5
        ) as pool:
            t0 = time.monotonic()
            got = pool.run_tasks([(str(marker), 4), (None, 5)])
            elapsed = time.monotonic() - t0
        assert got == [40, 50]
        assert elapsed < 30.0  # killed at the deadline, not the full sleep
        assert pool.worker_respawns >= 1

    def test_permanent_crasher_abandoned_after_retries(self):
        with PersistentPool(
            _always_exit, jobs=1, heartbeat_s=0.05, max_task_retries=1
        ) as pool:
            with pytest.raises(ParallelWorkerError, match="abandoned"):
                pool.run_tasks([0])

    def test_on_result_fires_per_completion(self):
        seen = []
        with PersistentPool(_double, jobs=2, heartbeat_s=0.1) as pool:
            out = pool.run_tasks(
                [3, 4, 5], on_result=lambda i, r: seen.append((i, r))
            )
        assert out == [6, 8, 10]
        assert sorted(seen) == [(0, 6), (1, 8), (2, 10)]
