"""Tests for the perf package: mode switch, job resolution, parallel_map."""

import os
import time

import pytest

from repro.errors import ConfigurationError, ParallelWorkerError
from repro.perf import (
    JOBS_ENV_VAR,
    OPTIMIZED_MODE,
    SEED_MODE,
    Stopwatch,
    effective_jobs,
    get_perf_mode,
    parallel_map,
    perf_mode,
    read_bench_report,
    seed_path_active,
    set_perf_mode,
    speedup,
    throughput,
    time_call,
    write_bench_report,
)

# parallel_map workers must be importable top-level functions.


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three")
    return x


_INIT_STATE = {"value": None}


def _set_state(value):
    _INIT_STATE["value"] = value


def _read_state(_):
    return _INIT_STATE["value"]


class TestPerfMode:
    def test_default_is_optimized(self):
        assert get_perf_mode() == OPTIMIZED_MODE
        assert not seed_path_active()

    def test_context_manager_restores(self):
        with perf_mode(SEED_MODE):
            assert seed_path_active()
            with perf_mode(OPTIMIZED_MODE):
                assert not seed_path_active()
            assert seed_path_active()
        assert not seed_path_active()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            set_perf_mode("fast")


class TestEffectiveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert effective_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert effective_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert effective_jobs(2) == 2

    def test_nonpositive_means_all_cores(self):
        assert effective_jobs(0) == (os.cpu_count() or 1)
        assert effective_jobs(-1) == (os.cpu_count() or 1)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ConfigurationError):
            effective_jobs(None)


class TestParallelMap:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_preserves_order(self, jobs):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=jobs) == [x * x for x in items]

    def test_serial_and_parallel_agree(self):
        items = list(range(12))
        assert parallel_map(_square, items, jobs=1) == parallel_map(
            _square, items, jobs=3
        )

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_serial_exceptions_propagate_unchanged(self):
        with pytest.raises(ValueError, match="three"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=1)

    def test_worker_exception_surfaces_message_and_traceback(self):
        with pytest.raises(ParallelWorkerError) as excinfo:
            # break_even_s=0.0 forces the pool; trivial items would
            # otherwise fall back to the serial path and raise bare.
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2, break_even_s=0.0)
        message = str(excinfo.value)
        # The original exception type and message survive the pool boundary…
        assert "ValueError" in message
        assert "three" in message
        # …along with the worker-side traceback, pointing at the raise site.
        assert "worker traceback" in message
        assert "_fail_on_three" in message

    def test_serial_runs_initializer_in_process(self):
        _INIT_STATE["value"] = None
        result = parallel_map(
            _read_state, [0, 0], jobs=1, initializer=_set_state, initargs=(7,)
        )
        assert result == [7, 7]
        assert _INIT_STATE["value"] == 7

    def test_workers_see_initializer_state(self):
        _INIT_STATE["value"] = None
        result = parallel_map(
            _read_state, [0, 0, 0], jobs=2, initializer=_set_state, initargs=(9,)
        )
        assert result == [9, 9, 9]


class TestBreakEvenFallback:
    """Sub-break-even jobs never pay for a process pool (ROADMAP item 4)."""

    def test_trivial_items_skip_the_pool(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise AssertionError("pool should not be created below break-even")

        monkeypatch.setattr(
            "repro.perf.parallel.ProcessPoolExecutor", no_pool
        )
        items = list(range(50))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_fallback_still_runs_initializer(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise AssertionError("pool should not be created below break-even")

        monkeypatch.setattr(
            "repro.perf.parallel.ProcessPoolExecutor", no_pool
        )
        _INIT_STATE["value"] = None
        result = parallel_map(
            _read_state, [0, 0, 0], jobs=2, initializer=_set_state, initargs=(4,)
        )
        assert result == [4, 4, 4]

    def test_probe_exception_propagates_unchanged(self):
        # The probed first item runs in-process, so its exception arrives
        # bare even at jobs > 1.
        with pytest.raises(ValueError, match="three"):
            parallel_map(_fail_on_three, [3, 1, 2], jobs=2)

    def test_zero_break_even_forces_pool(self):
        items = list(range(6))
        result = parallel_map(_square, items, jobs=2, break_even_s=0.0)
        assert result == [x * x for x in items]


_WARMED = {"done": False}


def _warmup_heavy(x):
    """First call simulates lazy-import/allocation warmup; rest are cheap."""
    if not _WARMED["done"]:
        _WARMED["done"] = True
        time.sleep(0.05)
    return x + 1


class _FakePool:
    """Stand-in ProcessPoolExecutor recording that a pool was requested."""

    created = 0

    def __init__(self, max_workers=None, mp_context=None, initializer=None,
                 initargs=()):
        type(self).created += 1
        if initializer is not None:
            initializer(*initargs)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def map(self, fn, items):
        return [fn(item) for item in items]


class TestProbeWarmupDiscount:
    """The probe must not mistake first-call warmup for steady-state cost.

    Regression for the bug where ``item_s`` included lazy imports / numpy
    buffer allocation from the very first call, overestimating the serial
    cost of the remaining items and spinning up a pool for maps that
    finish faster serially.
    """

    def test_warmup_heavy_first_item_stays_serial(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise AssertionError("warmup-inflated probe spun up a pool")

        monkeypatch.setattr("repro.perf.parallel.ProcessPoolExecutor", no_pool)
        # 11 remaining items at ~50 ms raw probe ≈ 0.55 s extrapolated —
        # past break-even on the undiscounted estimate, below it once the
        # warmup discount halves the probe.
        _WARMED["done"] = False
        items = list(range(12))
        assert parallel_map(_warmup_heavy, items, jobs=4) == [
            x + 1 for x in items
        ]

    def test_factor_one_restores_raw_probe(self, monkeypatch):
        monkeypatch.setattr(
            "repro.perf.parallel.ProcessPoolExecutor", _FakePool
        )
        _FakePool.created = 0
        _WARMED["done"] = False
        items = list(range(12))
        result = parallel_map(
            _warmup_heavy, items, jobs=4, probe_warmup_factor=1.0
        )
        assert result == [x + 1 for x in items]
        assert _FakePool.created == 1

    def test_invalid_factor_rejected(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                parallel_map(
                    _square, [1, 2], jobs=2, probe_warmup_factor=bad
                )


class TestTiming:
    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda: 5)
        assert result == 5
        assert seconds >= 0.0

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        for _ in range(2):
            with watch:
                pass
        assert watch.elapsed_s >= 0.0

    def test_throughput_and_speedup(self):
        assert throughput(10, 2.0) == pytest.approx(5.0)
        assert speedup(4.0, 2.0) == pytest.approx(2.0)

    def test_report_roundtrip(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = {"stages": {"x": 1}, "nested": {"b": [1, 2]}}
        write_bench_report(path, payload)
        assert read_bench_report(path) == payload
