"""Tests for shared value types."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.types import (
    FRAME_BUDGET_30FPS,
    NUM_LAYERS,
    LayerAmounts,
    Position,
    QualityScore,
    validate_seed,
)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_angle(self):
        assert Position(1, 1).angle_from(Position(0, 0)) == pytest.approx(np.pi / 4)

    def test_as_array(self):
        np.testing.assert_array_equal(Position(2, 3).as_array(), [2.0, 3.0])

    def test_hashable_and_equal(self):
        assert Position(1, 2) == Position(1, 2)
        assert len({Position(1, 2), Position(1, 2)}) == 1


class TestLayerAmounts:
    def test_total(self):
        amounts = LayerAmounts((1.0, 2.0, 3.0, 4.0))
        assert amounts.total == 10.0
        assert amounts.as_array().shape == (NUM_LAYERS,)

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            LayerAmounts((1.0, 2.0))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LayerAmounts((1.0, -2.0, 3.0, 4.0))


class TestQualityScore:
    def test_valid(self):
        score = QualityScore(ssim=0.95, psnr_db=40.0)
        assert score.ssim == 0.95

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            QualityScore(ssim=1.5, psnr_db=40.0)


class TestSeeds:
    def test_int_seed_deterministic(self):
        a = validate_seed(7).random(3)
        b = validate_seed(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert validate_seed(rng) is rng

    def test_none_allowed(self):
        assert validate_seed(None) is not None

    def test_bad_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_seed("nope")


class TestConstants:
    def test_frame_budget(self):
        assert FRAME_BUDGET_30FPS == pytest.approx(1 / 30)

    def test_four_layers(self):
        assert NUM_LAYERS == 4


class TestOutcomeStats:
    def _outcome(self):
        from repro.types import FrameStats, OutcomeStats

        outcome = OutcomeStats()
        for frame in range(3):
            for user in (0, 1):
                outcome.stats.append(
                    FrameStats(
                        frame_index=frame,
                        user_id=user,
                        ssim=0.5 + 0.1 * frame + 0.01 * user,
                        psnr_db=30.0 + frame,
                    )
                )
        return outcome

    def test_series_in_frame_order(self):
        outcome = self._outcome()
        assert outcome.ssim_series(1) == [0.51, 0.61, 0.71]
        assert outcome.ssim_series(99) == []

    def test_per_user_means(self):
        outcome = self._outcome()
        per_user = outcome.per_user_ssim()
        assert set(per_user) == {0, 1}
        assert per_user[0] == pytest.approx(0.6)

    def test_index_rebuilds_after_append(self):
        from repro.types import FrameStats

        outcome = self._outcome()
        assert len(outcome.ssim_series(0)) == 3
        # The cached per-user index must notice new stats.
        outcome.stats.append(
            FrameStats(frame_index=3, user_id=0, ssim=0.9, psnr_db=35.0)
        )
        assert outcome.ssim_series(0) == [0.5, 0.6, 0.7, 0.9]

    def test_index_reused_between_queries(self):
        outcome = self._outcome()
        outcome.ssim_series(0)
        index = outcome._series_index
        outcome.ssim_series(1)
        assert outcome._series_index is index

    def test_empty_outcome_nan_means(self):
        from repro.types import OutcomeStats

        outcome = OutcomeStats()
        assert np.isnan(outcome.mean_ssim)
        assert np.isnan(outcome.mean_psnr_db)
