"""CSI estimation and trace recording (Sec 2.8).

The paper estimates CSI from SLS RSS feedback using the ACO / X-array
framework, then — because the patched firmware cannot dump SLS RSS under
data traffic in mobile cases — records CSI traces and replays them in
emulation.  We mirror that structure:

* :class:`CsiEstimator` degrades ground-truth channel vectors with estimation
  noise (ACO recovers CSI only up to measurement error and quantisation).
* :class:`CsiTrace` is a recorded sequence of per-user channel snapshots at
  the 100 ms beacon interval, replayable by the emulator so that competing
  algorithms see identical channel conditions — the paper's stated reason
  for trace-driven evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path as FsPath
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..errors import ChannelError
from ..types import Position
from .channel import ChannelState


@dataclass(frozen=True)
class CsiEstimator:
    """Adds ACO-style estimation error to ground-truth channels.

    Attributes:
        relative_error_std: Std-dev of complex Gaussian error relative to the
            RMS magnitude of the channel entries.  ACO reports beamforming
            within ~1 dB of ground truth; 0.1 relative error reproduces that.
    """

    relative_error_std: float = 0.1

    def estimate(self, channel: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a noisy estimate of one channel vector."""
        channel = np.asarray(channel, dtype=complex)
        scale = float(np.sqrt(np.mean(np.abs(channel) ** 2)))
        noise = rng.normal(0.0, self.relative_error_std * scale / np.sqrt(2), channel.shape)
        noise = noise + 1j * rng.normal(
            0.0, self.relative_error_std * scale / np.sqrt(2), channel.shape
        )
        return channel + noise

    def estimate_state(
        self, state: ChannelState, rng: np.random.Generator
    ) -> ChannelState:
        """Noisy estimate of a whole snapshot.

        Multi-AP snapshots estimate AP 0's channel dict first — consuming
        exactly the rng draws a single-AP snapshot would — then the extra
        APs in AP order, so AP 0's estimates in an N-AP trace are
        bit-identical to a 1-AP trace at the same seed.
        """
        estimated = {u: self.estimate(h, rng) for u, h in state.channels.items()}
        ap_estimates: Optional[List[Dict[int, np.ndarray]]] = None
        if state.ap_channels is not None:
            ap_estimates = [estimated]
            for ap_dict in state.ap_channels[1:]:
                ap_estimates.append(
                    {u: self.estimate(h, rng) for u, h in ap_dict.items()}
                )
        return ChannelState(
            channels=estimated,
            positions=dict(state.positions),
            time_s=state.time_s,
            ap_channels=ap_estimates,
        )


@dataclass(frozen=True)
class CsiSnapshot:
    """One beacon interval's channel measurement.

    Attributes:
        time_s: Measurement time.
        true_state: Ground-truth channels (what the emulated air transmits
            through).
        estimated_state: What the AP's ACO estimator believes (what
            beamforming and scheduling are computed from).
    """

    time_s: float
    true_state: ChannelState
    estimated_state: ChannelState


@dataclass
class CsiTrace:
    """A replayable sequence of CSI snapshots at the beacon interval."""

    snapshots: List[CsiSnapshot] = field(default_factory=list)
    beacon_interval_s: float = 0.1

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[CsiSnapshot]:
        return iter(self.snapshots)

    def append(self, snapshot: CsiSnapshot) -> None:
        """Record one snapshot."""
        self.snapshots.append(snapshot)

    def at_time(self, time_s: float) -> CsiSnapshot:
        """Most recent snapshot at or before ``time_s`` (zero-order hold)."""
        if not self.snapshots:
            raise ChannelError("trace is empty")
        index = int(np.clip(time_s / self.beacon_interval_s, 0, len(self.snapshots) - 1))
        # Guard against non-uniform traces: walk to the right snapshot.
        while index > 0 and self.snapshots[index].time_s > time_s:
            index -= 1
        while (
            index + 1 < len(self.snapshots)
            and self.snapshots[index + 1].time_s <= time_s
        ):
            index += 1
        return self.snapshots[index]

    @property
    def duration_s(self) -> float:
        """Time covered by the trace."""
        if not self.snapshots:
            return 0.0
        return self.snapshots[-1].time_s + self.beacon_interval_s

    def user_ids(self) -> List[int]:
        """Users present in the first snapshot."""
        if not self.snapshots:
            return []
        return self.snapshots[0].true_state.user_ids

    @property
    def n_aps(self) -> int:
        """Access points the trace carries channels for (1 when empty)."""
        if not self.snapshots:
            return 1
        return self.snapshots[0].true_state.n_aps

    # ------------------------------------------------------------ persistence

    def save(self, path: Union[str, FsPath]) -> None:
        """Persist the trace to an ``.npz`` file.

        Multi-AP traces add ``ap{a}_true_{u}`` / ``ap{a}_est_{u}`` arrays
        for each extra AP ``a >= 1`` plus an ``n_aps`` scalar; single-AP
        traces keep the original key layout, so old files load unchanged.
        """
        if not self.snapshots:
            raise ChannelError("refusing to save an empty trace")
        users = self.user_ids()
        n_aps = self.n_aps
        times = np.array([s.time_s for s in self.snapshots])
        data: Dict[str, np.ndarray] = {
            "times": times,
            "users": np.array(users),
            "beacon_interval_s": np.array(self.beacon_interval_s),
        }
        if n_aps > 1:
            data["n_aps"] = np.array(n_aps)
        for user in users:
            data[f"true_{user}"] = np.vstack(
                [s.true_state.channels[user] for s in self.snapshots]
            )
            data[f"est_{user}"] = np.vstack(
                [s.estimated_state.channels[user] for s in self.snapshots]
            )
            data[f"pos_{user}"] = np.array(
                [
                    s.true_state.positions.get(user, Position(0, 0)).as_array()
                    for s in self.snapshots
                ]
            )
            for ap in range(1, n_aps):
                data[f"ap{ap}_true_{user}"] = np.vstack(
                    [s.true_state.ap_channels[ap][user] for s in self.snapshots]
                )
                data[f"ap{ap}_est_{user}"] = np.vstack(
                    [
                        s.estimated_state.ap_channels[ap][user]
                        for s in self.snapshots
                    ]
                )
        np.savez(FsPath(path), **data)

    @classmethod
    def load(cls, path: Union[str, FsPath]) -> "CsiTrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(FsPath(path)) as data:
            times = data["times"]
            users = [int(u) for u in data["users"]]
            interval = float(data["beacon_interval_s"])
            n_aps = int(data["n_aps"]) if "n_aps" in data else 1
            snapshots = []
            for i, t in enumerate(times):
                true_channels = {u: data[f"true_{u}"][i] for u in users}
                est_channels = {u: data[f"est_{u}"][i] for u in users}
                positions = {
                    u: Position(*(float(v) for v in data[f"pos_{u}"][i])) for u in users
                }
                ap_true = ap_est = None
                if n_aps > 1:
                    ap_true = [true_channels] + [
                        {u: data[f"ap{ap}_true_{u}"][i] for u in users}
                        for ap in range(1, n_aps)
                    ]
                    ap_est = [est_channels] + [
                        {u: data[f"ap{ap}_est_{u}"][i] for u in users}
                        for ap in range(1, n_aps)
                    ]
                snapshots.append(
                    CsiSnapshot(
                        time_s=float(t),
                        true_state=ChannelState(
                            true_channels, positions, float(t), ap_channels=ap_true
                        ),
                        estimated_state=ChannelState(
                            est_channels, positions, float(t), ap_channels=ap_est
                        ),
                    )
                )
        return cls(snapshots=snapshots, beacon_interval_s=interval)
