"""60 GHz propagation primitives: path loss, reflection and blockage losses."""

from __future__ import annotations

import numpy as np

from ..errors import ChannelError

#: Carrier frequency of 802.11ad channel 2 (Hz).
CARRIER_HZ = 60.48e9

#: Speed of light (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Carrier wavelength (m), roughly 5 mm.
WAVELENGTH_M = SPEED_OF_LIGHT / CARRIER_HZ

#: Loss added per specular wall reflection at 60 GHz (dB).  Measured values
#: for indoor drywall/concrete at V-band are ~8-15 dB per bounce.
REFLECTION_LOSS_DB = 10.0

#: Attenuation of a human body crossing the beam path at 60 GHz (dB).
#: Literature reports 20-30 dB; we use a mid value.
HUMAN_BLOCKAGE_DB = 22.0

#: Oxygen absorption at 60 GHz, dB per metre (~15 dB/km).
OXYGEN_ABSORPTION_DB_PER_M = 0.015


def free_space_path_loss_db(distance_m: float, frequency_hz: float = CARRIER_HZ) -> float:
    """Friis free-space path loss in dB, plus oxygen absorption.

    Distances below 1 cm are rejected (inside the antenna near field, where
    the model is meaningless).
    """
    if distance_m < 0.01:
        raise ChannelError(f"distance {distance_m} m too small for far-field model")
    fspl = 20.0 * np.log10(4.0 * np.pi * distance_m * frequency_hz / SPEED_OF_LIGHT)
    return float(fspl + OXYGEN_ABSORPTION_DB_PER_M * distance_m)


def path_amplitude(total_loss_db: float) -> float:
    """Linear field amplitude corresponding to a total power loss in dB."""
    return float(10.0 ** (-total_loss_db / 20.0))


def path_phase_rad(distance_m: float) -> float:
    """Carrier phase accumulated over ``distance_m`` (mod 2 pi).

    At 5 mm wavelength, millimetre-scale motion rotates this phase
    substantially — the source of the small-scale fading that makes mmWave
    throughput "fluctuate widely" (Sec 1).
    """
    return float((-2.0 * np.pi * distance_m / WAVELENGTH_M) % (2.0 * np.pi))


def segment_point_distance(
    seg_a: np.ndarray, seg_b: np.ndarray, point: np.ndarray
) -> float:
    """Shortest distance from ``point`` to the segment ``seg_a -> seg_b``.

    Used by the moving-environment model to decide whether a human blocker
    intersects a propagation path.
    """
    seg_a = np.asarray(seg_a, dtype=float)
    seg_b = np.asarray(seg_b, dtype=float)
    point = np.asarray(point, dtype=float)
    direction = seg_b - seg_a
    length2 = float(direction @ direction)
    if length2 <= 1e-12:
        return float(np.linalg.norm(point - seg_a))
    t = float(np.clip((point - seg_a) @ direction / length2, 0.0, 1.0))
    projection = seg_a + t * direction
    return float(np.linalg.norm(point - projection))
