"""60 GHz PHY substrate: arrays, propagation, ray tracing, MCS, mobility.

This package replaces the paper's hardware and proprietary tooling:

* the QCA6320 phased array and its firmware beam control
  (:mod:`repro.phy.antenna`),
* Wireless Insite ray tracing over a lidar-scanned room
  (:mod:`repro.phy.raytracer` — image-method specular reflections over a
  parametric room), and
* the patched-firmware SLS RSS dumps used for ACO CSI estimation
  (:mod:`repro.phy.csi` — noisy CSI estimates and recordable traces).

The MCS/sensitivity/UDP-throughput table is the paper's own Table 2.
"""

from .antenna import PhasedArray
from .channel import ChannelModel, ChannelState, LinkBudget
from .mcs import MCS_TABLE, McsEntry, highest_supported_mcs, rate_for_rss_mbps
from .mobility import EnvironmentMotionModel, RandomWalkModel
from .raytracer import Path, Room, RayTracer
from .csi import CsiEstimator, CsiSnapshot, CsiTrace
from .topology import MAX_APS, AccessPoint, Topology, TopologyConfig

__all__ = [
    "PhasedArray",
    "ChannelModel",
    "ChannelState",
    "LinkBudget",
    "MCS_TABLE",
    "McsEntry",
    "highest_supported_mcs",
    "rate_for_rss_mbps",
    "Room",
    "Path",
    "RayTracer",
    "RandomWalkModel",
    "EnvironmentMotionModel",
    "CsiEstimator",
    "CsiSnapshot",
    "CsiTrace",
    "AccessPoint",
    "Topology",
    "TopologyConfig",
    "MAX_APS",
]
