"""Channel synthesis: from traced paths to complex array-channel vectors.

The frequency-flat channel between the AP's ``Nt``-element array and a
single-antenna STA is

    h = sum_l  a_l * exp(j phi_l) * e(theta_l)

over traced paths ``l`` with linear amplitude ``a_l`` (free-space +
reflection + blockage loss), carrier phase ``phi_l`` from the travelled
distance, and array steering vector ``e``.  Received signal strength under a
transmit beam ``F`` (with ``||F|| = 1``) is ``RSS = Ptx * |F^H h|^2``,
reported in dBm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ChannelError
from ..types import Position
from .antenna import PhasedArray
from .propagation import path_amplitude, path_phase_rad
from .raytracer import RayTracer


@dataclass(frozen=True)
class LinkBudget:
    """Scalar link-budget terms outside the channel vector itself.

    Attributes:
        tx_power_dbm: Conducted transmit power fed to the array.  Beamforming
            gain is produced by ``|F^H h|^2`` (up to ``Nt`` with a matched
            beam), not included here.
        rx_gain_db: Receive antenna gain of the quasi-omni STA antenna.
        implementation_loss_db: Fixed RF implementation margin.
    """

    tx_power_dbm: float = 18.0
    rx_gain_db: float = 3.0
    implementation_loss_db: float = 2.0

    def rss_dbm(self, beam_channel_gain: float) -> float:
        """RSS for a linear beamformed channel power gain ``|F^H h|^2``."""
        if beam_channel_gain <= 0.0:
            return -np.inf
        return (
            self.tx_power_dbm
            + self.rx_gain_db
            - self.implementation_loss_db
            + 10.0 * np.log10(beam_channel_gain)
        )


@dataclass
class ChannelState:
    """Per-user channel vectors at one instant.

    Attributes:
        channels: ``user_id -> h`` complex vector of length ``Nt``.  In a
            multi-AP snapshot this is always AP 0's dict, so every
            single-AP consumer keeps reading exactly the data it always
            did.
        positions: ``user_id -> Position`` (metadata; emulation only).
        time_s: Simulation time of the snapshot.
        ap_channels: Optional per-AP channel dicts, AP 0 first (entry 0
            aliases ``channels``).  ``None`` means a plain single-AP
            snapshot.
    """

    channels: Dict[int, np.ndarray]
    positions: Dict[int, Position] = field(default_factory=dict)
    time_s: float = 0.0
    ap_channels: Optional[List[Dict[int, np.ndarray]]] = None

    def __post_init__(self) -> None:
        if self.ap_channels is not None:
            if not self.ap_channels:
                raise ChannelError("ap_channels must be None or non-empty")
            # Entry 0 IS the legacy dict — one source of truth per user.
            self.ap_channels[0] = self.channels

    @property
    def n_aps(self) -> int:
        """Access points this snapshot carries channels for."""
        return len(self.ap_channels) if self.ap_channels is not None else 1

    @property
    def user_ids(self) -> List[int]:
        """Sorted user identifiers present in this snapshot."""
        return sorted(self.channels)

    def for_ap(self, ap: int) -> "ChannelState":
        """A single-AP view of this snapshot (AP 0 returns ``self``).

        The view shares the underlying channel dicts, so beam planners,
        link models and transmitters written against the single-AP
        :class:`ChannelState` work per AP unchanged.
        """
        if ap == 0:
            return self
        if self.ap_channels is None or not 0 <= ap < len(self.ap_channels):
            raise ChannelError(
                f"snapshot carries {self.n_aps} AP(s); no channels for AP {ap}"
            )
        return ChannelState(
            channels=self.ap_channels[ap],
            positions=self.positions,
            time_s=self.time_s,
        )

    def stacked(self, user_ids: Sequence[int]) -> np.ndarray:
        """Stack the selected users' channels into an ``(n, Nt)`` matrix."""
        missing = [u for u in user_ids if u not in self.channels]
        if missing:
            raise ChannelError(f"no channel for users {missing}")
        return np.vstack([self.channels[u] for u in user_ids])


class ChannelModel:
    """Synthesises channel vectors for receivers in a ray-traced room.

    Args:
        tracer: Ray tracer bound to a room and AP placement.
        array: The AP phased array.
        budget: Link-budget scalars.
        fading_std_db: Log-normal shadowing applied per path (models
            everything the geometric tracer misses: scattering, polarisation
            mismatch, antenna pattern ripple).
    """

    def __init__(
        self,
        tracer: RayTracer,
        array: PhasedArray,
        budget: Optional[LinkBudget] = None,
        fading_std_db: float = 1.5,
    ) -> None:
        self.tracer = tracer
        self.array = array
        self.budget = budget or LinkBudget()
        self.fading_std_db = float(fading_std_db)

    def channel_vector(
        self,
        receiver: Position,
        rng: np.random.Generator,
        los_extra_loss_db: float = 0.0,
    ) -> np.ndarray:
        """Channel vector for a receiver position.

        Args:
            receiver: STA position.
            rng: Source of per-path shadowing randomness.
            los_extra_loss_db: Additional loss applied to the direct path
                (e.g. :data:`HUMAN_BLOCKAGE_DB` when a blocker crosses it).
        """
        paths = self.tracer.trace(receiver)
        h = np.zeros(self.array.num_elements, dtype=complex)
        for path in paths:
            loss = path.loss_db
            if path.is_los:
                loss += los_extra_loss_db
            loss += float(rng.normal(0.0, self.fading_std_db))
            amplitude = path_amplitude(loss)
            phase = path_phase_rad(path.length_m)
            h += amplitude * np.exp(1j * phase) * self.array.steering_vector(path.aod_rad)
        return h

    def snapshot(
        self,
        receivers: Dict[int, Position],
        rng: np.random.Generator,
        time_s: float = 0.0,
        los_extra_loss_db: Optional[Dict[int, float]] = None,
    ) -> ChannelState:
        """Channel vectors for a set of receivers at one instant."""
        extra = los_extra_loss_db or {}
        channels = {
            user: self.channel_vector(pos, rng, extra.get(user, 0.0))
            for user, pos in receivers.items()
        }
        return ChannelState(
            channels=channels, positions=dict(receivers), time_s=time_s
        )

    def rss_dbm(self, beam: np.ndarray, channel: np.ndarray) -> float:
        """RSS in dBm for a transmit beam and channel vector."""
        return self.budget.rss_dbm(self.array.beam_gain(beam, channel))
