"""Mobility models for the trace-driven mobile experiments (Sec 4.3.4).

Two sources of channel dynamics, matching the paper's two trace types:

* :class:`RandomWalkModel` — receivers carried by walking people ("two people
  hold the laptops and walk randomly for a minute").
* :class:`EnvironmentMotionModel` — static receivers with people walking
  between AP and receivers, intermittently blocking the direct path.

Both are stepped at the 802.11ad beacon interval (100 ms, i.e. 10 CSI
measurements per second, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..errors import ChannelError
from ..types import Position, validate_seed
from .propagation import HUMAN_BLOCKAGE_DB, segment_point_distance
from .raytracer import Room

#: 802.11ad ACO beacon interval in seconds.
BEACON_INTERVAL_S = 0.1


@dataclass
class RandomWalkModel:
    """A bounded random walk at walking speed for one mobile receiver.

    Direction evolves as a wrapped Gaussian (heading persistence); the walker
    bounces off walls.  Speed is re-drawn occasionally around 1 m/s.
    """

    room: Room
    start: Position
    speed_mps: float = 1.0
    heading_std_rad: float = 0.6
    seed: int = 0
    _position: Position = field(init=False)
    _heading: float = field(init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.room.contains(self.start):
            raise ChannelError(f"start {self.start} outside room {self.room}")
        if self.speed_mps <= 0:
            raise ChannelError(f"speed must be positive, got {self.speed_mps}")
        self._rng = validate_seed(self.seed)
        self._position = self.start
        self._heading = float(self._rng.uniform(-np.pi, np.pi))

    @property
    def position(self) -> Position:
        """Current walker position."""
        return self._position

    def step(self, dt_s: float = BEACON_INTERVAL_S) -> Position:
        """Advance the walk by ``dt_s`` and return the new position."""
        self._heading += float(self._rng.normal(0.0, self.heading_std_rad * np.sqrt(dt_s)))
        speed = self.speed_mps * float(self._rng.uniform(0.7, 1.3))
        x = self._position.x + speed * dt_s * np.cos(self._heading)
        y = self._position.y + speed * dt_s * np.sin(self._heading)
        margin = 0.2
        if not (margin <= x <= self.room.length - margin):
            self._heading = np.pi - self._heading
        if not (margin <= y <= self.room.width - margin):
            self._heading = -self._heading
        self._position = self.room.clamp(x, y, margin=margin)
        return self._position


@dataclass
class EnvironmentMotionModel:
    """People walking through the room, blocking line-of-sight paths.

    Each blocker follows its own random walk; a path from the AP to a
    receiver suffers :data:`HUMAN_BLOCKAGE_DB` of extra loss whenever any
    blocker comes within ``blocker_radius_m`` of the direct segment.
    """

    room: Room
    ap_position: Position
    num_blockers: int = 2
    blocker_radius_m: float = 0.35
    seed: int = 0
    _walkers: List[RandomWalkModel] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_blockers < 0:
            raise ChannelError(f"num_blockers must be >= 0, got {self.num_blockers}")
        rng = validate_seed(self.seed)
        self._walkers = []
        for i in range(self.num_blockers):
            start = self.room.clamp(
                float(rng.uniform(0.2 * self.room.length, 0.8 * self.room.length)),
                float(rng.uniform(0.2 * self.room.width, 0.8 * self.room.width)),
            )
            self._walkers.append(
                RandomWalkModel(
                    room=self.room,
                    start=start,
                    speed_mps=1.2,
                    seed=int(rng.integers(0, 2**31)),
                )
            )

    def step(self, dt_s: float = BEACON_INTERVAL_S) -> None:
        """Advance all blockers."""
        for walker in self._walkers:
            walker.step(dt_s)

    def blocker_positions(self) -> List[Position]:
        """Current blocker positions."""
        return [w.position for w in self._walkers]

    def los_extra_loss_db(self, receivers: Dict[int, Position]) -> Dict[int, float]:
        """Per-receiver extra loss on the direct path from current blockers."""
        losses: Dict[int, float] = {}
        ap = self.ap_position.as_array()
        for user, pos in receivers.items():
            loss = 0.0
            for walker in self._walkers:
                distance = segment_point_distance(ap, pos.as_array(), walker.position.as_array())
                if distance <= self.blocker_radius_m:
                    loss += HUMAN_BLOCKAGE_DB
            losses[user] = loss
        return losses
