"""Image-method indoor ray tracer (substitute for Wireless Insite, Sec 4.3).

The paper scans a meeting room with lidar and feeds the 3-D model to a
commercial ray tracer.  We model a parametric rectangular room and trace
specular paths with the image method: the line-of-sight path plus first- and
second-order wall reflections.  This preserves what the evaluation depends
on — distance-dependent signal strength, angular selectivity across user
placements, and multipath diversity — without the proprietary tool.

Geometry is 2-D (azimuth plane), matching the sector-level-sweep abstraction
of 802.11ad beam training.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ChannelError
from ..obs import OBS
from ..types import Position
from .propagation import REFLECTION_LOSS_DB, free_space_path_loss_db


@dataclass(frozen=True)
class Path:
    """One propagation path from AP to a receiver.

    Attributes:
        length_m: Total travelled distance.
        aod_rad: Angle of departure at the AP, measured from the AP's
            broadside direction.
        num_bounces: 0 for line of sight, 1 or 2 for reflections.
        loss_db: Total power loss (free space + reflections), excluding any
            time-varying blockage.
        is_los: Whether this is the direct path (blockage applies here).
    """

    length_m: float
    aod_rad: float
    num_bounces: int
    loss_db: float

    @property
    def is_los(self) -> bool:
        return self.num_bounces == 0


@dataclass(frozen=True)
class Room:
    """An axis-aligned rectangular room ``[0, length] x [0, width]`` metres."""

    length: float = 20.0
    width: float = 12.0

    def __post_init__(self) -> None:
        if self.length <= 0 or self.width <= 0:
            raise ChannelError(f"room dimensions must be positive, got {self}")

    def contains(self, position: Position) -> bool:
        """Whether a position lies inside the room."""
        return 0.0 <= position.x <= self.length and 0.0 <= position.y <= self.width

    def clamp(self, x: float, y: float, margin: float = 0.1) -> Position:
        """Clamp raw coordinates into the room with a wall margin."""
        return Position(
            float(np.clip(x, margin, self.length - margin)),
            float(np.clip(y, margin, self.width - margin)),
        )

    def _mirror(self, point: np.ndarray, wall: int) -> np.ndarray:
        """Mirror a point across wall 0..3 (x=0, x=length, y=0, y=width)."""
        mirrored = point.copy()
        if wall == 0:
            mirrored[0] = -point[0]
        elif wall == 1:
            mirrored[0] = 2.0 * self.length - point[0]
        elif wall == 2:
            mirrored[1] = -point[1]
        elif wall == 3:
            mirrored[1] = 2.0 * self.width - point[1]
        else:
            raise ChannelError(f"wall index {wall} out of range")
        return mirrored


class RayTracer:
    """Traces LoS + up to second-order specular paths within a room.

    Args:
        room: Room geometry.
        ap_position: AP location (must be inside the room).
        ap_boresight_rad: Azimuth of the AP array broadside in world
            coordinates (0 points along +x).
        max_bounces: 0, 1 or 2 reflection orders.
    """

    def __init__(
        self,
        room: Room,
        ap_position: Position,
        ap_boresight_rad: float = 0.0,
        max_bounces: int = 2,
    ) -> None:
        if not room.contains(ap_position):
            raise ChannelError(f"AP position {ap_position} outside room {room}")
        if max_bounces not in (0, 1, 2):
            raise ChannelError(f"max_bounces must be 0, 1 or 2, got {max_bounces}")
        self.room = room
        self.ap_position = ap_position
        self.ap_boresight_rad = float(ap_boresight_rad)
        self.max_bounces = int(max_bounces)

    def trace(self, receiver: Position) -> List[Path]:
        """All propagation paths from the AP to ``receiver``.

        Paths are sorted by increasing loss (strongest first).
        """
        if not self.room.contains(receiver):
            raise ChannelError(f"receiver {receiver} outside room {self.room}")
        ap = self.ap_position.as_array()
        rx = receiver.as_array()
        paths = [self._path_to_image(ap, rx, bounces=0)]

        if self.max_bounces >= 1:
            for wall in range(4):
                image = self.room._mirror(rx, wall)
                paths.append(self._path_to_image(ap, image, bounces=1))
        if self.max_bounces >= 2:
            for wall_a, wall_b in itertools.permutations(range(4), 2):
                image = self.room._mirror(self.room._mirror(rx, wall_a), wall_b)
                paths.append(self._path_to_image(ap, image, bounces=2))
        paths.sort(key=lambda p: p.loss_db)
        return paths

    def _path_to_image(
        self, ap: np.ndarray, image: np.ndarray, bounces: int
    ) -> Path:
        delta = image - ap
        length = float(np.linalg.norm(delta))
        length = max(length, 0.05)
        world_angle = float(np.arctan2(delta[1], delta[0]))
        aod = self._wrap(world_angle - self.ap_boresight_rad)
        loss = free_space_path_loss_db(length) + bounces * REFLECTION_LOSS_DB
        return Path(length_m=length, aod_rad=aod, num_bounces=bounces, loss_db=loss)

    @staticmethod
    def _wrap(angle: float) -> float:
        """Wrap an angle to (-pi, pi]."""
        return float((angle + np.pi) % (2.0 * np.pi) - np.pi)


def _validated_placement(room: Room, x: float, y: float) -> Position:
    """Clamp a raw placement into the room, flagging out-of-room draws.

    Geometry (distance + angle around the AP) can put a raw placement
    outside the room; these used to be clamped silently.  The clamp output
    is unchanged, but out-of-room draws now count under
    ``phy.placement.out_of_room`` and the result is verified against
    :meth:`Room.contains` so a bad clamp can never emit an outside user.
    """
    if not room.contains(Position(float(x), float(y))) and OBS.mode:
        OBS.count("phy.placement.out_of_room")
    placed = room.clamp(x, y)
    if not room.contains(placed):
        raise ChannelError(f"clamped placement {placed} outside room {room}")
    return placed


def place_users_arc(
    ap_position: Position,
    room: Room,
    num_users: int,
    distance_m: float,
    max_angular_spacing_rad: float,
    rng: np.random.Generator,
    boresight_rad: float = 0.0,
) -> List[Position]:
    """Place users on an arc around the AP (the paper's testbed layout).

    Users sit at ``distance_m`` from the AP with angular positions drawn
    uniformly inside a window of ``max_angular_spacing_rad`` centred on the
    AP boresight; the leftmost/rightmost users span at most that window
    (Sec 4.2's "maximum angular spacing").
    """
    if num_users < 1:
        raise ChannelError(f"num_users must be >= 1, got {num_users}")
    if distance_m <= 0:
        raise ChannelError(f"distance must be positive, got {distance_m}")
    half = max_angular_spacing_rad / 2.0
    if num_users == 1:
        angles = np.array([rng.uniform(-half, half)])
    else:
        angles = rng.uniform(-half, half, size=num_users)
        # Force the extremes so the realised MAS equals the requested one.
        angles[0], angles[-1] = -half, half
    users = []
    for angle in angles:
        world = boresight_rad + float(angle)
        x = ap_position.x + distance_m * np.cos(world)
        y = ap_position.y + distance_m * np.sin(world)
        users.append(_validated_placement(room, x, y))
    return users


def place_users_random_range(
    ap_position: Position,
    room: Room,
    num_users: int,
    min_distance_m: float,
    max_distance_m: float,
    max_angular_spacing_rad: float,
    rng: np.random.Generator,
    boresight_rad: float = 0.0,
) -> List[Position]:
    """Place users at random distances in a range (Fig 11/14/15 layout)."""
    if min_distance_m <= 0 or max_distance_m < min_distance_m:
        raise ChannelError(
            f"bad distance range [{min_distance_m}, {max_distance_m}]"
        )
    half = max_angular_spacing_rad / 2.0
    users = []
    for i in range(num_users):
        if num_users > 1 and i == 0:
            angle = -half
        elif num_users > 1 and i == num_users - 1:
            angle = half
        else:
            angle = float(rng.uniform(-half, half))
        distance = float(rng.uniform(min_distance_m, max_distance_m))
        world = boresight_rad + angle
        x = ap_position.x + distance * np.cos(world)
        y = ap_position.y + distance * np.sin(world)
        users.append(_validated_placement(room, x, y))
    return users
