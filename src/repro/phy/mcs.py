"""QCA6320 MCS table: sensitivity and measured UDP throughput (paper Table 2).

The paper maps RSS to MCS using the 802.11ad sensitivity table and feeds the
*measured* iperf3 UDP throughput (which includes PHY/MAC overhead) to the
resource optimizer, not the nominal PHY rate.  Entries marked "x" in Table 2
are MCS indices the QCA6320 cannot use for data traffic (0, 5, 9, 9.1 and
everything above 12) — they carry a sensitivity but no rate here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ChannelError


@dataclass(frozen=True)
class McsEntry:
    """One modulation-and-coding scheme.

    Attributes:
        index: MCS index (9.1 is represented as the float 9.1).
        sensitivity_dbm: Minimum RSS at which this MCS is decodable.
        udp_throughput_mbps: Measured UDP goodput, or None when the chipset
            does not support the MCS for data traffic.
    """

    index: float
    sensitivity_dbm: float
    udp_throughput_mbps: Optional[float]

    @property
    def supported(self) -> bool:
        """Whether the QCA6320 can send data traffic at this MCS."""
        return self.udp_throughput_mbps is not None


#: Table 2 of the paper, verbatim.
MCS_TABLE: Tuple[McsEntry, ...] = (
    McsEntry(0, -78.0, None),
    McsEntry(1, -68.0, 300.0),
    McsEntry(2, -66.0, 550.0),
    McsEntry(3, -65.0, 720.0),
    McsEntry(4, -64.0, 850.0),
    McsEntry(5, -62.0, None),
    McsEntry(6, -63.0, 1050.0),
    McsEntry(7, -62.0, 1250.0),
    McsEntry(8, -61.0, 1580.0),
    McsEntry(9, -59.0, None),
    McsEntry(9.1, -57.0, None),
    McsEntry(10, -55.0, 1850.0),
    McsEntry(11, -54.0, 2100.0),
    McsEntry(12, -53.0, 2400.0),
)

#: Sensitivity threshold separating the paper's "high RSS" and "low RSS"
#: mobile regimes (MCS 8, Sec 4.3.4).
HIGH_RSS_THRESHOLD_DBM = -61.0

_SUPPORTED: Tuple[McsEntry, ...] = tuple(e for e in MCS_TABLE if e.supported)


def supported_entries() -> Tuple[McsEntry, ...]:
    """All MCS entries usable for data traffic, ascending by throughput."""
    return _SUPPORTED


def highest_supported_mcs(rss_dbm: float) -> Optional[McsEntry]:
    """Highest data-capable MCS whose sensitivity the RSS satisfies.

    Returns None when the RSS is below the weakest data MCS (the link cannot
    carry data traffic at all — e.g. MCS 0 control-only territory).
    """
    best: Optional[McsEntry] = None
    for entry in _SUPPORTED:
        if rss_dbm >= entry.sensitivity_dbm:
            if best is None or entry.udp_throughput_mbps > best.udp_throughput_mbps:
                best = entry
    return best


def rate_for_rss_mbps(rss_dbm: float) -> float:
    """UDP goodput available at an RSS, or 0.0 when no data MCS decodes."""
    entry = highest_supported_mcs(rss_dbm)
    return float(entry.udp_throughput_mbps) if entry else 0.0


def entry_for_index(index: float) -> McsEntry:
    """Look up an MCS entry by index."""
    for entry in MCS_TABLE:
        if entry.index == index:
            return entry
    raise ChannelError(f"unknown MCS index {index}")


def snr_margin_db(rss_dbm: float, entry: McsEntry) -> float:
    """How far the RSS sits above the MCS sensitivity (negative = below)."""
    return float(rss_dbm - entry.sensitivity_dbm)


def rate_ladder_mbps() -> List[float]:
    """Ascending list of supported UDP throughputs (the ABR bitrate ladder
    the MPC baselines select from, Sec 4.3.4)."""
    return sorted(float(e.udp_throughput_mbps) for e in _SUPPORTED)


def sensitivity_map() -> Dict[float, float]:
    """MCS index -> sensitivity in dBm for every table entry."""
    return {e.index: e.sensitivity_dbm for e in MCS_TABLE}
