"""Phased-array model: steering vectors and M-bit phase-shifter quantisation.

Models the AP's uniform linear array (ULA) with half-wavelength spacing and
discrete phase shifters, the hardware constraint that makes exhaustive
precoder search infeasible in the paper (search space ``M^Nt``, Sec 2.5).
Receivers are modelled as single quasi-omnidirectional antennas, matching the
paper's SLS description.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import BeamformingError


@dataclass(frozen=True)
class PhasedArray:
    """A half-wavelength-spaced ULA with discrete phase shifters.

    Attributes:
        num_elements: Number of antenna elements (paper-scale WiGig arrays
            have 32-64 elements).
        phase_bits: Phase-shifter resolution in bits (802.11ad hardware is
            typically 2-bit).
    """

    num_elements: int = 32
    phase_bits: int = 2

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise BeamformingError(f"num_elements must be >= 1, got {self.num_elements}")
        if self.phase_bits < 1:
            raise BeamformingError(f"phase_bits must be >= 1, got {self.phase_bits}")

    def steering_vector(self, azimuth_rad: float) -> np.ndarray:
        """Array response for a plane wave departing at ``azimuth_rad``.

        Zero azimuth is array broadside.  The vector has unit-modulus entries
        and norm ``sqrt(num_elements)``.
        """
        n = np.arange(self.num_elements)
        return np.exp(1j * np.pi * n * np.sin(azimuth_rad))

    def quantise_weights(self, weights: np.ndarray) -> np.ndarray:
        """Project arbitrary complex weights onto realizable hardware weights.

        Phased arrays impose constant modulus per element plus ``phase_bits``
        phase resolution; the result is normalised to unit total power
        (``||F|| = 1``), the convention used throughout the link budget.
        """
        weights = np.asarray(weights, dtype=complex)
        if weights.shape != (self.num_elements,):
            raise BeamformingError(
                f"weights must have shape ({self.num_elements},), got {weights.shape}"
            )
        levels = 2**self.phase_bits
        step = 2.0 * np.pi / levels
        phases = np.round(np.angle(weights) / step) * step
        quantised = np.exp(1j * phases)
        return quantised / np.linalg.norm(quantised)

    def conjugate_beam(self, channel: np.ndarray) -> np.ndarray:
        """Quantised matched-filter beam ``h* / |h|`` for one receiver.

        This is the paper's optimized *unicast* codebook (Sec 2.5).
        """
        channel = np.asarray(channel, dtype=complex)
        if channel.shape != (self.num_elements,):
            raise BeamformingError(
                f"channel must have shape ({self.num_elements},), got {channel.shape}"
            )
        if not np.any(np.abs(channel) > 0):
            raise BeamformingError("cannot beamform on an all-zero channel")
        # Under the F^H h convention used throughout (gain = |vdot(F, h)|^2),
        # the matched filter is F = h / ||h||: vdot(h, h) = ||h||^2.
        return self.quantise_weights(channel)

    def beam_gain(self, beam: np.ndarray, channel: np.ndarray) -> float:
        """Beamforming power gain ``|F^H h|^2`` (linear)."""
        return float(np.abs(np.vdot(beam, channel)) ** 2)
