"""Multi-AP room topologies (ROADMAP item 5, multi-connectivity family).

The paper evaluates a single WiGig AP; the related mmWave literature
(Drago et al., arXiv:1711.06154; Kim et al., arXiv:1302.1663) shows the
big reliability wins come from *multi-connectivity* — several APs covering
the same room so a blocked LoS to one AP fails over to another, and coded
repair symbols from a secondary AP combine at the (rateless) fountain
decoder.

This module makes the AP axis first-class:

* :class:`AccessPoint` — one AP's placement (position + boresight).
* :class:`Topology` — an ordered set of APs bound to a room, with the
  :meth:`Topology.for_room` wall-midpoint factory the emulation uses.
* :class:`TopologyConfig` — the scalar, sweep-overridable configuration
  block embedded in :class:`repro.core.SystemConfig` (``topology.*``
  dotted overrides).  ``None`` / ``num_aps == 1`` degrades to the
  single-AP system bit-identically.

AP 0 is always "the paper's AP": the existing scenario placement against
one wall, centred, boresight along +x.  Every multi-AP structure keeps
AP 0 first so single-AP consumers reading the plain per-user channel dict
see exactly the data they always saw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Union

import numpy as np

from ..errors import ConfigurationError
from ..types import Position
from .raytracer import Room

__all__ = ["AccessPoint", "Topology", "TopologyConfig", "MAX_APS"]

#: Wall-midpoint placement supports up to one AP per wall.
MAX_APS = 4


@dataclass(frozen=True)
class AccessPoint:
    """One access point: identity, placement and array orientation.

    Attributes:
        ap_id: Stable index of this AP within its topology (0-based; AP 0
            is the primary / legacy AP).
        position: AP location inside the room.
        boresight_rad: Azimuth of the array broadside in world coordinates
            (0 points along +x).
    """

    ap_id: int
    position: Position
    boresight_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.ap_id < 0:
            raise ConfigurationError(f"ap_id must be >= 0, got {self.ap_id}")


@dataclass(frozen=True)
class Topology:
    """An ordered set of access points covering one room."""

    room: Room
    aps: tuple

    def __post_init__(self) -> None:
        if not self.aps:
            raise ConfigurationError("topology needs at least one AP")
        for index, ap in enumerate(self.aps):
            if ap.ap_id != index:
                raise ConfigurationError(
                    f"AP at index {index} carries ap_id {ap.ap_id}; "
                    "ids must be contiguous from 0"
                )
            if not self.room.contains(ap.position):
                raise ConfigurationError(
                    f"AP {index} position {ap.position} outside room {self.room}"
                )

    @property
    def num_aps(self) -> int:
        return len(self.aps)

    def __len__(self) -> int:
        return len(self.aps)

    def __iter__(self):
        return iter(self.aps)

    def __getitem__(self, index: int) -> AccessPoint:
        return self.aps[index]

    @classmethod
    def for_room(
        cls,
        room: Room,
        num_aps: int,
        first_ap: Optional[Position] = None,
        first_boresight_rad: float = 0.0,
        wall_margin_m: float = 0.3,
    ) -> "Topology":
        """Deterministic wall-midpoint topology.

        AP 0 sits at ``first_ap`` (default: the legacy scenario placement
        against the x=0 wall, centred) facing +x; additional APs take the
        midpoints of the remaining walls in the fixed order
        opposite (x=length, facing -x), bottom (y=0, facing +y),
        top (y=width, facing -y) — so a 2-AP topology is the
        face-to-face layout of the multi-connectivity papers.
        """
        if not 1 <= num_aps <= MAX_APS:
            raise ConfigurationError(
                f"num_aps must be in [1, {MAX_APS}], got {num_aps}"
            )
        margin = float(wall_margin_m)
        if first_ap is None:
            first_ap = Position(margin, room.width / 2.0)
        candidates = [
            AccessPoint(0, first_ap, float(first_boresight_rad)),
            AccessPoint(
                1, Position(room.length - margin, room.width / 2.0), float(np.pi)
            ),
            AccessPoint(
                2, Position(room.length / 2.0, margin), float(np.pi / 2.0)
            ),
            AccessPoint(
                3, Position(room.length / 2.0, room.width - margin),
                float(-np.pi / 2.0),
            ),
        ]
        return cls(room=room, aps=tuple(candidates[:num_aps]))


@dataclass(frozen=True)
class TopologyConfig:
    """The ``topology`` configuration block: multi-AP knobs as scalars.

    Every field is a plain scalar so dotted sweep overrides
    (``topology.num_aps=2``) compose exactly like the ``faults.*`` axis.
    ``num_aps == 1`` (or an absent block) streams through the single-AP
    pipeline bit-identically to the pre-topology system.

    Attributes:
        num_aps: Access points covering the room (wall-midpoint layout via
            :meth:`Topology.for_room`).
        hysteresis_db: A user hands over only when another AP's RSS beats
            the serving AP's by more than this margin (ping-pong damping).
        handover_noise_db: Std-dev of seeded measurement noise added to
            the association RSS comparison (real handover decisions see
            noisy beacon measurements); 0 keeps association exact.
        handover_seed: Seed of the association-noise stream, so handover
            sequences are reproducible independent of packet-loss draws.
        cross_ap_repair: Secondary APs spend leftover airtime sending
            fresh fountain symbols for their backup users' undecoded
            units (the rateless decoder combines symbols from any AP).
        ap_wall_margin_m: AP standoff from its wall in the generated
            topology.
    """

    num_aps: int = 1
    hysteresis_db: float = 3.0
    handover_noise_db: float = 0.0
    handover_seed: int = 0
    cross_ap_repair: bool = True
    ap_wall_margin_m: float = 0.3

    def __post_init__(self) -> None:
        if not 1 <= self.num_aps <= MAX_APS:
            raise ConfigurationError(
                f"topology.num_aps must be in [1, {MAX_APS}], got {self.num_aps}"
            )
        if self.hysteresis_db < 0:
            raise ConfigurationError(
                f"topology.hysteresis_db must be >= 0, got {self.hysteresis_db}"
            )
        if self.handover_noise_db < 0:
            raise ConfigurationError(
                "topology.handover_noise_db must be >= 0, "
                f"got {self.handover_noise_db}"
            )
        if self.ap_wall_margin_m <= 0:
            raise ConfigurationError(
                "topology.ap_wall_margin_m must be positive, "
                f"got {self.ap_wall_margin_m}"
            )

    @property
    def enabled(self) -> bool:
        """True when the config actually asks for more than one AP."""
        return self.num_aps > 1

    def build(
        self,
        room: Room,
        first_ap: Optional[Position] = None,
        first_boresight_rad: float = 0.0,
    ) -> Topology:
        """The concrete :class:`Topology` for ``room`` under this config."""
        return Topology.for_room(
            room,
            self.num_aps,
            first_ap=first_ap,
            first_boresight_rad=first_boresight_rad,
            wall_margin_m=self.ap_wall_margin_m,
        )


def coerce_topology(
    value: Union[None, TopologyConfig, Mapping],
) -> Optional[TopologyConfig]:
    """Coerce a mapping (JSON/CLI construction) into a TopologyConfig."""
    if value is None or isinstance(value, TopologyConfig):
        return value
    if isinstance(value, Mapping):
        return TopologyConfig(**value)
    raise ConfigurationError(
        f"topology must be a TopologyConfig or mapping, got {type(value)!r}"
    )


def topology_num_aps(config_topology: Optional[TopologyConfig]) -> int:
    """AP count of an optional topology block (1 when absent)."""
    return config_topology.num_aps if config_topology is not None else 1


def ap_positions(topology: Topology) -> List[Position]:
    """Positions of every AP, in AP order."""
    return [ap.position for ap in topology]


def validate_ap_index(ap: int, n_aps: int) -> int:
    """Bounds-check an AP index against a topology size."""
    if not 0 <= ap < n_aps:
        raise ConfigurationError(f"AP index {ap} out of range [0, {n_aps})")
    return ap
