"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at the API boundary.  Subclasses are
grouped by subsystem and carry enough context in their message to be
actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""


class VideoFormatError(ReproError):
    """A video frame or sequence has an unsupported shape, dtype or format."""


class CodecError(ReproError):
    """Layered encoding or decoding failed (bad layer data, size mismatch)."""


class QualityModelError(ReproError):
    """A video-quality model was misused (untrained, bad feature shape)."""


class ChannelError(ReproError):
    """The PHY/channel simulator was given invalid geometry or parameters."""


class BeamformingError(ReproError):
    """Beamforming weight computation failed or received bad CSI."""


class FountainCodeError(ReproError):
    """Fountain encoding/decoding failed (not enough symbols, bad symbol)."""


class SchedulingError(ReproError):
    """Group enumeration or time-allocation optimization failed."""


class TransportError(ReproError):
    """Packet transport, rate control, or feedback handling failed."""


class EmulationError(ReproError):
    """An emulation scenario or trace is malformed."""


class ServiceError(ReproError):
    """The multicast service layer was misused or hit an invalid state
    (unknown session, bad lifecycle transition, malformed session spec)."""


class ProtocolError(ServiceError):
    """A receiver control-plane message violated the wire protocol
    (bad frame length, oversized payload, invalid JSON, unknown type)."""


class ParallelWorkerError(ReproError):
    """A task raised inside a process-pool worker.

    The message embeds the worker-side exception type, message and full
    traceback, because the original traceback object cannot cross the
    process boundary.
    """
