"""Common value types shared across subsystems.

These are small frozen dataclasses and enums used at subsystem boundaries so
that packages can interoperate without importing each other's internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .errors import ConfigurationError

#: Number of pyramid layers in the Jigsaw-style codec (base + 3 refinements).
NUM_LAYERS = 4

#: Frame budget for 30 FPS live video, in seconds (the paper's deadline).
FRAME_BUDGET_30FPS = 1.0 / 30.0


class Richness(enum.Enum):
    """Spatial-richness class of a video, split by Y-plane variance (Sec 2.3)."""

    HIGH = "high"
    LOW = "low"


class BeamformingScheme(enum.Enum):
    """The four beamforming schemes compared throughout the evaluation."""

    OPTIMIZED_MULTICAST = "optimized_multicast"
    PREDEFINED_MULTICAST = "predefined_multicast"
    OPTIMIZED_UNICAST = "optimized_unicast"
    PREDEFINED_UNICAST = "predefined_unicast"


class SchedulerKind(enum.Enum):
    """Packet/time scheduling policies."""

    OPTIMIZED = "optimized"
    ROUND_ROBIN = "round_robin"


class AdaptationPolicy(enum.Enum):
    """Channel-adaptation policies for mobile experiments (Sec 4.3.4)."""

    REALTIME_UPDATE = "realtime_update"
    NO_UPDATE = "no_update"


@dataclass(frozen=True)
class Position:
    """A 2-D position in metres within the room plane."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres to ``other``."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def angle_from(self, origin: "Position") -> float:
        """Azimuth angle in radians of this point as seen from ``origin``."""
        return float(np.arctan2(self.y - origin.y, self.x - origin.x))

    def as_array(self) -> np.ndarray:
        """Return the position as a length-2 float array."""
        return np.array([self.x, self.y], dtype=float)


@dataclass(frozen=True)
class LayerAmounts:
    """Per-layer data volumes (bytes) delivered to one user for one frame."""

    bytes_per_layer: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.bytes_per_layer) != NUM_LAYERS:
            raise ConfigurationError(
                f"expected {NUM_LAYERS} layer amounts, got "
                f"{len(self.bytes_per_layer)}"
            )
        if any(b < 0 for b in self.bytes_per_layer):
            raise ConfigurationError("layer byte counts must be non-negative")

    @property
    def total(self) -> float:
        """Total bytes across all layers."""
        return float(sum(self.bytes_per_layer))

    def as_array(self) -> np.ndarray:
        """Return per-layer byte counts as a float array of length 4."""
        return np.asarray(self.bytes_per_layer, dtype=float)


@dataclass(frozen=True)
class QualityScore:
    """Video quality of a single decoded frame."""

    ssim: float
    psnr_db: float

    def __post_init__(self) -> None:
        if not (-1.0 <= self.ssim <= 1.0):
            raise ConfigurationError(f"SSIM {self.ssim} outside [-1, 1]")


@dataclass
class FrameStats:
    """Per-frame streaming outcome for one receiver.

    Collected by the end-to-end pipeline and aggregated by the emulation
    harness into the per-figure statistics the paper reports.
    """

    frame_index: int
    user_id: int
    ssim: float
    psnr_db: float
    bytes_received_per_layer: Tuple[float, ...] = field(
        default_factory=lambda: (0.0,) * NUM_LAYERS
    )
    deadline_met: bool = True
    decode_failures: int = 0


def validate_seed(seed: Optional[int]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a non-deterministic generator; an int produces a
    deterministic one.  All stochastic components in the library accept a
    seed or generator through this helper so experiments are reproducible.
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise ConfigurationError(f"seed must be None, int or Generator, got {type(seed)!r}")
