"""Common value types shared across subsystems.

These are small frozen dataclasses and enums used at subsystem boundaries so
that packages can interoperate without importing each other's internals.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .errors import ConfigurationError

#: Number of pyramid layers in the Jigsaw-style codec (base + 3 refinements).
NUM_LAYERS = 4

#: Frame budget for 30 FPS live video, in seconds (the paper's deadline).
FRAME_BUDGET_30FPS = 1.0 / 30.0


class Richness(enum.Enum):
    """Spatial-richness class of a video, split by Y-plane variance (Sec 2.3)."""

    HIGH = "high"
    LOW = "low"


class BeamformingScheme(enum.Enum):
    """The four beamforming schemes compared throughout the evaluation."""

    OPTIMIZED_MULTICAST = "optimized_multicast"
    PREDEFINED_MULTICAST = "predefined_multicast"
    OPTIMIZED_UNICAST = "optimized_unicast"
    PREDEFINED_UNICAST = "predefined_unicast"


class SchedulerKind(enum.Enum):
    """Packet/time scheduling policies."""

    OPTIMIZED = "optimized"
    ROUND_ROBIN = "round_robin"


class AdaptationPolicy(enum.Enum):
    """Channel-adaptation policies for mobile experiments (Sec 4.3.4)."""

    REALTIME_UPDATE = "realtime_update"
    NO_UPDATE = "no_update"


@dataclass(frozen=True)
class Position:
    """A 2-D position in metres within the room plane."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres to ``other``."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def angle_from(self, origin: "Position") -> float:
        """Azimuth angle in radians of this point as seen from ``origin``."""
        return float(np.arctan2(self.y - origin.y, self.x - origin.x))

    def as_array(self) -> np.ndarray:
        """Return the position as a length-2 float array."""
        return np.array([self.x, self.y], dtype=float)


@dataclass(frozen=True)
class LayerAmounts:
    """Per-layer data volumes (bytes) delivered to one user for one frame."""

    bytes_per_layer: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.bytes_per_layer) != NUM_LAYERS:
            raise ConfigurationError(
                f"expected {NUM_LAYERS} layer amounts, got "
                f"{len(self.bytes_per_layer)}"
            )
        if any(b < 0 for b in self.bytes_per_layer):
            raise ConfigurationError("layer byte counts must be non-negative")

    @property
    def total(self) -> float:
        """Total bytes across all layers."""
        return float(sum(self.bytes_per_layer))

    def as_array(self) -> np.ndarray:
        """Return per-layer byte counts as a float array of length 4."""
        return np.asarray(self.bytes_per_layer, dtype=float)


@dataclass(frozen=True)
class QualityScore:
    """Video quality of a single decoded frame."""

    ssim: float
    psnr_db: float

    def __post_init__(self) -> None:
        if not (-1.0 <= self.ssim <= 1.0):
            raise ConfigurationError(f"SSIM {self.ssim} outside [-1, 1]")


@dataclass
class FrameStats:
    """Per-frame streaming outcome for one receiver.

    Collected by the end-to-end pipeline and aggregated by the emulation
    harness into the per-figure statistics the paper reports.
    """

    frame_index: int
    user_id: int
    ssim: float
    psnr_db: float
    bytes_received_per_layer: Tuple[float, ...] = field(
        default_factory=lambda: (0.0,) * NUM_LAYERS
    )
    deadline_met: bool = True
    decode_failures: int = 0


class OutcomeStats:
    """Per-(frame, user) stats accumulator shared by streaming outcomes.

    Both the multicast system's ``StreamOutcome`` and the ABR baselines'
    ``AbrOutcome`` collect one :class:`FrameStats` per (frame, user) and are
    queried the same ways; this base class carries the aggregation methods
    so the emulation harness can treat every session outcome uniformly.

    Two ingestion paths feed it: ``outcome.stats.append(...)`` per (frame,
    user), and :meth:`append_block` with one frame's whole user cohort as
    arrays.  Blocks are kept columnar and only expanded into
    :class:`FrameStats` objects when ``stats`` is actually read, so
    aggregate queries (``mean_ssim`` over a 1,000-user sweep) never build
    per-user objects at all.

    Per-user series are indexed once per stats generation (the index is
    rebuilt lazily whenever ``stats`` has grown) instead of re-sorting the
    full stats list on every :meth:`ssim_series` call.
    """

    def __init__(self, stats: Optional[List[FrameStats]] = None) -> None:
        self._stats: List[FrameStats] = stats if stats is not None else []
        self._blocks: List[
            Tuple[int, List[int], np.ndarray, np.ndarray, np.ndarray, bool]
        ] = []
        self._series_index: Optional[Dict[int, List[FrameStats]]] = None
        self._series_len: int = -1

    @property
    def stats(self) -> List[FrameStats]:
        """All per-(frame, user) stats, expanding pending cohort blocks."""
        if self._blocks:
            self._materialize()
        return self._stats

    def append_block(
        self,
        frame_index: int,
        user_ids: List[int],
        ssim: np.ndarray,
        psnr_db: np.ndarray,
        bytes_per_layer: np.ndarray,
        deadline_met: bool,
    ) -> None:
        """Append one frame's cohort outcome as arrays (row order = user).

        Equivalent to appending one :class:`FrameStats` per user in
        ``user_ids`` order, but stored columnar until somebody reads
        ``stats``.
        """
        self._blocks.append(
            (
                int(frame_index),
                list(user_ids),
                np.asarray(ssim, dtype=np.float64),
                np.asarray(psnr_db, dtype=np.float64),
                np.asarray(bytes_per_layer, dtype=np.float64),
                bool(deadline_met),
            )
        )

    def _materialize(self) -> None:
        for frame_index, user_ids, ssim, psnr, layer_bytes, met in self._blocks:
            for i, user in enumerate(user_ids):
                self._stats.append(
                    FrameStats(
                        frame_index=frame_index,
                        user_id=user,
                        ssim=float(ssim[i]),
                        psnr_db=float(psnr[i]),
                        bytes_received_per_layer=tuple(layer_bytes[i]),
                        deadline_met=met,
                    )
                )
        self._blocks.clear()

    def _ssim_column(self) -> np.ndarray:
        """Every SSIM sample without materializing pending blocks."""
        parts = [np.asarray([s.ssim for s in self._stats])] if self._stats else []
        parts.extend(block[2] for block in self._blocks)
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    @property
    def mean_ssim(self) -> float:
        column = self._ssim_column()
        if column.size == 0:
            return float("nan")
        return float(np.mean(column))

    @property
    def mean_psnr_db(self) -> float:
        parts = (
            [np.asarray([s.psnr_db for s in self._stats])] if self._stats else []
        )
        parts.extend(block[3] for block in self._blocks)
        if not parts:
            return float("nan")
        return float(np.mean(np.concatenate(parts)))

    def _per_user_index(self) -> Dict[int, List[FrameStats]]:
        """Frame-ordered per-user stats, rebuilt only when stats changed."""
        stats = self.stats
        if self._series_index is None or self._series_len != len(stats):
            index: Dict[int, List[FrameStats]] = {}
            for stat in stats:
                index.setdefault(stat.user_id, []).append(stat)
            for series in index.values():
                series.sort(key=lambda s: s.frame_index)
            self._series_index = index
            self._series_len = len(stats)
        return self._series_index

    def per_user_ssim(self) -> Dict[int, float]:
        """Mean SSIM per user."""
        index = self._per_user_index()
        return {
            u: float(np.mean([s.ssim for s in index[u]]))
            for u in sorted(index)
        }

    def ssim_series(self, user_id: int) -> List[float]:
        """Per-frame SSIM of one user, in frame order."""
        return [s.ssim for s in self._per_user_index().get(user_id, [])]

    def fingerprint(self) -> str:
        """A bit-exact, order-independent digest of the per-frame stats.

        Floats are hex-encoded before hashing, so two outcomes share a
        fingerprint iff every (frame, user) stat matches bitwise — the
        contract the chaos determinism check and the service layer's
        served-vs-in-process equivalence both assert.
        """
        rows = sorted(
            (
                s.frame_index,
                s.user_id,
                float(s.ssim).hex(),
                float(s.psnr_db).hex(),
                tuple(float(b).hex() for b in s.bytes_received_per_layer),
                s.deadline_met,
            )
            for s in self.stats
        )
        digest = hashlib.sha256(repr(rows).encode("utf-8"))
        return digest.hexdigest()


def validate_seed(seed: Optional[int]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a non-deterministic generator; an int produces a
    deterministic one.  All stochastic components in the library accept a
    seed or generator through this helper so experiments are reproducible.
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise ConfigurationError(f"seed must be None, int or Generator, got {type(seed)!r}")
