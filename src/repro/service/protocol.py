"""Receiver control-plane wire protocol: length-prefixed JSON frames.

One message is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single object::

    \\x00\\x00\\x00\\x2a{"type": "join", "session": "s1", "user": 2}

The object must carry a string ``type``.  Client -> server types are
``join`` / ``leave`` / ``feedback`` / ``ping``; the server answers each
with exactly one response (``joined`` / ``left`` / ``feedback_ack`` /
``pong`` / ``error``) echoing the request's ``seq`` when present, so
clients can correlate responses and measure round-trip latency.  On
shutdown the server pushes an unsolicited ``bye`` and stops reading.

Framing violations — a payload longer than :data:`MAX_MESSAGE_BYTES`,
invalid JSON, a non-object payload, or a missing ``type`` — raise
:class:`repro.errors.ProtocolError`.  A clean EOF between frames returns
``None``; an EOF *inside* a frame (truncated message) is a protocol error
too, because silently dropping a half-received control message would
desynchronize membership.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from ..errors import ProtocolError

__all__ = [
    "MAX_MESSAGE_BYTES",
    "CONTROL_TYPES",
    "encode_message",
    "read_message",
    "validate_control_message",
]

#: Upper bound on one message's JSON payload; anything larger is hostile
#: or corrupt (a join/feedback message is tens of bytes).
MAX_MESSAGE_BYTES = 64 * 1024

_LENGTH = struct.Struct(">I")

#: Client -> server message types and the fields each requires.
CONTROL_TYPES: Dict[str, tuple] = {
    "join": ("session", "user"),
    "leave": ("session", "user"),
    "feedback": ("session", "user"),
    "ping": (),
}


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialize one message object to its wire frame."""
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit"
        )
    return _LENGTH.pack(len(payload)) + payload


async def read_message(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on clean EOF between frames."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{_LENGTH.size} length bytes received)"
        ) from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} payload bytes received)"
        ) from exc
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"payload must be a JSON object, got {type(message).__name__}"
        )
    if not isinstance(message.get("type"), str):
        raise ProtocolError("message is missing a string 'type' field")
    return message


def validate_control_message(message: Dict[str, Any]) -> str:
    """Check a client message against :data:`CONTROL_TYPES`.

    Returns the message type; raises :class:`ProtocolError` for unknown
    types or missing/ill-typed required fields, so the server can reject
    malformed control traffic with a precise error instead of crashing a
    session handler deeper in.
    """
    kind = message["type"]
    required = CONTROL_TYPES.get(kind)
    if required is None:
        raise ProtocolError(
            f"unknown control message type {kind!r} "
            f"(known: {', '.join(sorted(CONTROL_TYPES))})"
        )
    for field in required:
        if field not in message:
            raise ProtocolError(
                f"{kind!r} message is missing required field {field!r}"
            )
    if "session" in required and not isinstance(message["session"], str):
        raise ProtocolError(
            f"{kind!r} message field 'session' must be a string"
        )
    if "user" in required and not isinstance(message["user"], int):
        raise ProtocolError(f"{kind!r} message field 'user' must be an int")
    if kind == "feedback":
        fraction = message.get("fraction", 1.0)
        if not isinstance(fraction, (int, float)) or isinstance(fraction, bool):
            raise ProtocolError("'feedback' field 'fraction' must be a number")
        if not 0.0 <= float(fraction) <= 1.0:
            raise ProtocolError(
                f"'feedback' fraction {fraction} outside [0, 1]"
            )
    return kind
