"""Receiver-side client: the wire protocol caller and an HTTP helper.

:class:`ReceiverClient` is the reference implementation of a receiver on
the control plane — the load-test driver, the test suite and any external
tool all speak through it.  A background reader task demultiplexes
responses to their requests by ``seq`` (so concurrent requests on one
connection are fine), measures per-request round-trip time, and latches
unsolicited ``bye`` pushes so callers can notice a draining server.

:func:`http_request` is a minimal one-shot asyncio HTTP/1.1 JSON call for
the REST control plane (the server answers ``Connection: close``, so one
connection per request is the protocol).
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from ..errors import ProtocolError, ServiceError
from .protocol import encode_message, read_message

__all__ = ["ReceiverClient", "http_request"]

#: Default per-request timeout; generous because a busy single-core event
#: loop streams whole frames between scheduling opportunities.
DEFAULT_TIMEOUT_S = 30.0


class ReceiverClient:
    """One receiver-plane connection with seq-correlated requests.

    Use :meth:`connect` to construct::

        client = await ReceiverClient.connect(host, port)
        response, rtt_s = await client.join("s1", user=3)
        ...
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_seq = 0
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        #: Set when the server pushes ``bye`` (drain announcement).
        self.bye = asyncio.Event()
        #: Set when the connection is gone (EOF, error, or close()).
        self.closed = asyncio.Event()
        self.protocol_errors = 0
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "ReceiverClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # ------------------------------------------------------------- requests

    async def request(
        self,
        message: Dict[str, Any],
        timeout: float = DEFAULT_TIMEOUT_S,
    ) -> Tuple[Dict[str, Any], float]:
        """Send one control message, await its response, measure the RTT.

        Returns ``(response, rtt_seconds)``.  ``error`` responses raise
        :class:`ServiceError` (the server rejected the message but the
        connection survives unless the response was marked fatal).
        """
        if self.closed.is_set():
            raise ServiceError("connection is closed")
        seq = self._next_seq
        self._next_seq += 1
        message = dict(message)
        message["seq"] = seq
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[seq] = future
        t0 = perf_counter()
        try:
            self._writer.write(encode_message(message))
            await self._writer.drain()
            response = await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(seq, None)
        rtt = perf_counter() - t0
        if response.get("type") == "error":
            raise ServiceError(response.get("error", "request rejected"))
        return response, rtt

    async def join(
        self, session: str, user: int, timeout: float = DEFAULT_TIMEOUT_S
    ) -> Tuple[Dict[str, Any], float]:
        return await self.request(
            {"type": "join", "session": session, "user": user}, timeout
        )

    async def leave(
        self, session: str, user: int, timeout: float = DEFAULT_TIMEOUT_S
    ) -> Tuple[Dict[str, Any], float]:
        return await self.request(
            {"type": "leave", "session": session, "user": user}, timeout
        )

    async def feedback(
        self,
        session: str,
        user: int,
        fraction: float,
        timeout: float = DEFAULT_TIMEOUT_S,
    ) -> Tuple[Dict[str, Any], float]:
        return await self.request(
            {
                "type": "feedback", "session": session,
                "user": user, "fraction": fraction,
            },
            timeout,
        )

    async def ping(
        self, timeout: float = DEFAULT_TIMEOUT_S
    ) -> Tuple[Dict[str, Any], float]:
        return await self.request({"type": "ping"}, timeout)

    async def send_raw(self, payload: bytes) -> None:
        """Write raw bytes (test hook for malformed-frame injection)."""
        self._writer.write(payload)
        await self._writer.drain()

    # ----------------------------------------------------------- read loop

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await read_message(self._reader)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "bye":
                    self.bye.set()
                    continue
                seq = message.get("seq")
                future = self._pending.get(seq) if seq is not None else None
                if future is not None and not future.done():
                    future.set_result(message)
                elif kind == "error" and message.get("fatal"):
                    # Unsolicited fatal error (framing violation): the
                    # server is about to drop us.
                    self.protocol_errors += 1
        except ProtocolError:
            self.protocol_errors += 1
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed.set()
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServiceError("connection closed before response")
                    )

    # --------------------------------------------------------------- close

    async def close(self) -> None:
        """Close the connection and stop the reader task; idempotent."""
        self._writer.close()
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self.closed.set()


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    timeout: float = DEFAULT_TIMEOUT_S,
) -> Tuple[int, Dict[str, Any]]:
    """One JSON-in / JSON-out call against the REST control plane.

    Returns ``(status_code, parsed_body)``.  The control plane closes the
    connection after each response, so the reply is read to EOF.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        blob = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None else b""
        )
        head = (
            f"{method.upper()} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + blob)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
    status_line, _, _ = raw.partition(b"\r\n")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ServiceError(
            f"malformed HTTP response from control plane: {status_line!r}"
        )
    status = int(parts[1])
    _, _, payload = raw.partition(b"\r\n\r\n")
    parsed = json.loads(payload.decode("utf-8")) if payload.strip() else {}
    if not isinstance(parsed, dict):
        raise ServiceError("control plane response was not a JSON object")
    return status, parsed
