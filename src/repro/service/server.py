"""The asyncio session server: broadcasters, receiver plane, REST control.

One :class:`ServiceServer` owns two listeners on stdlib asyncio (no web
framework):

* the **receiver plane** — a TCP listener speaking the length-prefixed
  JSON protocol of :mod:`repro.service.protocol`; each connection may
  join any number of (session, user) pairs, and a dropped connection
  auto-leaves everything it joined (a real receiver disappearing);
* the **control plane** — a minimal HTTP/1.1 listener serving JSON:

  ====================  ======================================================
  ``POST /start``       body = :class:`~repro.service.session.SessionSpec`
                        JSON; starts a broadcaster, returns the session id
  ``POST /stop``        body ``{"session": id}``; stops it at the next
                        frame boundary and returns its final status
  ``GET /status``       server state + every session's summary
  ``GET /sessions/<id>`` one session's detail (spec, membership, outcome
                        fingerprint once finished)
  ``GET /metrics``      the :mod:`repro.obs` registry snapshot, with
                        per-session counters grouped by scope
  ``POST /shutdown``    acknowledge, then gracefully shut the server down
  ====================  ======================================================

Graceful shutdown (also wired to SIGTERM/SIGINT by ``repro-wigig
serve``): stop admitting sessions, push ``bye`` to every receiver, give
connections a drain window to flush in-flight control messages (each
still acked), stop every broadcaster at its frame boundary, then flush
all per-session JSONL trace recorders and the global obs trace before
closing the listeners — so a SIGTERM'd server never leaves a truncated
trace behind.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import ProtocolError, ServiceError
from ..obs import OBS, TRACE
from ..emulation.context import ExperimentContext
from .protocol import encode_message, read_message, validate_control_message
from .session import Broadcaster, ServedSession, SessionSpec

__all__ = ["ServiceServer"]

_HTTP_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                 405: "Method Not Allowed", 503: "Service Unavailable"}

#: Cap on a control-plane request body (a session spec is tiny).
MAX_BODY_BYTES = 256 * 1024


class _ReceiverConnection:
    """Book-keeping for one receiver-plane TCP connection."""

    __slots__ = ("writer", "task", "joined")

    def __init__(self, writer: asyncio.StreamWriter,
                 task: "asyncio.Task[None]") -> None:
        self.writer = writer
        self.task = task
        self.joined: Set[Tuple[str, int]] = set()


class ServiceServer:
    """Hosts concurrent served sessions behind receiver + control planes.

    Args:
        ctx: Shared experiment context every session builds from (one
            DNN, one probe set — the same sharing discipline as the
            sweep engine).
        host: Bind address for both listeners.
        receiver_port: Receiver-plane TCP port (0 = ephemeral).
        control_port: Control-plane HTTP port (0 = ephemeral).
        frame_interval_s: Wall-clock pacing between frames (0 = as fast
            as the event loop allows).
        drain_s: Grace window on shutdown for receivers to flush
            in-flight control messages.
        log: Optional line logger (the CLI passes ``print``).
    """

    def __init__(
        self,
        ctx: ExperimentContext,
        host: str = "127.0.0.1",
        receiver_port: int = 0,
        control_port: int = 0,
        frame_interval_s: float = 0.0,
        drain_s: float = 0.25,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.ctx = ctx
        self.host = host
        self._requested_ports = (receiver_port, control_port)
        self.receiver_port: Optional[int] = None
        self.control_port: Optional[int] = None
        self.frame_interval_s = frame_interval_s
        self.drain_s = drain_s
        self._log = log
        self.scope = OBS.scoped("service")
        self.sessions: Dict[str, ServedSession] = {}
        self._next_session = 1
        self._connections: Set[_ReceiverConnection] = set()
        self._receiver_server: Optional[asyncio.base_events.Server] = None
        self._control_server: Optional[asyncio.base_events.Server] = None
        self.draining = False
        self._shutdown_done = asyncio.Event()
        self._shutdown_started = False

    def log(self, line: str) -> None:
        if self._log is not None:
            self._log(line)

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind both listeners (ephemeral ports resolve here)."""
        receiver_port, control_port = self._requested_ports
        self._receiver_server = await asyncio.start_server(
            self._handle_receiver, self.host, receiver_port
        )
        self._control_server = await asyncio.start_server(
            self._handle_control, self.host, control_port
        )
        self.receiver_port = self._receiver_server.sockets[0].getsockname()[1]
        self.control_port = self._control_server.sockets[0].getsockname()[1]
        self.log(f"receiver plane : {self.host}:{self.receiver_port}")
        self.log(f"control plane  : http://{self.host}:{self.control_port}")

    async def shutdown(self) -> None:
        """Graceful stop: drain receivers, stop broadcasters, flush traces."""
        if self._shutdown_started:
            await self._shutdown_done.wait()
            return
        self._shutdown_started = True
        self.draining = True
        self.scope.count("shutdown.requests")
        self.log("shutdown: draining")

        # Stop admitting new connections (existing ones keep their loop).
        for server in (self._receiver_server, self._control_server):
            if server is not None:
                server.close()

        # Push `bye`, then let every connection flush whatever control
        # messages are already in flight — each still gets its ack.
        for conn in list(self._connections):
            await self._send(conn.writer, {"type": "bye", "reason": "shutdown"})
        tasks = [conn.task for conn in self._connections]
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=self.drain_s)
            for conn in list(self._connections):
                conn.writer.close()
            if pending:
                await asyncio.wait(tasks, timeout=self.drain_s)

        # Broadcasters stop at their next frame boundary.
        for served in self.sessions.values():
            served.request_stop()
        session_tasks = [
            served.task for served in self.sessions.values()
            if served.task is not None
        ]
        if session_tasks:
            await asyncio.gather(*session_tasks, return_exceptions=True)

        # Flush every per-session recorder, then the global trace.
        for served in self.sessions.values():
            flushed = served.close()
            if flushed:
                self.log(f"shutdown: session {served.id} trace -> {flushed}")
        if OBS.mode >= TRACE:
            path = OBS.trace.flush()
            if path is not None:
                self.log(f"shutdown: obs trace -> {path}")

        for server in (self._receiver_server, self._control_server):
            if server is not None:
                await server.wait_closed()
        self.log("shutdown: complete")
        self._shutdown_done.set()

    # ------------------------------------------------------------- sessions

    def start_session(self, spec: SessionSpec) -> ServedSession:
        """Admit one session and launch its broadcaster task."""
        if self.draining:
            raise ServiceError("server is draining; not admitting sessions")
        session_id = f"s{self._next_session}"
        self._next_session += 1
        served = ServedSession(session_id, spec, self.ctx)
        served.task = asyncio.get_running_loop().create_task(
            Broadcaster(served, self.frame_interval_s).run(),
            name=f"broadcaster-{session_id}",
        )
        self.sessions[session_id] = served
        self.scope.count("sessions.started")
        self.scope.set_gauge("sessions.live", sum(
            1 for s in self.sessions.values() if s.state == "running"
        ))
        self.log(f"session {session_id}: started "
                 f"({spec.users} users, {spec.frames} frames, seed {spec.seed})")
        return served

    async def stop_session(self, session_id: str) -> ServedSession:
        """Stop one session at its frame boundary and wait for it."""
        served = self.session(session_id)
        served.request_stop()
        if served.task is not None:
            await served.task
        self.scope.count("sessions.stopped")
        return served

    def session(self, session_id: str) -> ServedSession:
        served = self.sessions.get(session_id)
        if served is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return served

    def status(self) -> Dict[str, Any]:
        return {
            "state": "draining" if self.draining else "running",
            "receiver_port": self.receiver_port,
            "control_port": self.control_port,
            "receivers_connected": len(self._connections),
            "sessions": [
                served.status() for _, served in sorted(self.sessions.items())
            ],
        }

    def metrics(self) -> Dict[str, Any]:
        """The obs registry snapshot with per-session scopes broken out."""
        per_session = {
            session_id: served.scope.counters()
            for session_id, served in sorted(self.sessions.items())
        }
        return {
            "obs_mode": OBS.mode_name,
            "counters": OBS.counters(),
            "gauges": OBS.gauges(),
            "sessions": per_session,
        }

    # ------------------------------------------------------- receiver plane

    async def _handle_receiver(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        conn = _ReceiverConnection(writer, task)
        self._connections.add(conn)
        self.scope.count("receiver.connections")
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    # Broken framing: no way to resync the byte stream —
                    # report and drop the connection.
                    self.scope.count("protocol.errors")
                    await self._send(
                        writer, {"type": "error", "error": str(exc),
                                 "fatal": True},
                    )
                    break
                if message is None:
                    break
                response = self._dispatch_control(message, conn)
                await self._send(writer, response)
        except asyncio.CancelledError:
            # Server shutdown cancels pending reads; the connection is
            # going away regardless, so end the handler quietly.
            pass
        finally:
            self._connections.discard(conn)
            self._auto_leave(conn)
            writer.close()

    def _auto_leave(self, conn: _ReceiverConnection) -> None:
        """A dropped connection leaves every (session, user) it joined."""
        for session_id, user in sorted(conn.joined):
            served = self.sessions.get(session_id)
            if served is not None and served.state == "running":
                if served.apply_leave(user):
                    self.scope.count("receiver.auto_leaves")
        conn.joined.clear()

    def _dispatch_control(
        self, message: Dict[str, Any], conn: _ReceiverConnection
    ) -> Dict[str, Any]:
        """One well-framed control message -> one response object.

        Malformed-but-well-framed messages (unknown type, missing fields,
        unknown session/user) get an ``error`` response and the
        connection survives; only framing violations are fatal.
        """
        seq = message.get("seq")
        try:
            kind = validate_control_message(message)
            if kind == "ping":
                response: Dict[str, Any] = {"type": "pong"}
            elif kind == "join":
                served = self.session(message["session"])
                changed = served.apply_join(message["user"])
                conn.joined.add((served.id, message["user"]))
                response = {
                    "type": "joined", "session": served.id,
                    "user": message["user"], "changed": changed,
                    "members": served.members,
                }
            elif kind == "leave":
                served = self.session(message["session"])
                changed = served.apply_leave(message["user"])
                conn.joined.discard((served.id, message["user"]))
                response = {
                    "type": "left", "session": served.id,
                    "user": message["user"], "changed": changed,
                    "members": served.members,
                }
            else:  # feedback
                served = self.session(message["session"])
                served.apply_feedback(
                    message["user"], float(message.get("fraction", 1.0))
                )
                response = {
                    "type": "feedback_ack", "session": served.id,
                    "user": message["user"],
                }
            self.scope.count(f"control.{kind}")
        except (ProtocolError, ServiceError) as exc:
            self.scope.count("control.rejected")
            response = {"type": "error", "error": str(exc), "fatal": False}
        if seq is not None:
            response["seq"] = seq
        return response

    async def _send(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        try:
            writer.write(encode_message(message))
            await writer.drain()
        except (ConnectionError, RuntimeError):
            self.scope.count("receiver.send_failures")

    # -------------------------------------------------------- control plane

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status = 400
        payload: Dict[str, Any] = {"error": "malformed HTTP request"}
        shutdown_after = False
        try:
            request_line = (await reader.readline()).decode("latin-1").strip()
            parts = request_line.split()
            if len(parts) >= 2:
                method, path = parts[0].upper(), parts[1]
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or 0)
                if length > MAX_BODY_BYTES:
                    raise ServiceError(
                        f"request body of {length} bytes exceeds "
                        f"{MAX_BODY_BYTES}"
                    )
                body = await reader.readexactly(length) if length else b""
                status, payload, shutdown_after = await self._route(
                    method, path, body
                )
            self.scope.count("control.http_requests")
        except (ServiceError, ValueError, asyncio.IncompleteReadError) as exc:
            status, payload = 400, {"error": str(exc)}
            self.scope.count("control.http_bad_requests")
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _HTTP_REASONS.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + blob)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
        if shutdown_after:
            # Ack first, then shut down out-of-band so the requester
            # never blocks on the drain it asked for.
            asyncio.get_running_loop().create_task(self.shutdown())

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], bool]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/status" and method == "GET":
            return 200, self.status(), False
        if path == "/metrics" and method == "GET":
            return 200, self.metrics(), False
        if path.startswith("/sessions/") and method == "GET":
            session_id = path[len("/sessions/"):]
            try:
                return 200, self.session(session_id).status(detail=True), False
            except ServiceError as exc:
                return 404, {"error": str(exc)}, False
        if path == "/start" and method == "POST":
            if self.draining:
                return 503, {"error": "server is draining"}, False
            try:
                spec = SessionSpec.from_dict(self._json_body(body))
                served = self.start_session(spec)
            except ServiceError as exc:
                return 400, {"error": str(exc)}, False
            return 200, {"session": served.id, "status": served.status()}, False
        if path == "/stop" and method == "POST":
            try:
                raw = self._json_body(body)
                session_id = raw.get("session")
                if not isinstance(session_id, str):
                    raise ServiceError("body must carry a 'session' id string")
                served = await self.stop_session(session_id)
            except ServiceError as exc:
                return 404, {"error": str(exc)}, False
            return 200, served.status(detail=True), False
        if path == "/shutdown" and method == "POST":
            return 200, {"ok": True, "state": "draining"}, True
        known = {"/status", "/metrics", "/start", "/stop", "/shutdown"}
        if path in known or path.startswith("/sessions/"):
            return 405, {"error": f"method {method} not allowed on {path}"}, False
        return 404, {"error": f"unknown path {path!r}"}, False

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(parsed, dict):
            raise ServiceError("request body must be a JSON object")
        return parsed

    # ----------------------------------------------------------- convenience

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` fires (or a /shutdown arrives), then drain."""
        await self.start()
        stop_wait = asyncio.ensure_future(stop.wait())
        shutdown_wait = asyncio.ensure_future(self._shutdown_done.wait())
        try:
            await asyncio.wait(
                [stop_wait, shutdown_wait],
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            stop_wait.cancel()
            shutdown_wait.cancel()
        await self.shutdown()

    def list_sessions(self) -> List[str]:
        return sorted(self.sessions)
