"""Asynchronous multicast service layer: session server + control plane.

Turns the batch emulation library into a long-running service, modeled on
the broadcaster / receiver / control-broadcaster split of production
multicast stacks:

* :class:`ServiceServer` hosts many concurrent served sessions inside one
  asyncio event loop.  Each session wraps a
  :class:`repro.core.pipeline.StreamSession` built from a serializable
  :class:`SessionSpec` and is driven frame-by-frame by a
  :class:`Broadcaster` task; sessions interleave at frame boundaries.
* Receivers connect over a length-prefixed JSON protocol
  (:mod:`repro.service.protocol`) and send ``join`` / ``leave`` /
  ``feedback`` control messages that mutate live session membership
  through the pipeline's ``evict_user`` / ``rejoin_user`` seams.
* A REST control API (stdlib asyncio, no extra dependency) exposes
  ``/start``, ``/stop``, ``/status``, ``/sessions/<id>`` and ``/metrics``
  (the :mod:`repro.obs` registry, with per-session counters namespaced
  under ``service.session.<id>``).

``repro-wigig serve`` runs the server from the shell;
``benchmarks/bench_service_load.py`` is the load-test driver.  A session
served over the wire with no control-plane interference is bit-identical
to the same seeded spec run through the in-process sweep engine — the
equivalence `tests/service/test_determinism.py` pins.
"""

from .client import ReceiverClient, http_request
from .protocol import (
    MAX_MESSAGE_BYTES,
    encode_message,
    read_message,
    validate_control_message,
)
from .server import ServiceServer
from .session import Broadcaster, ServedSession, SessionSpec

__all__ = [
    "Broadcaster",
    "MAX_MESSAGE_BYTES",
    "ReceiverClient",
    "ServedSession",
    "ServiceServer",
    "SessionSpec",
    "encode_message",
    "http_request",
    "read_message",
    "validate_control_message",
]
