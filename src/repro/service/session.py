"""Served sessions: spec, live state, and the broadcaster task.

A :class:`SessionSpec` is the serializable description of one streaming
session — exactly the information a point of the in-process sweep engine
gets: user count, placement, frame budget, config overrides (string
pairs, parsed by :func:`repro.emulation.parse_config_overrides`, dotted
``faults.*`` knobs welcome) and the run seed.  ``build()`` reproduces the
sweep engine's construction order (trace from the run seed, streamer from
``seed + SEED_OFFSET``), so a served session with an untouched membership
is bit-identical to ``run_variant_sweep``'s sample for the same seed.

:class:`ServedSession` wraps the built
:class:`repro.core.pipeline.StreamSession` with everything the control
plane needs: lifecycle state, membership mutation through the pipeline's
``evict_user`` / ``rejoin_user`` seams, external feedback bookkeeping, a
per-session :class:`repro.obs.ScopedObs` namespace and an optional
per-session JSONL trace recorder.

:class:`Broadcaster` is the per-session asyncio task: it steps the
pipeline one frame at a time, yielding to the event loop at every frame
boundary so many sessions interleave and control messages are only ever
applied between frames (the single-threaded loop makes every ``await`` a
natural synchronization point — no locks).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core import MulticastStreamer
from ..core.pipeline import StreamSession
from ..errors import ReproError, ServiceError
from ..obs import OBS, ScopedObs, TraceRecorder
from ..emulation.context import ExperimentContext, trace_for_placement
from ..emulation.sweep import parse_config_overrides

__all__ = ["SEED_OFFSET", "Broadcaster", "ServedSession", "SessionSpec"]

#: Streamer-seed offset within a run, matching the sweep engine's default
#: ``seed_offset`` — the constant that makes served results comparable to
#: campaign points.
SEED_OFFSET = 7

#: Lifecycle states a served session moves through (forward-only).
RUNNING = "running"
FINISHED = "finished"
STOPPED = "stopped"
FAILED = "failed"


@dataclass(frozen=True)
class SessionSpec:
    """Serializable description of one served streaming session.

    Attributes:
        users: Receivers in the placement (the session's full membership).
        frames: Frames to stream before the session finishes.
        seed: Run seed; the trace derives from it directly and the
            streamer from ``seed + SEED_OFFSET``, mirroring the sweep
            engine's per-run schedule.
        placement: ``('arc', d, mas)`` or ``('range', d0, d1, mas)``.
        overrides: ``field=value`` string pairs applied to the base
            config (``faults.*`` knobs nest with a dotted prefix).
        trace_path: Optional per-session JSONL trace destination; frame
            events are buffered and flushed on session close (and on
            graceful server shutdown).
    """

    users: int
    frames: int
    seed: int = 0
    placement: Tuple = ("arc", 3.0, 60.0)
    overrides: Mapping[str, str] = field(default_factory=dict)
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ServiceError(f"session needs users >= 1, got {self.users}")
        if self.frames < 1:
            raise ServiceError(f"session needs frames >= 1, got {self.frames}")
        if not self.placement or self.placement[0] not in ("arc", "range"):
            raise ServiceError(
                f"unknown placement spec {tuple(self.placement)!r}"
            )

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SessionSpec":
        """Parse a JSON-shaped spec (the ``/start`` request body)."""
        if not isinstance(raw, Mapping):
            raise ServiceError(
                f"session spec must be an object, got {type(raw).__name__}"
            )
        known = {"users", "frames", "seed", "placement", "overrides",
                 "trace_path"}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ServiceError(
                f"unknown session spec fields {unknown} "
                f"(known: {sorted(known)})"
            )
        try:
            users = int(raw.get("users", 0))
            frames = int(raw.get("frames", 0))
            seed = int(raw.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"non-integer spec field: {exc}") from exc
        placement = raw.get("placement", ("arc", 3.0, 60.0))
        if not isinstance(placement, (list, tuple)) or not placement:
            raise ServiceError(f"bad placement spec {placement!r}")
        overrides = raw.get("overrides", {})
        if not isinstance(overrides, Mapping) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in overrides.items()
        ):
            raise ServiceError(
                "overrides must map field names to value strings"
            )
        trace_path = raw.get("trace_path")
        if trace_path is not None and not isinstance(trace_path, str):
            raise ServiceError("trace_path must be a string path")
        return cls(
            users=users,
            frames=frames,
            seed=seed,
            placement=(placement[0], *(float(v) for v in placement[1:])),
            overrides=dict(overrides),
            trace_path=trace_path,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "users": self.users,
            "frames": self.frames,
            "seed": self.seed,
            "placement": list(self.placement),
            "overrides": dict(self.overrides),
            "trace_path": self.trace_path,
        }

    def build(self, ctx: ExperimentContext) -> StreamSession:
        """Construct the pipeline session the sweep engine would.

        Same order, same seeds: trace from ``seed``, streamer from
        ``seed + SEED_OFFSET`` — the bit-identity contract with
        ``run_variant_sweep``'s ``_placement_run``.
        """
        overrides = parse_config_overrides(dict(self.overrides))
        config = ctx.config(**overrides)
        trace = trace_for_placement(
            ctx, self.users, self.placement, self.seed,
            num_aps=config.num_aps,
        )
        streamer = MulticastStreamer(
            config, ctx.dnn, ctx.probes, ctx.scenario.channel_model,
            seed=self.seed + SEED_OFFSET,
        )
        return streamer.session(trace)


class ServedSession:
    """One live session inside the server: pipeline + control-plane state."""

    def __init__(self, session_id: str, spec: SessionSpec,
                 ctx: ExperimentContext) -> None:
        self.id = session_id
        self.spec = spec
        self.session: StreamSession = spec.build(ctx)
        self.scope: ScopedObs = OBS.scoped(f"service.session.{session_id}")
        self.state = RUNNING
        self.error: Optional[str] = None
        self.frames_streamed = 0
        self.joins = 0
        self.leaves = 0
        self.feedback_count = 0
        self.last_feedback: Dict[int, float] = {}
        self.stop_event = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(spec.trace_path) if spec.trace_path else None
        )
        self._closed = False

    # ----------------------------------------------------------- control

    @property
    def members(self) -> List[int]:
        """Current live membership (trace order)."""
        return list(self.session.users)

    def apply_join(self, user: int) -> bool:
        """Control-plane join via the pipeline's rejoin seam."""
        self._check_open("join")
        try:
            changed = self.session.rejoin_user(user)
        except ReproError as exc:
            raise ServiceError(str(exc)) from exc
        if changed:
            self.joins += 1
            self.scope.count("membership.joins")
        return changed

    def apply_leave(self, user: int) -> bool:
        """Control-plane leave via the pipeline's evict seam."""
        self._check_open("leave")
        changed = self.session.evict_user(user)
        if changed:
            self.leaves += 1
            self.scope.count("membership.leaves")
        return changed

    def apply_feedback(self, user: int, fraction: float) -> None:
        """Record one external receiver report.

        Wire feedback is control-plane telemetry: the pipeline's in-loop
        feedback (Sec 2.7) stays the emulated per-frame reports, so a
        session's outcome remains bit-identical to the batch engine; the
        external reports surface through ``/sessions/<id>`` and the
        session's metric namespace.
        """
        self._check_open("feedback")
        if user not in self.session.all_users:
            raise ServiceError(
                f"user {user} is not part of session {self.id!r}"
            )
        self.feedback_count += 1
        self.last_feedback[user] = float(fraction)
        self.scope.count("feedback.reports")
        self.scope.set_gauge(f"feedback.user.{user}.fraction", float(fraction))

    def request_stop(self) -> None:
        """Ask the broadcaster to stop at the next frame boundary."""
        self.stop_event.set()

    def _check_open(self, verb: str) -> None:
        if self.state != RUNNING:
            raise ServiceError(
                f"cannot {verb}: session {self.id!r} is {self.state}"
            )

    # ------------------------------------------------------------ status

    def status(self, detail: bool = False) -> Dict[str, Any]:
        """JSON-shaped session state for ``/status`` and ``/sessions/<id>``."""
        out: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "frames_streamed": self.frames_streamed,
            "total_frames": self.spec.frames,
            "members": self.members,
            "joins": self.joins,
            "leaves": self.leaves,
            "feedback_reports": self.feedback_count,
        }
        if self.error is not None:
            out["error"] = self.error
        if detail:
            outcome = self.session.outcome
            out["spec"] = self.spec.to_dict()
            out["all_users"] = list(self.session.all_users)
            out["last_feedback"] = {
                str(u): f for u, f in sorted(self.last_feedback.items())
            }
            if self.frames_streamed:
                out["mean_ssim"] = outcome.mean_ssim
                out["mean_psnr_db"] = outcome.mean_psnr_db
            if self.state in (FINISHED, STOPPED):
                out["outcome"] = {
                    "mean_ssim_hex": float(outcome.mean_ssim).hex(),
                    "mean_psnr_db_hex": float(outcome.mean_psnr_db).hex(),
                    "fingerprint": outcome.fingerprint(),
                }
        return out

    # ------------------------------------------------------------- close

    def close(self) -> Optional[str]:
        """Flush the per-session trace recorder; idempotent.

        Returns the flushed path (if a recorder was configured and had
        events), so shutdown logging can name what it wrote.
        """
        if self._closed:
            return None
        self._closed = True
        self.scope.set_gauge("frames_streamed", self.frames_streamed)
        if self.recorder is None:
            return None
        now = perf_counter()
        self.recorder.record(
            "service.session.closed", now, now,
            state=self.state, frames_streamed=self.frames_streamed,
        )
        path = self.recorder.flush()
        return str(path) if path else None


class Broadcaster:
    """The per-session frame-driving task.

    Steps the wrapped pipeline one frame per loop iteration and yields to
    the event loop between frames — the seam where join/leave control
    messages land and where a stop request (or server drain) takes
    effect.  ``frame_interval_s > 0`` paces frames in wall-clock time
    (live mode); ``0`` streams as fast as the loop allows (batch mode,
    the load-test default).
    """

    def __init__(self, served: ServedSession,
                 frame_interval_s: float = 0.0) -> None:
        self.served = served
        self.frame_interval_s = float(frame_interval_s)

    async def run(self) -> None:
        served = self.served
        session = served.session
        scope = served.scope
        try:
            total = session.begin(served.spec.frames)
            with scope.span("broadcast", frames=total):
                for frame_index in range(total):
                    if served.stop_event.is_set():
                        served.state = STOPPED
                        scope.count("stopped")
                        break
                    t0 = perf_counter()
                    streamed = session.stream_frame(frame_index)
                    t1 = perf_counter()
                    served.frames_streamed += 1
                    scope.count("frames.streamed")
                    if not streamed:
                        scope.count("frames.idle")
                    if served.recorder is not None:
                        served.recorder.record(
                            "service.frame", t0, t1, frame=frame_index,
                            users=len(session.users), streamed=streamed,
                        )
                    if self.frame_interval_s > 0.0:
                        await asyncio.sleep(self.frame_interval_s)
                    else:
                        # Bare yield: let control handlers and the other
                        # sessions' broadcasters run between frames.
                        await asyncio.sleep(0)
                else:
                    served.state = FINISHED
                    scope.count("finished")
        except asyncio.CancelledError:
            served.state = STOPPED
            scope.count("cancelled")
            raise
        except Exception as exc:  # noqa: BLE001 - session must not kill the server
            served.state = FAILED
            served.error = f"{type(exc).__name__}: {exc}"
            scope.count("failures")
        finally:
            served.close()
