"""Shared experiment state and placement->trace plumbing.

Builds the heavyweight shared state once (trained DNN quality model — disk
cached — plus encoded reference-frame probes) so every runner and sweep
works from the same :class:`ExperimentContext`, and turns placement specs
into CSI traces.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from ..baselines import FreezeModel, RateQualityModel
from ..core import SystemConfig
from ..errors import EmulationError
from ..phy.csi import CsiTrace
from ..quality.dnn import DNNQualityModel
from ..types import Richness
from ..video.dataset import FrameQualityProbe, generate_dataset
from ..video.jigsaw import JigsawCodec
from ..video.synthetic import SyntheticVideo, make_standard_videos
from .scenario import EmulationScenario

#: Default number of random runs per configuration (paper: 10 testbed /
#: 100 emulation; reduce for tractable CI, override via REPRO_BENCH_RUNS).
DEFAULT_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))

#: Default frames streamed per run (paper streams minutes; the per-frame
#: metric converges within a dozen frames under static channels).
DEFAULT_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "9"))


@dataclass
class ExperimentContext:
    """Heavyweight shared state for all experiments."""

    height: int
    width: int
    dnn: DNNQualityModel
    videos: List[SyntheticVideo]
    probes: List[FrameQualityProbe]
    scenario: EmulationScenario
    base_config: SystemConfig
    _freeze: Optional[FreezeModel] = field(default=None, repr=False)

    @property
    def hr_video(self) -> SyntheticVideo:
        """The high-richness video the default experiments stream."""
        return self.videos[0]

    def freeze_model(self) -> FreezeModel:
        """Lazily built temporal-decay model for the ABR baselines."""
        if self._freeze is None:
            self._freeze = FreezeModel.from_video(self.hr_video)
        return self._freeze

    def rate_quality(self) -> RateQualityModel:
        """Rate-quality model of the DASH encodings at this resolution."""
        return RateQualityModel(
            richness=Richness.HIGH,
            pixels_per_frame=self.height * self.width,
            fps=self.base_config.fps,
        )

    def config(self, **overrides) -> SystemConfig:
        """A copy of the base config with overrides applied."""
        return replace(self.base_config, **overrides)


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "repro_wigig"
    path.mkdir(parents=True, exist_ok=True)
    return path


def build_context(
    height: int = 288,
    width: int = 512,
    dnn_epochs: int = 300,
    probe_frames: int = 4,
    seed: int = 0,
    use_cache: bool = True,
) -> ExperimentContext:
    """Build (or load from cache) the shared experiment context."""
    videos = make_standard_videos(height=height, width=width, num_frames=16, seed=7)
    cache_file = _cache_dir() / f"dnn_{height}x{width}_e{dnn_epochs}_s{seed}.npz"
    if use_cache and cache_file.exists():
        dnn = DNNQualityModel.load(cache_file)
    else:
        dataset = generate_dataset(
            videos, frames_per_video=3, samples_per_frame=24, seed=seed
        )
        dnn = DNNQualityModel(epochs=dnn_epochs, seed=seed)
        dnn.fit(dataset.features, dataset.ssim)
        if use_cache:
            dnn.save(cache_file)
    codec = JigsawCodec(height, width)
    # The paper evaluates on 2 HR + 2 LR sequences and reports the average;
    # we cycle probes drawn from one HR and one LR video.
    probes = []
    for video in (videos[0], videos[3]):
        indices = np.unique(
            np.linspace(0, video.num_frames - 1, max(1, probe_frames // 2)).astype(int)
        )
        probes.extend(
            FrameQualityProbe.from_frame(codec, video.frame(int(i)))
            for i in indices
        )
    return ExperimentContext(
        height=height,
        width=width,
        dnn=dnn,
        videos=videos,
        probes=probes,
        scenario=EmulationScenario(seed=seed),
        base_config=SystemConfig(height=height, width=width),
    )


def trace_for_placement(
    ctx: ExperimentContext,
    num_users: int,
    placement: Tuple,
    run_seed: int,
    num_aps: int = 1,
) -> CsiTrace:
    """Build a static trace for an ('arc', d, mas) or ('range', d0, d1, mas)
    placement spec.

    With ``num_aps > 1`` the trace carries per-AP channels for every AP of
    the room's default topology; AP0's sub-trace is bit-identical to the
    ``num_aps=1`` trace, so one superset trace can serve both the 1-AP and
    multi-AP arms of a comparison.
    """
    kind = placement[0]
    if kind == "arc":
        _, distance, mas = placement
        positions = ctx.scenario.place_arc(num_users, distance, mas, seed=run_seed)
    elif kind == "range":
        _, dmin, dmax, mas = placement
        positions = ctx.scenario.place_random_range(
            num_users, dmin, dmax, mas, seed=run_seed
        )
    else:
        raise EmulationError(f"unknown placement kind {kind!r}")
    return ctx.scenario.static_trace(
        positions, duration_s=1.0, seed=run_seed + 1, num_aps=num_aps
    )
