"""Experiment runners shared by the benchmark harness.

Thin, figure-oriented shims over the generic variant-sweep engine
(:mod:`repro.emulation.sweep`), one per experiment family:

* :func:`run_beamforming_comparison` — Figs 5, 6, 7, 11, 12, 13
* :func:`run_scheduler_comparison` — Figs 8, 15
* :func:`run_ablation` — Figs 9, 10, 14 (rate control / source coding)
* :func:`run_mobile_comparison` — Figs 16, 17 (vs No Update and the MPCs)

Each runner builds its variant list, delegates to
:func:`~repro.emulation.sweep.run_variant_sweep` (random placements) or
:func:`~repro.emulation.sweep.run_session_sweep` (one shared mobile trace),
and returns raw per-run samples so the benchmarks can print the same box
statistics the paper plots.  Seed schedules are per-family constants, so
metrics are identical at any job count and unchanged from the historical
monolithic runners.

The heavyweight shared state lives in :mod:`repro.emulation.context`
(re-exported here for compatibility).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import AbrSession, FastMpc, RobustMpc
from ..core import MulticastStreamer
from ..errors import EmulationError
from ..types import AdaptationPolicy, BeamformingScheme, SchedulerKind
from .context import (  # noqa: F401  (re-exported public API)
    DEFAULT_FRAMES,
    DEFAULT_RUNS,
    ExperimentContext,
    build_context,
    trace_for_placement,
)
from .sweep import (
    Variant,
    install_context,
    run_session_sweep,
    run_variant_sweep,
)

#: Back-compat alias for the pool initializer's historical private name.
_install_context = install_context


def run_beamforming_comparison(
    ctx: ExperimentContext,
    num_users: int,
    placement: Tuple,
    schemes: Sequence[BeamformingScheme] = tuple(BeamformingScheme),
    runs: int = DEFAULT_RUNS,
    frames: int = DEFAULT_FRAMES,
    config_overrides: Optional[dict] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Per-scheme SSIM/PSNR samples over random placements."""
    variants = [
        Variant(scheme.value, {"scheme": scheme, **(config_overrides or {})})
        for scheme in schemes
    ]
    return run_variant_sweep(
        ctx, variants, num_users, placement, runs, frames,
        jobs=jobs, seed_base=1000, seed_stride=17,
    )


def run_scheduler_comparison(
    ctx: ExperimentContext,
    num_users: int,
    placement: Tuple,
    runs: int = DEFAULT_RUNS,
    frames: int = DEFAULT_FRAMES,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Optimized scheduler vs round-robin (both with optimized multicast)."""
    variants = [
        Variant(kind.value, {"scheduler": kind}) for kind in SchedulerKind
    ]
    return run_variant_sweep(
        ctx, variants, num_users, placement, runs, frames,
        jobs=jobs, seed_base=2000, seed_stride=13,
    )


def run_ablation(
    ctx: ExperimentContext,
    axis: str,
    num_users: int,
    placement: Tuple,
    runs: int = DEFAULT_RUNS,
    frames: int = DEFAULT_FRAMES,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """On/off comparison along ``'source_coding'`` or ``'rate_control'``."""
    if axis not in ("source_coding", "rate_control"):
        raise EmulationError(f"unknown ablation axis {axis!r}")
    variants = [
        Variant(f"with_{axis}", {axis: True}),
        Variant(f"without_{axis}", {axis: False}),
    ]
    return run_variant_sweep(
        ctx, variants, num_users, placement, runs, frames,
        jobs=jobs, seed_base=3000, seed_stride=29,
    )


#: The four approaches of the mobile comparison (Sec 4.3.4).
MOBILE_APPROACHES = ("realtime_update", "no_update", "robust_mpc", "fast_mpc")


def _multicast_session(policy: AdaptationPolicy, ctx: ExperimentContext, seed: int):
    """Session factory for the multicast system under one adaptation policy."""
    config = ctx.config(adaptation=policy)
    return MulticastStreamer(
        config, ctx.dnn, ctx.probes, ctx.scenario.channel_model, seed=seed + 7
    )


def _abr_session(controller_factory, ctx: ExperimentContext, seed: int):
    """Session factory for one MPC baseline (unicast DASH)."""
    return AbrSession(
        controller_factory,
        ctx.scenario.channel_model,
        ctx.rate_quality(),
        ctx.freeze_model(),
        fps=ctx.base_config.fps,
        rate_scale=ctx.base_config.rate_scale,
        seed=seed + 7,
    )


def mobile_variant(approach: str) -> Variant:
    """The session-factory variant for one mobile-comparison approach."""
    if approach == "realtime_update":
        factory = partial(_multicast_session, AdaptationPolicy.REALTIME_UPDATE)
    elif approach == "no_update":
        factory = partial(_multicast_session, AdaptationPolicy.NO_UPDATE)
    elif approach == "robust_mpc":
        factory = partial(_abr_session, RobustMpc)
    elif approach == "fast_mpc":
        factory = partial(_abr_session, FastMpc)
    else:
        raise EmulationError(
            f"unknown mobile approach {approach!r} "
            f"(known: {', '.join(MOBILE_APPROACHES)})"
        )
    return Variant(approach, session_factory=factory)


def run_mobile_comparison(
    ctx: ExperimentContext,
    num_users: int,
    moving_users: Sequence[int],
    regime: str,
    duration_s: float = 3.0,
    approaches: Sequence[str] = MOBILE_APPROACHES,
    seed: int = 0,
    arc_distance_m: float = 5.0,
    jobs: Optional[int] = None,
) -> Dict[str, List[float]]:
    """Mean-over-users SSIM time series per approach on one shared trace.

    Args:
        ctx: Shared context.
        num_users: Receivers in the trace.
        moving_users: Which receivers walk (ignored for ``regime='env'``).
        regime: ``'high'`` / ``'low'`` (moving receivers) or ``'env'``
            (moving environment).
        duration_s: Trace length.
        approaches: Subset of :data:`MOBILE_APPROACHES`.
        seed: Trace seed — all approaches replay the identical trace, the
            point of trace-driven evaluation.
        arc_distance_m: User distance for the 'env' regime.
        jobs: Worker processes (approaches fan out; ``REPRO_JOBS`` default).
    """
    if regime == "env":
        trace = ctx.scenario.moving_environment_trace(
            num_users, distance_m=arc_distance_m, mas_deg=60,
            duration_s=duration_s, seed=seed,
        )
    else:
        trace = ctx.scenario.mobile_receiver_trace(
            num_users, moving_users, duration_s, rss_regime=regime, seed=seed
        )
    num_frames = int(duration_s * ctx.base_config.fps)
    variants = [mobile_variant(approach) for approach in approaches]
    return run_session_sweep(
        ctx, variants, trace, num_users, num_frames, seed=seed, jobs=jobs
    )
