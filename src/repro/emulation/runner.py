"""Experiment runners shared by the benchmark harness.

Builds the heavyweight shared state once (trained DNN quality model — disk
cached — plus encoded reference-frame probes), then exposes one runner per
experiment family:

* :func:`run_beamforming_comparison` — Figs 5, 6, 7, 11, 12, 13
* :func:`run_scheduler_comparison` — Figs 8, 15
* :func:`run_ablation` — Figs 9, 10, 14 (rate control / source coding)
* :func:`run_mobile_comparison` — Figs 16, 17 (vs No Update and the MPCs)

Each runner returns raw per-run samples so the benchmarks can print the same
box statistics the paper plots.

Runs are independent and individually seeded, so every runner fans them
across cores through :func:`repro.perf.parallel.parallel_map` (worker count
from its ``jobs`` argument or the ``REPRO_JOBS`` environment variable;
``jobs=1`` stays a plain serial loop).  The shared
:class:`ExperimentContext` is installed in each worker once via the pool
initializer, and results merge in run order, so metrics are identical at
any job count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import (
    FastMpc,
    FreezeModel,
    RateQualityModel,
    RobustMpc,
    simulate_abr_session,
)
from ..core import MulticastStreamer, SystemConfig
from ..errors import EmulationError
from ..obs import OBS
from ..perf.parallel import parallel_map
from ..quality.dnn import DNNQualityModel
from ..types import (
    AdaptationPolicy,
    BeamformingScheme,
    Richness,
    SchedulerKind,
)
from ..video.dataset import FrameQualityProbe, generate_dataset
from ..video.jigsaw import JigsawCodec
from ..video.synthetic import SyntheticVideo, make_standard_videos
from .scenario import EmulationScenario

#: Default number of random runs per configuration (paper: 10 testbed /
#: 100 emulation; reduce for tractable CI, override via REPRO_BENCH_RUNS).
DEFAULT_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))

#: Default frames streamed per run (paper streams minutes; the per-frame
#: metric converges within a dozen frames under static channels).
DEFAULT_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "9"))


@dataclass
class ExperimentContext:
    """Heavyweight shared state for all experiments."""

    height: int
    width: int
    dnn: DNNQualityModel
    videos: List[SyntheticVideo]
    probes: List[FrameQualityProbe]
    scenario: EmulationScenario
    base_config: SystemConfig
    _freeze: Optional[FreezeModel] = field(default=None, repr=False)

    @property
    def hr_video(self) -> SyntheticVideo:
        """The high-richness video the default experiments stream."""
        return self.videos[0]

    def freeze_model(self) -> FreezeModel:
        """Lazily built temporal-decay model for the ABR baselines."""
        if self._freeze is None:
            self._freeze = FreezeModel.from_video(self.hr_video)
        return self._freeze

    def rate_quality(self) -> RateQualityModel:
        """Rate-quality model of the DASH encodings at this resolution."""
        return RateQualityModel(
            richness=Richness.HIGH,
            pixels_per_frame=self.height * self.width,
            fps=self.base_config.fps,
        )

    def config(self, **overrides) -> SystemConfig:
        """A copy of the base config with overrides applied."""
        return replace(self.base_config, **overrides)


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "repro_wigig"
    path.mkdir(parents=True, exist_ok=True)
    return path


def build_context(
    height: int = 288,
    width: int = 512,
    dnn_epochs: int = 300,
    probe_frames: int = 4,
    seed: int = 0,
    use_cache: bool = True,
) -> ExperimentContext:
    """Build (or load from cache) the shared experiment context."""
    videos = make_standard_videos(height=height, width=width, num_frames=16, seed=7)
    cache_file = _cache_dir() / f"dnn_{height}x{width}_e{dnn_epochs}_s{seed}.npz"
    if use_cache and cache_file.exists():
        dnn = DNNQualityModel.load(cache_file)
    else:
        dataset = generate_dataset(
            videos, frames_per_video=3, samples_per_frame=24, seed=seed
        )
        dnn = DNNQualityModel(epochs=dnn_epochs, seed=seed)
        dnn.fit(dataset.features, dataset.ssim)
        if use_cache:
            dnn.save(cache_file)
    codec = JigsawCodec(height, width)
    # The paper evaluates on 2 HR + 2 LR sequences and reports the average;
    # we cycle probes drawn from one HR and one LR video.
    probes = []
    for video in (videos[0], videos[3]):
        indices = np.unique(
            np.linspace(0, video.num_frames - 1, max(1, probe_frames // 2)).astype(int)
        )
        probes.extend(
            FrameQualityProbe.from_frame(codec, video.frame(int(i)))
            for i in indices
        )
    return ExperimentContext(
        height=height,
        width=width,
        dnn=dnn,
        videos=videos,
        probes=probes,
        scenario=EmulationScenario(seed=seed),
        base_config=SystemConfig(height=height, width=width),
    )


# ---------------------------------------------------------------- placements


def trace_for_placement(
    ctx: ExperimentContext,
    num_users: int,
    placement: Tuple,
    run_seed: int,
):
    """Build a static trace for an ('arc', d, mas) or ('range', d0, d1, mas)
    placement spec."""
    kind = placement[0]
    if kind == "arc":
        _, distance, mas = placement
        positions = ctx.scenario.place_arc(num_users, distance, mas, seed=run_seed)
    elif kind == "range":
        _, dmin, dmax, mas = placement
        positions = ctx.scenario.place_random_range(
            num_users, dmin, dmax, mas, seed=run_seed
        )
    else:
        raise EmulationError(f"unknown placement kind {kind!r}")
    return ctx.scenario.static_trace(positions, duration_s=1.0, seed=run_seed + 1)


# ----------------------------------------------------------- worker plumbing

#: Shared context inside pool workers (installed once per worker by the
#: pool initializer; the serial path installs it in-process).
_WORKER_CTX: Optional[ExperimentContext] = None


def _install_context(ctx: ExperimentContext) -> None:
    """Pool initializer: make the heavyweight context a worker global."""
    global _WORKER_CTX
    _WORKER_CTX = ctx


def _stream_sample(
    ctx: ExperimentContext,
    config: SystemConfig,
    trace,
    frames: int,
    seed: int,
) -> Tuple[float, float]:
    """One streaming session's (mean SSIM, mean PSNR)."""
    with OBS.span("emulation.run", frames=frames, seed=seed) as span:
        streamer = MulticastStreamer(
            config, ctx.dnn, ctx.probes, ctx.scenario.channel_model, seed=seed
        )
        outcome = streamer.stream_trace(trace, num_frames=frames)
        span.set(mean_ssim=outcome.mean_ssim)
    return outcome.mean_ssim, outcome.mean_psnr_db


def _beamforming_run(args) -> Dict[str, Tuple[float, float]]:
    """One random placement, every beamforming scheme (worker task)."""
    run, num_users, placement, schemes, frames, overrides = args
    ctx = _WORKER_CTX
    run_seed = 1000 + 17 * run
    trace = trace_for_placement(ctx, num_users, placement, run_seed)
    out: Dict[str, Tuple[float, float]] = {}
    for scheme in schemes:
        config = ctx.config(scheme=scheme, **(overrides or {}))
        out[scheme.value] = _stream_sample(ctx, config, trace, frames, run_seed + 7)
    return out


def _scheduler_run(args) -> Dict[str, Tuple[float, float]]:
    """One random placement, both schedulers (worker task)."""
    run, num_users, placement, frames = args
    ctx = _WORKER_CTX
    run_seed = 2000 + 13 * run
    trace = trace_for_placement(ctx, num_users, placement, run_seed)
    out: Dict[str, Tuple[float, float]] = {}
    for kind in SchedulerKind:
        config = ctx.config(scheduler=kind)
        out[kind.value] = _stream_sample(ctx, config, trace, frames, run_seed + 7)
    return out


def _ablation_run(args) -> Dict[str, Tuple[float, float]]:
    """One random placement, ablation axis on and off (worker task)."""
    run, axis, num_users, placement, frames = args
    ctx = _WORKER_CTX
    run_seed = 3000 + 29 * run
    trace = trace_for_placement(ctx, num_users, placement, run_seed)
    out: Dict[str, Tuple[float, float]] = {}
    for enabled in (True, False):
        config = ctx.config(**{axis: enabled})
        key = f"with_{axis}" if enabled else f"without_{axis}"
        out[key] = _stream_sample(ctx, config, trace, frames, run_seed + 7)
    return out


def _merge_runs(
    keys: Sequence[str], per_run: Sequence[Dict[str, Tuple[float, float]]]
) -> Dict[str, Dict[str, List[float]]]:
    """Stitch ordered per-run samples back into the per-key series shape."""
    results: Dict[str, Dict[str, List[float]]] = {
        key: {"ssim": [], "psnr": []} for key in keys
    }
    for run_result in per_run:
        for key, (ssim_value, psnr_value) in run_result.items():
            results[key]["ssim"].append(ssim_value)
            results[key]["psnr"].append(psnr_value)
    return results


# ------------------------------------------------------------------- runners


def run_beamforming_comparison(
    ctx: ExperimentContext,
    num_users: int,
    placement: Tuple,
    schemes: Sequence[BeamformingScheme] = tuple(BeamformingScheme),
    runs: int = DEFAULT_RUNS,
    frames: int = DEFAULT_FRAMES,
    config_overrides: Optional[dict] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Per-scheme SSIM/PSNR samples over random placements."""
    schemes = tuple(schemes)
    per_run = parallel_map(
        _beamforming_run,
        [
            (run, num_users, placement, schemes, frames, config_overrides)
            for run in range(runs)
        ],
        jobs=jobs,
        initializer=_install_context,
        initargs=(ctx,),
    )
    return _merge_runs([s.value for s in schemes], per_run)


def run_scheduler_comparison(
    ctx: ExperimentContext,
    num_users: int,
    placement: Tuple,
    runs: int = DEFAULT_RUNS,
    frames: int = DEFAULT_FRAMES,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Optimized scheduler vs round-robin (both with optimized multicast)."""
    per_run = parallel_map(
        _scheduler_run,
        [(run, num_users, placement, frames) for run in range(runs)],
        jobs=jobs,
        initializer=_install_context,
        initargs=(ctx,),
    )
    return _merge_runs([kind.value for kind in SchedulerKind], per_run)


def run_ablation(
    ctx: ExperimentContext,
    axis: str,
    num_users: int,
    placement: Tuple,
    runs: int = DEFAULT_RUNS,
    frames: int = DEFAULT_FRAMES,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """On/off comparison along ``'source_coding'`` or ``'rate_control'``."""
    if axis not in ("source_coding", "rate_control"):
        raise EmulationError(f"unknown ablation axis {axis!r}")
    per_run = parallel_map(
        _ablation_run,
        [(run, axis, num_users, placement, frames) for run in range(runs)],
        jobs=jobs,
        initializer=_install_context,
        initargs=(ctx,),
    )
    return _merge_runs([f"with_{axis}", f"without_{axis}"], per_run)


#: The four approaches of the mobile comparison (Sec 4.3.4).
MOBILE_APPROACHES = ("realtime_update", "no_update", "robust_mpc", "fast_mpc")


def _mobile_run(args) -> Tuple[str, List[float]]:
    """One approach's mean-over-users SSIM series (worker task)."""
    approach, trace, num_users, num_frames, seed = args
    ctx = _WORKER_CTX
    if approach in ("realtime_update", "no_update"):
        policy = (
            AdaptationPolicy.REALTIME_UPDATE
            if approach == "realtime_update"
            else AdaptationPolicy.NO_UPDATE
        )
        config = ctx.config(adaptation=policy)
        streamer = MulticastStreamer(
            config, ctx.dnn, ctx.probes, ctx.scenario.channel_model, seed=seed + 7
        )
        outcome = streamer.stream_trace(trace, num_frames=num_frames)
    else:
        factory = RobustMpc if approach == "robust_mpc" else FastMpc
        outcome = simulate_abr_session(
            factory,
            trace,
            ctx.scenario.channel_model,
            ctx.rate_quality(),
            ctx.freeze_model(),
            num_frames=num_frames,
            fps=ctx.base_config.fps,
            rate_scale=ctx.base_config.rate_scale,
            seed=seed + 7,
        )
    per_frame = np.zeros(num_frames)
    for user in range(num_users):
        user_series = outcome.ssim_series(user)
        per_frame[: len(user_series)] += np.asarray(
            user_series[:num_frames]
        ) / num_users
    return approach, per_frame.tolist()


def run_mobile_comparison(
    ctx: ExperimentContext,
    num_users: int,
    moving_users: Sequence[int],
    regime: str,
    duration_s: float = 3.0,
    approaches: Sequence[str] = MOBILE_APPROACHES,
    seed: int = 0,
    arc_distance_m: float = 5.0,
    jobs: Optional[int] = None,
) -> Dict[str, List[float]]:
    """Mean-over-users SSIM time series per approach on one shared trace.

    Args:
        ctx: Shared context.
        num_users: Receivers in the trace.
        moving_users: Which receivers walk (ignored for ``regime='env'``).
        regime: ``'high'`` / ``'low'`` (moving receivers) or ``'env'``
            (moving environment).
        duration_s: Trace length.
        approaches: Subset of :data:`MOBILE_APPROACHES`.
        seed: Trace seed — all approaches replay the identical trace, the
            point of trace-driven evaluation.
        arc_distance_m: User distance for the 'env' regime.
        jobs: Worker processes (approaches fan out; ``REPRO_JOBS`` default).
    """
    if regime == "env":
        trace = ctx.scenario.moving_environment_trace(
            num_users, distance_m=arc_distance_m, mas_deg=60,
            duration_s=duration_s, seed=seed,
        )
    else:
        trace = ctx.scenario.mobile_receiver_trace(
            num_users, moving_users, duration_s, rss_regime=regime, seed=seed
        )
    num_frames = int(duration_s * ctx.base_config.fps)

    per_approach = parallel_map(
        _mobile_run,
        [
            (approach, trace, num_users, num_frames, seed)
            for approach in approaches
        ],
        jobs=jobs,
        initializer=_install_context,
        initargs=(ctx,),
    )
    return {approach: series for approach, series in per_approach}
