"""Scenario construction: rooms, placements, and CSI trace generation.

An :class:`EmulationScenario` bundles the physical world (room, AP, phased
array, ray-traced channel) with the ACO-style CSI estimator, and records the
three kinds of traces the evaluation uses:

* static placements (arc at fixed distance, or random within a range),
* moving receivers (random-walk users constrained to a high- or low-RSS
  annulus around the AP, Sec 4.3.4), and
* moving environment (static users, walking blockers crossing the LoS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..errors import EmulationError
from ..phy.antenna import PhasedArray
from ..phy.channel import ChannelModel, ChannelState
from ..phy.csi import CsiEstimator, CsiSnapshot, CsiTrace
from ..phy.mobility import BEACON_INTERVAL_S, EnvironmentMotionModel, RandomWalkModel
from ..phy.propagation import HUMAN_BLOCKAGE_DB
from ..phy.raytracer import (
    RayTracer,
    Room,
    place_users_arc,
    place_users_random_range,
)
from ..phy.topology import Topology
from ..types import Position, validate_seed


@dataclass
class EmulationScenario:
    """A reusable physical world for experiments.

    Args:
        room: Room geometry (default 20 m x 12 m, the meeting-room scale the
            paper scanned).
        ap_position: AP placement (default against one wall, centred).
        num_elements: AP array size.
        phase_bits: Phase-shifter resolution.
        csi_error_std: Relative ACO CSI estimation error.
        seed: Base seed for channel shadowing and placement draws.
    """

    room: Room = field(default_factory=Room)
    ap_position: Position = Position(0.3, 6.0)
    num_elements: int = 32
    phase_bits: int = 2
    csi_error_std: float = 0.1
    self_blockage_prob: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        self.array = PhasedArray(self.num_elements, self.phase_bits)
        self.tracer = RayTracer(self.room, self.ap_position)
        self.channel_model = ChannelModel(self.tracer, self.array)
        self.estimator = CsiEstimator(self.csi_error_std)
        self._rng = validate_seed(self.seed)
        self._ap_models: Dict[int, List[ChannelModel]] = {}

    # ------------------------------------------------------------- topologies

    def topology(self, num_aps: int) -> Topology:
        """The wall-midpoint topology for ``num_aps`` APs (AP 0 = legacy AP)."""
        return Topology.for_room(self.room, num_aps, first_ap=self.ap_position)

    def ap_channel_models(self, num_aps: int) -> List[ChannelModel]:
        """Per-AP channel models, AP 0 first (entry 0 is the legacy model).

        Extra APs share the same array geometry and link budget; only the
        tracer (AP position + boresight) differs.  Models are cached per
        AP count so repeated trace generation reuses the same tracers.
        """
        if num_aps not in self._ap_models:
            topo = self.topology(num_aps)
            models = [self.channel_model]
            for ap in topo.aps[1:]:
                tracer = RayTracer(self.room, ap.position, ap.boresight_rad)
                models.append(ChannelModel(tracer, self.array))
            self._ap_models[num_aps] = models
        return self._ap_models[num_aps]

    # ------------------------------------------------------------ placements

    def place_arc(
        self, num_users: int, distance_m: float, mas_deg: float, seed: int
    ) -> List[Position]:
        """Users on an arc (testbed layout, Fig 4a)."""
        rng = validate_seed(seed)
        return place_users_arc(
            self.ap_position, self.room, num_users, distance_m,
            float(np.deg2rad(mas_deg)), rng,
        )

    def place_random_range(
        self,
        num_users: int,
        min_distance_m: float,
        max_distance_m: float,
        mas_deg: float,
        seed: int,
    ) -> List[Position]:
        """Users at random distances in a range (emulation layout, Fig 4b)."""
        rng = validate_seed(seed)
        return place_users_random_range(
            self.ap_position, self.room, num_users,
            min_distance_m, max_distance_m, float(np.deg2rad(mas_deg)), rng,
        )

    # ---------------------------------------------------------------- traces

    def static_trace(
        self,
        positions: Sequence[Position],
        duration_s: float = 1.0,
        seed: int = 0,
        num_aps: int = 1,
    ) -> CsiTrace:
        """CSI trace for stationary users (fading still varies per beacon).

        With ``num_aps > 1`` each snapshot also carries per-AP channel dicts
        (:attr:`ChannelState.ap_channels`).  Each AP draws its shadowing and
        CSI-estimation noise from its own seeded stream — AP 0 keeps the
        exact single-AP stream (``validate_seed(seed)``), extra APs use
        ``default_rng([seed, ap])`` — so the AP 0 sub-trace of an N-AP
        trace is bit-identical to a 1-AP trace at the same seed: one
        superset trace serves 1-AP and N-AP arms under identical channel
        conditions.
        """
        receivers = {i: p for i, p in enumerate(positions)}
        trace = CsiTrace(beacon_interval_s=BEACON_INTERVAL_S)
        ticks = max(1, int(round(duration_s / BEACON_INTERVAL_S)))
        if num_aps <= 1:
            rng = validate_seed(seed)
            for tick in range(ticks):
                now = tick * BEACON_INTERVAL_S
                state = self.channel_model.snapshot(receivers, rng, time_s=now)
                trace.append(
                    CsiSnapshot(now, state, self.estimator.estimate_state(state, rng))
                )
            return trace
        if not isinstance(seed, (int, np.integer)) or seed < 0:
            raise EmulationError(
                f"multi-AP traces need a non-negative int seed, got {seed!r}"
            )
        models = self.ap_channel_models(num_aps)
        rngs = [validate_seed(seed)] + [
            np.random.default_rng([seed, ap]) for ap in range(1, num_aps)
        ]
        for tick in range(ticks):
            now = tick * BEACON_INTERVAL_S
            ap_true: List[Dict[int, np.ndarray]] = []
            ap_est: List[Dict[int, np.ndarray]] = []
            for model, ap_rng in zip(models, rngs):
                state = model.snapshot(receivers, ap_rng, time_s=now)
                estimate = self.estimator.estimate_state(state, ap_rng)
                ap_true.append(state.channels)
                ap_est.append(estimate.channels)
            trace.append(
                CsiSnapshot(
                    now,
                    ChannelState(ap_true[0], dict(receivers), now, ap_channels=ap_true),
                    ChannelState(ap_est[0], dict(receivers), now, ap_channels=ap_est),
                )
            )
        return trace

    def mobile_receiver_trace(
        self,
        num_users: int,
        moving_users: Sequence[int],
        duration_s: float,
        rss_regime: str = "high",
        seed: int = 0,
    ) -> CsiTrace:
        """Moving-receiver trace (Sec 4.3.4, first trace type).

        Moving users random-walk inside an annulus around the AP chosen so
        their RSS stays mostly above (``"high"``) or below (``"low"``) the
        MCS 8 sensitivity split; static users sit at mid-range.
        """
        if rss_regime not in ("high", "low"):
            raise EmulationError(f"rss_regime must be 'high' or 'low', got {rss_regime!r}")
        radius_range = (2.0, 6.0) if rss_regime == "high" else (9.0, 16.0)
        # People carrying receivers wander within a small area (the paper's
        # walkers stay inside one meeting room minute-scale); bounding the
        # excursion keeps the t=0 beam partially relevant for No Update.
        max_excursion_m = 1.5
        rng = validate_seed(seed)
        positions: Dict[int, Position] = {}
        walkers: Dict[int, RandomWalkModel] = {}
        for user in range(num_users):
            angle = rng.uniform(-np.pi / 3, np.pi / 3)
            radius = rng.uniform(*radius_range)
            start = self.room.clamp(
                self.ap_position.x + radius * np.cos(angle),
                self.ap_position.y + radius * np.sin(angle),
            )
            positions[user] = start
            if user in moving_users:
                walkers[user] = RandomWalkModel(
                    room=self.room,
                    start=start,
                    speed_mps=0.8,
                    seed=int(rng.integers(0, 2**31)),
                )
        trace = CsiTrace(beacon_interval_s=BEACON_INTERVAL_S)
        previous_state = None
        # A walking holder intermittently blocks their own receiver's LoS
        # (body shadowing) — the deep-fade events that make mobile mmWave
        # traces hard.  Reflection paths survive, so close-range (high-RSS)
        # users degrade to a mid MCS while far users lose the link.
        blocked_ticks = {user: 0 for user in walkers}
        trace_starts = {user: positions[user] for user in walkers}
        for tick in range(max(1, int(round(duration_s / BEACON_INTERVAL_S)))):
            now = tick * BEACON_INTERVAL_S
            extra_loss: Dict[int, float] = {}
            for user, walker in walkers.items():
                walker.step(BEACON_INTERVAL_S)
                moved = self._clamp_annulus(walker.position, radius_range)
                start = trace_starts[user]
                offset = moved.as_array() - start.as_array()
                excursion = float(np.linalg.norm(offset))
                if excursion > max_excursion_m:
                    scaled = start.as_array() + offset * (max_excursion_m / excursion)
                    moved = self.room.clamp(float(scaled[0]), float(scaled[1]))
                positions[user] = moved
                if blocked_ticks[user] > 0:
                    blocked_ticks[user] -= 1
                elif rng.random() < self.self_blockage_prob:
                    blocked_ticks[user] = int(rng.integers(3, 9))
                if blocked_ticks[user] > 0:
                    extra_loss[user] = HUMAN_BLOCKAGE_DB
            state = self.channel_model.snapshot(
                dict(positions), rng, time_s=now, los_extra_loss_db=extra_loss
            )
            # Beam training lags the channel by one beacon: what the AP
            # believes at time t is an estimate of the channel at t - 100 ms.
            # Under motion this staleness is the dominant impairment.
            basis = previous_state if previous_state is not None else state
            trace.append(
                CsiSnapshot(now, state, self.estimator.estimate_state(basis, rng))
            )
            previous_state = state
        return trace

    def moving_environment_trace(
        self,
        num_users: int,
        distance_m: float,
        mas_deg: float,
        duration_s: float,
        num_blockers: int = 2,
        seed: int = 0,
    ) -> CsiTrace:
        """Moving-environment trace (static users, walking blockers)."""
        rng = validate_seed(seed)
        positions = {
            i: p
            for i, p in enumerate(
                self.place_arc(num_users, distance_m, mas_deg, seed=seed)
            )
        }
        environment = EnvironmentMotionModel(
            room=self.room,
            ap_position=self.ap_position,
            num_blockers=num_blockers,
            seed=int(rng.integers(0, 2**31)),
        )
        trace = CsiTrace(beacon_interval_s=BEACON_INTERVAL_S)
        previous_state = None
        for tick in range(max(1, int(round(duration_s / BEACON_INTERVAL_S)))):
            now = tick * BEACON_INTERVAL_S
            environment.step(BEACON_INTERVAL_S)
            extra = environment.los_extra_loss_db(positions)
            state = self.channel_model.snapshot(
                dict(positions), rng, time_s=now, los_extra_loss_db=extra
            )
            basis = previous_state if previous_state is not None else state
            trace.append(
                CsiSnapshot(now, state, self.estimator.estimate_state(basis, rng))
            )
            previous_state = state
        return trace

    # ----------------------------------------------------------------- utils

    def _clamp_annulus(
        self, position: Position, radius_range: tuple
    ) -> Position:
        """Pull a walker back inside its RSS-regime annulus around the AP."""
        delta = position.as_array() - self.ap_position.as_array()
        radius = float(np.linalg.norm(delta))
        if radius < 1e-6:
            return self.room.clamp(self.ap_position.x + radius_range[0], self.ap_position.y)
        clamped = float(np.clip(radius, *radius_range))
        if clamped == radius:
            return position
        scaled = self.ap_position.as_array() + delta * (clamped / radius)
        return self.room.clamp(float(scaled[0]), float(scaled[1]))
