"""Generic variant-sweep engine for the emulation experiments.

Every experiment family in the paper is the same shape: stream the *same*
channel conditions under a handful of configuration **variants** and
compare the resulting quality.  This module owns that shape once:

* :class:`Variant` names one arm of a comparison — either a set of
  :class:`~repro.core.SystemConfig` field overrides, or (for approaches
  that are not config-expressible, like the MPC baselines) a
  ``session_factory`` building any object with the
  ``stream_trace(trace, num_frames)`` session interface.
* :func:`run_variant_sweep` fans **placements** (independent, individually
  seeded runs) across cores via
  :func:`repro.perf.parallel.parallel_map`, streaming every variant on
  each placement's trace, and merges per-run samples into per-variant
  SSIM/PSNR series.
* :func:`run_session_sweep` fans **variants** over one shared trace and
  returns each variant's mean-over-users SSIM time series — the
  trace-driven mobile comparison (Sec 4.3.4).

The legacy ``run_beamforming_comparison`` / ``run_scheduler_comparison`` /
``run_ablation`` / ``run_mobile_comparison`` runners are thin shims over
these two entry points, so results are reproducible at any job count and
new comparison axes need only a variant list.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core import MulticastStreamer, SystemConfig
from ..errors import EmulationError
from ..obs import OBS
from ..perf.parallel import parallel_map
from ..phy.topology import TopologyConfig, topology_num_aps
from .context import ExperimentContext, trace_for_placement

__all__ = [
    "Variant",
    "variant_from_spec",
    "parse_config_overrides",
    "fault_grid",
    "ap_fault_grid",
    "sweep_num_aps",
    "install_context",
    "merge_runs",
    "run_variant_sweep",
    "run_session_sweep",
]

#: A factory building a session object for ``(ctx, seed)``; the returned
#: object must expose ``stream_trace(trace, num_frames)``.
SessionFactory = Callable[[ExperimentContext, int], Any]


@dataclass(frozen=True)
class Variant:
    """One arm of a comparison sweep.

    Args:
        name: Result key for this arm.
        config_overrides: :class:`SystemConfig` fields that define the arm
            (the default multicast streamer is built around the overridden
            config).  ``None``/empty means the base config.
        session_factory: Alternative to overrides — builds the session
            object itself, for arms that are not config-expressible.
    """

    name: str
    config_overrides: Optional[Mapping[str, Any]] = None
    session_factory: Optional[SessionFactory] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise EmulationError("variant needs a non-empty name")
        if self.config_overrides and self.session_factory:
            raise EmulationError(
                f"variant {self.name!r}: config_overrides and "
                "session_factory are mutually exclusive"
            )

    def build_session(self, ctx: ExperimentContext, seed: int) -> Any:
        """The session object this variant streams with."""
        if self.session_factory is not None:
            return self.session_factory(ctx, seed)
        config = ctx.config(**dict(self.config_overrides or {}))
        return MulticastStreamer(
            config, ctx.dnn, ctx.probes, ctx.scenario.channel_model, seed=seed
        )


def _coerce_field(current: Any, name: str, raw: str) -> Any:
    """One ``field=value`` string coerced to the type of its default."""
    if isinstance(current, enum.Enum):
        return type(current)(raw)
    if isinstance(current, bool):
        lowered = str(raw).strip().lower()
        if lowered in ("1", "true", "on", "yes"):
            return True
        if lowered in ("0", "false", "off", "no"):
            return False
        raise EmulationError(f"field {name!r} expects a boolean, got {raw!r}")
    if isinstance(current, int):
        return int(raw)
    if isinstance(current, float):
        return float(raw)
    return raw


def parse_config_overrides(pairs: Mapping[str, str]) -> Dict[str, Any]:
    """Coerce ``field=value`` strings to typed :class:`SystemConfig` values.

    Enum fields accept the enum's value (e.g. ``scheduler=round_robin``),
    booleans accept on/off/true/false/1/0; numbers are cast to the field
    type.  Fault-injection knobs nest under a dotted prefix
    (``faults.blockage_rate_hz=2``) and come back as one merged
    :class:`repro.faults.FaultConfig` under the ``faults`` key; topology
    knobs likewise (``topology.num_aps=2``) merge into a
    :class:`repro.phy.topology.TopologyConfig` under ``topology``.  Unknown
    fields raise :class:`EmulationError` so CLI typos fail loudly instead
    of silently streaming the base config.
    """
    fields = {f.name: f for f in dataclasses.fields(SystemConfig)}
    config_defaults = SystemConfig()
    fault_defaults = config_defaults.faults
    fault_fields = {f.name for f in dataclasses.fields(type(fault_defaults))}
    topology_defaults = TopologyConfig()
    topology_fields = {f.name for f in dataclasses.fields(TopologyConfig)}
    overrides: Dict[str, Any] = {}
    fault_overrides: Dict[str, Any] = {}
    topology_overrides: Dict[str, Any] = {}
    for name, raw in pairs.items():
        if name.startswith("faults."):
            sub = name[len("faults."):]
            if sub not in fault_fields:
                raise EmulationError(
                    f"unknown FaultConfig field {name!r} "
                    f"(known: {', '.join('faults.' + f for f in sorted(fault_fields))})"
                )
            fault_overrides[sub] = _coerce_field(
                getattr(fault_defaults, sub), name, raw
            )
            continue
        if name.startswith("topology."):
            sub = name[len("topology."):]
            if sub not in topology_fields:
                raise EmulationError(
                    f"unknown TopologyConfig field {name!r} "
                    f"(known: {', '.join('topology.' + f for f in sorted(topology_fields))})"
                )
            topology_overrides[sub] = _coerce_field(
                getattr(topology_defaults, sub), name, raw
            )
            continue
        if name == "faults":
            raise EmulationError(
                "set fault knobs individually as faults.<field>=<value>"
            )
        if name == "topology":
            raise EmulationError(
                "set topology knobs individually as topology.<field>=<value>"
            )
        if name not in fields:
            raise EmulationError(
                f"unknown SystemConfig field {name!r} "
                f"(known: {', '.join(sorted(fields))})"
            )
        overrides[name] = _coerce_field(
            getattr(config_defaults, name), name, raw
        )
    if fault_overrides:
        overrides["faults"] = dataclasses.replace(
            fault_defaults, **fault_overrides
        )
    if topology_overrides:
        overrides["topology"] = dataclasses.replace(
            topology_defaults, **topology_overrides
        )
    return overrides


def fault_grid(
    axis: str,
    values: Sequence[Any],
    base: Optional[Mapping[str, str]] = None,
) -> List[Variant]:
    """Variants sweeping one ``faults.*`` knob — the chaos sweep axis.

    Args:
        axis: A :class:`repro.faults.FaultConfig` field name
            (e.g. ``blockage_rate_hz``).
        values: The grid points; one variant per value.
        base: Extra ``field=value`` string overrides shared by every arm
            (dotted ``faults.`` keys welcome).

    Returns:
        One :class:`Variant` per value, named ``"<axis>=<value>"``, ready
        for :func:`run_variant_sweep`.
    """
    if not values:
        raise EmulationError(f"fault_grid({axis!r}) needs at least one value")
    variants = []
    for value in values:
        pairs = dict(base or {})
        pairs[f"faults.{axis}"] = str(value)
        variants.append(
            Variant(
                f"{axis}={value}",
                config_overrides=parse_config_overrides(pairs),
            )
        )
    return variants


def ap_fault_grid(
    axis: str,
    values: Sequence[Any],
    ap_counts: Sequence[int] = (1, 2),
    base: Optional[Mapping[str, str]] = None,
) -> List[Variant]:
    """The blockage-failover grid: ``faults.*`` axis x AP count.

    Crosses one fault knob with a topology size so the 1-AP-vs-multi-AP
    failover comparison (does a second AP hold SSIM up under LoS blockage?)
    runs as a single sweep.  Arms are named ``"<n>ap:<axis>=<value>"``.
    """
    if not values:
        raise EmulationError(f"ap_fault_grid({axis!r}) needs at least one value")
    if not ap_counts:
        raise EmulationError("ap_fault_grid needs at least one AP count")
    variants = []
    for n_aps in ap_counts:
        for value in values:
            pairs = dict(base or {})
            pairs[f"faults.{axis}"] = str(value)
            if int(n_aps) > 1:
                pairs["topology.num_aps"] = str(int(n_aps))
            variants.append(
                Variant(
                    f"{int(n_aps)}ap:{axis}={value}",
                    config_overrides=parse_config_overrides(pairs),
                )
            )
    return variants


def sweep_num_aps(variants: Sequence[Variant]) -> int:
    """The AP count a shared sweep trace must be recorded with.

    The max over every arm's topology: 1-AP arms stream AP0's sub-trace of
    the superset recording bit-identically, so the widest arm decides.
    """
    n_aps = 1
    for variant in variants:
        overrides = variant.config_overrides or {}
        n_aps = max(n_aps, topology_num_aps(overrides.get("topology")))
    return n_aps


def variant_from_spec(spec: str) -> Variant:
    """Parse ``'name'`` or ``'name:field=value,field=value'`` CLI specs."""
    name, _, rest = spec.partition(":")
    name = name.strip()
    pairs: Dict[str, str] = {}
    if rest.strip():
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise EmulationError(
                    f"bad override {item!r} in variant spec {spec!r} "
                    "(expected field=value)"
                )
            pairs[key.strip()] = value.strip()
    return Variant(name, config_overrides=parse_config_overrides(pairs) or None)


# ----------------------------------------------------------- worker plumbing

#: Shared context inside pool workers (installed once per worker by the
#: pool initializer; the serial path installs it in-process).
_WORKER_CTX: Optional[ExperimentContext] = None


def install_context(ctx: ExperimentContext) -> None:
    """Pool initializer: make the heavyweight context a worker global."""
    global _WORKER_CTX
    _WORKER_CTX = ctx


def _worker_context() -> ExperimentContext:
    if _WORKER_CTX is None:
        raise EmulationError(
            "worker context not installed — sweep tasks must run through "
            "parallel_map(initializer=install_context, ...)"
        )
    return _WORKER_CTX


def _stream_sample(
    ctx: ExperimentContext,
    config: SystemConfig,
    trace: Any,
    frames: int,
    seed: int,
) -> Tuple[float, float]:
    """One streaming session's (mean SSIM, mean PSNR)."""
    with OBS.span("emulation.run", frames=frames, seed=seed) as span:
        streamer = MulticastStreamer(
            config, ctx.dnn, ctx.probes, ctx.scenario.channel_model, seed=seed
        )
        outcome = streamer.stream_trace(trace, num_frames=frames)
        span.set(mean_ssim=outcome.mean_ssim)
    return outcome.mean_ssim, outcome.mean_psnr_db


def _placement_run(args: Tuple) -> Dict[str, Tuple[float, float]]:
    """One random placement, every variant (worker task)."""
    run, num_users, placement, variants, frames, seed_base, seed_stride, seed_offset = args
    ctx = _worker_context()
    run_seed = seed_base + seed_stride * run
    trace = trace_for_placement(
        ctx, num_users, placement, run_seed, num_aps=sweep_num_aps(variants)
    )
    out: Dict[str, Tuple[float, float]] = {}
    for variant in variants:
        config = ctx.config(**dict(variant.config_overrides or {}))
        out[variant.name] = _stream_sample(
            ctx, config, trace, frames, run_seed + seed_offset
        )
    return out


def _session_run(args: Tuple) -> Tuple[str, List[float]]:
    """One variant's mean-over-users SSIM series (worker task)."""
    variant, trace, num_users, num_frames, seed = args
    ctx = _worker_context()
    session = variant.build_session(ctx, seed)
    outcome = session.stream_trace(trace, num_frames=num_frames)
    per_frame = np.zeros(num_frames)
    for user in range(num_users):
        user_series = outcome.ssim_series(user)
        per_frame[: len(user_series)] += np.asarray(
            user_series[:num_frames]
        ) / num_users
    return variant.name, per_frame.tolist()


def merge_runs(
    keys: Sequence[str], per_run: Sequence[Dict[str, Tuple[float, float]]]
) -> Dict[str, Dict[str, List[float]]]:
    """Stitch ordered per-run samples back into the per-key series shape.

    Every run must report exactly ``keys``; a worker returning a partial or
    unknown key set raises :class:`EmulationError` naming the offending run
    instead of silently corrupting (or KeyError-ing mid-merge) the series.
    """
    expected = set(keys)
    results: Dict[str, Dict[str, List[float]]] = {
        key: {"ssim": [], "psnr": []} for key in keys
    }
    for run_index, run_result in enumerate(per_run):
        got = set(run_result)
        if got != expected:
            missing = sorted(expected - got)
            unexpected = sorted(got - expected)
            raise EmulationError(
                f"run {run_index} returned malformed keys: "
                f"missing {missing}, unexpected {unexpected} "
                f"(expected {sorted(expected)})"
            )
        for key, (ssim_value, psnr_value) in run_result.items():
            results[key]["ssim"].append(ssim_value)
            results[key]["psnr"].append(psnr_value)
    return results


# ------------------------------------------------------------------ engines


def run_variant_sweep(
    ctx: ExperimentContext,
    variants: Sequence[Variant],
    num_users: int,
    placement: Tuple,
    runs: int,
    frames: int,
    jobs: Optional[int] = None,
    seed_base: int = 1000,
    seed_stride: int = 17,
    seed_offset: int = 7,
) -> Dict[str, Dict[str, List[float]]]:
    """Per-variant SSIM/PSNR samples over random placements.

    Args:
        ctx: Shared context.
        variants: The comparison arms (config-override variants only —
            placement sweeps rebuild a :class:`MulticastStreamer` per arm).
        num_users: Receivers per placement.
        placement: ``('arc', d, mas)`` or ``('range', d0, d1, mas)`` spec.
        runs: Independent placements.
        frames: Frames streamed per session.
        jobs: Worker processes (``REPRO_JOBS`` default).
        seed_base, seed_stride: Per-run seed schedule
            (``seed_base + seed_stride * run``), kept distinct per
            experiment family so figures stay reproducible.
        seed_offset: Extra offset for the streaming seed within a run.
    """
    variants = tuple(variants)
    for variant in variants:
        if variant.session_factory is not None:
            raise EmulationError(
                f"variant {variant.name!r}: session_factory variants are "
                "for run_session_sweep"
            )
    names = [variant.name for variant in variants]
    if len(set(names)) != len(names):
        raise EmulationError(f"duplicate variant names in sweep: {names}")
    per_run = parallel_map(
        _placement_run,
        [
            (run, num_users, placement, variants, frames,
             seed_base, seed_stride, seed_offset)
            for run in range(runs)
        ],
        jobs=jobs,
        initializer=install_context,
        initargs=(ctx,),
    )
    return merge_runs(names, per_run)


def run_session_sweep(
    ctx: ExperimentContext,
    variants: Sequence[Variant],
    trace: Any,
    num_users: int,
    num_frames: int,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List[float]]:
    """Mean-over-users SSIM time series per variant on one shared trace.

    All variants replay the identical trace — the point of trace-driven
    evaluation; the fan-out axis is the variant, not the placement.
    """
    variants = tuple(variants)
    names = [variant.name for variant in variants]
    if len(set(names)) != len(names):
        raise EmulationError(f"duplicate variant names in sweep: {names}")
    per_variant = parallel_map(
        _session_run,
        [
            (variant, trace, num_users, num_frames, seed)
            for variant in variants
        ],
        jobs=jobs,
        initializer=install_context,
        initargs=(ctx,),
    )
    return {name: series for name, series in per_variant}
