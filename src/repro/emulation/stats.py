"""Aggregation statistics for experiment results (the paper's box plots)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from ..errors import EmulationError


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean — what each box in Figs 5-15 shows."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        """Summarise a sample set."""
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise EmulationError("no samples to summarise")
        return cls(
            minimum=float(values.min()),
            q1=float(np.percentile(values, 25)),
            median=float(np.percentile(values, 50)),
            q3=float(np.percentile(values, 75)),
            maximum=float(values.max()),
            mean=float(values.mean()),
            count=int(values.size),
        )

    def row(self) -> str:
        """A fixed-width table row (min / q1 / median / q3 / max / mean)."""
        return (
            f"{self.minimum:6.3f} {self.q1:6.3f} {self.median:6.3f} "
            f"{self.q3:6.3f} {self.maximum:6.3f} | mean {self.mean:6.3f} "
            f"(n={self.count})"
        )


def summarize(samples_by_key: Dict[str, Iterable[float]]) -> Dict[str, BoxStats]:
    """Summarise several labelled sample sets at once."""
    return {key: BoxStats.from_samples(list(vals)) for key, vals in samples_by_key.items()}


def print_table(title: str, stats: Dict[str, BoxStats], header: str = "") -> None:
    """Print a labelled box-stats table (benchmark output format)."""
    print(f"\n=== {title} ===")
    if header:
        print(header)
    width = max((len(k) for k in stats), default=10)
    print(f"{'case'.ljust(width)}    min     q1    med     q3    max |  mean")
    for key, box in stats.items():
        print(f"{key.ljust(width)} {box.row()}")
