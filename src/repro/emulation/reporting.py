"""Experiment result persistence and report generation.

Runners return nested dictionaries of raw samples; this module serialises
them to JSON (so long sweeps can be re-analysed without re-running) and
renders Markdown summaries with paper-style box statistics — the format
EXPERIMENTS.md is built from.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import EmulationError
from .stats import BoxStats

_SCHEMA_VERSION = 1


@dataclass
class ExperimentRecord:
    """One experiment's raw samples plus provenance.

    Attributes:
        experiment_id: E.g. ``"fig11"``.
        description: Human-readable configuration summary.
        parameters: Exact knobs used (runs, frames, placement...).
        samples: ``case -> metric -> list of samples``.
    """

    experiment_id: str
    description: str
    parameters: Dict[str, object] = field(default_factory=dict)
    samples: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def box_stats(self, metric: str = "ssim") -> Dict[str, BoxStats]:
        """Box statistics per case for one metric."""
        stats = {}
        for case, metrics in self.samples.items():
            if metric in metrics and metrics[metric]:
                stats[case] = BoxStats.from_samples(metrics[metric])
        if not stats:
            raise EmulationError(
                f"experiment {self.experiment_id} has no samples for {metric!r}"
            )
        return stats

    def to_markdown(self, metric: str = "ssim") -> str:
        """A Markdown table of the experiment's box statistics."""
        stats = self.box_stats(metric)
        lines = [
            f"### {self.experiment_id}: {self.description}",
            "",
            "| case | min | q1 | median | q3 | max | mean | n |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for case, box in stats.items():
            lines.append(
                f"| {case} | {box.minimum:.3f} | {box.q1:.3f} | "
                f"{box.median:.3f} | {box.q3:.3f} | {box.maximum:.3f} | "
                f"**{box.mean:.3f}** | {box.count} |"
            )
        return "\n".join(lines) + "\n"


def save_records(
    records: List[ExperimentRecord], path: Union[str, Path]
) -> None:
    """Persist experiment records as JSON."""
    if not records:
        raise EmulationError("no records to save")
    payload = {
        "schema_version": _SCHEMA_VERSION,
        "records": [asdict(record) for record in records],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_records(path: Union[str, Path]) -> List[ExperimentRecord]:
    """Load experiment records saved by :func:`save_records`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise EmulationError(
            f"unsupported record schema version {version!r} "
            f"(expected {_SCHEMA_VERSION})"
        )
    return [ExperimentRecord(**record) for record in payload["records"]]


def render_report(
    records: List[ExperimentRecord],
    title: str = "Experiment report",
    metric: str = "ssim",
) -> str:
    """A full Markdown report over several experiments."""
    if not records:
        raise EmulationError("no records to report")
    sections = [f"# {title}", ""]
    for record in records:
        sections.append(record.to_markdown(metric=metric))
    return "\n".join(sections)


def record_from_runner_output(
    experiment_id: str,
    description: str,
    results: Dict[str, Dict[str, List[float]]],
    parameters: Optional[Dict[str, object]] = None,
) -> ExperimentRecord:
    """Wrap a runner's raw output dictionary into a record."""
    return ExperimentRecord(
        experiment_id=experiment_id,
        description=description,
        parameters=dict(parameters or {}),
        samples={case: dict(metrics) for case, metrics in results.items()},
    )
