"""Sharded, resumable execution of variant-sweep campaigns.

:func:`repro.emulation.sweep.run_variant_sweep` fans placements through a
fork-per-call pool with nothing persisted: an interrupted 10k-point
campaign restarts from zero, and a dead worker kills the whole run.  This
module is the scheduler layer that scales past that:

* A campaign (variants × placements, the ``run_variant_sweep`` /
  ``fault_grid`` shape) is split into deterministic, individually-seeded
  **shards** — contiguous run ranges whose results depend only on the run
  index, never on which worker executes them or in what order.
* Shards execute on a :class:`repro.perf.workers.PersistentPool`: workers
  start once per campaign and receive the heavyweight
  :class:`~repro.emulation.context.ExperimentContext` (trained DNN weights,
  encoded probe frames) through ``multiprocessing.shared_memory`` planes —
  shipped once, never pickled per task.  Dead or hung workers are detected
  by the pool's heartbeat/deadline supervision and their shards requeued.
* Every completed shard is appended to a **JSONL checkpoint**: one fsync'd
  ``write()`` per shard, floats serialized via ``float.hex()`` so values
  survive the JSON round-trip bit-exactly, and a header line binding the
  file to the campaign through a SHA-256 hash of the canonical spec.
  ``resume=True`` loads finished shards, re-runs only the missing ones,
  and merges to a result **bit-identical** to an uninterrupted run.

Corruption handling (exercised by ``tests/emulation/test_shard.py``): a
truncated *trailing* line — the signature of a SIGKILL mid-append — is
dropped and its shard re-run; a spec-hash mismatch, a duplicate shard id,
or a corrupt interior line raises :class:`~repro.errors.EmulationError`
naming the file, because silently merging a checkpoint from a different
campaign (or a doubly-written one) would corrupt results.

``repro-wigig sweep --shards N --checkpoint PATH [--resume]`` drives this
from the shell; ``sweep.shard.*`` counters and the ``sweep.shard.campaign``
span report progress through :mod:`repro.obs`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import EmulationError
from ..obs import OBS
from ..perf.parallel import effective_jobs
from ..perf.workers import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_TASK_TIMEOUT_S,
    PersistentPool,
    SharedPayload,
)
from .context import ExperimentContext
from .sweep import Variant, _placement_run, install_context, merge_runs

__all__ = [
    "CampaignSpec",
    "CheckpointError",
    "plan_shards",
    "load_checkpoint",
    "merge_shards",
    "run_sharded_sweep",
    "merged_to_jsonable",
    "write_results_json",
]

#: Checkpoint file format version (header field; bumped on layout changes).
CHECKPOINT_SCHEMA = 1


class CheckpointError(EmulationError):
    """A sweep checkpoint file is unusable for the requested campaign."""


# ------------------------------------------------------------ campaign spec


def _canonical_value(value: Any) -> Any:
    """A JSON-stable representation of one config-override value."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            k: _canonical_value(v)
            for k, v in sorted(dataclasses.asdict(value).items())
        }
    if isinstance(value, Mapping):
        return {str(k): _canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, float):
        return value.hex()
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a sharded campaign's results.

    The canonical JSON of this spec is hashed into the checkpoint header;
    a resume against a checkpoint whose hash differs is refused, so stale
    files can never be silently merged into a different campaign.
    """

    variants: Tuple[Variant, ...]
    num_users: int
    placement: Tuple
    runs: int
    frames: int
    shards: int
    seed_base: int = 1000
    seed_stride: int = 17
    seed_offset: int = 7

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise EmulationError(f"campaign needs runs >= 1, got {self.runs}")
        if not 1 <= self.shards <= self.runs:
            raise EmulationError(
                f"campaign needs 1 <= shards <= runs, got shards={self.shards} "
                f"for runs={self.runs}"
            )
        names = [v.name for v in self.variants]
        if len(set(names)) != len(names):
            raise EmulationError(f"duplicate variant names in campaign: {names}")
        for variant in self.variants:
            if variant.session_factory is not None:
                raise EmulationError(
                    f"variant {variant.name!r}: session_factory variants "
                    "cannot be sharded (their spec is not serializable)"
                )

    @property
    def points(self) -> int:
        """Scenario points in the campaign (runs × variants)."""
        return self.runs * len(self.variants)

    def to_dict(self) -> Dict[str, Any]:
        """The canonical (JSON-stable) spec used for hashing and headers."""
        return {
            "schema": CHECKPOINT_SCHEMA,
            "variants": [
                {
                    "name": v.name,
                    "overrides": _canonical_value(
                        dict(v.config_overrides or {})
                    ),
                }
                for v in self.variants
            ],
            "num_users": self.num_users,
            "placement": list(self.placement),
            "runs": self.runs,
            "frames": self.frames,
            "shards": self.shards,
            "seed_base": self.seed_base,
            "seed_stride": self.seed_stride,
            "seed_offset": self.seed_offset,
        }

    def spec_hash(self) -> str:
        """SHA-256 over the canonical spec JSON."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def plan_shards(runs: int, shards: int) -> List[Tuple[int, ...]]:
    """Split ``range(runs)`` into ``shards`` contiguous, near-equal chunks.

    Deterministic in all inputs; the first ``runs % shards`` shards take
    the extra run.  Every run index appears in exactly one shard.
    """
    if runs < 1:
        raise EmulationError(f"plan_shards needs runs >= 1, got {runs}")
    if not 1 <= shards <= runs:
        raise EmulationError(
            f"plan_shards needs 1 <= shards <= runs, got {shards} for {runs}"
        )
    base, extra = divmod(runs, shards)
    plan: List[Tuple[int, ...]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        plan.append(tuple(range(start, start + size)))
        start += size
    return plan


# --------------------------------------------------------------- checkpoint

_RunResult = Dict[str, Tuple[float, float]]


def _encode_shard_line(
    shard_id: int, results: Sequence[Tuple[int, _RunResult]]
) -> str:
    payload = {
        "kind": "shard",
        "shard_id": shard_id,
        "results": [
            [run, {name: [s.hex(), p.hex()] for name, (s, p) in sorted(res.items())}]
            for run, res in results
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _decode_shard_line(obj: Dict[str, Any]) -> Tuple[int, List[Tuple[int, _RunResult]]]:
    results = [
        (
            int(run),
            {
                name: (float.fromhex(pair[0]), float.fromhex(pair[1]))
                for name, pair in res.items()
            },
        )
        for run, res in obj["results"]
    ]
    return int(obj["shard_id"]), results


def _append_line(fh: IO[str], line: str) -> None:
    """One atomic, durable JSONL append: single write + flush + fsync."""
    fh.write(line + "\n")
    fh.flush()
    os.fsync(fh.fileno())


def load_checkpoint(
    path: Path, spec: CampaignSpec
) -> Tuple[Dict[int, List[Tuple[int, _RunResult]]], bool]:
    """Parse a checkpoint and return its finished shards.

    Returns ``(finished, dropped_trailing)`` where ``finished`` maps
    shard id -> per-run results and ``dropped_trailing`` reports whether a
    truncated final line (interrupted append) was discarded.

    Raises :class:`CheckpointError` naming ``path`` when the file cannot
    be trusted: unreadable header, spec-hash mismatch, duplicate shard
    ids, out-of-range shard ids, or a corrupt line that is *not* the
    trailing one.
    """
    raw = path.read_bytes()
    if not raw:
        return {}, False
    text = raw.decode("utf-8", errors="replace")
    complete = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    dropped_trailing = False
    if not complete and lines:
        # A SIGKILL mid-append leaves an unterminated fragment; the shard
        # it belonged to simply re-runs.
        lines.pop()
        dropped_trailing = True
    if not lines:
        return {}, dropped_trailing

    parsed: List[Dict[str, Any]] = []
    for index, line in enumerate(lines):
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                # Newline-terminated but still unparsable trailing line
                # (torn write flushed in pieces): drop and re-run.
                dropped_trailing = True
                break
            raise CheckpointError(
                f"checkpoint {path}: corrupt line {index + 1} "
                f"(not the trailing line — refusing to guess): {exc}"
            ) from exc

    if not parsed:
        return {}, dropped_trailing
    header = parsed[0]
    if header.get("kind") != "header":
        raise CheckpointError(
            f"checkpoint {path}: first line is not a campaign header"
        )
    if header.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path}: schema {header.get('schema')!r} != "
            f"{CHECKPOINT_SCHEMA} (written by an incompatible version)"
        )
    expected = spec.spec_hash()
    if header.get("spec_hash") != expected:
        raise CheckpointError(
            f"checkpoint {path}: spec hash {header.get('spec_hash')!r} does "
            f"not match this campaign ({expected!r}) — it records a "
            "different campaign; pass a fresh --checkpoint path"
        )

    finished: Dict[int, List[Tuple[int, _RunResult]]] = {}
    for obj in parsed[1:]:
        if obj.get("kind") != "shard":
            raise CheckpointError(
                f"checkpoint {path}: unexpected record kind {obj.get('kind')!r}"
            )
        shard_id, results = _decode_shard_line(obj)
        if shard_id in finished:
            raise CheckpointError(
                f"checkpoint {path}: duplicate shard id {shard_id} — the "
                "file was appended by two concurrent campaigns"
            )
        if not 0 <= shard_id < spec.shards:
            raise CheckpointError(
                f"checkpoint {path}: shard id {shard_id} out of range for "
                f"{spec.shards} shards"
            )
        finished[shard_id] = results
    return finished, dropped_trailing


# ----------------------------------------------------------------- workers


def _shard_task(payload: Tuple) -> Tuple[int, List[Tuple[int, _RunResult]]]:
    """One shard, worker-side: every run in the range, every variant.

    Reuses :func:`repro.emulation.sweep._placement_run` verbatim so a
    sharded campaign computes the exact bits ``run_variant_sweep`` would.
    """
    (shard_id, run_indices, num_users, placement, variants, frames,
     seed_base, seed_stride, seed_offset) = payload
    results = []
    for run in run_indices:
        results.append((
            run,
            _placement_run((
                run, num_users, placement, variants, frames,
                seed_base, seed_stride, seed_offset,
            )),
        ))
    return shard_id, results


def _install_shared_context(handle) -> None:
    """Pool initializer: attach the shm-shipped context as worker state."""
    install_context(handle.load())


# ------------------------------------------------------------------ engine


def run_sharded_sweep(
    ctx: ExperimentContext,
    variants: Sequence[Variant],
    num_users: int,
    placement: Tuple,
    runs: int,
    frames: int,
    shards: int,
    checkpoint: Path,
    resume: bool = False,
    jobs: Optional[int] = None,
    task_timeout_s: Optional[float] = DEFAULT_TASK_TIMEOUT_S,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    seed_base: int = 1000,
    seed_stride: int = 17,
    seed_offset: int = 7,
) -> Dict[str, Dict[str, List[float]]]:
    """Execute a sharded campaign; returns ``run_variant_sweep``'s shape.

    The merged result is bit-identical to
    :func:`~repro.emulation.sweep.run_variant_sweep` with the same seed
    schedule, at any shard count, any job count, and across any number of
    interrupt/resume cycles.

    Args:
        ctx: Shared experiment context (shipped to workers once, via
            shared memory).
        variants: Config-override comparison arms (``fault_grid`` output
            welcome).
        num_users, placement, runs, frames: As in ``run_variant_sweep``.
        shards: How many independently checkpointable chunks to split the
            ``runs`` into.
        checkpoint: JSONL checkpoint path.  Without ``resume`` the file is
            recreated; with ``resume`` finished shards are loaded from it
            and only missing shards execute.
        resume: Continue a previous (interrupted) campaign.
        jobs: Worker count (``REPRO_JOBS`` default; 1 = in-process serial,
            still checkpointing per shard).
        task_timeout_s: Per-shard deadline before a worker counts as hung.
        heartbeat_s: Worker liveness poll interval.
        seed_base, seed_stride, seed_offset: The per-run seed schedule
            (identical to ``run_variant_sweep``'s).
    """
    spec = CampaignSpec(
        variants=tuple(variants),
        num_users=num_users,
        placement=tuple(placement),
        runs=runs,
        frames=frames,
        shards=shards,
        seed_base=seed_base,
        seed_stride=seed_stride,
        seed_offset=seed_offset,
    )
    checkpoint = Path(checkpoint)
    plan = plan_shards(spec.runs, spec.shards)

    finished: Dict[int, List[Tuple[int, _RunResult]]] = {}
    if resume and checkpoint.exists():
        finished, dropped = load_checkpoint(checkpoint, spec)
        OBS.count("sweep.shard.loaded", len(finished))
        if dropped:
            OBS.count("sweep.shard.trailing_line_dropped")
    remaining = [
        shard_id for shard_id in range(spec.shards) if shard_id not in finished
    ]

    with OBS.span(
        "sweep.shard.campaign",
        shards=spec.shards,
        runs=spec.runs,
        points=spec.points,
        resumed=len(finished),
    ):
        checkpoint.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if (resume and checkpoint.exists() and finished) else "w"
        with open(checkpoint, mode, encoding="utf-8") as fh:
            if mode == "w":
                header = dict(spec.to_dict())
                header.update(kind="header", spec_hash=spec.spec_hash())
                _append_line(
                    fh, json.dumps(header, sort_keys=True, separators=(",", ":"))
                )

            def record(shard_id: int, results) -> None:
                finished[shard_id] = results
                _append_line(fh, _encode_shard_line(shard_id, results))
                OBS.count("sweep.shard.completed")
                OBS.count(
                    "sweep.shard.points_completed",
                    len(results) * len(spec.variants),
                )

            if remaining:
                payloads = [
                    (
                        shard_id, plan[shard_id], spec.num_users,
                        spec.placement, spec.variants, spec.frames,
                        spec.seed_base, spec.seed_stride, spec.seed_offset,
                    )
                    for shard_id in remaining
                ]
                count = min(effective_jobs(jobs), len(payloads))
                if count <= 1:
                    install_context(ctx)
                    for payload in payloads:
                        shard_id, results = _shard_task(payload)
                        record(shard_id, results)
                else:
                    with SharedPayload(ctx) as shipped:
                        OBS.set_gauge(
                            "sweep.shard.context_shm_bytes",
                            shipped.nbytes_shared,
                        )
                        with PersistentPool(
                            _shard_task,
                            jobs=count,
                            initializer=_install_shared_context,
                            initargs=(shipped.handle,),
                            task_timeout_s=task_timeout_s,
                            heartbeat_s=heartbeat_s,
                        ) as pool:
                            pool.run_tasks(
                                payloads,
                                on_result=lambda _id, res: record(*res),
                            )

    return merge_shards([v.name for v in spec.variants], spec.runs, finished)


def merge_shards(
    names: Sequence[str],
    runs: int,
    finished: Mapping[int, Sequence[Tuple[int, _RunResult]]],
) -> Dict[str, Dict[str, List[float]]]:
    """Stitch per-shard results back into ``run_variant_sweep``'s shape.

    Reassembly is keyed by run index, so the outcome is independent of
    shard count, shard completion order, and dict iteration order; a run
    missing from every shard raises :class:`EmulationError`.
    """
    per_run: List[Optional[_RunResult]] = [None] * runs
    for results in finished.values():
        for run, run_result in results:
            per_run[run] = run_result
    missing = [run for run, result in enumerate(per_run) if result is None]
    if missing:
        raise EmulationError(
            f"sharded campaign finished with unexecuted runs {missing} — "
            "checkpoint/plan mismatch"
        )
    return merge_runs(names, per_run)  # type: ignore[arg-type]


# ---------------------------------------------------------------- results


def merged_to_jsonable(
    merged: Mapping[str, Mapping[str, Sequence[float]]],
) -> Dict[str, Dict[str, List[str]]]:
    """Merged sweep results with every float as ``float.hex()``.

    The golden-suite serialization: byte-comparable across runs, lossless
    across the JSON round-trip.
    """
    return {
        name: {
            metric: [float(v).hex() for v in series]
            for metric, series in sorted(dict(metrics).items())
        }
        for name, metrics in sorted(dict(merged).items())
    }


def write_results_json(
    path: Path,
    merged: Mapping[str, Mapping[str, Sequence[float]]],
    spec: Optional[CampaignSpec] = None,
) -> Path:
    """Dump merged results (hex floats) for bit-exact diffing in CI."""
    payload: Dict[str, Any] = {"results": merged_to_jsonable(merged)}
    if spec is not None:
        payload["spec_hash"] = spec.spec_hash()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
