"""Trace analysis utilities: RSS series, regime classification, summaries.

The paper splits its mobile evaluation by the RSS of the moving receiver
(high: >= -61 dBm, the MCS 8 sensitivity; low: below).  These helpers
compute per-user RSS series from recorded traces (under matched beams, the
best any scheme could do), classify traces into the paper's regimes, and
produce compact summaries used by reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import EmulationError
from ..phy.channel import ChannelModel
from ..phy.csi import CsiTrace
from ..phy.mcs import HIGH_RSS_THRESHOLD_DBM, rate_for_rss_mbps


def trace_rss_series(
    trace: CsiTrace, channel_model: ChannelModel, use_estimates: bool = False
) -> Dict[int, np.ndarray]:
    """Per-user matched-beam RSS (dBm) over a trace.

    Uses the quantised conjugate beam per snapshot — an upper bound on what
    any beamforming scheme achieves, which is the right yardstick for regime
    classification.

    Args:
        trace: Recorded trace.
        channel_model: Supplies the array and link budget.
        use_estimates: Measure on the AP's estimated channels instead of the
            ground truth.
    """
    if not len(trace):
        raise EmulationError("empty trace")
    users = trace.user_ids()
    series: Dict[int, List[float]] = {u: [] for u in users}
    array = channel_model.array
    for snapshot in trace:
        state = snapshot.estimated_state if use_estimates else snapshot.true_state
        for user in users:
            channel = state.channels[user]
            beam = array.conjugate_beam(channel)
            series[user].append(channel_model.rss_dbm(beam, channel))
    return {u: np.asarray(v) for u, v in series.items()}


def classify_regime(
    trace: CsiTrace,
    channel_model: ChannelModel,
    threshold_dbm: float = HIGH_RSS_THRESHOLD_DBM,
) -> str:
    """Classify a trace as ``'high'`` or ``'low'`` RSS (Sec 4.3.4 split).

    A trace is high-RSS when the median matched-beam RSS across all users
    and beacons sits at or above the MCS 8 sensitivity.
    """
    series = trace_rss_series(trace, channel_model)
    pooled = np.concatenate(list(series.values()))
    return "high" if float(np.median(pooled)) >= threshold_dbm else "low"


@dataclass(frozen=True)
class TraceSummary:
    """Compact per-trace statistics."""

    duration_s: float
    num_users: int
    regime: str
    median_rss_dbm: float
    p10_rss_dbm: float
    outage_fraction: float
    median_best_rate_mbps: float

    def row(self) -> str:
        """One-line rendering."""
        return (
            f"{self.duration_s:5.1f}s {self.num_users}u {self.regime:>4} "
            f"RSS med {self.median_rss_dbm:6.1f} p10 {self.p10_rss_dbm:6.1f} dBm "
            f"outage {self.outage_fraction * 100:4.1f}% "
            f"rate {self.median_best_rate_mbps:6.0f} Mbps"
        )


def summarize_trace(trace: CsiTrace, channel_model: ChannelModel) -> TraceSummary:
    """Summary statistics of one trace.

    ``outage_fraction`` is the fraction of (user, beacon) samples whose
    matched-beam RSS cannot carry any data MCS — the hard failures the
    layered system degrades through and the DASH baselines freeze on.
    """
    series = trace_rss_series(trace, channel_model)
    pooled = np.concatenate(list(series.values()))
    rates = np.asarray([rate_for_rss_mbps(float(v)) for v in pooled])
    return TraceSummary(
        duration_s=trace.duration_s,
        num_users=len(series),
        regime=classify_regime(trace, channel_model),
        median_rss_dbm=float(np.median(pooled)),
        p10_rss_dbm=float(np.percentile(pooled, 10)),
        outage_fraction=float(np.mean(rates == 0.0)),
        median_best_rate_mbps=float(np.median(rates)),
    )
