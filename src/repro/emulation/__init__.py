"""Emulation harness: scenarios, traces, experiment runners, statistics.

Reproduces the paper's evaluation methodology (Sec 4): the same encoder,
decoder, scheduler, source coding and rate control run in testbed and
emulation; here the "testbed" is the ray-traced channel at close range with
few users, and "emulation" covers the larger topologies and the trace-driven
mobile experiments.
"""

from .analysis import TraceSummary, classify_regime, summarize_trace, trace_rss_series
from .context import ExperimentContext, build_context, trace_for_placement
from .scenario import EmulationScenario
from .stats import BoxStats, summarize
from .sweep import (
    Variant,
    ap_fault_grid,
    fault_grid,
    sweep_num_aps,
    merge_runs,
    parse_config_overrides,
    run_session_sweep,
    run_variant_sweep,
    variant_from_spec,
)
from .shard import (
    CampaignSpec,
    CheckpointError,
    load_checkpoint,
    merge_shards,
    merged_to_jsonable,
    plan_shards,
    run_sharded_sweep,
    write_results_json,
)
from .runner import (
    MOBILE_APPROACHES,
    run_ablation,
    run_beamforming_comparison,
    run_mobile_comparison,
    run_scheduler_comparison,
)

__all__ = [
    "EmulationScenario",
    "TraceSummary",
    "classify_regime",
    "summarize_trace",
    "trace_rss_series",
    "BoxStats",
    "summarize",
    "ExperimentContext",
    "build_context",
    "trace_for_placement",
    "Variant",
    "variant_from_spec",
    "parse_config_overrides",
    "fault_grid",
    "ap_fault_grid",
    "sweep_num_aps",
    "merge_runs",
    "run_variant_sweep",
    "run_session_sweep",
    "CampaignSpec",
    "CheckpointError",
    "load_checkpoint",
    "merge_shards",
    "merged_to_jsonable",
    "plan_shards",
    "run_sharded_sweep",
    "write_results_json",
    "MOBILE_APPROACHES",
    "run_beamforming_comparison",
    "run_scheduler_comparison",
    "run_ablation",
    "run_mobile_comparison",
]
