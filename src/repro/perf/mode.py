"""Global seed-path / optimized-path switch for performance comparisons.

The batched fountain codec, the incremental decoder and the transmitter's
memoized delivery probabilities all produce *bit-identical* results to the
original (seed) implementations — only their cost differs.  This module
holds the single process-wide switch that routes the hot paths through one
implementation or the other, so the perf benchmark harness can time the
serial seed path against the optimized path inside one process and assert
that metrics match exactly.

The default is ``"optimized"``; nothing in production code ever selects the
seed path — it exists for benchmarking and equivalence tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..errors import ConfigurationError

SEED_MODE = "seed"
OPTIMIZED_MODE = "optimized"
_VALID_MODES = (SEED_MODE, OPTIMIZED_MODE)

_mode = OPTIMIZED_MODE


def get_perf_mode() -> str:
    """The active mode, ``"optimized"`` (default) or ``"seed"``."""
    return _mode


def set_perf_mode(mode: str) -> None:
    """Select the implementation family for the hot paths."""
    global _mode
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"perf mode must be one of {_VALID_MODES}, got {mode!r}"
        )
    _mode = mode


def seed_path_active() -> bool:
    """True when the original per-symbol / re-solve implementations run."""
    return _mode == SEED_MODE


@contextmanager
def perf_mode(mode: str) -> Iterator[None]:
    """Temporarily switch the hot paths to ``mode``."""
    previous = get_perf_mode()
    set_perf_mode(mode)
    try:
        yield
    finally:
        set_perf_mode(previous)
