"""Persistent worker pool with shared-memory payload shipping.

:func:`repro.perf.parallel.parallel_map` forks a fresh pool per call, which
is the right shape for one-shot fan-outs but the wrong one for *campaigns*:
a sharded sweep submits many batches of work against the same heavyweight
shared state (trained DNN weights, encoded probe frames), and paying
fork/spawn startup plus context shipping per call erases the parallel win.

This module owns the long-lived shape:

* :class:`SharedPayload` pickles an arbitrary object **once** with its
  numpy planes hoisted out-of-band (pickle protocol 5) into a single
  ``multiprocessing.shared_memory`` block.  Workers reconstruct the object
  zero-copy from the shared planes — the per-worker cost is the small
  metadata pickle, not megabytes of frame/weight data, and nothing is
  re-shipped per task.
* :class:`PersistentPool` starts workers once and keeps them hot for the
  whole campaign.  The parent assigns one task to one worker at a time, so
  accounting is exact: a worker that dies (``Process.is_alive()`` checked
  every heartbeat interval) or exceeds the per-task deadline is killed,
  its task requeued to a fresh worker, and the campaign continues.  Task
  results are keyed by submission index, so retries and out-of-order
  completion cannot change the output.

Failure semantics mirror :mod:`repro.perf.parallel`: a task exception is
re-raised in the parent as :class:`repro.errors.ParallelWorkerError`
carrying the worker-side traceback; a task that keeps failing (crash or
timeout) after ``max_task_retries`` requeues raises instead of looping
forever.
"""

from __future__ import annotations

import pickle
import queue
import traceback
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.shared_memory import SharedMemory
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ParallelWorkerError
from ..obs import OBS

__all__ = [
    "SharedPayload",
    "SharedPayloadHandle",
    "PersistentPool",
    "DEFAULT_TASK_TIMEOUT_S",
    "DEFAULT_HEARTBEAT_S",
]

#: Per-task wall-clock deadline before a worker is presumed hung.  Sweeps
#: run shards of a few seconds each; ten minutes means only a genuinely
#: wedged worker (deadlock, runaway loop) trips it.
DEFAULT_TASK_TIMEOUT_S = 600.0

#: How often the parent checks worker liveness while waiting for results.
DEFAULT_HEARTBEAT_S = 0.5

#: Give-up threshold: a task requeued this many times (worker death or
#: timeout each time) raises instead of being retried again.
DEFAULT_MAX_TASK_RETRIES = 2


# ------------------------------------------------------- shared-memory pack


def _attach_shm(name: str) -> SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    Only the creating process may unlink the block; attaching workers must
    not register it with their resource tracker, or the tracker "cleans
    up" (unlinks) the segment when the first worker exits and the
    remaining workers lose their planes.  Python 3.13 has ``track=False``
    for exactly this; older versions need the documented unregister
    workaround.
    """
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        shm = SharedMemory(name=name)
        if "fork" not in get_all_start_methods():
            # Spawned children run their *own* resource tracker, which
            # would unlink the segment when this worker exits and yank the
            # planes out from under every other worker.  Forked children
            # share the parent's tracker, where the duplicate registration
            # is harmless (set semantics) and unregistering here would
            # instead double-remove the parent's own registration.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


#: Attached segments kept alive for the worker process lifetime: the
#: reconstructed numpy arrays alias this memory, so dropping the
#: SharedMemory object (and its mmap) would invalidate them.
_ATTACHED: List[SharedMemory] = []


@dataclass(frozen=True)
class SharedPayloadHandle:
    """Picklable locator for a :class:`SharedPayload` (tiny: metadata only).

    Ship this through worker ``initargs``; call :meth:`load` worker-side.
    """

    meta: bytes
    shm_name: Optional[str]
    offsets: Tuple[int, ...]
    sizes: Tuple[int, ...]

    def load(self) -> Any:
        """Reconstruct the object, aliasing planes in shared memory."""
        if self.shm_name is None:
            return pickle.loads(self.meta)
        shm = _attach_shm(self.shm_name)
        _ATTACHED.append(shm)
        buffers = [
            shm.buf[offset:offset + size]
            for offset, size in zip(self.offsets, self.sizes)
        ]
        return pickle.loads(self.meta, buffers=buffers)


class SharedPayload:
    """An object pickled once, numpy planes hoisted into shared memory.

    The owner (parent process) keeps this alive for the campaign and calls
    :meth:`close` when done — that unlinks the segment.  Workers only ever
    see the :attr:`handle`.
    """

    def __init__(self, obj: Any) -> None:
        raw_buffers: List[pickle.PickleBuffer] = []
        meta = pickle.dumps(obj, protocol=5, buffer_callback=raw_buffers.append)
        views = [buf.raw() for buf in raw_buffers]
        sizes = tuple(view.nbytes for view in views)
        total = sum(sizes)
        if total == 0:
            self._shm: Optional[SharedMemory] = None
            self.handle = SharedPayloadHandle(meta, None, (), ())
            return
        self._shm = SharedMemory(create=True, size=total)
        offsets = []
        cursor = 0
        for view, size in zip(views, sizes):
            offsets.append(cursor)
            self._shm.buf[cursor:cursor + size] = view.cast("B")
            cursor += size
        for buf in raw_buffers:
            buf.release()
        self.handle = SharedPayloadHandle(
            meta, self._shm.name, tuple(offsets), sizes
        )

    @property
    def nbytes_shared(self) -> int:
        """Bytes living in the shared segment (0 when all in-band)."""
        return sum(self.handle.sizes)

    def close(self) -> None:
        """Release and unlink the shared segment (idempotent)."""
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._shm = None

    def __enter__(self) -> "SharedPayload":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


# --------------------------------------------------------------- the pool


def _worker_main(
    worker_id: int,
    worker_fn: Callable[[Any], Any],
    initializer: Optional[Callable[..., None]],
    initargs: Sequence,
    task_q,
    result_q,
) -> None:
    """Worker loop: initialize once, then serve tasks until the sentinel."""
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException:
        result_q.put(("init_error", worker_id, traceback.format_exc()))
        return
    result_q.put(("ready", worker_id))
    while True:
        task = task_q.get()
        if task is None:
            return
        task_id, payload = task
        try:
            result = worker_fn(payload)
        except BaseException:
            result_q.put(("error", worker_id, task_id, traceback.format_exc()))
            continue
        result_q.put(("done", worker_id, task_id, result))


@dataclass
class _Worker:
    """Parent-side record of one worker process."""

    process: Any
    task_q: Any
    task_id: Optional[int] = None       # currently assigned task
    started_at: float = 0.0
    ready: bool = False                  # initializer finished


class PersistentPool:
    """A pool of long-lived workers with liveness and deadline supervision.

    Args:
        worker_fn: Top-level (picklable on spawn platforms) function of one
            payload argument.
        jobs: Worker count (must be >= 1).
        initializer: Per-worker setup hook, run once at worker start — the
            natural place to ``SharedPayloadHandle.load()`` shared state.
        initargs: Arguments for ``initializer``; keep them small (a
            :class:`SharedPayloadHandle`, not the object itself).
        task_timeout_s: Per-task wall-clock deadline; exceeding it kills
            the worker and requeues the task.  ``None`` disables deadlines.
        heartbeat_s: Liveness poll interval.
        max_task_retries: Requeues tolerated per task before giving up.

    Use as a context manager; :meth:`run_tasks` may be called repeatedly —
    workers stay hot between calls.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        jobs: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Sequence = (),
        task_timeout_s: Optional[float] = DEFAULT_TASK_TIMEOUT_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"PersistentPool needs jobs >= 1, got {jobs}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be positive or None, got {task_timeout_s}"
            )
        self._worker_fn = worker_fn
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._jobs = int(jobs)
        self._task_timeout_s = task_timeout_s
        self._heartbeat_s = float(heartbeat_s)
        self._max_task_retries = int(max_task_retries)
        methods = get_all_start_methods()
        self._ctx = get_context("fork" if "fork" in methods else None)
        self._result_q = self._ctx.Queue()
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._closed = False
        for _ in range(self._jobs):
            self._spawn_worker()

    # ------------------------------------------------------------ lifecycle

    def _spawn_worker(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._worker_fn,
                self._initializer,
                self._initargs,
                task_q,
                self._result_q,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = _Worker(process=process, task_q=task_q)
        return worker_id

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            try:
                worker.task_q.put(None)
            except Exception:
                pass
        for worker in self._workers.values():
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            worker.task_q.close()
        self._result_q.close()
        self._workers.clear()

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    @property
    def worker_respawns(self) -> int:
        """How many workers were started beyond the initial pool."""
        return self._next_worker_id - self._jobs

    # ----------------------------------------------------------- scheduling

    def _assign(self, worker: _Worker, task_id: int, payload: Any) -> None:
        worker.task_id = task_id
        worker.started_at = monotonic()
        worker.task_q.put((task_id, payload))

    def _replace_worker(self, worker_id: int, reason: str) -> Optional[int]:
        """Kill + respawn one worker; return its orphaned task id."""
        worker = self._workers.pop(worker_id)
        orphan = worker.task_id
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
        worker.task_q.close()
        OBS.count("sweep.pool.worker_respawned")
        self._spawn_worker()
        return orphan

    def run_tasks(
        self,
        payloads: Sequence[Any],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Run every payload through the pool; results in submission order.

        Dead/hung workers are detected while waiting and their task is
        requeued onto a fresh worker; a task that raises in the worker (or
        exhausts its retries) raises :class:`ParallelWorkerError` here.

        ``on_result(task_id, result)`` fires in the parent as each task
        completes (completion order, not submission order) — the hook the
        sweep scheduler checkpoints from, so an interrupt between calls
        loses at most the in-flight tasks.
        """
        if self._closed:
            raise ConfigurationError("PersistentPool is closed")
        payloads = list(payloads)
        if not payloads:
            return []
        pending: List[int] = list(range(len(payloads)))
        results: Dict[int, Any] = {}
        retries: Dict[int, int] = {}

        def feed_idle() -> None:
            for worker in self._workers.values():
                if not pending:
                    return
                if worker.ready and worker.task_id is None:
                    task_id = pending.pop(0)
                    self._assign(worker, task_id, payloads[task_id])

        def requeue(task_id: int, why: str) -> None:
            retries[task_id] = retries.get(task_id, 0) + 1
            OBS.count("sweep.pool.task_requeued")
            if retries[task_id] > self._max_task_retries:
                raise ParallelWorkerError(
                    f"task {task_id} abandoned after "
                    f"{self._max_task_retries} retries (last failure: {why})"
                )
            pending.insert(0, task_id)

        feed_idle()
        while len(results) < len(payloads):
            try:
                message = self._result_q.get(timeout=self._heartbeat_s)
            except queue.Empty:
                self._check_liveness(requeue)
                feed_idle()
                continue
            kind = message[0]
            if kind == "ready":
                worker = self._workers.get(message[1])
                if worker is not None:
                    worker.ready = True
            elif kind == "init_error":
                raise ParallelWorkerError(
                    "worker initializer failed:\n" + message[2]
                )
            elif kind == "done":
                _, worker_id, task_id, result = message
                worker = self._workers.get(worker_id)
                if worker is not None and worker.task_id == task_id:
                    worker.task_id = None
                if task_id not in results:
                    results[task_id] = result
                    if on_result is not None:
                        on_result(task_id, result)
            elif kind == "error":
                _, worker_id, task_id, formatted = message
                worker = self._workers.get(worker_id)
                if worker is not None and worker.task_id == task_id:
                    worker.task_id = None
                raise ParallelWorkerError(
                    f"worker task {task_id} failed:\n"
                    f"--- worker traceback ---\n{formatted}"
                )
            feed_idle()
        return [results[i] for i in range(len(payloads))]

    def _check_liveness(self, requeue: Callable[[int, str], None]) -> None:
        """Heartbeat tick: requeue tasks held by dead or overdue workers."""
        now = monotonic()
        for worker_id in list(self._workers):
            worker = self._workers[worker_id]
            if not worker.process.is_alive():
                orphan = self._replace_worker(worker_id, "worker died")
                if orphan is not None:
                    requeue(orphan, f"worker pid exited (task {orphan})")
            elif (
                worker.task_id is not None
                and self._task_timeout_s is not None
                and now - worker.started_at > self._task_timeout_s
            ):
                orphan = self._replace_worker(worker_id, "task timeout")
                if orphan is not None:
                    requeue(
                        orphan,
                        f"task {orphan} exceeded {self._task_timeout_s:g}s deadline",
                    )


def pool_start_method() -> str:
    """The multiprocessing start method :class:`PersistentPool` will use."""
    if "fork" in get_all_start_methods():
        return "fork"
    return get_context().get_start_method()
