"""Timing and reporting primitives for the perf benchmark harness.

Small, dependency-free helpers so ``benchmarks/bench_perf_pipeline.py`` and
future perf-sensitive benchmarks share one vocabulary: wall-clock stopwatch,
throughput computation, and the ``BENCH_PERF.json`` report writer that later
PRs diff against to defend the perf trajectory.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Tuple, TypeVar

_R = TypeVar("_R")


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer (``perf_counter`` based)."""

    elapsed_s: float = 0.0
    _started: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_s += time.perf_counter() - self._started


def time_call(fn: Callable[[], _R]) -> Tuple[_R, float]:
    """Run ``fn`` once and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def time_call_best(fn: Callable[[], _R], repeats: int = 5) -> Tuple[_R, float]:
    """Run ``fn`` ``repeats`` times and return ``(last_result, best_seconds)``.

    Best-of-N is the right statistic for sub-millisecond measurements on a
    shared machine: scheduler preemption only ever adds time, so the minimum
    is the closest observation to the true cost.
    """
    result, best = time_call(fn)
    for _ in range(max(0, repeats - 1)):
        result, elapsed = time_call(fn)
        if elapsed < best:
            best = elapsed
    return result, best


def throughput(units: float, seconds: float) -> float:
    """Units per second, guarding the zero-duration corner."""
    if seconds <= 0.0:
        return float("inf")
    return units / seconds


def speedup(baseline_s: float, optimized_s: float) -> float:
    """Wall-clock ratio ``baseline / optimized`` (>1 means faster)."""
    if optimized_s <= 0.0:
        return float("inf")
    return baseline_s / optimized_s


def write_bench_report(path: Path, payload: Dict[str, Any]) -> Path:
    """Write a benchmark report as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_bench_report(path: Path) -> Dict[str, Any]:
    """Load a previously written report (perf-trajectory comparisons)."""
    return json.loads(Path(path).read_text())
