"""Process-pool execution engine for the emulation and encode fan-outs.

The emulation runners replay many independent, individually-seeded runs;
this module fans them across cores with deterministic results:

* Worker count comes from the explicit ``jobs`` argument, else the
  ``REPRO_JOBS`` environment variable, else 1 (serial).  ``jobs <= 0``
  means "all cores".
* ``jobs=1`` short-circuits to a plain in-process loop — no pool, no
  pickling — so the serial path stays the trivially-debuggable one.
* Results always come back in submission order, and every task carries its
  own seed, so ``jobs=1`` and ``jobs=N`` produce identical output.

Workers prefer the ``fork`` start method when the platform offers it: the
heavyweight shared state (trained DNN, probe frames) is inherited
copy-on-write instead of being pickled per task.  An ``initializer`` hook
covers spawn-only platforms; the serial path invokes it in-process so the
same worker functions run unchanged at any job count.

Forking a pool costs tens of milliseconds per worker before the first task
runs, so small jobs lose to a plain loop (the jigsaw-encode benchmark
measured a 4.4x slowdown at 24 frames on a busy runner).  ``parallel_map``
therefore *probes*: it runs the first item in-process, discounts the
one-off warmup baked into a first call (:data:`PROBE_WARMUP_FACTOR`),
extrapolates the serial cost of the rest, and only spins up the pool when
that estimate clears :data:`POOL_BREAK_EVEN_S`.  Pass ``break_even_s=0.0``
to force the pool regardless (e.g. when the first item is
unrepresentative).
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from time import perf_counter
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from ..errors import ConfigurationError, ParallelWorkerError

#: Environment variable overriding the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Estimated remaining serial wall time (seconds) below which forking a
#: process pool costs more than it saves.  Pool startup plus per-task
#: pickling runs ~50-100 ms per worker on shared CI runners; half a second
#: of real work is comfortably past break-even at any job count.
POOL_BREAK_EVEN_S = 0.5

#: Discount applied to the probed first-item time before extrapolating.
#: The first call pays one-off warmup — lazy imports, numpy buffer
#: allocation, cache population — that the remaining items never repeat,
#: so the raw probe overestimates steady-state serial cost and (before
#: this discount existed) spun up a pool for maps that finish faster
#: serially.  0.5 assumes up to half the first call was warmup; pass
#: ``probe_warmup_factor=1.0`` to trust the raw probe.
PROBE_WARMUP_FACTOR = 0.5

_T = TypeVar("_T")
_R = TypeVar("_R")


def effective_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count from the argument or ``REPRO_JOBS``.

    ``None`` defers to the environment (default 1 — serial); values <= 0
    mean "use every core".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from exc
    if jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


def _run_task(fn: Callable[[_T], _R], item: _T) -> _R:
    """Worker-side wrapper preserving the original failure context.

    A bare exception crossing the pool boundary loses its traceback — the
    caller sees only the exception message, with no hint of which worker
    frame raised it.  Capture the formatted traceback in the worker and
    re-raise as :class:`ParallelWorkerError`, whose message (a plain
    string) survives pickling intact.
    """
    try:
        return fn(item)
    except ParallelWorkerError:
        raise
    except Exception as exc:
        raise ParallelWorkerError(
            f"worker task {getattr(fn, '__name__', fn)!r} failed: "
            f"{type(exc).__name__}: {exc}\n"
            f"--- worker traceback ---\n{traceback.format_exc()}"
        ) from exc


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Sequence = (),
    break_even_s: Optional[float] = None,
    probe_warmup_factor: Optional[float] = None,
) -> List[_R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    Args:
        fn: Top-level (picklable) function of one argument.
        items: Work items; each must be picklable when ``jobs > 1``.
        jobs: Worker count (see :func:`effective_jobs`).
        initializer: Per-worker setup hook (e.g. installing shared context);
            called in-process when running serially.
        initargs: Arguments for ``initializer``.
        break_even_s: Estimated remaining serial wall time below which the
            pool is skipped and the map runs serially (results are
            identical either way).  ``None`` uses
            :data:`POOL_BREAK_EVEN_S`; ``0.0`` disables the probe and
            always uses the pool when ``jobs > 1``.
        probe_warmup_factor: Fraction of the probed first-item time
            attributed to steady-state work (the rest is one-off warmup
            and excluded from the extrapolation).  ``None`` uses
            :data:`PROBE_WARMUP_FACTOR`; ``1.0`` disables the discount.

    Returns:
        Results in the order of ``items``.  Serial-path exceptions
        (including one raised by the first, probed item) propagate
        unchanged; a pool-worker exception is re-raised as
        :class:`repro.errors.ParallelWorkerError` carrying the original
        exception type, message and worker-side traceback in its message.
    """
    work = list(items)
    count = effective_jobs(jobs)
    if work:
        count = min(count, len(work))
    if break_even_s is None:
        break_even_s = POOL_BREAK_EVEN_S
    if probe_warmup_factor is None:
        probe_warmup_factor = PROBE_WARMUP_FACTOR
    if not 0.0 < probe_warmup_factor <= 1.0:
        raise ConfigurationError(
            f"probe_warmup_factor must be in (0, 1], got {probe_warmup_factor}"
        )
    if not work:
        if initializer is not None:
            initializer(*initargs)
        return []
    if count <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in work]
    mp_context = _pool_context()
    fork = mp_context.get_start_method() == "fork"
    prefix: List[_R] = []
    if break_even_s > 0.0:
        # Probe: run the first item in-process and extrapolate the serial
        # cost of the rest.  Below break-even the pool is pure overhead —
        # fork/spawn startup dwarfs the work — so finish serially.
        if initializer is not None:
            initializer(*initargs)
            if fork:
                # Forked workers inherit the initialized parent globals
                # copy-on-write; spawn workers still need the hook.
                initializer, initargs = None, ()
        probe_t0 = perf_counter()
        prefix.append(fn(work[0]))
        probe_s = perf_counter() - probe_t0
        # The first call carries one-off warmup the rest never repeat;
        # extrapolate from the discounted steady-state estimate.
        item_s = probe_s * probe_warmup_factor
        work = work[1:]
        if not work or item_s * len(work) < break_even_s:
            return prefix + [fn(item) for item in work]
        count = min(count, len(work))
    elif initializer is not None and fork:
        # Forked workers inherit parent globals copy-on-write: run the
        # initializer here once instead of pickling initargs (which may
        # hold many megabytes of shared context) into every worker.
        initializer(*initargs)
        initializer, initargs = None, ()
    with ProcessPoolExecutor(
        max_workers=count,
        mp_context=mp_context,
        initializer=initializer,
        initargs=tuple(initargs),
    ) as pool:
        return prefix + list(pool.map(partial(_run_task, fn), work))
