"""Performance layer: parallel execution, perf-mode switch, bench timing.

``repro.perf`` concentrates everything that makes the reproduction fast
without changing results:

* :mod:`repro.perf.parallel` — the ``REPRO_JOBS`` process-pool engine the
  emulation runners fan out on (deterministic at any job count).
* :mod:`repro.perf.mode` — the seed-path/optimized-path switch used by the
  benchmark harness to time the original implementations against the
  batched ones inside one process.
* :mod:`repro.perf.timing` — stopwatch/throughput helpers plus the
  ``BENCH_PERF.json`` report writer.
* :mod:`repro.perf.encode` — per-frame jigsaw encode fan-out (imported
  lazily by callers; not re-exported here to keep import cycles impossible
  from the fountain layer).
"""

from .mode import (
    OPTIMIZED_MODE,
    SEED_MODE,
    get_perf_mode,
    perf_mode,
    seed_path_active,
    set_perf_mode,
)
from .parallel import (
    JOBS_ENV_VAR,
    POOL_BREAK_EVEN_S,
    effective_jobs,
    parallel_map,
)
from .timing import (
    Stopwatch,
    read_bench_report,
    speedup,
    throughput,
    time_call,
    time_call_best,
    write_bench_report,
)

__all__ = [
    "OPTIMIZED_MODE",
    "SEED_MODE",
    "get_perf_mode",
    "perf_mode",
    "seed_path_active",
    "set_perf_mode",
    "JOBS_ENV_VAR",
    "effective_jobs",
    "POOL_BREAK_EVEN_S",
    "parallel_map",
    "Stopwatch",
    "read_bench_report",
    "speedup",
    "throughput",
    "time_call",
    "time_call_best",
    "write_bench_report",
]
