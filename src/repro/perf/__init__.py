"""Performance layer: parallel execution, perf-mode switch, bench timing.

``repro.perf`` concentrates everything that makes the reproduction fast
without changing results:

* :mod:`repro.perf.parallel` — the ``REPRO_JOBS`` process-pool engine the
  emulation runners fan out on (deterministic at any job count).
* :mod:`repro.perf.mode` — the seed-path/optimized-path switch used by the
  benchmark harness to time the original implementations against the
  batched ones inside one process.
* :mod:`repro.perf.timing` — stopwatch/throughput helpers plus the
  ``BENCH_PERF.json`` report writer.
* :mod:`repro.perf.workers` — the persistent worker pool + shared-memory
  payload shipping that sharded sweep campaigns run on (workers started
  once per campaign, heavyweight state shipped via
  ``multiprocessing.shared_memory`` instead of per-task pickling).
* :mod:`repro.perf.encode` — per-frame jigsaw encode fan-out (imported
  lazily by callers; not re-exported here to keep import cycles impossible
  from the fountain layer).
"""

from .mode import (
    OPTIMIZED_MODE,
    SEED_MODE,
    get_perf_mode,
    perf_mode,
    seed_path_active,
    set_perf_mode,
)
from .parallel import (
    JOBS_ENV_VAR,
    POOL_BREAK_EVEN_S,
    PROBE_WARMUP_FACTOR,
    effective_jobs,
    parallel_map,
)
from .workers import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_TASK_TIMEOUT_S,
    PersistentPool,
    SharedPayload,
    SharedPayloadHandle,
)
from .timing import (
    Stopwatch,
    read_bench_report,
    speedup,
    throughput,
    time_call,
    time_call_best,
    write_bench_report,
)

__all__ = [
    "OPTIMIZED_MODE",
    "SEED_MODE",
    "get_perf_mode",
    "perf_mode",
    "seed_path_active",
    "set_perf_mode",
    "JOBS_ENV_VAR",
    "effective_jobs",
    "POOL_BREAK_EVEN_S",
    "PROBE_WARMUP_FACTOR",
    "parallel_map",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_TASK_TIMEOUT_S",
    "PersistentPool",
    "SharedPayload",
    "SharedPayloadHandle",
    "Stopwatch",
    "read_bench_report",
    "speedup",
    "throughput",
    "time_call",
    "time_call_best",
    "write_bench_report",
]
