"""Parallel per-frame video encoding (jigsaw fan-out across cores).

Frames are independent in the jigsaw codec, so a live encoder can spread
them over a process pool.  Each worker builds its codec once (initializer)
and receives only raw planes, keeping per-task pickling small.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..video.frame import VideoFrame
from ..video.jigsaw import JigsawCodec, LayeredFrame
from .parallel import parallel_map

_WORKER_CODEC: Optional[JigsawCodec] = None


def _encode_init(height: int, width: int) -> None:
    global _WORKER_CODEC
    _WORKER_CODEC = JigsawCodec(height, width)


def _encode_one(planes: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> LayeredFrame:
    assert _WORKER_CODEC is not None
    return _WORKER_CODEC.encode(VideoFrame(*planes))


def encode_frames(
    codec: JigsawCodec,
    frames: Sequence[VideoFrame],
    jobs: Optional[int] = None,
) -> List[LayeredFrame]:
    """Encode ``frames`` with ``codec``'s geometry, fanned across cores.

    Output order matches input order, and results are identical to serial
    encoding at any job count (the codec is deterministic).
    """
    structure = codec.structure
    return parallel_map(
        _encode_one,
        [(f.y, f.u, f.v) for f in frames],
        jobs=jobs,
        initializer=_encode_init,
        initargs=(structure.height, structure.width),
    )
