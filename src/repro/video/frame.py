"""YUV420 video-frame container.

A :class:`VideoFrame` holds a single frame in planar YUV 4:2:0 layout, the
format of the paper's uncompressed source videos.  The luma (Y) plane has the
full ``height x width`` resolution; the two chroma planes (U, V) are
subsampled by 2 in both dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import VideoFormatError


@dataclass(frozen=True)
class VideoFrame:
    """One planar YUV 4:2:0 frame.

    Attributes:
        y: Luma plane, ``uint8`` array of shape ``(height, width)``.
        u: Chroma-U plane, ``uint8`` array of shape ``(height//2, width//2)``.
        v: Chroma-V plane, same shape as ``u``.
    """

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        for name, plane in (("y", self.y), ("u", self.u), ("v", self.v)):
            if plane.ndim != 2:
                raise VideoFormatError(f"plane {name!r} must be 2-D, got {plane.ndim}-D")
            if plane.dtype != np.uint8:
                raise VideoFormatError(
                    f"plane {name!r} must be uint8, got {plane.dtype}"
                )
        h, w = self.y.shape
        if h % 2 or w % 2:
            raise VideoFormatError(f"frame dimensions must be even, got {h}x{w}")
        if self.u.shape != (h // 2, w // 2) or self.v.shape != (h // 2, w // 2):
            raise VideoFormatError(
                "chroma planes must be half-resolution of luma: "
                f"y={self.y.shape}, u={self.u.shape}, v={self.v.shape}"
            )

    @property
    def height(self) -> int:
        """Luma height in pixels."""
        return int(self.y.shape[0])

    @property
    def width(self) -> int:
        """Luma width in pixels."""
        return int(self.y.shape[1])

    @property
    def num_pixels(self) -> int:
        """Number of luma pixels."""
        return self.height * self.width

    def raw_size_bytes(self) -> int:
        """Size of the uncompressed YUV420 frame in bytes (1.5 B per pixel)."""
        return self.y.size + self.u.size + self.v.size

    def copy(self) -> "VideoFrame":
        """Return a deep copy of this frame."""
        return VideoFrame(self.y.copy(), self.u.copy(), self.v.copy())


def blank_frame(height: int, width: int, luma: int = 0) -> VideoFrame:
    """Return a uniform frame (used for the blank-frame SSIM feature, Sec 2.3).

    Args:
        height: Luma height in pixels (must be even).
        width: Luma width in pixels (must be even).
        luma: Constant Y value; chroma planes are set to the neutral 128.
    """
    if not 0 <= luma <= 255:
        raise VideoFormatError(f"luma must be in [0, 255], got {luma}")
    y = np.full((height, width), luma, dtype=np.uint8)
    u = np.full((height // 2, width // 2), 128, dtype=np.uint8)
    return VideoFrame(y, u, u.copy())
