"""Jigsaw-style layered video codec (paper Sec 2.2).

The codec partitions each frame into non-overlapping 8x8 pixel blocks and
builds a 4-level block-average pyramid:

* **Layer 0** (base): the average pixel value of every 8x8 block, which for a
  4K frame yields roughly a 512x270 thumbnail.  Chroma planes are carried in
  the base layer as 4x4 block averages of the half-resolution U/V planes
  (spatially aligned with the 8x8 luma blocks).
* **Layer 1**: for each of the four 4x4 sub-blocks of an 8x8 block, the
  difference between the 4x4 average and the (quantised) 8x8 average.
* **Layer 2**: differences of 2x2 averages from their parent 4x4 averages.
* **Layer 3**: differences of individual pixels from their parent 2x2
  averages.

Each layer is organised into **sublayers** (Sec 2.2): the k-th sublayer of a
layer collects the k-th difference value of every block across the frame, so
every sublayer is a frame-wide plane of ``(H/8) x (W/8)`` values.  Sublayers
are independent additive corrections — a decoder can apply any subset, which
is what makes partial reception useful and lets the fountain code treat a
sublayer as its coding unit (Sec 2.6).

Differences are quantised to ``int8`` against the already-quantised coarser
level, so full reception reconstructs the source to within rounding error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import CodecError, VideoFormatError
from ..obs import OBS
from ..types import NUM_LAYERS
from .frame import VideoFrame

#: Block size of the base layer.
BASE_BLOCK = 8

#: Number of sublayers per layer: layer 0 carries (Y means, U means, V means);
#: layers 1-3 carry the 4 / 16 / 64 per-block difference positions.
SUBLAYER_COUNTS: Tuple[int, int, int, int] = (3, 4, 16, 64)

#: Per-8x8-block grid side of each refinement layer (2 -> 4x4 sub-blocks,
#: 4 -> 2x2 sub-blocks, 8 -> pixels).
_GRID_SIDE = {1: 2, 2: 4, 3: 8}


def _block_mean(plane: np.ndarray, block: int) -> np.ndarray:
    """Mean over non-overlapping ``block x block`` tiles of a 2-D plane."""
    h, w = plane.shape
    return plane.reshape(h // block, block, w // block, block).mean(axis=(1, 3))


def _upsample2(plane: np.ndarray) -> np.ndarray:
    """Nearest-neighbour 2x upsampling."""
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)


def _split_sublayers(delta: np.ndarray, grid_side: int) -> np.ndarray:
    """Rearrange a frame-wide delta plane into per-position sublayers.

    ``delta`` has shape ``(h8 * grid_side, w8 * grid_side)``; the result has
    shape ``(grid_side**2, h8, w8)`` where index ``k = row * grid_side + col``
    selects the k-th intra-block position across all blocks.
    """
    gh = delta.shape[0] // grid_side
    gw = delta.shape[1] // grid_side
    cube = delta.reshape(gh, grid_side, gw, grid_side)
    return cube.transpose(1, 3, 0, 2).reshape(grid_side * grid_side, gh, gw)


def _merge_sublayers(sublayers: np.ndarray, grid_side: int) -> np.ndarray:
    """Inverse of :func:`_split_sublayers`."""
    _, gh, gw = sublayers.shape
    cube = sublayers.reshape(grid_side, grid_side, gh, gw)
    return cube.transpose(2, 0, 3, 1).reshape(gh * grid_side, gw * grid_side)


@dataclass(frozen=True)
class LayerStructure:
    """Static description of the layered representation for a frame size.

    The scheduler, fountain coder and transport all consult this object for
    per-layer and per-sublayer byte counts; it contains no pixel data.
    """

    height: int
    width: int

    def __post_init__(self) -> None:
        if self.height % BASE_BLOCK or self.width % BASE_BLOCK:
            raise VideoFormatError(
                f"frame dimensions must be multiples of {BASE_BLOCK}, got "
                f"{self.height}x{self.width}"
            )

    @property
    def base_shape(self) -> Tuple[int, int]:
        """Shape of one sublayer plane: ``(H/8, W/8)``."""
        return (self.height // BASE_BLOCK, self.width // BASE_BLOCK)

    @property
    def sublayer_nbytes(self) -> int:
        """Bytes per sublayer (one byte per 8x8 block)."""
        h8, w8 = self.base_shape
        return h8 * w8

    @property
    def sublayer_counts(self) -> Tuple[int, int, int, int]:
        """Number of sublayers in each of the four layers."""
        return SUBLAYER_COUNTS

    def layer_nbytes(self, layer: int) -> int:
        """Total bytes of one layer."""
        return SUBLAYER_COUNTS[layer] * self.sublayer_nbytes

    @property
    def total_nbytes(self) -> int:
        """Bytes of the complete layered frame (all 87 sublayers)."""
        return sum(self.layer_nbytes(j) for j in range(NUM_LAYERS))

    def layer_sizes(self) -> np.ndarray:
        """Per-layer byte counts as a float array of length 4."""
        return np.array([self.layer_nbytes(j) for j in range(NUM_LAYERS)], dtype=float)


@dataclass
class LayeredFrame:
    """Encoded representation of one frame.

    Attributes:
        structure: The :class:`LayerStructure` this frame conforms to.
        base_y: Layer-0 luma means, ``uint8 (h8, w8)``.
        base_u: Layer-0 chroma-U means, ``uint8 (h8, w8)``.
        base_v: Layer-0 chroma-V means, ``uint8 (h8, w8)``.
        deltas: Refinement layers 1-3: ``int8`` arrays of shapes
            ``(4, h8, w8)``, ``(16, h8, w8)`` and ``(64, h8, w8)``.
    """

    structure: LayerStructure
    base_y: np.ndarray
    base_u: np.ndarray
    base_v: np.ndarray
    deltas: Tuple[np.ndarray, np.ndarray, np.ndarray]

    def sublayer_payload(self, layer: int, index: int) -> bytes:
        """Serialise one sublayer to bytes (the fountain-code source block)."""
        self._check_sublayer(layer, index)
        if layer == 0:
            plane = (self.base_y, self.base_u, self.base_v)[index]
            return plane.tobytes()
        return self.deltas[layer - 1][index].tobytes()

    def set_sublayer_payload(self, layer: int, index: int, payload: bytes) -> None:
        """Deserialise one sublayer from bytes (inverse of payload export)."""
        self._check_sublayer(layer, index)
        expected = self.structure.sublayer_nbytes
        if len(payload) != expected:
            raise CodecError(
                f"sublayer ({layer},{index}) payload must be {expected} bytes, "
                f"got {len(payload)}"
            )
        shape = self.structure.base_shape
        if layer == 0:
            plane = np.frombuffer(payload, dtype=np.uint8).reshape(shape)
            if index == 0:
                self.base_y = plane.copy()
            elif index == 1:
                self.base_u = plane.copy()
            else:
                self.base_v = plane.copy()
        else:
            self.deltas[layer - 1][index] = np.frombuffer(
                payload, dtype=np.int8
            ).reshape(shape)

    def _check_sublayer(self, layer: int, index: int) -> None:
        if not 0 <= layer < NUM_LAYERS:
            raise CodecError(f"layer {layer} out of range [0, {NUM_LAYERS})")
        if not 0 <= index < SUBLAYER_COUNTS[layer]:
            raise CodecError(
                f"sublayer index {index} out of range for layer {layer} "
                f"(has {SUBLAYER_COUNTS[layer]} sublayers)"
            )

    @classmethod
    def empty(cls, structure: LayerStructure) -> "LayeredFrame":
        """Return an all-zero layered frame (used to assemble receptions)."""
        h8, w8 = structure.base_shape
        return cls(
            structure=structure,
            base_y=np.full((h8, w8), 128, dtype=np.uint8),
            base_u=np.full((h8, w8), 128, dtype=np.uint8),
            base_v=np.full((h8, w8), 128, dtype=np.uint8),
            deltas=(
                np.zeros((4, h8, w8), dtype=np.int8),
                np.zeros((16, h8, w8), dtype=np.int8),
                np.zeros((64, h8, w8), dtype=np.int8),
            ),
        )


class JigsawCodec:
    """Encoder/decoder for the layered representation.

    The decoder accepts an arbitrary subset of sublayers (as boolean masks) so
    callers can reconstruct whatever the transport delivered before the frame
    deadline.
    """

    def __init__(self, height: int, width: int):
        self.structure = LayerStructure(height=height, width=width)

    # ------------------------------------------------------------------ encode

    def encode(self, frame: VideoFrame) -> LayeredFrame:
        """Encode a frame into the 4-layer representation."""
        if (frame.height, frame.width) != (self.structure.height, self.structure.width):
            raise CodecError(
                f"frame is {frame.height}x{frame.width}, codec expects "
                f"{self.structure.height}x{self.structure.width}"
            )
        if not OBS.mode:
            return self._encode(frame)
        with OBS.span("encode.jigsaw", bytes=self.structure.total_nbytes):
            return self._encode(frame)

    def _encode(self, frame: VideoFrame) -> LayeredFrame:
        y = frame.y.astype(np.float32)
        m8q = np.round(_block_mean(y, 8)).astype(np.float32)

        d1, m4q = self._quantised_delta(_block_mean(y, 4), m8q)
        d2, m2q = self._quantised_delta(_block_mean(y, 2), m4q)
        d3, _ = self._quantised_delta(y, m2q)

        base_u = np.round(_block_mean(frame.u.astype(np.float32), 4))
        base_v = np.round(_block_mean(frame.v.astype(np.float32), 4))

        return LayeredFrame(
            structure=self.structure,
            base_y=m8q.astype(np.uint8),
            base_u=np.clip(base_u, 0, 255).astype(np.uint8),
            base_v=np.clip(base_v, 0, 255).astype(np.uint8),
            deltas=(
                _split_sublayers(d1, 2).astype(np.int8),
                _split_sublayers(d2, 4).astype(np.int8),
                _split_sublayers(d3, 8).astype(np.int8),
            ),
        )

    @staticmethod
    def _quantised_delta(
        fine: np.ndarray, coarse_q: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Quantise ``fine - upsample(coarse)`` to int8 and return both the
        quantised delta plane and the reconstructed fine plane the next level
        should difference against (so quantisation error does not accumulate
        invisibly)."""
        predicted = _upsample2(coarse_q)
        delta = np.clip(np.round(fine - predicted), -128, 127)
        return delta, predicted + delta

    # ------------------------------------------------------------------ decode

    def decode(
        self, layered: LayeredFrame, received: Sequence[np.ndarray]
    ) -> VideoFrame:
        """Reconstruct a frame from the sublayers marked received.

        Args:
            layered: The encoded frame.
            received: Four boolean arrays; ``received[j][k]`` is True when
                sublayer ``k`` of layer ``j`` was decoded by the transport.

        Returns:
            The reconstructed :class:`VideoFrame`.  Missing base-layer
            sublayers fall back to neutral grey.
        """
        masks = self._validate_masks(received)
        h8, w8 = self.structure.base_shape

        base_y = np.where(masks[0][0], layered.base_y, 128).astype(np.float32)
        base_y = np.broadcast_to(base_y, (h8, w8)).astype(np.float32)

        level = _upsample2(base_y)
        for layer in (1, 2, 3):
            subs = layered.deltas[layer - 1].astype(np.float32)
            subs = subs * masks[layer][:, None, None]
            level = _upsample2(level) if layer > 1 else level
            level = level + _merge_sublayers(subs, _GRID_SIDE[layer])
        y_hat = np.clip(np.round(level), 0, 255).astype(np.uint8)

        half = (self.structure.height // 2, self.structure.width // 2)
        u_hat = self._decode_chroma(layered.base_u, bool(masks[0][1]), half)
        v_hat = self._decode_chroma(layered.base_v, bool(masks[0][2]), half)
        return VideoFrame(y_hat, u_hat, v_hat)

    def decode_fractions(
        self, layered: LayeredFrame, fractions: Sequence[float]
    ) -> VideoFrame:
        """Decode using the first ``ceil(f * count)`` sublayers of each layer.

        This is the access pattern of the quality-model dataset generator
        (Sec 2.3): sublayers are delivered in index order within a layer.
        """
        masks = self.masks_for_fractions(fractions)
        return self.decode(layered, masks)

    def masks_for_fractions(self, fractions: Sequence[float]) -> List[np.ndarray]:
        """Convert per-layer reception fractions into sublayer masks."""
        if len(fractions) != NUM_LAYERS:
            raise CodecError(f"expected {NUM_LAYERS} fractions, got {len(fractions)}")
        masks = []
        for count, frac in zip(SUBLAYER_COUNTS, fractions):
            if not 0.0 <= frac <= 1.0 + 1e-9:
                raise CodecError(f"fraction {frac} outside [0, 1]")
            n = int(np.ceil(min(frac, 1.0) * count - 1e-9))
            mask = np.zeros(count, dtype=bool)
            mask[:n] = True
            masks.append(mask)
        return masks

    @staticmethod
    def _decode_chroma(
        means: np.ndarray, present: bool, half_shape: Tuple[int, int]
    ) -> np.ndarray:
        if not present:
            return np.full(half_shape, 128, dtype=np.uint8)
        up = _upsample2(_upsample2(means.astype(np.float32)))
        return np.clip(np.round(up), 0, 255).astype(np.uint8)

    def _validate_masks(self, received: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(received) != NUM_LAYERS:
            raise CodecError(f"expected {NUM_LAYERS} masks, got {len(received)}")
        masks = []
        for layer, (count, mask) in enumerate(zip(SUBLAYER_COUNTS, received)):
            arr = np.asarray(mask, dtype=bool)
            if arr.shape != (count,):
                raise CodecError(
                    f"mask for layer {layer} must have shape ({count},), "
                    f"got {arr.shape}"
                )
            masks.append(arr)
        return masks
