"""Quality-model dataset generation (paper Sec 2.3).

For each frame of a training corpus we feed different fractions of each video
layer into the decoder and record the resulting SSIM (and PSNR), exactly as
the paper does with FFmpeg.  Each sample also records the nine model-input
features:

1-4.  Amount of data received at each layer (normalised to the layer size —
      equivalent to the paper's "number of packets received at each layer"
      up to a constant per-layer factor).
5-8.  SSIM when everything up to the i-th layer has been received completely
      (these capture how much each layer matters for *this* frame).
9.    SSIM of the blank frame (how different this frame is from blank).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..perf.mode import seed_path_active
from ..types import NUM_LAYERS, validate_seed
from .frame import VideoFrame, blank_frame
from .jigsaw import JigsawCodec, LayeredFrame
from .metrics import psnr, ssim
from .synthetic import SyntheticVideo

#: Number of quality-model input features.
NUM_FEATURES = 9


@dataclass
class FrameQualityProbe:
    """Quality measurements for a single encoded frame.

    Precomputes the static features (cumulative per-layer SSIM and blank-frame
    SSIM) once, then answers arbitrary fraction queries with one decode each.
    """

    codec: JigsawCodec
    reference: VideoFrame
    layered: LayeredFrame
    cumulative_ssim: np.ndarray
    blank_ssim: float
    #: Memoized mask-reception measurements: receivers in one multicast group
    #: routinely decode identical sublayer sets, so repeated mask queries are
    #: the common case in emulation.  LRU-bounded; skipped on the seed path.
    _mask_cache: "OrderedDict[bytes, Tuple[float, float]]" = field(
        default_factory=OrderedDict, repr=False, compare=False
    )

    _MASK_CACHE_LIMIT = 1024

    @classmethod
    def from_frame(cls, codec: JigsawCodec, frame: VideoFrame) -> "FrameQualityProbe":
        """Encode ``frame`` and precompute its static quality features."""
        layered = codec.encode(frame)
        cumulative = []
        for upto in range(NUM_LAYERS):
            fractions = [1.0 if j <= upto else 0.0 for j in range(NUM_LAYERS)]
            decoded = codec.decode_fractions(layered, fractions)
            cumulative.append(ssim(frame, decoded))
        blank = ssim(frame, blank_frame(frame.height, frame.width))
        return cls(
            codec=codec,
            reference=frame,
            layered=layered,
            cumulative_ssim=np.asarray(cumulative, dtype=float),
            blank_ssim=float(blank),
        )

    def features(self, fractions: Sequence[float]) -> np.ndarray:
        """The 9-dimensional model input for a per-layer reception vector."""
        fracs = np.clip(np.asarray(fractions, dtype=float), 0.0, 1.0)
        return np.concatenate([fracs, self.cumulative_ssim, [self.blank_ssim]])

    def measure(self, fractions: Sequence[float]) -> Tuple[float, float]:
        """Decode at the given per-layer fractions and return (SSIM, PSNR)."""
        decoded = self.codec.decode_fractions(self.layered, fractions)
        return ssim(self.reference, decoded), psnr(self.reference, decoded)

    def measure_masks(self, masks: Sequence[np.ndarray]) -> Tuple[float, float]:
        """Decode an explicit sublayer-mask reception and return (SSIM, PSNR).

        This is the emulation path: the transport reports exactly which
        sublayers each receiver decoded before the frame deadline.
        """
        if seed_path_active():
            decoded = self.codec.decode(self.layered, masks)
            return ssim(self.reference, decoded), psnr(self.reference, decoded)
        key = b"".join(np.asarray(m, dtype=bool).tobytes() for m in masks)
        cached = self._mask_cache.get(key)
        if cached is not None:
            self._mask_cache.move_to_end(key)
            return cached
        decoded = self.codec.decode(self.layered, masks)
        result = (ssim(self.reference, decoded), psnr(self.reference, decoded))
        self._mask_cache[key] = result
        while len(self._mask_cache) > self._MASK_CACHE_LIMIT:
            self._mask_cache.popitem(last=False)
        return result

    def sample(self, fractions: Sequence[float]) -> Tuple[np.ndarray, float]:
        """One (features, SSIM) training sample."""
        quality, _ = self.measure(fractions)
        return self.features(fractions), quality


@dataclass
class QualityDataset:
    """A feature/label matrix pair for training quality models."""

    features: np.ndarray
    ssim: np.ndarray
    psnr: np.ndarray

    def __len__(self) -> int:
        return int(self.features.shape[0])

    def split(
        self, train_fraction: float = 0.7, seed: Optional[int] = 0
    ) -> Tuple["QualityDataset", "QualityDataset"]:
        """Random non-overlapping train/test split (paper uses 7:3)."""
        rng = validate_seed(seed)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        train_idx, test_idx = order[:cut], order[cut:]
        return self._subset(train_idx), self._subset(test_idx)

    def _subset(self, idx: np.ndarray) -> "QualityDataset":
        return QualityDataset(
            features=self.features[idx],
            ssim=self.ssim[idx],
            psnr=self.psnr[idx],
        )


def _sample_fraction_vectors(
    rng: np.random.Generator, count: int
) -> Iterable[np.ndarray]:
    """Yield diverse per-layer fraction vectors.

    Mixes four regimes so the model sees the whole operating range:
    progressive fills (lower layers first, the scheduler's common case),
    fully random vectors, per-layer axis sweeps, and "hole" vectors with a
    missing lower layer.  The hole regime matters: without it the model never
    learns that skipping the base layer is catastrophic, and the allocation
    optimizer will happily game the model by dropping layer 0.
    """
    for i in range(count):
        mode = i % 4
        if mode == 0:
            progress = rng.uniform(0.0, float(NUM_LAYERS))
            fractions = np.clip(progress - np.arange(NUM_LAYERS), 0.0, 1.0)
        elif mode == 1:
            fractions = rng.uniform(0.0, 1.0, size=NUM_LAYERS)
        elif mode == 2:
            fractions = np.zeros(NUM_LAYERS)
            upto = int(rng.integers(0, NUM_LAYERS))
            fractions[:upto] = 1.0
            fractions[upto] = rng.uniform(0.0, 1.0)
        else:
            fractions = rng.uniform(0.5, 1.0, size=NUM_LAYERS)
            hole = int(rng.integers(0, NUM_LAYERS - 1))
            fractions[hole] = 0.0
        yield fractions


def generate_dataset(
    videos: Sequence[SyntheticVideo],
    frames_per_video: int = 4,
    samples_per_frame: int = 24,
    seed: Optional[int] = 0,
) -> QualityDataset:
    """Generate a quality dataset over a corpus of videos.

    Args:
        videos: Source sequences (typically ``make_standard_videos()``).
        frames_per_video: Evenly spaced frames probed per video.
        samples_per_frame: Fraction vectors decoded per frame.
        seed: RNG seed for fraction sampling.

    Returns:
        A :class:`QualityDataset` with one row per decode.
    """
    rng = validate_seed(seed)
    feats: List[np.ndarray] = []
    ssims: List[float] = []
    psnrs: List[float] = []
    for video in videos:
        codec = JigsawCodec(video.height, video.width)
        indices = np.linspace(0, video.num_frames - 1, frames_per_video).astype(int)
        for frame_idx in np.unique(indices):
            probe = FrameQualityProbe.from_frame(codec, video.frame(int(frame_idx)))
            for fractions in _sample_fraction_vectors(rng, samples_per_frame):
                quality, quality_db = probe.measure(fractions)
                feats.append(probe.features(fractions))
                ssims.append(quality)
                psnrs.append(quality_db)
    return QualityDataset(
        features=np.vstack(feats),
        ssim=np.asarray(ssims, dtype=float),
        psnr=np.asarray(psnrs, dtype=float),
    )
