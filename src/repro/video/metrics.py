"""Video quality metrics: SSIM and PSNR, implemented from scratch.

The paper computes SSIM with FFmpeg; we implement the original
Wang-Bovik-Sheikh-Simoncelli SSIM (IEEE TIP 2004) with the standard 11x11
Gaussian window (sigma = 1.5) on the luma plane.  PSNR is the usual
``10 * log10(MAX^2 / MSE)`` on luma.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy.ndimage import gaussian_filter

from ..errors import VideoFormatError
from .frame import VideoFrame

#: SSIM stabilisation constants for 8-bit content (K1=0.01, K2=0.03, L=255).
_C1 = (0.01 * 255.0) ** 2
_C2 = (0.03 * 255.0) ** 2

#: Standard deviation of the SSIM Gaussian window.
_SSIM_SIGMA = 1.5

#: Cap applied to PSNR for identical images (MSE == 0), in dB.
PSNR_CAP_DB = 100.0

_PlaneOrFrame = Union[np.ndarray, VideoFrame]


def _as_luma(image: _PlaneOrFrame, dtype=np.float64) -> np.ndarray:
    """Extract a float luma plane from a frame or a raw 2-D array."""
    if isinstance(image, VideoFrame):
        plane = image.y
    else:
        plane = np.asarray(image)
        if plane.ndim != 2:
            raise VideoFormatError(f"expected a 2-D plane, got {plane.ndim}-D")
    return plane.astype(dtype)


def ssim(
    reference: _PlaneOrFrame, distorted: _PlaneOrFrame, dtype=np.float32
) -> float:
    """Mean SSIM between two frames (luma plane).

    All five Gaussian-filter passes run on ``dtype`` planes (float32 by
    default — the filters are memory-bound, so halving the element width
    roughly doubles throughput) into one preallocated output buffer.
    float32 agrees with float64 to well under 1e-4 on 8-bit content; pass
    ``dtype=np.float64`` to reproduce the double-precision value.

    Args:
        reference: Ground-truth frame or Y plane.
        distorted: Reconstructed frame or Y plane, same shape.
        dtype: Working precision of the filter passes.

    Returns:
        Mean SSIM over the frame, in ``[-1, 1]`` (1 means identical).
    """
    ref = _as_luma(reference, dtype)
    dist = _as_luma(distorted, dtype)
    if ref.shape != dist.shape:
        raise VideoFormatError(f"shape mismatch: {ref.shape} vs {dist.shape}")

    # One buffer for all five filtered planes: mu_x, mu_y, E[x^2], E[y^2],
    # E[xy]; plus one scratch plane for the products being filtered.
    filtered = np.empty((5,) + ref.shape, dtype=dtype)
    scratch = np.empty_like(ref)
    gaussian_filter(ref, _SSIM_SIGMA, output=filtered[0])
    gaussian_filter(dist, _SSIM_SIGMA, output=filtered[1])
    np.multiply(ref, ref, out=scratch)
    gaussian_filter(scratch, _SSIM_SIGMA, output=filtered[2])
    np.multiply(dist, dist, out=scratch)
    gaussian_filter(scratch, _SSIM_SIGMA, output=filtered[3])
    np.multiply(ref, dist, out=scratch)
    gaussian_filter(scratch, _SSIM_SIGMA, output=filtered[4])

    mu_x, mu_y, e_xx, e_yy, e_xy = filtered
    mu_x2 = mu_x * mu_x
    mu_y2 = mu_y * mu_y
    mu_xy = mu_x * mu_y

    sigma_x2 = e_xx - mu_x2
    sigma_y2 = e_yy - mu_y2
    sigma_xy = e_xy - mu_xy

    numerator = (2.0 * mu_xy + _C1) * (2.0 * sigma_xy + _C2)
    denominator = (mu_x2 + mu_y2 + _C1) * (sigma_x2 + sigma_y2 + _C2)
    return float(np.mean(numerator / denominator, dtype=np.float64))


def psnr(reference: _PlaneOrFrame, distorted: _PlaneOrFrame) -> float:
    """Peak signal-to-noise ratio between two frames (luma plane), in dB.

    Identical frames return :data:`PSNR_CAP_DB` rather than infinity so the
    value stays usable in averages.
    """
    ref = _as_luma(reference)
    dist = _as_luma(distorted)
    if ref.shape != dist.shape:
        raise VideoFormatError(f"shape mismatch: {ref.shape} vs {dist.shape}")
    mse = float(np.mean((ref - dist) ** 2))
    if mse <= 0.0:
        return PSNR_CAP_DB
    return float(min(10.0 * np.log10(255.0**2 / mse), PSNR_CAP_DB))


def ssim_to_psnr_rough(ssim_value: float) -> float:
    """Rough monotone SSIM -> PSNR mapping used only for sanity checks.

    Empirical fit over natural video content; not used in any benchmark
    result, only to validate that jointly reported SSIM/PSNR pairs are
    plausible.
    """
    clipped = float(np.clip(ssim_value, 1e-6, 1.0 - 1e-9))
    return float(10.0 * np.log10(1.0 / (1.0 - clipped)) + 13.0)
