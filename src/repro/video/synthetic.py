"""Procedural YUV420 video sources.

The paper trains and evaluates on six uncompressed 4K sequences from Derf's
collection, three high-richness (HR) and three low-richness (LR), where
richness is the variance of the Y plane (Sec 2.3).  Those sequences are not
redistributable here, so this module generates procedural stand-ins with the
two properties the paper's pipeline actually depends on:

* a controllable split of energy across the block-average pyramid (HR content
  has substantial fine-scale texture, so higher layers matter; LR content is
  dominated by the base layer), and
* temporal coherence with controllable motion (objects and texture translate
  smoothly between frames).

Each video is a deterministic function of its seed, so datasets and
experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.ndimage import gaussian_filter

from ..errors import VideoFormatError
from ..types import Richness, validate_seed
from .frame import VideoFrame

#: Default resolution used by tests and quality-model dataset generation.
#: The codec and pipeline are resolution-agnostic; 4K (3840x2160) works the
#: same way but costs ~360x more CPU per frame.
DEFAULT_HEIGHT = 288
DEFAULT_WIDTH = 512

#: Full 4K resolution as used in the paper.
UHD_HEIGHT = 2160
UHD_WIDTH = 3840


@dataclass(frozen=True)
class _Blob:
    """A moving elliptical object composited over the background."""

    center: Tuple[float, float]
    velocity: Tuple[float, float]
    radius: float
    luma: float
    chroma: Tuple[float, float]


@dataclass
class SyntheticVideo:
    """A deterministic, procedurally generated YUV420 sequence.

    Attributes:
        name: Human-readable identifier.
        richness: HIGH or LOW spatial richness (Sec 2.3 split).
        height: Luma height in pixels (multiple of 16).
        width: Luma width in pixels (multiple of 16).
        num_frames: Sequence length.
        motion: Pixels per frame of global texture drift; also scales blob
            velocities.
        seed: RNG seed; the same seed always yields the same video.
    """

    name: str
    richness: Richness
    height: int = DEFAULT_HEIGHT
    width: int = DEFAULT_WIDTH
    num_frames: int = 60
    motion: float = 2.0
    seed: int = 0
    _texture: np.ndarray = field(init=False, repr=False)
    _background: np.ndarray = field(init=False, repr=False)
    _blobs: List[_Blob] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.height % 16 or self.width % 16:
            raise VideoFormatError(
                f"dimensions must be multiples of 16, got {self.height}x{self.width}"
            )
        if self.num_frames <= 0:
            raise VideoFormatError("num_frames must be positive")
        rng = validate_seed(self.seed)
        self._texture = self._make_texture(rng)
        self._background = self._make_background(rng)
        self._blobs = self._make_blobs(rng)

    # ------------------------------------------------------------- components

    def _make_texture(self, rng: np.random.Generator) -> np.ndarray:
        """A wrap-around texture tile that translates over time.

        HR videos receive strong band-pass texture (energy in the fine
        layers); LR videos receive weak, heavily smoothed texture.
        """
        tile = rng.normal(size=(self.height, self.width)).astype(np.float32)
        coarse = gaussian_filter(tile, 6.0)
        coarse = coarse / (coarse.std() + 1e-9)
        if self.richness is Richness.HIGH:
            fine = gaussian_filter(tile, 1.5) - gaussian_filter(tile, 3.5)
            fine = fine / (fine.std() + 1e-9)
            texture = 5.0 * fine + 15.0 * coarse
        else:
            texture = 8.0 * coarse
        return texture

    def _make_background(self, rng: np.random.Generator) -> np.ndarray:
        """A static smooth luma gradient built from a few 2-D sinusoids."""
        yy, xx = np.meshgrid(
            np.linspace(0, 2 * np.pi, self.height, dtype=np.float32),
            np.linspace(0, 2 * np.pi, self.width, dtype=np.float32),
            indexing="ij",
        )
        # LR content is flatter end to end — the paper's richness split is
        # on total Y variance, so the background swing scales with richness.
        amplitude = 22.0 if self.richness is Richness.HIGH else 11.0
        background = np.full((self.height, self.width), 120.0, dtype=np.float32)
        for _ in range(3):
            fy, fx = rng.uniform(0.5, 2.0, size=2)
            phase = rng.uniform(0, 2 * np.pi)
            background += amplitude * np.sin(fy * yy + fx * xx + phase).astype(np.float32)
        return background

    def _make_blobs(self, rng: np.random.Generator) -> List[_Blob]:
        count = 6 if self.richness is Richness.HIGH else 3
        luma_swing = 70.0 if self.richness is Richness.HIGH else 35.0
        blobs = []
        for _ in range(count):
            blobs.append(
                _Blob(
                    center=(
                        float(rng.uniform(0, self.height)),
                        float(rng.uniform(0, self.width)),
                    ),
                    velocity=(
                        float(rng.uniform(-1.5, 1.5) * self.motion),
                        float(rng.uniform(-1.5, 1.5) * self.motion),
                    ),
                    radius=float(rng.uniform(0.04, 0.12) * self.width),
                    luma=float(rng.uniform(-luma_swing, luma_swing)),
                    chroma=(
                        float(rng.uniform(-45, 45)),
                        float(rng.uniform(-45, 45)),
                    ),
                )
            )
        return blobs

    # ------------------------------------------------------------------ frames

    def frame(self, index: int) -> VideoFrame:
        """Render frame ``index`` (0-based)."""
        if not 0 <= index < self.num_frames:
            raise VideoFormatError(
                f"frame index {index} out of range [0, {self.num_frames})"
            )
        shift = int(round(index * self.motion))
        texture = np.roll(self._texture, (shift, 2 * shift), axis=(0, 1))
        y = self._background + texture

        u = np.full((self.height, self.width), 0.0, dtype=np.float32)
        v = np.full((self.height, self.width), 0.0, dtype=np.float32)
        yy, xx = np.ogrid[: self.height, : self.width]
        for blob in self._blobs:
            cy = (blob.center[0] + blob.velocity[0] * index) % self.height
            cx = (blob.center[1] + blob.velocity[1] * index) % self.width
            dist2 = (yy - cy) ** 2 + (xx - cx) ** 2
            mask = np.exp(-dist2 / (2.0 * blob.radius**2)).astype(np.float32)
            y = y + blob.luma * mask
            u = u + blob.chroma[0] * mask
            v = v + blob.chroma[1] * mask

        y8 = np.clip(np.round(y), 0, 255).astype(np.uint8)
        u8 = np.clip(np.round(128.0 + u[::2, ::2]), 0, 255).astype(np.uint8)
        v8 = np.clip(np.round(128.0 + v[::2, ::2]), 0, 255).astype(np.uint8)
        return VideoFrame(y8, u8, v8)

    def frames(self) -> List[VideoFrame]:
        """Render the full sequence (memory-heavy at 4K; prefer :meth:`frame`)."""
        return [self.frame(i) for i in range(self.num_frames)]

    def y_variance(self, sample_frames: int = 3) -> float:
        """Mean Y-plane variance over the first few frames.

        The paper's HR/LR split is by this statistic; tests assert that HR
        videos score higher than LR videos.
        """
        count = min(sample_frames, self.num_frames)
        variances = [
            float(np.var(self.frame(i).y.astype(np.float64))) for i in range(count)
        ]
        return float(np.mean(variances))


def make_standard_videos(
    height: int = DEFAULT_HEIGHT,
    width: int = DEFAULT_WIDTH,
    num_frames: int = 30,
    seed: int = 7,
) -> List[SyntheticVideo]:
    """Return the 6-video corpus mirroring the paper's dataset (3 HR + 3 LR)."""
    rng = validate_seed(seed)
    videos = []
    for i in range(3):
        videos.append(
            SyntheticVideo(
                name=f"hr_{i}",
                richness=Richness.HIGH,
                height=height,
                width=width,
                num_frames=num_frames,
                motion=float(rng.uniform(1.0, 4.0)),
                seed=int(rng.integers(0, 2**31)),
            )
        )
    for i in range(3):
        videos.append(
            SyntheticVideo(
                name=f"lr_{i}",
                richness=Richness.LOW,
                height=height,
                width=width,
                num_frames=num_frames,
                motion=float(rng.uniform(0.5, 2.0)),
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return videos


def evaluation_videos(
    height: int = DEFAULT_HEIGHT,
    width: int = DEFAULT_WIDTH,
    num_frames: int = 30,
    seed: Optional[int] = 11,
) -> List[SyntheticVideo]:
    """The 2 HR + 2 LR evaluation sequences used in Sec 4.1."""
    corpus = make_standard_videos(height, width, num_frames, seed=int(seed or 11))
    return [corpus[0], corpus[1], corpus[3], corpus[4]]
