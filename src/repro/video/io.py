"""Y4M (YUV4MPEG2) reader/writer — feed real uncompressed videos in.

The paper's dataset is uncompressed 4K YUV from Derf's collection, normally
distributed as ``.y4m``.  This module reads and writes that format (the
C420/C420jpeg/C420mpeg2 layouts) so users can run the entire pipeline on the
paper's actual videos when they have them, instead of the synthetic corpus.

Only progressive 4:2:0 content is supported — exactly what the system
streams.
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import VideoFormatError
from .frame import VideoFrame

_MAGIC = b"YUV4MPEG2"
_FRAME_MAGIC = b"FRAME"
_SUPPORTED_CHROMA = {"420", "420jpeg", "420mpeg2", "420paldv"}


def _parse_header(line: bytes) -> Tuple[int, int, Tuple[int, int]]:
    """Parse the stream header; returns (width, height, fps fraction)."""
    parts = line.decode("ascii", errors="replace").strip().split(" ")
    if not parts or parts[0] != _MAGIC.decode():
        raise VideoFormatError(f"not a YUV4MPEG2 stream: {line[:40]!r}")
    width = height = 0
    fps = (30, 1)
    for token in parts[1:]:
        if not token:
            continue
        tag, value = token[0], token[1:]
        if tag == "W":
            width = int(value)
        elif tag == "H":
            height = int(value)
        elif tag == "F":
            num, den = value.split(":")
            fps = (int(num), int(den))
        elif tag == "C":
            if value not in _SUPPORTED_CHROMA:
                raise VideoFormatError(
                    f"unsupported chroma subsampling C{value}; only 4:2:0 "
                    f"layouts are supported"
                )
        elif tag == "I" and value not in ("p", "?"):
            raise VideoFormatError(f"interlaced content (I{value}) not supported")
    if width <= 0 or height <= 0:
        raise VideoFormatError("stream header missing W/H")
    if width % 2 or height % 2:
        raise VideoFormatError(f"odd dimensions {width}x{height}")
    return width, height, fps


class Y4mReader:
    """Iterates :class:`VideoFrame` objects out of a ``.y4m`` stream.

    Usable as a context manager and as an iterator::

        with Y4mReader("video.y4m") as reader:
            for frame in reader:
                ...
    """

    def __init__(self, source: Union[str, Path, BinaryIO]):
        if isinstance(source, (str, Path)):
            self._stream: BinaryIO = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False
        header = self._stream.readline()
        self.width, self.height, self.fps = _parse_header(header)
        self._frame_bytes = self.width * self.height * 3 // 2

    def __enter__(self) -> "Y4mReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying stream if this reader opened it."""
        if self._owns_stream:
            self._stream.close()

    def __iter__(self) -> Iterator[VideoFrame]:
        return self

    def __next__(self) -> VideoFrame:
        frame = self.read_frame()
        if frame is None:
            raise StopIteration
        return frame

    def read_frame(self) -> Optional[VideoFrame]:
        """Read the next frame, or None at end of stream."""
        marker = self._stream.readline()
        if not marker:
            return None
        if not marker.startswith(_FRAME_MAGIC):
            raise VideoFormatError(f"expected FRAME marker, got {marker[:20]!r}")
        payload = self._stream.read(self._frame_bytes)
        if len(payload) != self._frame_bytes:
            raise VideoFormatError(
                f"truncated frame: expected {self._frame_bytes} bytes, "
                f"got {len(payload)}"
            )
        y_size = self.width * self.height
        c_size = y_size // 4
        data = np.frombuffer(payload, dtype=np.uint8)
        y = data[:y_size].reshape(self.height, self.width)
        u = data[y_size : y_size + c_size].reshape(self.height // 2, self.width // 2)
        v = data[y_size + c_size :].reshape(self.height // 2, self.width // 2)
        return VideoFrame(y.copy(), u.copy(), v.copy())

    def read_all(self, limit: Optional[int] = None) -> List[VideoFrame]:
        """Read up to ``limit`` frames (all when None)."""
        frames: List[VideoFrame] = []
        while limit is None or len(frames) < limit:
            frame = self.read_frame()
            if frame is None:
                break
            frames.append(frame)
        return frames


class Y4mWriter:
    """Writes :class:`VideoFrame` objects as a ``.y4m`` stream."""

    def __init__(
        self,
        target: Union[str, Path, BinaryIO],
        width: int,
        height: int,
        fps: Tuple[int, int] = (30, 1),
    ):
        if width % 2 or height % 2:
            raise VideoFormatError(f"odd dimensions {width}x{height}")
        if isinstance(target, (str, Path)):
            self._stream: BinaryIO = open(target, "wb")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.width = width
        self.height = height
        header = (
            f"YUV4MPEG2 W{width} H{height} F{fps[0]}:{fps[1]} Ip A1:1 C420\n"
        )
        self._stream.write(header.encode("ascii"))
        self.frames_written = 0

    def __enter__(self) -> "Y4mWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush and close the stream if this writer opened it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def write_frame(self, frame: VideoFrame) -> None:
        """Append one frame."""
        if (frame.height, frame.width) != (self.height, self.width):
            raise VideoFormatError(
                f"frame is {frame.height}x{frame.width}, stream is "
                f"{self.height}x{self.width}"
            )
        self._stream.write(b"FRAME\n")
        self._stream.write(frame.y.tobytes())
        self._stream.write(frame.u.tobytes())
        self._stream.write(frame.v.tobytes())
        self.frames_written += 1


def load_y4m(
    path: Union[str, Path], limit: Optional[int] = None
) -> List[VideoFrame]:
    """Convenience: read up to ``limit`` frames from a file."""
    with Y4mReader(path) as reader:
        return reader.read_all(limit=limit)


def save_y4m(
    path: Union[str, Path],
    frames: List[VideoFrame],
    fps: Tuple[int, int] = (30, 1),
) -> None:
    """Convenience: write a frame list to a file."""
    if not frames:
        raise VideoFormatError("no frames to write")
    with Y4mWriter(path, frames[0].width, frames[0].height, fps) as writer:
        for frame in frames:
            writer.write_frame(frame)
