"""Video substrate: frames, synthetic sources, layered codec, quality metrics.

This package replaces two external dependencies of the paper:

* the Xiph/Derf uncompressed 4K dataset (replaced by
  :mod:`repro.video.synthetic`, procedural YUV420 sequences with a
  high-richness / low-richness split by Y variance, Sec 2.3), and
* the Jigsaw layered 4K codec of Baig et al. (reimplemented in
  :mod:`repro.video.jigsaw` as the 8x8 / 4x4 / 2x2 / 1x1 block-average
  pyramid described in Sec 2.2).
"""

from .frame import VideoFrame, blank_frame
from .jigsaw import JigsawCodec, LayeredFrame, LayerStructure
from .metrics import psnr, ssim
from .synthetic import SyntheticVideo, make_standard_videos

__all__ = [
    "VideoFrame",
    "blank_frame",
    "JigsawCodec",
    "LayeredFrame",
    "LayerStructure",
    "ssim",
    "psnr",
    "SyntheticVideo",
    "make_standard_videos",
]
