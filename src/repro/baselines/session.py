"""Session adapter making the ABR baselines drop-in streamers.

The multicast system streams through ``MulticastStreamer.stream_trace``;
the DASH/MPC baselines historically went through the free function
:func:`repro.baselines.mpc.simulate_abr_session` with a different calling
convention.  :class:`AbrSession` wraps the baseline in the same
``stream_trace(trace, num_frames)`` session interface, so the emulation
harness can drive all four mobile-comparison approaches through one code
path (see :func:`repro.emulation.sweep.run_session_sweep`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..beamforming import SectorCodebook
from ..phy.channel import ChannelModel
from ..phy.csi import CsiTrace
from .abr import FreezeModel, RateQualityModel
from .mpc import AbrOutcome, simulate_abr_session


@dataclass
class AbrSession:
    """A live unicast DASH session bundle with the streamer interface.

    Args:
        controller_factory: Callable returning a fresh MPC controller given
            (ladder, quality) — e.g. ``RobustMpc`` or ``FastMpc``.
        channel_model: PHY for RSS/goodput computation.
        quality: Rate-quality model of the DASH encodings.
        freeze: GoP freeze model for missed deadlines.
        fps: Frame rate.
        rate_scale: Emulation link-rate divisor (must match the system's).
        codebook: Predefined sectors for the baseline's SLS beams.
        seed: Measurement-noise seed.
    """

    controller_factory: Callable
    channel_model: ChannelModel
    quality: RateQualityModel
    freeze: FreezeModel
    fps: int = 30
    rate_scale: float = 1.0
    codebook: Optional[SectorCodebook] = None
    seed: Optional[int] = 0

    def stream_trace(
        self, trace: CsiTrace, num_frames: Optional[int] = None
    ) -> AbrOutcome:
        """Stream ``num_frames`` frames over a recorded CSI trace."""
        if num_frames is None:
            num_frames = int(trace.duration_s * self.fps)
        return simulate_abr_session(
            self.controller_factory,
            trace,
            self.channel_model,
            self.quality,
            self.freeze,
            num_frames=int(num_frames),
            fps=self.fps,
            rate_scale=self.rate_scale,
            codebook=self.codebook,
            seed=self.seed,
        )
