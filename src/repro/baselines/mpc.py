"""Robust MPC and Fast MPC bitrate adaptation (Yin et al., Sec 4.3.4).

Both controllers choose the next chunk's bitrate by maximising a QoE
objective over a lookahead horizon of ``n = 5`` chunks:

    QoE = sum_k [ q(b_k) - mu * rebuffer_k - sigma * |q(b_k) - q(b_{k-1})| ]

under a throughput prediction.  Fast MPC predicts with the harmonic mean of
recent samples; Robust MPC divides the prediction by ``1 + max recent
error`` (the robustness discount of the original paper).  Following the
table-enumeration trick of Fast MPC we search bitrate sequences that are
constant over the horizon — for a 12-rung ladder this is exact enough and
keeps per-chunk cost trivial.

:func:`simulate_abr_session` runs a full live unicast DASH session per user
over a CSI trace: each user owns a TDMA share of the air, downloads chunks
at its predefined-beam unicast goodput, and suffers GoP freezes when chunks
miss their live deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..beamforming import GroupBeamPlanner, SectorCodebook
from ..errors import ConfigurationError
from ..phy.channel import ChannelModel
from ..phy.csi import CsiTrace
from ..transport.link import packet_error_rate
from ..types import (
    BeamformingScheme,
    FrameStats,
    OutcomeStats,
    validate_seed,
)
from .abr import BitrateLadder, FreezeModel, RateQualityModel

#: Lookahead horizon in chunks (the paper's n = 5).
HORIZON_CHUNKS = 5

#: Live chunk duration in seconds.
CHUNK_DURATION_S = 0.5

#: QoE weight of rebuffering time (per second).
REBUFFER_PENALTY = 8.0

#: QoE weight of quality switches.
SMOOTHNESS_PENALTY = 0.5

#: Throughput history window (samples).
HISTORY_WINDOW = 5


class _MpcBase:
    """Shared horizon search; subclasses differ only in the predictor."""

    name = "mpc"

    def __init__(self, ladder: BitrateLadder, quality: RateQualityModel):
        self.ladder = ladder
        self.quality = quality
        self._history: List[float] = []
        self._errors: List[float] = []
        self._last_prediction: Optional[float] = None
        self._last_bitrate: Optional[float] = None

    def observe_throughput(self, throughput_mbps: float) -> None:
        """Record a completed chunk's measured throughput."""
        throughput_mbps = max(throughput_mbps, 1e-6)
        if self._last_prediction is not None:
            error = abs(self._last_prediction - throughput_mbps) / throughput_mbps
            self._errors.append(error)
            self._errors = self._errors[-HISTORY_WINDOW:]
        self._history.append(throughput_mbps)
        self._history = self._history[-HISTORY_WINDOW:]

    def _harmonic_mean(self) -> float:
        if not self._history:
            return self.ladder.rates_mbps[0]
        values = np.asarray(self._history)
        return float(len(values) / np.sum(1.0 / values))

    def predict_throughput(self) -> float:
        """Subclasses implement the prediction rule."""
        raise NotImplementedError

    def choose_bitrate(self, buffer_s: float) -> float:
        """Pick the next chunk bitrate by maximising horizon QoE."""
        prediction = self.predict_throughput()
        self._last_prediction = prediction
        best_rate = self.ladder.rates_mbps[0]
        best_qoe = -np.inf
        previous_q = (
            self.quality.ssim_at(self._last_bitrate)
            if self._last_bitrate is not None
            else None
        )
        for rate in self.ladder.rates_mbps:
            qoe = 0.0
            buffer = buffer_s
            last_q = previous_q
            for _ in range(HORIZON_CHUNKS):
                download_s = rate * CHUNK_DURATION_S / max(prediction, 1e-6)
                rebuffer = max(0.0, download_s - CHUNK_DURATION_S - buffer)
                buffer = max(0.0, buffer + CHUNK_DURATION_S - download_s)
                q = self.quality.ssim_at(rate)
                qoe += q - REBUFFER_PENALTY * rebuffer
                if last_q is not None:
                    qoe -= SMOOTHNESS_PENALTY * abs(q - last_q)
                last_q = q
            if qoe > best_qoe:
                best_qoe = qoe
                best_rate = rate
        self._last_bitrate = best_rate
        return best_rate


class FastMpc(_MpcBase):
    """Fast MPC: harmonic-mean throughput prediction."""

    name = "fast_mpc"

    def predict_throughput(self) -> float:
        return self._harmonic_mean()


class RobustMpc(_MpcBase):
    """Robust MPC: harmonic mean discounted by the recent maximum error."""

    name = "robust_mpc"

    def predict_throughput(self) -> float:
        discount = 1.0 + (max(self._errors) if self._errors else 0.0)
        return self._harmonic_mean() / discount


class AbrOutcome(OutcomeStats):
    """Per-frame quality of an ABR session (comparable to StreamOutcome)."""


def simulate_abr_session(
    controller_factory,
    trace: CsiTrace,
    channel_model: ChannelModel,
    quality: RateQualityModel,
    freeze: FreezeModel,
    num_frames: int,
    fps: int = 30,
    rate_scale: float = 1.0,
    codebook: Optional[SectorCodebook] = None,
    seed: Optional[int] = 0,
) -> AbrOutcome:
    """Run live unicast DASH sessions for every user in a trace.

    Args:
        controller_factory: Callable returning a fresh MPC controller given
            (ladder, quality) — e.g. ``RobustMpc`` or ``FastMpc``.
        trace: Recorded channel trace (same one the multicast system used).
        channel_model: PHY for RSS/goodput computation.
        quality: Rate-quality model of the DASH encodings.
        freeze: GoP freeze model for missed deadlines.
        num_frames: Frames to stream.
        fps: Frame rate.
        rate_scale: Emulation link-rate divisor (must match the system's).
        codebook: Predefined sectors for the baseline's SLS beams.
        seed: Measurement-noise seed.

    Returns:
        Per-frame, per-user quality, directly comparable with the multicast
        system's :class:`repro.core.StreamOutcome`.
    """
    if num_frames <= 0:
        raise ConfigurationError("num_frames must be positive")
    validate_seed(seed)
    users = trace.user_ids()
    if not users:
        raise ConfigurationError("trace has no users")
    codebook = codebook or SectorCodebook(channel_model.array)
    planner = GroupBeamPlanner(
        channel_model.array,
        codebook,
        channel_model.budget,
        BeamformingScheme.PREDEFINED_UNICAST,
    )
    ladder = BitrateLadder(rate_scale=rate_scale)
    share = 1.0 / len(users)
    frames_per_chunk = max(1, int(round(CHUNK_DURATION_S * fps)))

    outcome = AbrOutcome()
    for user in users:
        controller = controller_factory(ladder, quality)
        buffer_s = 0.0
        last_decoded_frame = -1
        chunk_start = 0
        while chunk_start < num_frames:
            now = chunk_start / fps
            bitrate = controller.choose_bitrate(buffer_s)
            chunk_frames = min(frames_per_chunk, num_frames - chunk_start)
            chunk_s = chunk_frames / fps
            # The channel evolves *within* the chunk; the realised download
            # rate is the harmonic mean of the goodput over the window —
            # this is what punishes optimistic (Fast MPC) rate choices when
            # a fade starts mid-chunk.
            sample_times = np.arange(now, now + chunk_s, trace.beacon_interval_s)
            samples = [
                _user_goodput_mbps(
                    planner, trace, channel_model, user, float(t), rate_scale, share
                )
                for t in sample_times
            ]
            samples = [max(v, 1e-6) for v in samples] or [1e-6]
            throughput = len(samples) / float(np.sum(1.0 / np.asarray(samples)))
            download_s = bitrate * chunk_s / max(throughput, 1e-6)
            controller.observe_throughput(throughput)

            if download_s <= chunk_s + buffer_s:
                buffer_s = min(CHUNK_DURATION_S, buffer_s + chunk_s - download_s)
                decoded_through = chunk_start + chunk_frames - 1
            else:
                # Live deadline missed: the fraction of the chunk that
                # arrived in time decodes; the rest of the GoP freezes.
                usable = max(0.0, (chunk_s + buffer_s) / download_s)
                decoded_through = chunk_start + int(usable * chunk_frames) - 1
                buffer_s = 0.0

            chunk_quality = quality.ssim_at(bitrate)
            for frame in range(chunk_start, chunk_start + chunk_frames):
                if frame <= decoded_through:
                    frame_ssim = chunk_quality
                    last_decoded_frame = frame
                else:
                    gap = frame - last_decoded_frame if last_decoded_frame >= 0 else frame + 1
                    frame_ssim = freeze.ssim_at_gap(gap) * chunk_quality
                outcome.stats.append(
                    FrameStats(
                        frame_index=frame,
                        user_id=user,
                        ssim=float(np.clip(frame_ssim, 0.0, 1.0)),
                        psnr_db=quality.psnr_at(bitrate)
                        if frame <= decoded_through
                        else 10.0,
                        deadline_met=frame <= decoded_through,
                    )
                )
            chunk_start += chunk_frames
    return outcome


def _user_goodput_mbps(
    planner: GroupBeamPlanner,
    trace: CsiTrace,
    channel_model: ChannelModel,
    user: int,
    now_s: float,
    rate_scale: float,
    share: float,
) -> float:
    """The TDMA-shared unicast goodput a DASH user sees at time ``now``.

    Beam and MCS come from the *estimated* channel (what beam training saw);
    the packet success ratio comes from the *true* channel — the same
    estimated/true split the multicast system lives with.
    """
    snapshot = trace.at_time(now_s)
    plan = planner.plan_group(snapshot.estimated_state, [user])
    if plan.mcs is None:
        return 1e-3
    true_rss = channel_model.rss_dbm(
        plan.beam, snapshot.true_state.channels[user]
    )
    success = 1.0 - packet_error_rate(true_rss - plan.mcs.sensitivity_dbm)
    return float(plan.rate_mbps / rate_scale * success * share)
