"""Rate-distortion and GoP-fragility models for the DASH baselines.

The MPC baselines stream conventionally encoded video (H.264/HEVC class).
Two properties matter for the comparison with the layered system:

* **Rate-quality**: standard hybrid codecs are far more efficient per bit
  than the Jigsaw block-average layering, so at equal delivered bytes a DASH
  chunk looks *better* — the baselines do not lose because of coding
  efficiency.  We model SSIM as a function of bits per pixel with
  coefficients split by content richness, calibrated against published
  H.264 4K rate-distortion figures.
* **GoP fragility**: "the above codecs fail to decode subsequent frames if
  the current frame is not decoded" (Sec 4.3.4).  When a chunk misses its
  live deadline, the remaining frames of its GoP freeze at the last decoded
  frame; the quality of a frozen frame decays with the staleness gap, which
  we measure from the actual video (temporal SSIM decay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..types import Richness
from ..video.metrics import ssim
from ..video.synthetic import SyntheticVideo


@dataclass(frozen=True)
class RateQualityModel:
    """SSIM of a conventionally coded chunk as a function of bitrate.

    ``ssim(b) = ssim_max - k * bpp(b)^(-alpha)`` where ``bpp`` is bits per
    pixel per frame.  Defaults are calibrated so 4K30 at ~50 Mbps scores
    ~0.96 (HR) / ~0.99 (LR) and near-lossless rates approach 0.999.
    """

    richness: Richness
    pixels_per_frame: int
    fps: float = 30.0
    ssim_max: float = 0.975

    # (k, alpha) per richness.  The ceiling and slope reflect *live*
    # hardware 4K encoding: ~0.95 SSIM at 100 Mbps for rich content,
    # saturating toward ~0.97 at very high rates.
    _COEFF = {Richness.HIGH: (0.013, 0.5), Richness.LOW: (0.005, 0.5)}

    def ssim_at(self, bitrate_mbps: float) -> float:
        """Chunk SSIM when encoded at ``bitrate_mbps``."""
        if bitrate_mbps <= 0:
            return 0.0
        bpp = bitrate_mbps * 1e6 / (self.pixels_per_frame * self.fps)
        k, alpha = self._COEFF[self.richness]
        return float(np.clip(self.ssim_max - k * bpp ** (-alpha), 0.0, 1.0))

    def psnr_at(self, bitrate_mbps: float) -> float:
        """Rough PSNR companion (dB) via the usual SSIM correspondence."""
        quality = self.ssim_at(bitrate_mbps)
        return float(10.0 * np.log10(1.0 / max(1.0 - quality, 1e-5)) + 13.0)


@dataclass
class FreezeModel:
    """SSIM of displaying a stale frame, as a function of staleness.

    Measured from the actual video: ``ssim(frame_t, frame_{t+gap})`` decays
    with the gap; a player freezing on the last decoded frame scores exactly
    this against the reference.
    """

    gaps: np.ndarray
    values: np.ndarray

    @classmethod
    def from_video(
        cls,
        video: SyntheticVideo,
        max_gap: int = 16,
        sample_frames: int = 3,
    ) -> "FreezeModel":
        """Measure temporal SSIM decay on a video."""
        gaps = np.unique(
            np.concatenate([[1, 2, 4], np.linspace(8, max_gap, 3).astype(int)])
        )
        gaps = gaps[gaps < video.num_frames]
        if gaps.size == 0:
            raise ConfigurationError("video too short for a freeze model")
        starts = np.linspace(
            0, max(0, video.num_frames - int(gaps[-1]) - 1), sample_frames
        ).astype(int)
        values = []
        for gap in gaps:
            scores = [
                ssim(video.frame(int(s)), video.frame(int(s + gap)))
                for s in starts
                if s + gap < video.num_frames
            ]
            values.append(float(np.mean(scores)))
        return cls(gaps=gaps.astype(float), values=np.asarray(values))

    def ssim_at_gap(self, gap_frames: int) -> float:
        """SSIM of a frame frozen ``gap_frames`` ago."""
        if gap_frames <= 0:
            return 1.0
        return float(np.interp(gap_frames, self.gaps, self.values))


#: A realistic live-4K DASH encoding ladder (Mbps).  Standard codecs cannot
#: be live-encoded at WiGig line rates; aggressive hardware encoders top out
#: around a few hundred Mbps, which is why the MPC baselines plateau
#: slightly below the layered system when the channel is good (Fig 16a).
DASH_4K_LADDER_MBPS = (10.0, 16.0, 25.0, 40.0, 60.0, 100.0, 160.0, 250.0, 400.0)


@dataclass
class BitrateLadder:
    """The DASH encoding ladder the MPC baselines select from.

    Defaults to a realistic live-4K ladder; ``rate_scale`` shrinks the rungs
    together with the emulated link rates so the ladder-to-link ratio
    matches the 4K testbed.
    """

    rates_mbps: List[float] = field(
        default_factory=lambda: list(DASH_4K_LADDER_MBPS)
    )
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.rates_mbps:
            raise ConfigurationError("empty bitrate ladder")
        self.rates_mbps = sorted(float(r) / self.rate_scale for r in self.rates_mbps)

    def __len__(self) -> int:
        return len(self.rates_mbps)

    def highest_sustainable(self, throughput_mbps: float) -> float:
        """Largest rung at or below a throughput (lowest rung as floor)."""
        viable = [r for r in self.rates_mbps if r <= throughput_mbps]
        return viable[-1] if viable else self.rates_mbps[0]
