"""DASH/ABR baselines: Robust MPC and Fast MPC (Sec 4.3.4).

The paper compares against the two best-performing ABR algorithms for live
streaming: Robust MPC and Fast MPC.  Both run DASH-style *unicast* sessions
(each receiver gets a TDMA share of the link), pick chunk bitrates from a
ladder by optimizing a QoE objective over a small horizon, and use standard
codecs — so an undecodable chunk tail freezes the rest of its GoP, the
fragility the layered system avoids.
"""

from .abr import FreezeModel, RateQualityModel, BitrateLadder
from .mpc import FastMpc, RobustMpc, simulate_abr_session, AbrOutcome
from .session import AbrSession

__all__ = [
    "RateQualityModel",
    "FreezeModel",
    "BitrateLadder",
    "RobustMpc",
    "FastMpc",
    "simulate_abr_session",
    "AbrOutcome",
    "AbrSession",
]
