"""Seeded, declarative fault timelines.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent` windows —
*what* goes wrong, *when*, and *to whom* — decoupled from the injectors that
apply them.  Schedules are either written out explicitly (tests, targeted
chaos runs) or drawn from a :class:`~repro.faults.config.FaultConfig` by
:meth:`FaultSchedule.generate`, which uses Poisson arrivals from a seeded
generator so the same ``(config, duration, users)`` triple always produces
the same timeline: chaos runs are reproducible by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import validate_seed
from .config import FaultConfig

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule"]


class FaultKind(enum.Enum):
    """Every impairment the injection layer knows how to apply."""

    BLOCKAGE = "blockage"
    SNR_DIP = "snr_dip"
    ERASURE = "erasure"
    FEEDBACK_LOSS = "feedback_loss"
    BEACON_LOSS = "beacon_loss"
    LEAVE = "leave"
    JOIN = "join"


#: Kinds that describe a time window rather than an instantaneous edge.
_WINDOWED = frozenset(
    {
        FaultKind.BLOCKAGE,
        FaultKind.SNR_DIP,
        FaultKind.ERASURE,
        FaultKind.FEEDBACK_LOSS,
        FaultKind.BEACON_LOSS,
    }
)

#: Kinds that must name a specific user.
_PER_USER = frozenset({FaultKind.LEAVE, FaultKind.JOIN})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled impairment.

    Attributes:
        kind: What goes wrong.
        start_s: When the window opens (or, for churn, when the edge fires).
        duration_s: Window length; zero for the instantaneous churn kinds.
        user: Target user, or ``None`` for an all-user event.
        magnitude_db: RSS attenuation (blockage / SNR-dip kinds).
        probability: Erasure probability (erasure kind).
        ap: Target access point, or ``None`` for an every-AP event.  A
            human body blocks the LoS *to one AP*; the reflection-rich path
            to a differently-placed AP survives — per-AP blockage is what
            makes failover a scenario.  Single-AP schedules leave this
            ``None``, so existing timelines behave exactly as before.
    """

    kind: FaultKind
    start_s: float
    duration_s: float = 0.0
    user: Optional[int] = None
    magnitude_db: float = 0.0
    probability: float = 0.0
    ap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError(
                f"{self.kind.value} event start must be non-negative, "
                f"got {self.start_s}"
            )
        if self.duration_s < 0:
            raise ConfigurationError(
                f"{self.kind.value} event duration must be non-negative, "
                f"got {self.duration_s}"
            )
        if self.kind in _WINDOWED and self.duration_s <= 0:
            raise ConfigurationError(
                f"{self.kind.value} event needs a positive duration"
            )
        if self.kind in _PER_USER and self.user is None:
            raise ConfigurationError(
                f"{self.kind.value} event must name a user"
            )
        if self.magnitude_db < 0:
            raise ConfigurationError(
                f"magnitude_db must be non-negative, got {self.magnitude_db}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.ap is not None and self.ap < 0:
            raise ConfigurationError(f"ap must be None or >= 0, got {self.ap}")

    @property
    def end_s(self) -> float:
        """When the window closes."""
        return self.start_s + self.duration_s

    def active_at(self, now: float) -> bool:
        """Whether the window covers ``now`` (half-open ``[start, end)``)."""
        return self.start_s <= now < self.end_s

    def applies_to(self, user: int) -> bool:
        """Whether this event targets ``user`` (all-user events always do)."""
        return self.user is None or self.user == user

    def applies_to_ap(self, ap: Optional[int]) -> bool:
        """Whether this event reaches the link to AP ``ap``.

        An untagged event (``self.ap is None``) reaches every AP; an
        untagged *query* (``ap is None`` — the single-AP pipeline, which
        never names APs) means AP 0.
        """
        return self.ap is None or self.ap == (ap if ap is not None else 0)


@dataclass
class FaultSchedule:
    """An ordered fault timeline with the per-frame queries injectors need."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(
            self.events, key=lambda e: (e.start_s, e.kind.value, e.user or -1)
        )
        self._churn_by_user: Dict[int, List[FaultEvent]] = {}
        for event in self.events:
            if event.kind in _PER_USER:
                assert event.user is not None
                self._churn_by_user.setdefault(event.user, []).append(event)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------- queries

    def active(
        self, kind: FaultKind, now: float, user: Optional[int] = None
    ) -> List[FaultEvent]:
        """Events of ``kind`` whose window covers ``now`` (and ``user``)."""
        return [
            e
            for e in self.events
            if e.kind is kind
            and e.active_at(now)
            and (user is None or e.applies_to(user))
        ]

    def events_active_at(self, now: float) -> List[FaultEvent]:
        """Every windowed event covering ``now`` (for observability)."""
        return [e for e in self.events if e.kind in _WINDOWED and e.active_at(now)]

    def rss_offset_db(
        self, now: float, user: int, ap: Optional[int] = None
    ) -> float:
        """Signed RSS offset (dB, <= 0) applied to ``user`` at ``now``.

        Concurrent blockage bursts and SNR dips stack — two bodies in the
        LoS attenuate more than one.  ``ap`` scopes the query to one AP's
        link; ``None`` (the single-AP pipeline) means AP 0.
        """
        return -sum(
            e.magnitude_db
            for e in self.events
            if e.kind in (FaultKind.BLOCKAGE, FaultKind.SNR_DIP)
            and e.active_at(now)
            and e.applies_to(user)
            and e.applies_to_ap(ap)
        )

    def erasure_prob(self, now: float) -> float:
        """Combined erasure probability at ``now``.

        Overlapping bursts erase independently:
        ``1 - prod(1 - p_i)`` over the active bursts.
        """
        survive = 1.0
        for event in self.events:
            if event.kind is FaultKind.ERASURE and event.active_at(now):
                survive *= 1.0 - event.probability
        return 1.0 - survive

    def feedback_lost(self, now: float, user: int) -> bool:
        """Whether ``user``'s feedback report is lost at ``now``."""
        return any(
            e.active_at(now) and e.applies_to(user)
            for e in self.events
            if e.kind is FaultKind.FEEDBACK_LOSS
        )

    def beacon_lost(self, now: float) -> bool:
        """Whether a beacon (CSI + re-optimization) update is lost at ``now``."""
        return any(
            e.active_at(now)
            for e in self.events
            if e.kind is FaultKind.BEACON_LOSS
        )

    def active_users(self, users: Sequence[int], now: float) -> List[int]:
        """The subset of ``users`` present in the session at ``now``.

        Every user starts present; ``LEAVE``/``JOIN`` edges with
        ``start_s <= now`` toggle presence in start order (schedule a
        ``LEAVE`` at 0 plus a later ``JOIN`` to model a late joiner).
        """
        out = []
        for user in users:
            present = True
            for event in self._churn_by_user.get(user, ()):
                if event.start_s > now:
                    break
                present = event.kind is FaultKind.JOIN
            if present:
                out.append(user)
        return out

    # ---------------------------------------------------------- generation

    @classmethod
    def generate(
        cls,
        config: FaultConfig,
        duration_s: float,
        users: Sequence[int],
        extra_events: Iterable[FaultEvent] = (),
        n_aps: int = 1,
    ) -> "FaultSchedule":
        """Draw a concrete timeline from ``config``'s rates.

        Arrivals per axis are Poisson with the configured rate, start times
        uniform over ``[0, duration_s)``.  Draw order is fixed (axis by
        axis, users in sorted order), so a given ``(config, duration_s,
        users)`` triple is fully reproducible.

        With ``n_aps > 1``, blockage bursts are drawn independently per
        ``(user, AP)`` link — AP 0's bursts for every user are drawn first,
        in exactly the single-AP order, so the AP-0 timeline reuses the
        draws the single-AP schedule would — and each burst is tagged with
        the AP it crosses.  All other axes stay untagged
        (an SNR dip or erasure burst hits the room, not one link).
        ``n_aps == 1`` leaves every event untagged, matching earlier
        versions bit for bit.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"schedule duration must be positive, got {duration_s}"
            )
        if n_aps < 1:
            raise ConfigurationError(f"n_aps must be >= 1, got {n_aps}")
        rng = validate_seed(config.seed)
        ordered_users = sorted(users)
        events: List[FaultEvent] = list(extra_events)

        def starts(rate_hz: float) -> np.ndarray:
            count = int(rng.poisson(rate_hz * duration_s)) if rate_hz > 0 else 0
            return np.sort(rng.uniform(0.0, duration_s, size=count))

        # AP 0 first across every user — exactly the single-AP draw order —
        # then each extra AP's bursts, so the AP-0 timeline of a multi-AP
        # schedule replays the single-AP schedule's draws verbatim.
        for ap in range(n_aps):
            for user in ordered_users:
                for start in starts(config.blockage_rate_hz):
                    events.append(
                        FaultEvent(
                            FaultKind.BLOCKAGE, float(start),
                            config.blockage_duration_s, user=user,
                            magnitude_db=config.blockage_depth_db,
                            ap=ap if n_aps > 1 else None,
                        )
                    )
        for start in starts(config.snr_dip_rate_hz):
            events.append(
                FaultEvent(
                    FaultKind.SNR_DIP, float(start),
                    config.snr_dip_duration_s,
                    magnitude_db=config.snr_dip_depth_db,
                )
            )
        for start in starts(config.erasure_rate_hz):
            events.append(
                FaultEvent(
                    FaultKind.ERASURE, float(start),
                    config.erasure_duration_s,
                    probability=config.erasure_prob,
                )
            )
        for user in ordered_users:
            for start in starts(config.feedback_loss_rate_hz):
                events.append(
                    FaultEvent(
                        FaultKind.FEEDBACK_LOSS, float(start),
                        config.feedback_loss_duration_s, user=user,
                    )
                )
        for start in starts(config.beacon_loss_rate_hz):
            events.append(
                FaultEvent(
                    FaultKind.BEACON_LOSS, float(start),
                    config.beacon_loss_duration_s,
                )
            )
        for user in ordered_users:
            for start in starts(config.churn_rate_hz):
                events.append(
                    FaultEvent(FaultKind.LEAVE, float(start), user=user)
                )
                events.append(
                    FaultEvent(
                        FaultKind.JOIN,
                        float(start) + config.churn_downtime_s,
                        user=user,
                    )
                )
        return cls(events=events)

    def summary(self) -> Dict[str, int]:
        """Event counts per kind (for reports and the chaos CLI)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts
