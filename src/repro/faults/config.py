"""The ``faults`` configuration block: declarative fault-injection knobs.

:class:`FaultConfig` is embedded in :class:`repro.core.SystemConfig` and
describes *rates and shapes* of impairments, not concrete occurrences —
the concrete, seeded event timeline is drawn from it by
:meth:`repro.faults.schedule.FaultSchedule.generate`.  All rates default to
zero, so the default config injects nothing and the streaming pipeline is
bit-identical to a fault-free run.

The axes mirror the paper's hostile-60 GHz impairments:

* **blockage bursts** — deep per-user attenuation (walking blockers
  crossing the LoS, Sec 2.5),
* **SNR dips** — shallower, longer, all-user degradation (beam
  misalignment under mobility),
* **erasure bursts** — correlated packet loss independent of the channel
  (interference, firmware hiccups),
* **feedback loss** — per-user bandwidth reports that never arrive
  (Sec 4: lossy feedback on commodity QCA6320 radios),
* **beacon loss** — CSI/re-optimization beacons dropped at the AP, and
* **churn** — receivers leaving and rejoining mid-session.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FaultConfig:
    """Rates, durations and magnitudes of schedulable faults.

    Attributes:
        seed: Seed for drawing the concrete event timeline; the same seed
            (with the same duration and user set) always yields the same
            :class:`~repro.faults.schedule.FaultSchedule`.
        blockage_rate_hz: Per-user blockage-burst arrivals per second.
        blockage_duration_s: Length of one blockage burst.
        blockage_depth_db: Attenuation applied to the blocked user's RSS.
        snr_dip_rate_hz: All-user SNR-dip arrivals per second.
        snr_dip_duration_s: Length of one dip.
        snr_dip_depth_db: Attenuation applied to every user during a dip.
        erasure_rate_hz: Erasure-burst arrivals per second.
        erasure_duration_s: Length of one erasure burst.
        erasure_prob: Probability a packet inside a burst is erased.
        feedback_loss_rate_hz: Per-user feedback-outage arrivals per second.
        feedback_loss_duration_s: Length of one feedback outage.
        beacon_loss_rate_hz: Beacon-outage arrivals per second.
        beacon_loss_duration_s: Length of one beacon outage.
        churn_rate_hz: Per-user leave arrivals per second.
        churn_downtime_s: How long a departed receiver stays away before
            rejoining.
        max_beacon_retries: Graceful-degradation bound — consecutive frames
            the planner retries a lost beacon update before giving up until
            the next beacon boundary.
        stale_decay: Graceful-degradation knob — multiplicative decay
            applied to a receiver's last-known-good bandwidth estimate for
            every frame its feedback report is lost.
    """

    seed: int = 0
    blockage_rate_hz: float = 0.0
    blockage_duration_s: float = 0.12
    blockage_depth_db: float = 18.0
    snr_dip_rate_hz: float = 0.0
    snr_dip_duration_s: float = 0.4
    snr_dip_depth_db: float = 6.0
    erasure_rate_hz: float = 0.0
    erasure_duration_s: float = 0.05
    erasure_prob: float = 0.5
    feedback_loss_rate_hz: float = 0.0
    feedback_loss_duration_s: float = 0.2
    beacon_loss_rate_hz: float = 0.0
    beacon_loss_duration_s: float = 0.15
    churn_rate_hz: float = 0.0
    churn_downtime_s: float = 0.3
    max_beacon_retries: int = 3
    stale_decay: float = 0.9

    def __post_init__(self) -> None:
        for name in (
            "blockage_rate_hz", "snr_dip_rate_hz", "erasure_rate_hz",
            "feedback_loss_rate_hz", "beacon_loss_rate_hz", "churn_rate_hz",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got {getattr(self, name)}"
                )
        for name in (
            "blockage_duration_s", "snr_dip_duration_s", "erasure_duration_s",
            "feedback_loss_duration_s", "beacon_loss_duration_s",
            "churn_downtime_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        for name in ("blockage_depth_db", "snr_dip_depth_db"):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got {getattr(self, name)}"
                )
        if not 0.0 <= self.erasure_prob <= 1.0:
            raise ConfigurationError(
                f"erasure_prob must be in [0, 1], got {self.erasure_prob}"
            )
        if self.max_beacon_retries < 0:
            raise ConfigurationError(
                f"max_beacon_retries must be non-negative, "
                f"got {self.max_beacon_retries}"
            )
        if not 0.0 < self.stale_decay <= 1.0:
            raise ConfigurationError(
                f"stale_decay must be in (0, 1], got {self.stale_decay}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault axis has a non-zero arrival rate."""
        return any(
            getattr(self, name) > 0
            for name in (
                "blockage_rate_hz", "snr_dip_rate_hz", "erasure_rate_hz",
                "feedback_loss_rate_hz", "beacon_loss_rate_hz",
                "churn_rate_hz",
            )
        )
