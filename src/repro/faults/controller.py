"""Binds one :class:`FaultSchedule` to one running streaming session.

The controller is the single object the pipeline talks to: the session
calls :meth:`begin_frame` once per frame (which advances the fault clock,
resolves receiver membership and emits the ``fault.*`` observability
counters/events), and the stages/transmitter issue point queries against
the frozen per-frame clock.  Keeping the clock on the controller means the
transmitter and link wrapper see frame-time-accurate windows without
threading ``now`` through every call signature.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Tuple

from ..obs import OBS
from .config import FaultConfig
from .injectors import FaultedLinkModel
from .schedule import FaultEvent, FaultKind, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..transport.link import LinkModel

__all__ = ["FaultController", "ApScopedFaults"]


class FaultController:
    """Per-session fault state: a schedule, a frame clock, and OBS plumbing.

    Args:
        schedule: The concrete event timeline to apply.
        config: Graceful-degradation knobs (retry bounds, stale decay);
            defaults to a plain :class:`FaultConfig`.
    """

    def __init__(
        self, schedule: FaultSchedule, config: Optional[FaultConfig] = None
    ) -> None:
        self.schedule = schedule
        self.config = config if config is not None else FaultConfig()
        self.now: float = 0.0
        self.frame_index: int = -1
        self._has_attenuation = any(
            e.kind in (FaultKind.BLOCKAGE, FaultKind.SNR_DIP)
            for e in schedule.events
        )
        self._started: Set[int] = set()

    # ------------------------------------------------------------ per frame

    def begin_frame(
        self, frame_index: int, now: float, users: Sequence[int]
    ) -> List[int]:
        """Advance the fault clock to ``now`` and report active membership.

        Emits one ``fault.<kind>.active_frames`` count per active windowed
        event kind and frame, plus a ``fault.<kind>.events`` count (and a
        trace event carrying the window and target) the first frame each
        event is seen.
        """
        self.frame_index = frame_index
        self.now = now
        if OBS.mode:
            for event in self.schedule.events_active_at(now):
                kind = event.kind.value
                OBS.count(f"fault.{kind}.active_frames")
                event_id = id(event)
                if event_id not in self._started:
                    self._started.add(event_id)
                    OBS.count(f"fault.{kind}.events")
                    OBS.event(
                        f"fault.{kind}",
                        event.start_s,
                        event.end_s,
                        frame=frame_index,
                        user=event.user,
                        magnitude_db=event.magnitude_db,
                        probability=event.probability,
                    )
        return self.schedule.active_users(users, now)

    # -------------------------------------------------------------- queries

    def rss_offset_db(self, user: int, ap: Optional[int] = None) -> float:
        """Signed RSS offset for ``user`` at the current frame time.

        ``ap`` scopes the query to one AP's link; ``None`` (the single-AP
        pipeline) means AP 0.
        """
        return self.schedule.rss_offset_db(self.now, user, ap=ap)

    def erasure_scale(self) -> float:
        """Factor to multiply delivery probabilities by (1.0 = no erasure)."""
        return 1.0 - self.schedule.erasure_prob(self.now)

    def feedback_lost(self, user: int) -> bool:
        """Whether ``user``'s feedback report is lost this frame."""
        return self.schedule.feedback_lost(self.now, user)

    def beacon_lost(self) -> bool:
        """Whether the beacon update due this frame is lost."""
        return self.schedule.beacon_lost(self.now)

    def wrap_link(self, link: "LinkModel"):
        """``link`` seen through the active attenuation faults.

        Returns the original model untouched when the schedule contains no
        blockage/SNR-dip events at all, keeping the common path allocation-
        free.
        """
        if not self._has_attenuation:
            return link
        return FaultedLinkModel(link, self)

    def for_ap(self, ap: int) -> "ApScopedFaults":
        """This controller's queries scoped to AP ``ap``'s links.

        The scoped view shares the controller's frame clock and schedule;
        only the AP tag on attenuation queries changes.  The multi-AP
        transmitter hands each per-AP pass its own view so an AP-tagged
        blockage burst attenuates exactly one AP's links.
        """
        return ApScopedFaults(self, ap)

    # ------------------------------------------------------------- factory

    @classmethod
    def from_config(
        cls,
        config: FaultConfig,
        duration_s: float,
        users: Sequence[int],
        extra_events: Tuple[FaultEvent, ...] = (),
        n_aps: int = 1,
    ) -> "FaultController":
        """Generate the seeded schedule for ``config`` and bind it."""
        schedule = FaultSchedule.generate(
            config, duration_s, users, extra_events=extra_events, n_aps=n_aps
        )
        return cls(schedule, config)


class ApScopedFaults:
    """A :class:`FaultController` view pinned to one AP's links.

    Exposes the query surface the transmitter and feedback stages use
    (``rss_offset_db`` / ``erasure_scale`` / ``feedback_lost`` /
    ``beacon_lost`` / ``wrap_link``), delegating to the shared controller
    with the AP tag applied.  :class:`FaultedLinkModel` only ever calls
    ``rss_offset_db(user)``, so wrapping a link with this view scopes its
    attenuation per AP with no transmitter changes.
    """

    def __init__(self, controller: FaultController, ap: int) -> None:
        self.controller = controller
        self.ap = int(ap)

    def rss_offset_db(self, user: int) -> float:
        return self.controller.rss_offset_db(user, ap=self.ap)

    def erasure_scale(self) -> float:
        return self.controller.erasure_scale()

    def feedback_lost(self, user: int) -> bool:
        return self.controller.feedback_lost(user)

    def beacon_lost(self) -> bool:
        return self.controller.beacon_lost()

    def wrap_link(self, link: "LinkModel"):
        if not self.controller._has_attenuation:
            return link
        return FaultedLinkModel(link, self)
