"""Deterministic fault injection for the streaming pipeline.

Failure is a first-class, schedulable input to every session: a
:class:`FaultConfig` (the ``faults`` block of
:class:`repro.core.SystemConfig`) describes impairment rates; a seeded
:class:`FaultSchedule` turns them into a concrete, reproducible event
timeline; a :class:`FaultController` binds the timeline to one running
:class:`repro.core.pipeline.StreamSession` and exposes the point queries
the injectors consume — RSS attenuation for blockage bursts and SNR dips
(via :class:`FaultedLinkModel`), packet-erasure scaling in the
transmitter, per-user feedback loss, beacon loss, and receiver churn.

With all rates at zero (the default) nothing is injected and the pipeline
is bit-identical to a fault-free run; see ``DESIGN.md`` ("Fault model")
for the mapping from each injector to the paper's impairment.
"""

from .config import FaultConfig
from .controller import ApScopedFaults, FaultController
from .injectors import FaultedLinkModel
from .schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = [
    "FaultConfig",
    "FaultController",
    "ApScopedFaults",
    "FaultedLinkModel",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
]
