"""Injectors: apply scheduled faults to the pipeline's component seams.

Each injector wraps (or is consulted by) exactly one subsystem:

* :class:`FaultedLinkModel` wraps :class:`repro.transport.link.LinkModel`,
  attenuating per-user RSS during blockage bursts and SNR dips.
* The packet-erasure burst is applied by
  :class:`repro.transport.transmitter.FrameTransmitter` itself, scaling
  per-member delivery probabilities by
  :meth:`~repro.faults.controller.FaultController.erasure_scale`.
* Feedback loss, beacon loss and churn are consumed directly by the
  pipeline stages / strategies via the controller's boolean queries.

Injectors never draw randomness of their own: all stochasticity lives in
the seeded schedule (when it was *generated*) and in the streamer's own
packet-loss RNG, so fault runs stay exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

import numpy as np

from ..phy.mcs import McsEntry
from ..transport.link import LinkModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..phy.channel import ChannelState
    from .controller import FaultController

__all__ = ["FaultedLinkModel"]


@dataclass
class FaultedLinkModel:
    """A :class:`LinkModel` seen through the active blockage/SNR-dip faults.

    Delegates every delivery decision to the wrapped model with the
    controller's current per-user RSS offset applied; with no active
    attenuation events the offset is ``0.0`` and the wrapped model's
    answers are bit-identical.
    """

    inner: LinkModel
    controller: "FaultController"

    def delivery_probability(
        self,
        user: int,
        beam: np.ndarray,
        true_state: "ChannelState",
        mcs: McsEntry,
    ) -> float:
        """Delivery probability for one packet under the faulted channel."""
        return self.inner.delivery_probability(
            user, beam, true_state, mcs,
            rss_offset_db=self.controller.rss_offset_db(user),
        )

    def delivery_probabilities(
        self,
        users,
        beam: np.ndarray,
        true_state: "ChannelState",
        mcs: McsEntry,
    ) -> Dict[int, float]:
        """Delivery probability for several users under one beam/MCS."""
        return {
            u: self.delivery_probability(u, beam, true_state, mcs)
            for u in users
        }

    def delivery_probability_array(
        self,
        user_ids,
        beam: np.ndarray,
        true_state: "ChannelState",
        mcs: McsEntry,
    ) -> np.ndarray:
        """Cohort delivery probabilities under the faulted channel.

        Gathers the controller's per-user RSS offsets (pure schedule
        lookups, no randomness) and delegates to the wrapped model's array
        path, preserving bit-identity with the per-user delegation above.
        """
        users = list(user_ids)
        offsets = np.fromiter(
            (self.controller.rss_offset_db(u) for u in users),
            dtype=np.float64,
            count=len(users),
        )
        return self.inner.delivery_probability_array(
            users, beam, true_state, mcs, rss_offsets_db=offsets
        )
