"""The end-to-end multicast streamer (system workflow of Fig 3).

Per beacon interval (100 ms): fetch estimated CSI, compute multicast beams
and group rates, and re-optimize the time allocation (Problem 1).  Per video
frame (33 ms): fountain-encode the frame, map the allocation onto coding
units (Problem 4), transmit with leaky-bucket pacing and feedback-driven
makeup packets over the true channels, then decode at every receiver and
score SSIM/PSNR against the reference frame.

The ``No Update`` adaptation policy (Sec 4.3.4 baseline) computes beams,
rates and allocation once at t=0 and never adapts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..beamforming import GroupBeamPlanner, SectorCodebook
from ..errors import ConfigurationError
from ..obs import OBS
from ..fountain.block import FrameBlockEncoder, symbol_size_for
from ..phy.channel import ChannelModel
from ..phy.csi import CsiTrace
from ..quality.curves import FrameFeatureContext
from ..quality.dnn import DNNQualityModel
from ..scheduling import (
    AllocationResult,
    GroupEnumerator,
    TimeAllocationOptimizer,
    assign_coding_groups,
    round_robin_allocation,
)
from ..transport import BandwidthEstimator, FrameTransmitter, LinkModel
from ..types import (
    AdaptationPolicy,
    FrameStats,
    SchedulerKind,
    validate_seed,
)
from ..video.dataset import FrameQualityProbe
from ..video.jigsaw import JigsawCodec
from .config import SystemConfig


@dataclass
class StreamOutcome:
    """Everything a streaming session produced.

    Attributes:
        stats: One :class:`FrameStats` per (frame, user).
        mean_ssim: Mean SSIM over all frames and users.
        mean_psnr_db: Mean PSNR over all frames and users.
    """

    stats: List[FrameStats] = field(default_factory=list)

    @property
    def mean_ssim(self) -> float:
        if not self.stats:
            return float("nan")
        return float(np.mean([s.ssim for s in self.stats]))

    @property
    def mean_psnr_db(self) -> float:
        if not self.stats:
            return float("nan")
        return float(np.mean([s.psnr_db for s in self.stats]))

    def per_user_ssim(self) -> Dict[int, float]:
        """Mean SSIM per user."""
        users = sorted({s.user_id for s in self.stats})
        return {
            u: float(np.mean([s.ssim for s in self.stats if s.user_id == u]))
            for u in users
        }

    def ssim_series(self, user_id: int) -> List[float]:
        """Per-frame SSIM of one user, in frame order."""
        return [s.ssim for s in sorted(self.stats, key=lambda x: x.frame_index)
                if s.user_id == user_id]


@dataclass
class _SessionState:
    """Loop-carried planning state of one streaming session."""

    bw_estimators: Dict[int, BandwidthEstimator]
    allocation: Optional[AllocationResult] = None
    last_plan_time: float = -np.inf


class MulticastStreamer:
    """Runs the full system over a CSI trace.

    Args:
        config: System configuration.
        quality_model: Trained DNN Q(.) for the allocation optimizer.
        probes: Encoded reference frames (cycled to form the live stream);
            all receivers watch the same video, as in the paper.
        channel_model: The PHY the trace was recorded against (supplies the
            link budget for RSS computation).
        seed: Loss/noise randomness seed.
    """

    def __init__(
        self,
        config: SystemConfig,
        quality_model: DNNQualityModel,
        probes: Sequence[FrameQualityProbe],
        channel_model: ChannelModel,
        seed: Optional[int] = 0,
    ) -> None:
        if not probes:
            raise ConfigurationError("need at least one reference frame probe")
        self.config = config
        self.quality_model = quality_model
        self.probes = list(probes)
        self.channel_model = channel_model
        self.rng = validate_seed(seed)

        self.codec = JigsawCodec(config.height, config.width)
        structure = self.codec.structure
        for probe in self.probes:
            if probe.codec.structure != structure:
                raise ConfigurationError(
                    "probe resolution does not match the configured codec"
                )
        self.symbol_size = symbol_size_for(structure)

        array = channel_model.array
        self.codebook = SectorCodebook(
            array,
            num_beams=config.codebook_beams,
            num_wide_beams=config.codebook_wide_beams,
        )
        self.planner = GroupBeamPlanner(
            array,
            self.codebook,
            channel_model.budget,
            config.scheme,
            mcs_backoff_db=config.mcs_backoff_db,
        )
        self.enumerator = GroupEnumerator(
            self.planner,
            min_rate_mbps=config.min_group_rate_mbps,
            exhaustive_max_users=config.exhaustive_max_users,
            rate_scale=config.rate_scale,
        )
        self.optimizer = TimeAllocationOptimizer(
            quality_model,
            traffic_penalty_per_byte=config.traffic_penalty_per_byte,
            iterations=config.optimizer_iterations,
        )
        self.transmitter = FrameTransmitter(
            link=LinkModel(
                channel_model,
                associated_user=config.associated_user,
                mac_retries=config.mac_retries,
            ),
            rate_control=config.rate_control,
            source_coding=config.source_coding,
            max_feedback_rounds=config.max_feedback_rounds,
        )

    # ------------------------------------------------------------------ run

    def stream_trace(
        self, trace: CsiTrace, num_frames: Optional[int] = None
    ) -> StreamOutcome:
        """Stream ``num_frames`` frames over a recorded CSI trace."""
        config = self.config
        if num_frames is None:
            num_frames = int(trace.duration_s * config.fps)
        total_frames = int(num_frames)
        if total_frames <= 0:
            raise ConfigurationError(
                f"need at least one frame, got {total_frames}"
            )
        users = trace.user_ids()

        state = _SessionState(
            bw_estimators={u: BandwidthEstimator() for u in users}
        )
        outcome = StreamOutcome()

        for frame_idx in range(total_frames):
            with OBS.span("frame.stream", frame=frame_idx) as frame_span:
                self._stream_frame(
                    frame_idx, trace, users, state, outcome, frame_span
                )
        return outcome

    def _stream_frame(
        self,
        frame_idx: int,
        trace: CsiTrace,
        users: List[int],
        state: "_SessionState",
        outcome: StreamOutcome,
        frame_span,
    ) -> None:
        """Plan (at beacon boundaries), transmit and score one frame."""
        config = self.config
        now = frame_idx / config.fps
        # Consecutive frames within one beacon period come from the same
        # reference (real video content is temporally coherent); the
        # probe advances at beacon boundaries, in step with replanning.
        probe_idx = (frame_idx // config.frames_per_beacon) % len(self.probes)
        probe = self.probes[probe_idx]
        context = FrameFeatureContext.from_probe(probe)
        contexts = {u: context for u in users}

        beacon_due = now - state.last_plan_time >= config.beacon_interval_s - 1e-9
        if state.allocation is None:
            snapshot = trace.at_time(now)
            state.allocation = self._plan(snapshot.estimated_state, users, contexts)
            state.last_plan_time = now
        elif beacon_due:
            snapshot = trace.at_time(now)
            if config.adaptation is AdaptationPolicy.REALTIME_UPDATE:
                state.allocation = self._plan(
                    snapshot.estimated_state, users, contexts
                )
            elif config.no_update_beam_tracking:
                # "No Update" freezes the schedule, groups, MCS, time
                # allocation and the *optimized* beam weights at t=0 —
                # but 802.11ad NICs autonomously keep a codebook sector
                # aligned (mandatory beam tracking), so each group falls
                # back to the best predefined sector for its members.
                state.allocation = self._retrack_beams(
                    state.allocation, snapshot.estimated_state
                )
            state.last_plan_time = now

        allocation = state.allocation
        assert allocation is not None
        encoder = FrameBlockEncoder(frame_idx, probe.layered, self.symbol_size)
        assignments = assign_coding_groups(
            allocation.bytes_allocated,
            allocation.groups,
            self.codec.structure.sublayer_nbytes,
        )
        true_state = trace.at_time(now).true_state
        rate_limits = self._rate_limits(allocation, state.bw_estimators)
        result = self.transmitter.transmit(
            encoder,
            assignments,
            allocation.groups,
            true_state,
            config.frame_budget_s,
            self.rng,
            rate_limits_bytes_per_s=rate_limits,
        )
        deadline_met = result.airtime_s <= config.frame_budget_s + 1e-9
        for user in users:
            reception = result.receptions[user]
            masks = reception.decoder.sublayer_masks()
            quality, quality_db = probe.measure_masks(masks)
            outcome.stats.append(
                FrameStats(
                    frame_index=frame_idx,
                    user_id=user,
                    ssim=quality,
                    psnr_db=quality_db,
                    bytes_received_per_layer=tuple(
                        reception.decoder.bytes_received_per_layer()
                    ),
                    deadline_met=deadline_met,
                )
            )
            total = reception.packets_received + reception.packets_lost
            fraction = (
                reception.packets_received / total if total else 1.0
            )
            state.bw_estimators[user].observe_fraction(
                float(np.clip(fraction, 0.0, 1.0)), self.rng
            )
        if OBS.mode:
            OBS.count("frames.streamed")
            if not deadline_met:
                OBS.count("frames.deadline_missed")
            frame_span.set(
                users=len(users),
                groups=len(allocation.groups),
                packets_sent=result.packets_sent,
                airtime_s=result.airtime_s,
                feedback_rounds=result.feedback_rounds_used,
                deadline_met=deadline_met,
            )

    # ------------------------------------------------------------------ parts

    def _plan(
        self,
        estimated_state,
        users: List[int],
        contexts: Dict[int, FrameFeatureContext],
    ) -> AllocationResult:
        groups = self.enumerator.enumerate(estimated_state, users)
        if self.config.scheduler is SchedulerKind.ROUND_ROBIN:
            return round_robin_allocation(
                groups, contexts, self.config.plan_budget_s
            )
        return self.optimizer.optimize(groups, contexts, self.config.plan_budget_s)

    def _retrack_beams(self, allocation: AllocationResult, estimated_state):
        """Firmware-level sector re-alignment for the No-Update baseline.

        Replaces each group's (stale) beam with the best *predefined
        codebook sector* for its members — what the NIC's autonomous beam
        tracking maintains — without touching MCS, groups or allocation.
        """
        import numpy as _np

        new_groups = []
        for group in allocation.groups:
            try:
                channels = [
                    estimated_state.channels[u] for u in group.user_ids
                ]
                gains = self.codebook.gains_multi(list(channels))
                sector = self.codebook.beam(int(_np.argmax(gains.min(axis=1))))
                sector_gain = min(
                    self.channel_model.array.beam_gain(sector, h) for h in channels
                )
                frozen_gain = min(
                    self.channel_model.array.beam_gain(group.plan.beam, h)
                    for h in channels
                )
                # Firmware switches sectors only when the tracked sector
                # beats the currently configured beam.
                if sector_gain > frozen_gain:
                    new_groups.append(
                        dc_replace(group, plan=dc_replace(group.plan, beam=sector))
                    )
                else:
                    new_groups.append(group)
            except KeyError:
                new_groups.append(group)
        return AllocationResult(
            groups=new_groups,
            time_s=allocation.time_s,
            bytes_allocated=allocation.bytes_allocated,
            per_user_bytes=allocation.per_user_bytes,
            predicted_quality=allocation.predicted_quality,
        )

    def _rate_limits(
        self,
        allocation: AllocationResult,
        bw_estimators: Dict[int, BandwidthEstimator],
    ) -> Dict[int, float]:
        """Per-group pacing caps from the previous frame's receiver feedback."""
        limits: Dict[int, float] = {}
        for group in allocation.groups:
            fractions = [
                bw_estimators[u].estimate_bytes_per_s
                for u in group.user_ids
                if u in bw_estimators
                and bw_estimators[u].estimate_bytes_per_s is not None
            ]
            if fractions:
                # Estimates hold smoothed delivery fractions; the group's
                # sustainable goodput is fraction x nominal MCS goodput.
                limits[group.index] = float(min(fractions)) * group.rate_bytes_per_s
        return limits
