"""The end-to-end multicast streamer (system workflow of Fig 3).

:class:`MulticastStreamer` assembles the component bundle — codec,
codebook, beam planner, group enumerator, time-allocation optimizer and
transmitter — and streams traces by driving a
:class:`repro.core.pipeline.StreamSession` through the staged per-frame
pipeline.  Per beacon interval (100 ms) the session's ``Planner`` stage
re-optimizes (or, for the ``No Update`` baseline of Sec 4.3.4, applies the
configured :mod:`repro.core.policy` strategy); per video frame (33 ms) the
remaining stages fountain-encode, map the allocation onto coding units,
transmit with leaky-bucket pacing and feedback-driven makeup packets over
the true channels, then decode at every receiver and score SSIM/PSNR.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..beamforming import GroupBeamPlanner, SectorCodebook
from ..errors import ConfigurationError
from ..faults import FaultController
from ..fountain.block import symbol_size_for
from ..phy.channel import ChannelModel
from ..phy.csi import CsiTrace
from ..quality.curves import FrameFeatureContext
from ..quality.dnn import DNNQualityModel
from ..scheduling import (
    AllocationResult,
    GroupEnumerator,
    TimeAllocationOptimizer,
    round_robin_allocation,
)
from ..transport import (
    BandwidthTracker,
    CohortBandwidthEstimator,
    FrameTransmitter,
    LinkModel,
)
from ..transport.bandwidth import _CohortBandwidthView
from ..types import SchedulerKind, validate_seed
from ..video.dataset import FrameQualityProbe
from ..video.jigsaw import JigsawCodec
from .config import SystemConfig
from .pipeline import PipelineStage, StreamOutcome, StreamSession
from .policy import AdaptationStrategy

__all__ = ["MulticastStreamer", "StreamOutcome"]


def _cohort_estimator(
    bw_estimators: Dict[int, BandwidthTracker],
) -> Optional[CohortBandwidthEstimator]:
    """The shared cohort estimator if every entry is a view over it."""
    parent: Optional[CohortBandwidthEstimator] = None
    for estimator in bw_estimators.values():
        if not isinstance(estimator, _CohortBandwidthView):
            return None
        if parent is None:
            parent = estimator.parent
        elif estimator.parent is not parent:
            return None
    return parent


class MulticastStreamer:
    """Runs the full system over a CSI trace.

    Args:
        config: System configuration.
        quality_model: Trained DNN Q(.) for the allocation optimizer.
        probes: Encoded reference frames (cycled to form the live stream);
            all receivers watch the same video, as in the paper.
        channel_model: The PHY the trace was recorded against (supplies the
            link budget for RSS computation).
        seed: Loss/noise randomness seed.
    """

    def __init__(
        self,
        config: SystemConfig,
        quality_model: DNNQualityModel,
        probes: Sequence[FrameQualityProbe],
        channel_model: ChannelModel,
        seed: Optional[int] = 0,
    ) -> None:
        if not probes:
            raise ConfigurationError("need at least one reference frame probe")
        self.config = config
        self.quality_model = quality_model
        self.probes = list(probes)
        self.channel_model = channel_model
        self.rng = validate_seed(seed)

        self.codec = JigsawCodec(config.height, config.width)
        structure = self.codec.structure
        for probe in self.probes:
            if probe.codec.structure != structure:
                raise ConfigurationError(
                    "probe resolution does not match the configured codec"
                )
        self.symbol_size = symbol_size_for(structure)
        self.fountain_codec = config.fountain_codec

        array = channel_model.array
        self.codebook = SectorCodebook(
            array,
            num_beams=config.codebook_beams,
            num_wide_beams=config.codebook_wide_beams,
        )
        self.planner = GroupBeamPlanner(
            array,
            self.codebook,
            channel_model.budget,
            config.scheme,
            mcs_backoff_db=config.mcs_backoff_db,
        )
        self.enumerator = GroupEnumerator(
            self.planner,
            min_rate_mbps=config.min_group_rate_mbps,
            exhaustive_max_users=config.exhaustive_max_users,
            rate_scale=config.rate_scale,
            max_group_size=config.max_group_size,
        )
        self.optimizer = TimeAllocationOptimizer(
            quality_model,
            traffic_penalty_per_byte=config.traffic_penalty_per_byte,
            iterations=config.optimizer_iterations,
        )
        self.transmitter = FrameTransmitter(
            link=LinkModel(
                channel_model,
                associated_user=config.associated_user,
                mac_retries=config.mac_retries,
            ),
            rate_control=config.rate_control,
            source_coding=config.source_coding,
            max_feedback_rounds=config.max_feedback_rounds,
        )

    # ------------------------------------------------------------------ run

    def session(
        self,
        trace: CsiTrace,
        stages: Optional[Sequence[PipelineStage]] = None,
        strategy: Optional[AdaptationStrategy] = None,
        faults: Optional["FaultController"] = None,
    ) -> StreamSession:
        """A new staged session over ``trace`` (stage/strategy injectable)."""
        return StreamSession(
            self, trace, stages=stages, strategy=strategy, faults=faults
        )

    def stream_trace(
        self, trace: CsiTrace, num_frames: Optional[int] = None
    ) -> StreamOutcome:
        """Stream ``num_frames`` frames over a recorded CSI trace."""
        if num_frames is None:
            num_frames = int(trace.duration_s * self.config.fps)
        return self.session(trace).run(int(num_frames))

    # ------------------------------------------------------------------ parts

    def _plan(
        self,
        estimated_state,
        users: List[int],
        contexts: Dict[int, FrameFeatureContext],
    ) -> AllocationResult:
        groups = self.enumerator.enumerate(estimated_state, users)
        if self.config.scheduler is SchedulerKind.ROUND_ROBIN:
            return round_robin_allocation(
                groups, contexts, self.config.plan_budget_s
            )
        return self.optimizer.optimize(groups, contexts, self.config.plan_budget_s)

    def _rate_limits(
        self,
        allocation: AllocationResult,
        bw_estimators: Dict[int, BandwidthTracker],
    ) -> Dict[int, float]:
        """Per-group pacing caps from the previous frame's receiver feedback."""
        cohort = _cohort_estimator(bw_estimators)
        if cohort is not None:
            return self._rate_limits_cohort(allocation, bw_estimators, cohort)
        limits: Dict[int, float] = {}
        for group in allocation.groups:
            fractions = [
                bw_estimators[u].estimate_bytes_per_s
                for u in group.user_ids
                if u in bw_estimators
                and bw_estimators[u].estimate_bytes_per_s is not None
            ]
            if fractions:
                # Estimates hold smoothed delivery fractions; the group's
                # sustainable goodput is fraction x nominal MCS goodput.
                limits[group.index] = float(min(fractions)) * group.rate_bytes_per_s
        return limits

    @staticmethod
    def _rate_limits_cohort(
        allocation: AllocationResult,
        bw_estimators: Dict[int, BandwidthTracker],
        cohort: "CohortBandwidthEstimator",
    ) -> Dict[int, float]:
        """Array twin of :meth:`_rate_limits` over cohort estimator rows.

        ``numpy.min`` over float64 rows equals Python's ``min`` over the
        same floats bitwise, so the pacing caps match the per-user loop
        exactly.
        """
        estimates = cohort.estimates()
        has = cohort.has_estimate()
        limits: Dict[int, float] = {}
        for group in allocation.groups:
            rows = cohort.rows(
                [u for u in group.user_ids if u in bw_estimators]
            )
            rows = rows[has[rows]]
            if rows.size:
                limits[group.index] = (
                    float(estimates[rows].min()) * group.rate_bytes_per_s
                )
        return limits
