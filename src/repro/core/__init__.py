"""End-to-end live 4K multicast streaming system (paper Sec 3.1, Fig 3).

:class:`MulticastStreamer` runs the full per-frame pipeline on emulated
links: CSI fetch -> multicast beamforming -> group rates -> time-allocation
optimization -> fountain encoding -> packet scheduling -> paced transmission
with feedback/retransmission -> per-user decode -> SSIM/PSNR.

The per-frame loop itself is a staged session pipeline
(:mod:`repro.core.pipeline`): pluggable :class:`PipelineStage` objects
driven by a :class:`StreamSession`, with beacon-boundary adaptation
delegated to :mod:`repro.core.policy` strategies.
"""

from .config import SystemConfig
from .pipeline import (
    CodingGroupMapper,
    FeedbackUpdater,
    FrameContext,
    FrameEncoder,
    PipelineStage,
    Planner,
    Scorer,
    SessionState,
    StreamOutcome,
    StreamSession,
    Transmitter,
    default_stages,
)
from .multi_ap import (
    MultiApCodingGroupMapper,
    MultiApPlanner,
    MultiApTransmitter,
    multi_ap_stages,
)
from .policy import (
    AdaptationStrategy,
    BeamTrackingStrategy,
    FrozenStrategy,
    RealtimeUpdateStrategy,
    strategy_for,
)
from .streamer import MulticastStreamer

__all__ = [
    "SystemConfig",
    "MulticastStreamer",
    "StreamOutcome",
    "StreamSession",
    "SessionState",
    "FrameContext",
    "PipelineStage",
    "Planner",
    "FrameEncoder",
    "CodingGroupMapper",
    "Transmitter",
    "FeedbackUpdater",
    "Scorer",
    "default_stages",
    "MultiApPlanner",
    "MultiApCodingGroupMapper",
    "MultiApTransmitter",
    "multi_ap_stages",
    "AdaptationStrategy",
    "RealtimeUpdateStrategy",
    "BeamTrackingStrategy",
    "FrozenStrategy",
    "strategy_for",
]
