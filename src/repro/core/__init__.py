"""End-to-end live 4K multicast streaming system (paper Sec 3.1, Fig 3).

:class:`MulticastStreamer` runs the full per-frame pipeline on emulated
links: CSI fetch -> multicast beamforming -> group rates -> time-allocation
optimization -> fountain encoding -> packet scheduling -> paced transmission
with feedback/retransmission -> per-user decode -> SSIM/PSNR.
"""

from .config import SystemConfig
from .streamer import MulticastStreamer, StreamOutcome

__all__ = ["SystemConfig", "MulticastStreamer", "StreamOutcome"]
