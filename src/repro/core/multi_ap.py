"""Multi-AP session stages: association, per-AP planning, cross-AP repair.

With ``SystemConfig.topology.num_aps > 1`` the session swaps three stages
of the default pipeline for the AP-aware ones defined here (the
frame encoder, feedback and scoring stages are reused unchanged):

``MultiApPlanner`` — at each beacon boundary, re-associates every user to
its strongest AP (hysteresis-damped, optionally under seeded measurement
noise), then runs the existing single-AP planner once per AP over that
AP's estimated channels and associated users.  Each user is served by
exactly one *primary* AP; the best non-serving AP is recorded as the
user's repair *secondary*, with a singleton beam plan computed via the
batched gain path (:meth:`GroupBeamPlanner.plan_groups`).

``MultiApCodingGroupMapper`` — maps each AP's allocation onto coding
units independently (Problem 4 per AP).

``MultiApTransmitter`` — runs one per-user transmitter pass per AP (APs
transmit concurrently on separated beams, so frame airtime is the *max*
over APs, not the sum), then spends each secondary AP's leftover deadline
on **cross-AP coded repair**: fresh fountain symbols for its backup
users' still-undecoded scheduled units, drawn from the same per-unit
symbol streams, so the rateless decoder combines symbols from both APs
exactly as arXiv:1711.06154's network-coded multi-link streaming
predicts.  Per-AP blockage (``FaultEvent.ap``) attenuates only the
tagged AP's links, which is what turns a blocked LoS into a handover
plus repair — failover as an emergent scenario.

Sessions without a topology never construct any of this; the single-AP
pipeline is untouched and bit-identical to previous versions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..beamforming import BeamPlan
from ..errors import ConfigurationError
from ..fountain.block import CodingUnitId, FrameBlockEncoder as BlockEncoder
from ..obs import OBS
from ..scheduling import AllocationResult, assign_coding_groups
from ..scheduling.groups import CandidateGroup
from ..transport.association import ApAssociationPolicy
from ..transport.transmitter import (
    GROUP_SWITCH_OVERHEAD_S,
    HEADER_BYTES,
    TransmissionResult,
    UserReception,
)
from .pipeline import (
    FrameContext,
    FrameEncoder,
    FeedbackUpdater,
    PipelineStage,
    Scorer,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..phy.channel import ChannelState
    from ..scheduling.coding_groups import UnitAssignment
    from .pipeline import StreamSession

__all__ = [
    "MultiApPlanner",
    "MultiApCodingGroupMapper",
    "MultiApTransmitter",
    "multi_ap_stages",
]


class MultiApPlanner:
    """Associate users to APs, then plan each AP with the existing planner.

    Owns the session-lifetime :class:`ApAssociationPolicy` (handover
    hysteresis needs memory across beacons).  Beacon loss degrades the
    same way as the single-AP planner's bounded-retry path: allocations
    and association carry over frame by frame until the retry budget is
    spent, after which the stale plan is simply kept until the next
    beacon gets through (multi-AP sessions always replan from fresh CSI;
    the per-strategy fallbacks of the single-AP pipeline do not apply).
    """

    name = "plan"

    def __init__(self) -> None:
        self.policy: Optional[ApAssociationPolicy] = None
        self._ap_allocations: List[Optional[AllocationResult]] = []
        self._ap_users: List[List[int]] = []
        self._repair_plans: Dict[int, Tuple[int, BeamPlan]] = {}

    def _ensure_policy(self, session: "StreamSession") -> ApAssociationPolicy:
        if self.policy is None:
            topology = session.config.topology
            assert topology is not None
            self.policy = ApAssociationPolicy(
                n_aps=topology.num_aps,
                budget=session.streamer.channel_model.budget,
                hysteresis_db=topology.hysteresis_db,
                noise_db=topology.handover_noise_db,
                seed=topology.handover_seed,
            )
        return self.policy

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        state = session.state
        config = session.config
        beacon_due = (
            ctx.now - state.last_plan_time >= config.beacon_interval_s - 1e-9
        )
        membership_changed = (
            state.allocation is not None
            and state.planned_users is not None
            and tuple(ctx.users) != state.planned_users
        )
        must_plan = state.allocation is None or membership_changed
        if not must_plan and beacon_due:
            if session.faults is not None and session.faults.beacon_lost():
                state.beacon_retries += 1
                OBS.count("fault.beacon.lost")
                if state.beacon_retries > config.faults.max_beacon_retries:
                    OBS.count("fault.beacon.timeouts")
                    # Give up on this beacon: keep the stale plan and
                    # association, rearm for the next boundary.
                    state.last_plan_time = ctx.now
                    state.beacon_retries = 0
            else:
                must_plan = True
        if must_plan:
            self._replan(ctx, session)
            if membership_changed:
                OBS.count("fault.churn.replans")
        ctx.allocation = state.allocation
        ctx.ap_allocations = list(self._ap_allocations)
        ctx.ap_users = [list(users) for users in self._ap_users]
        ctx.association = dict(self.policy.serving) if self.policy else None
        ctx.repair_plans = dict(self._repair_plans)

    def _replan(self, ctx: FrameContext, session: "StreamSession") -> None:
        state = session.state
        config = session.config
        topology = config.topology
        assert topology is not None
        policy = self._ensure_policy(session)
        snapshot = session.trace.at_time(ctx.now)
        estimated = snapshot.estimated_state
        state.last_estimated_state = estimated
        policy.update(estimated, ctx.users, faults=session.faults)

        n_aps = topology.num_aps
        present = set(ctx.users)
        self._ap_allocations = []
        self._ap_users = []
        for ap in range(n_aps):
            users_ap = [u for u in policy.users_of(ap) if u in present]
            self._ap_users.append(users_ap)
            if users_ap:
                contexts = {u: ctx.feature_contexts[u] for u in users_ap}
                allocation = session.streamer._plan(
                    estimated.for_ap(ap), users_ap, contexts
                )
            else:
                allocation = None
            self._ap_allocations.append(allocation)
            if OBS.mode:
                OBS.set_gauge(f"core.multi_ap.ap.{ap}.users", len(users_ap))

        self._repair_plans = {}
        if topology.cross_ap_repair and config.source_coding:
            # Singleton repair beams per (secondary AP, backup user), gains
            # batched per AP through the stacked-matmul path.
            by_secondary: Dict[int, List[int]] = {}
            for user in sorted(present):
                secondary = policy.secondary(user)
                if secondary is not None:
                    by_secondary.setdefault(secondary, []).append(user)
            for ap in sorted(by_secondary):
                users_ap = by_secondary[ap]
                plans = session.streamer.planner.plan_groups(
                    estimated.for_ap(ap), [[u] for u in users_ap]
                )
                for user, plan in zip(users_ap, plans):
                    if plan.mcs is not None:
                        self._repair_plans[user] = (ap, plan)

        # The primary allocation (first AP actually serving someone) keeps
        # the single-AP bookkeeping fields meaningful.
        state.allocation = next(
            (a for a in self._ap_allocations if a is not None), None
        )
        if state.allocation is None:
            raise ConfigurationError(
                "association produced no servable AP for any user"
            )
        state.last_plan_time = ctx.now
        state.planned_users = tuple(ctx.users)
        state.beacon_retries = 0


class MultiApCodingGroupMapper:
    """Map every AP's time allocation onto coding units independently."""

    name = "map"

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        assert ctx.ap_allocations is not None
        nbytes = session.streamer.codec.structure.sublayer_nbytes
        ap_assignments: List[Optional[Sequence["UnitAssignment"]]] = [
            assign_coding_groups(a.bytes_allocated, a.groups, nbytes)
            if a is not None
            else None
            for a in ctx.ap_allocations
        ]
        ctx.ap_assignments = ap_assignments
        ctx.assignments = next(
            (x for x in ap_assignments if x is not None), None
        )


class MultiApTransmitter:
    """One per-user transmitter pass per AP, then cross-AP coded repair.

    APs run on separated boresights/beams, so their passes are concurrent:
    the frame's airtime is the maximum per-AP clock.  Each pass reuses the
    single-AP :class:`FrameTransmitter` verbatim over that AP's channel
    view and AP-scoped fault view, forced onto the per-user reception path
    (``allow_cohort=False``) because repair mutates individual decoders.
    """

    name = "transmit"

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        streamer = session.streamer
        config = session.config
        assert ctx.encoder is not None
        assert ctx.ap_allocations is not None and ctx.ap_assignments is not None
        assert ctx.ap_users is not None
        true_state = session.trace.at_time(ctx.now).true_state
        n_aps = config.num_aps
        if true_state.n_aps < n_aps:
            raise ConfigurationError(
                f"config asks for {n_aps} APs but the trace carries channels "
                f"for {true_state.n_aps}; record it with num_aps={n_aps}"
            )
        ctx.true_state = true_state
        budget_s = config.frame_budget_s

        receptions: Dict[int, UserReception] = {}
        ap_airtime = [0.0] * n_aps
        packets_sent = 0
        packets_dropped = 0
        rounds = 0
        rate_limits: Dict[int, float] = {}
        for ap in range(n_aps):
            allocation = ctx.ap_allocations[ap]
            assignments = ctx.ap_assignments[ap]
            users_ap = ctx.ap_users[ap]
            if allocation is None or assignments is None or not users_ap:
                continue
            limits = streamer._rate_limits(
                allocation, session.state.bw_estimators
            )
            rate_limits.update(limits)
            faults_ap = (
                session.faults.for_ap(ap) if session.faults is not None else None
            )
            result = streamer.transmitter.transmit(
                ctx.encoder,
                assignments,
                allocation.groups,
                true_state.for_ap(ap),
                budget_s,
                streamer.rng,
                rate_limits_bytes_per_s=limits,
                active_users=users_ap,
                faults=faults_ap,
                allow_cohort=False,
            )
            for user in users_ap:
                if user in result.receptions:
                    receptions[user] = result.receptions[user]
            ap_airtime[ap] = result.airtime_s
            packets_sent += result.packets_sent
            packets_dropped += result.packets_dropped_at_queue
            rounds = max(rounds, result.feedback_rounds_used)
        ctx.rate_limits = rate_limits

        repaired = self._cross_ap_repair(
            ctx, session, receptions, true_state, ap_airtime, budget_s
        )
        packets_sent += repaired

        airtime = max(ap_airtime) if ap_airtime else 0.0
        ctx.result = TransmissionResult(
            receptions=receptions,
            airtime_s=min(airtime, budget_s),
            packets_sent=packets_sent,
            packets_dropped_at_queue=packets_dropped,
            feedback_rounds_used=rounds,
            cohort=None,
        )
        ctx.deadline_met = airtime <= budget_s + 1e-9

    def _cross_ap_repair(
        self,
        ctx: FrameContext,
        session: "StreamSession",
        receptions: Dict[int, UserReception],
        true_state: "ChannelState",
        ap_airtime: List[float],
        budget_s: float,
    ) -> int:
        """Secondary APs top up their backup users' undecoded units.

        For every user with a viable repair plan, its secondary AP walks
        the units the user's *primary* AP scheduled this frame, computes
        the fountain deficit ``K - received``, and paces that many fresh
        symbols into the user's decoder until the AP's leftover deadline
        runs out.  Returns the number of repair packets put on the air;
        per-AP clocks in ``ap_airtime`` are advanced in place.
        """
        assert ctx.encoder is not None and ctx.repair_plans is not None
        if not ctx.repair_plans:
            return 0
        streamer = session.streamer
        config = session.config
        encoder = ctx.encoder
        k = encoder.symbols_per_unit()
        packet_bytes = encoder.symbol_size + HEADER_BYTES
        serving = ctx.association or {}
        sent = 0
        for user in sorted(ctx.repair_plans):
            ap, plan = ctx.repair_plans[user]
            reception = receptions.get(user)
            if reception is None or plan.mcs is None:
                continue
            units = self._scheduled_units(ctx, serving.get(user), encoder)
            if not units:
                continue
            remaining = budget_s - ap_airtime[ap]
            if remaining <= GROUP_SWITCH_OVERHEAD_S:
                continue
            faults_ap = (
                session.faults.for_ap(ap) if session.faults is not None else None
            )
            link = streamer.transmitter.link
            if faults_ap is not None:
                link = faults_ap.wrap_link(link)
            prob = link.delivery_probability(
                user, plan.beam, true_state.for_ap(ap), plan.mcs
            )
            if faults_ap is not None:
                scale = faults_ap.erasure_scale()
                if scale < 1.0:
                    prob *= scale
            rate = CandidateGroup(
                index=0, plan=plan, rate_scale=config.rate_scale
            ).rate_bytes_per_s
            symbol_airtime = packet_bytes / max(rate, 1e-6)
            clock = GROUP_SWITCH_OVERHEAD_S
            for unit in units:
                decoder = reception.decoder.unit_decoder(unit)
                deficit = k - decoder.received_count
                if deficit <= 0:
                    continue
                for symbol in encoder.next_symbols(unit, deficit):
                    if clock + symbol_airtime > remaining:
                        break
                    clock += symbol_airtime
                    sent += 1
                    if streamer.rng.random() < prob:
                        reception.decoder.ingest(symbol)
                        reception.packets_received += 1
                        reception.delivered_payload_bytes += len(symbol.payload)
                        if OBS.mode:
                            OBS.count("core.multi_ap.repair.delivered")
                    else:
                        reception.packets_lost += 1
                if clock + symbol_airtime > remaining:
                    break
            if clock > GROUP_SWITCH_OVERHEAD_S:
                ap_airtime[ap] += clock
                if OBS.mode:
                    OBS.count("core.multi_ap.repair.users")
        if sent and OBS.mode:
            OBS.count("core.multi_ap.repair.packets", sent)
        return sent

    @staticmethod
    def _scheduled_units(
        ctx: FrameContext, primary_ap: Optional[int], encoder: BlockEncoder
    ) -> List[CodingUnitId]:
        """Units the user's primary AP scheduled this frame, in plan order.

        Repair only tops up what was actually allocated airtime — an
        unscheduled enhancement sublayer was a planning decision, not a
        loss, and repairing it would hand secondary APs a bandwidth
        subsidy the 1-AP arm never had.
        """
        if primary_ap is None or ctx.ap_assignments is None:
            return []
        assignments = ctx.ap_assignments[primary_ap]
        if assignments is None:
            return []
        units: List[CodingUnitId] = []
        seen: Set[CodingUnitId] = set()
        for assignment in assignments:
            unit = CodingUnitId(
                encoder.frame_index, assignment.layer, assignment.sublayer
            )
            if unit not in seen:
                seen.add(unit)
                units.append(unit)
        return units


def multi_ap_stages() -> List[PipelineStage]:
    """The multi-AP per-frame loop (encoder/feedback/scorer reused)."""
    return [
        MultiApPlanner(),
        FrameEncoder(),
        MultiApCodingGroupMapper(),
        MultiApTransmitter(),
        FeedbackUpdater(),
        Scorer(),
    ]
