"""System-wide configuration for the multicast streaming pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import ConfigurationError
from ..faults.config import FaultConfig
from ..phy.topology import TopologyConfig, coerce_topology
from ..types import AdaptationPolicy, BeamformingScheme, SchedulerKind

#: True 4K pixel count; reduced-resolution emulation scales link rates by
#: the pixel ratio so the data-to-rate regime matches the paper's testbed.
_UHD_PIXELS = 3840 * 2160


@dataclass
class SystemConfig:
    """Every knob of the end-to-end system, with the paper's defaults.

    Attributes:
        height, width: Emulated frame resolution.  The codec and pipeline
            are resolution-agnostic; the default keeps decodes cheap while
            ``emulate_4k_load`` preserves 4K scheduling pressure.
        fps: Live frame rate (paper: 30).
        scheme: Beamforming scheme (the Sec 4.2.1 comparison axis).
        scheduler: Optimized (Problem 1) or round-robin.
        adaptation: Real-time update vs no-update (Sec 4.3.4 axis).
        rate_control: Leaky-bucket pacing on/off (Fig 9 axis).
        source_coding: Fountain coding on/off (Fig 10/14 axis).
        fountain_codec: Which rateless codec encodes coding units:
            ``"dense"`` (default, the golden-pinned random-linear code) or
            ``"precode"`` (RaptorQ-style LDPC+HDPC precode with
            inactivation decoding; same systematic wire framing, sparse
            repair symbols).  The default stays bit-identical to earlier
            versions.
        emulate_4k_load: Scale link rates down by the pixel ratio so reduced
            resolution behaves like 4K.
        num_elements, phase_bits: AP phased-array geometry.
        codebook_beams, codebook_wide_beams: Predefined-codebook layout.
        min_group_rate_mbps: Group pruning threshold (Sec 2.4).
        exhaustive_max_users: Exhaustive group enumeration limit.
        max_group_size: Cap on multicast group membership during candidate
            enumeration.  ``None`` (default) enumerates unbounded
            azimuth-contiguous windows, exactly as before; setting a cap
            bounds the candidate count to O(N x cap) so thousand-receiver
            cohort sweeps plan in linear time.
        optimizer_iterations: Problem-1 gradient steps.
        traffic_penalty_per_byte: The paper's lambda.
        max_feedback_rounds: Retransmission rounds per frame.
        associated_user: The one STA that is MAC-associated (Sec 3.2 pseudo
            multicast); others run in monitor mode.
        no_update_beam_tracking: When True (default) the No-Update baseline
            keeps a predefined codebook sector aligned per beacon — 802.11ad
            NICs perform this beam tracking autonomously in firmware — while
            MCS, groups, optimized beam weights and the time allocation stay
            frozen at t=0.  Set False to freeze beams entirely (ablation).
        mac_retries: MAC retransmissions for the associated STA.
        beacon_interval_s: ACO beacon (CSI + re-optimization) period.
        csi_error_std: Relative ACO CSI estimation error.
        faults: Fault-injection block (:class:`repro.faults.FaultConfig`).
            All rates default to zero, so the default config streams
            fault-free and bit-identically to earlier versions; a mapping
            is accepted and coerced (JSON/CLI-driven construction).
        topology: Optional multi-AP block
            (:class:`repro.phy.TopologyConfig`).  ``None`` (default) or
            ``num_aps == 1`` streams through the single-AP pipeline
            bit-identically to earlier versions; ``num_aps > 1`` enables
            AP association, handover and cross-AP coded repair.  A mapping
            is accepted and coerced.
    """

    height: int = 288
    width: int = 512
    fps: int = 30
    scheme: BeamformingScheme = BeamformingScheme.OPTIMIZED_MULTICAST
    scheduler: SchedulerKind = SchedulerKind.OPTIMIZED
    adaptation: AdaptationPolicy = AdaptationPolicy.REALTIME_UPDATE
    rate_control: bool = True
    source_coding: bool = True
    fountain_codec: str = "dense"
    emulate_4k_load: bool = True
    num_elements: int = 32
    phase_bits: int = 2
    codebook_beams: int = 16
    codebook_wide_beams: int = 8
    min_group_rate_mbps: float = 200.0
    exhaustive_max_users: int = 4
    max_group_size: Optional[int] = None
    optimizer_iterations: int = 120
    traffic_penalty_per_byte: float = 1e-9
    max_feedback_rounds: int = 2
    associated_user: int = 0
    mac_retries: int = 2
    beacon_interval_s: float = 0.1
    csi_error_std: float = 0.1
    mcs_backoff_db: float = 2.0
    retransmit_reserve: float = 0.15
    no_update_beam_tracking: bool = True
    faults: FaultConfig = field(default_factory=FaultConfig)
    topology: Optional[TopologyConfig] = None

    def __post_init__(self) -> None:
        if isinstance(self.faults, Mapping):
            self.faults = FaultConfig(**self.faults)
        self.topology = coerce_topology(self.topology)
        if self.height % 16 or self.width % 16:
            raise ConfigurationError(
                f"resolution must be multiples of 16, got {self.height}x{self.width}"
            )
        if self.fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {self.fps}")
        if self.beacon_interval_s <= 0:
            raise ConfigurationError(
                f"beacon interval must be positive, got {self.beacon_interval_s}"
            )
        if self.max_group_size is not None and self.max_group_size < 2:
            raise ConfigurationError(
                f"max_group_size must be at least 2, got {self.max_group_size}"
            )
        if self.fountain_codec not in ("dense", "precode"):
            raise ConfigurationError(
                "fountain_codec must be 'dense' or 'precode', got "
                f"{self.fountain_codec!r}"
            )
        if not 0.0 <= self.retransmit_reserve < 1.0:
            raise ConfigurationError(
                f"retransmit_reserve must be in [0, 1), got {self.retransmit_reserve}"
            )

    @property
    def frame_budget_s(self) -> float:
        """Per-frame transmission deadline, 1/FR."""
        return 1.0 / self.fps

    @property
    def plan_budget_s(self) -> float:
        """Airtime Problem 1 may schedule; the rest is kept in reserve for
        feedback-driven retransmissions ("feedbacks and all retransmissions
        should finish within 33 ms", Sec 2.6)."""
        return self.frame_budget_s * (1.0 - self.retransmit_reserve)

    @property
    def rate_scale(self) -> float:
        """Link-rate divisor for reduced-resolution emulation."""
        if not self.emulate_4k_load:
            return 1.0
        return _UHD_PIXELS / float(self.height * self.width)

    @property
    def frames_per_beacon(self) -> int:
        """Video frames between consecutive re-optimizations."""
        return max(1, int(round(self.beacon_interval_s * self.fps)))

    @property
    def num_aps(self) -> int:
        """Access points the configured topology asks for (1 when absent)."""
        return self.topology.num_aps if self.topology is not None else 1

    @property
    def multi_ap(self) -> bool:
        """Whether the multi-AP pipeline is active."""
        return self.num_aps > 1
