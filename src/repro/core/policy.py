"""Channel-adaptation strategies for the session pipeline (Sec 4.3.4).

The per-beacon branch of the old monolithic streamer — replan in real time,
keep only firmware beam tracking, or freeze everything at t=0 — lives here
as three small strategy objects behind one :class:`AdaptationStrategy`
interface.  The pipeline's ``Planner`` stage asks the session's strategy
for the allocation to use whenever a beacon boundary passes; the strategy
decides whether that means a fresh Problem-1 solve, a firmware sector
re-alignment, or nothing at all.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..scheduling import AllocationResult
from ..types import AdaptationPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..beamforming import SectorCodebook
    from ..phy.channel import ChannelModel
    from .config import SystemConfig
    from .pipeline import FrameContext, StreamSession


@runtime_checkable
class AdaptationStrategy(Protocol):
    """What a session does at each beacon boundary after the initial plan."""

    name: str

    def on_beacon(
        self,
        session: "StreamSession",
        ctx: "FrameContext",
        estimated_state,
    ) -> AllocationResult:
        """Return the allocation to carry forward from this beacon on."""
        ...

    def on_beacon_lost(
        self,
        session: "StreamSession",
        ctx: "FrameContext",
        stale_estimated_state,
    ) -> AllocationResult:
        """Graceful degradation once the beacon-retry budget is exhausted.

        Called with the *last successfully received* estimated state (or
        ``None`` when even the initial one is gone); must return the
        allocation to limp along with until the next beacon boundary.
        """
        ...


class RealtimeUpdateStrategy:
    """Re-solve beams, rates and the time allocation every beacon."""

    name = "realtime_update"

    def on_beacon(
        self, session: "StreamSession", ctx: "FrameContext", estimated_state
    ) -> AllocationResult:
        return session.streamer._plan(
            estimated_state, ctx.users, ctx.feature_contexts
        )

    def on_beacon_lost(
        self, session: "StreamSession", ctx: "FrameContext", stale_estimated_state
    ) -> AllocationResult:
        """Without fresh CSI there is nothing to re-solve against: keep the
        last-known-good allocation (rate-limit decay and feedback rounds
        still adapt the send rate underneath it)."""
        allocation = session.state.allocation
        assert allocation is not None
        return allocation


class BeamTrackingStrategy:
    """No Update, but with the NIC's autonomous sector tracking.

    "No Update" freezes the schedule, groups, MCS, time allocation and the
    *optimized* beam weights at t=0 — but 802.11ad NICs autonomously keep a
    codebook sector aligned (mandatory beam tracking), so each group falls
    back to the best predefined sector for its members.
    """

    name = "no_update"

    def on_beacon(
        self, session: "StreamSession", ctx: "FrameContext", estimated_state
    ) -> AllocationResult:
        allocation = session.state.allocation
        assert allocation is not None
        return self.retrack_beams(
            session.streamer.codebook,
            session.streamer.channel_model,
            allocation,
            estimated_state,
        )

    def on_beacon_lost(
        self, session: "StreamSession", ctx: "FrameContext", stale_estimated_state
    ) -> AllocationResult:
        """The NIC's sector tracking is local to the radios — it keeps
        running without AP-side beacons, so re-track against the freshest
        estimate we ever had (or keep everything if there is none)."""
        allocation = session.state.allocation
        assert allocation is not None
        if stale_estimated_state is None:
            return allocation
        return self.retrack_beams(
            session.streamer.codebook,
            session.streamer.channel_model,
            allocation,
            stale_estimated_state,
        )

    @staticmethod
    def retrack_beams(
        codebook: "SectorCodebook",
        channel_model: "ChannelModel",
        allocation: AllocationResult,
        estimated_state,
    ) -> AllocationResult:
        """Firmware-level sector re-alignment for the No-Update baseline.

        Replaces each group's (stale) beam with the best *predefined
        codebook sector* for its members — what the NIC's autonomous beam
        tracking maintains — without touching MCS, groups or allocation.
        """
        new_groups = []
        for group in allocation.groups:
            try:
                channels = [
                    estimated_state.channels[u] for u in group.user_ids
                ]
                gains = codebook.gains_multi(list(channels))
                sector = codebook.beam(int(np.argmax(gains.min(axis=1))))
                sector_gain = min(
                    channel_model.array.beam_gain(sector, h) for h in channels
                )
                frozen_gain = min(
                    channel_model.array.beam_gain(group.plan.beam, h)
                    for h in channels
                )
                # Firmware switches sectors only when the tracked sector
                # beats the currently configured beam.
                if sector_gain > frozen_gain:
                    new_groups.append(
                        dc_replace(group, plan=dc_replace(group.plan, beam=sector))
                    )
                else:
                    new_groups.append(group)
            except KeyError:
                new_groups.append(group)
        return AllocationResult(
            groups=new_groups,
            time_s=allocation.time_s,
            bytes_allocated=allocation.bytes_allocated,
            per_user_bytes=allocation.per_user_bytes,
            predicted_quality=allocation.predicted_quality,
        )


class FrozenStrategy:
    """No Update with beam tracking disabled: everything stays at t=0."""

    name = "no_update_frozen"

    def on_beacon(
        self, session: "StreamSession", ctx: "FrameContext", estimated_state
    ) -> AllocationResult:
        allocation = session.state.allocation
        assert allocation is not None
        return allocation

    def on_beacon_lost(
        self, session: "StreamSession", ctx: "FrameContext", stale_estimated_state
    ) -> AllocationResult:
        """Frozen is frozen: a lost beacon changes nothing."""
        allocation = session.state.allocation
        assert allocation is not None
        return allocation


def strategy_for(config: "SystemConfig") -> AdaptationStrategy:
    """The strategy object a config's adaptation knobs select."""
    if config.adaptation is AdaptationPolicy.REALTIME_UPDATE:
        return RealtimeUpdateStrategy()
    if config.no_update_beam_tracking:
        return BeamTrackingStrategy()
    return FrozenStrategy()
