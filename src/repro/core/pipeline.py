"""The staged per-frame session pipeline (system workflow of Fig 3).

The end-to-end per-frame control loop is an ordered list of small stages,
each implementing the :class:`PipelineStage` protocol and reading/writing
one shared :class:`FrameContext`:

``Planner`` -> ``FrameEncoder`` -> ``CodingGroupMapper`` -> ``Transmitter``
-> ``FeedbackUpdater`` -> ``Scorer``

:class:`StreamSession` owns the loop-carried state (bandwidth estimators,
the current allocation, the last plan time), walks the stages for every
frame, and emits the observability spans at stage boundaries.  Adaptation
policy — what happens at beacon boundaries — is delegated to a
:mod:`repro.core.policy` strategy, so new policies plug in without touching
the loop.  Custom stage lists and strategies can be injected per session,
which is how ablations, new baselines and future transports get their seams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..faults import FaultController
from ..fountain.block import FrameBlockEncoder
from ..obs import OBS
from ..perf.mode import seed_path_active
from ..quality.curves import FrameFeatureContext
from ..scheduling import AllocationResult, assign_coding_groups
from ..transport import (
    BandwidthEstimator,
    BandwidthTracker,
    CohortBandwidthEstimator,
)
from ..types import FrameStats, OutcomeStats
from ..video.jigsaw import SUBLAYER_COUNTS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..beamforming import BeamPlan
    from ..phy.csi import CsiTrace
    from ..scheduling.coding_groups import UnitAssignment
    from ..transport.transmitter import TransmissionResult
    from ..video.dataset import FrameQualityProbe
    from .config import SystemConfig
    from .policy import AdaptationStrategy
    from .streamer import MulticastStreamer


class StreamOutcome(OutcomeStats):
    """Everything a streaming session produced.

    Attributes:
        stats: One :class:`FrameStats` per (frame, user).
        mean_ssim: Mean SSIM over all frames and users.
        mean_psnr_db: Mean PSNR over all frames and users.
    """


@dataclass
class SessionState:
    """Loop-carried planning state of one streaming session.

    Attributes:
        bw_estimators: Per-user bandwidth feedback state.
        allocation: The allocation currently being streamed.
        last_plan_time: When the allocation was last (re)planned.
        planned_users: Membership the current allocation was planned for;
            a churn-induced mismatch forces a replan.
        beacon_retries: Consecutive frames the planner has retried a lost
            beacon update (bounded by ``faults.max_beacon_retries``).
        last_estimated_state: Freshest successfully received CSI estimate,
            for strategies degrading gracefully under beacon loss.
        feedback_staleness: Frames since the last feedback report arrived,
            per user currently inside a feedback outage.
    """

    bw_estimators: Dict[int, BandwidthTracker]
    allocation: Optional[AllocationResult] = None
    last_plan_time: float = -np.inf
    planned_users: Optional[Tuple[int, ...]] = None
    beacon_retries: int = 0
    last_estimated_state: Optional[object] = None
    feedback_staleness: Dict[int, int] = field(default_factory=dict)


@dataclass
class FrameContext:
    """Everything one frame accumulates on its way through the stages.

    Stages communicate exclusively through this object: each stage fills in
    the fields downstream stages consume, so a stage can be swapped out
    without the others noticing.
    """

    frame_index: int
    now: float
    users: List[int]
    probe: "FrameQualityProbe"
    feature_contexts: Dict[int, FrameFeatureContext]
    allocation: Optional[AllocationResult] = None
    encoder: Optional[FrameBlockEncoder] = None
    assignments: Optional[Sequence["UnitAssignment"]] = None
    true_state: Optional[object] = None
    rate_limits: Dict[int, float] = field(default_factory=dict)
    result: Optional["TransmissionResult"] = None
    deadline_met: bool = True
    span: Optional[object] = None
    # Multi-AP extensions (populated only by repro.core.multi_ap stages;
    # single-AP sessions leave them None).  Indexed by AP id where listed.
    ap_allocations: Optional[List[Optional[AllocationResult]]] = None
    ap_assignments: Optional[List[Optional[Sequence["UnitAssignment"]]]] = None
    ap_users: Optional[List[List[int]]] = None
    association: Optional[Dict[int, int]] = None
    repair_plans: Optional[Dict[int, Tuple[int, "BeamPlan"]]] = None


class PipelineStage(Protocol):
    """One step of the per-frame loop."""

    name: str

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        """Advance ``ctx``; loop-carried effects go through ``session``."""
        ...


class Planner:
    """Plan at t=0, then defer beacon-boundary decisions to the strategy.

    Under fault injection two extra paths open up: receiver churn forces an
    immediate replan for the new membership, and lost beacons are retried
    frame by frame (the allocation carries over) until either a beacon gets
    through or the bounded retry budget is exhausted — at which point the
    strategy's ``on_beacon_lost`` fallback runs on the stale estimate.
    """

    name = "plan"

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        state = session.state
        config = session.config
        beacon_due = (
            ctx.now - state.last_plan_time >= config.beacon_interval_s - 1e-9
        )
        membership_changed = (
            state.allocation is not None
            and state.planned_users is not None
            and tuple(ctx.users) != state.planned_users
        )
        if state.allocation is None or membership_changed:
            snapshot = session.trace.at_time(ctx.now)
            state.last_estimated_state = snapshot.estimated_state
            state.allocation = session.streamer._plan(
                snapshot.estimated_state, ctx.users, ctx.feature_contexts
            )
            state.last_plan_time = ctx.now
            state.planned_users = tuple(ctx.users)
            state.beacon_retries = 0
            if membership_changed:
                OBS.count("fault.churn.replans")
        elif beacon_due:
            if session.faults is not None and session.faults.beacon_lost():
                self._beacon_lost(ctx, session)
            else:
                snapshot = session.trace.at_time(ctx.now)
                state.last_estimated_state = snapshot.estimated_state
                state.allocation = session.strategy.on_beacon(
                    session, ctx, snapshot.estimated_state
                )
                state.last_plan_time = ctx.now
                state.beacon_retries = 0
        ctx.allocation = state.allocation

    @staticmethod
    def _beacon_lost(ctx: FrameContext, session: "StreamSession") -> None:
        """Bounded retry, then the strategy's graceful-degradation path.

        While retrying, ``last_plan_time`` is left alone so the update
        stays due and is re-attempted next frame; on timeout the session
        gives up until the next beacon boundary.
        """
        state = session.state
        state.beacon_retries += 1
        OBS.count("fault.beacon.lost")
        if state.beacon_retries > session.config.faults.max_beacon_retries:
            OBS.count("fault.beacon.timeouts")
            state.allocation = session.strategy.on_beacon_lost(
                session, ctx, state.last_estimated_state
            )
            state.last_plan_time = ctx.now
            state.beacon_retries = 0


class FrameEncoder:
    """Fountain-encode the frame's layered sublayers."""

    name = "encode"

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        ctx.encoder = FrameBlockEncoder(
            ctx.frame_index,
            ctx.probe.layered,
            session.streamer.symbol_size,
            codec=session.streamer.fountain_codec,
        )


class CodingGroupMapper:
    """Map the time allocation onto coding units (Problem 4)."""

    name = "map"

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        allocation = ctx.allocation
        assert allocation is not None
        ctx.assignments = assign_coding_groups(
            allocation.bytes_allocated,
            allocation.groups,
            session.streamer.codec.structure.sublayer_nbytes,
        )


class Transmitter:
    """Paced transmission with feedback rounds over the true channels."""

    name = "transmit"

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        streamer = session.streamer
        config = session.config
        allocation = ctx.allocation
        assert allocation is not None and ctx.encoder is not None
        assert ctx.assignments is not None
        ctx.true_state = session.trace.at_time(ctx.now).true_state
        ctx.rate_limits = streamer._rate_limits(
            allocation, session.state.bw_estimators
        )
        fault_kwargs = (
            {"active_users": ctx.users, "faults": session.faults}
            if session.faults is not None
            else {}
        )
        ctx.result = streamer.transmitter.transmit(
            ctx.encoder,
            ctx.assignments,
            allocation.groups,
            ctx.true_state,
            config.frame_budget_s,
            streamer.rng,
            rate_limits_bytes_per_s=ctx.rate_limits,
            **fault_kwargs,
        )
        ctx.deadline_met = (
            ctx.result.airtime_s <= config.frame_budget_s + 1e-9
        )


class FeedbackUpdater:
    """Fold each receiver's delivery fraction into its bandwidth estimate.

    Graceful degradation under injected feedback loss: a user whose report
    never arrives keeps its last-known-good estimate, exponentially decayed
    (``faults.stale_decay`` per silent frame), so a long outage steers the
    pacing rate conservatively instead of pinning it at the last healthy
    measurement.
    """

    name = "feedback"

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        assert ctx.result is not None
        cohort = ctx.result.cohort
        if cohort is not None and session.cohort_bw is not None:
            self._run_cohort(ctx, session, cohort)
            return
        faults = session.faults
        for user in ctx.users:
            if faults is not None:
                if faults.feedback_lost(user):
                    staleness = session.state.feedback_staleness
                    staleness[user] = staleness.get(user, 0) + 1
                    session.state.bw_estimators[user].decay(
                        session.config.faults.stale_decay
                    )
                    OBS.count("fault.feedback_loss.reports_lost")
                    OBS.set_gauge(
                        f"fault.feedback_loss.user.{user}.staleness",
                        staleness[user],
                    )
                    continue
                if session.state.feedback_staleness.pop(user, None):
                    OBS.count("fault.feedback_loss.recoveries")
            reception = ctx.result.receptions[user]
            total = reception.packets_received + reception.packets_lost
            fraction = (
                reception.packets_received / total if total else 1.0
            )
            session.state.bw_estimators[user].observe_fraction(
                float(np.clip(fraction, 0.0, 1.0)), session.streamer.rng
            )

    @staticmethod
    def _run_cohort(
        ctx: FrameContext, session: "StreamSession", cohort
    ) -> None:
        """Masked cohort feedback: one batched noise draw, array EWMA.

        Receivers inside a feedback outage decay as one masked operation;
        everyone else folds their delivery fraction in through a single
        ``observe_fraction_rows`` call whose noise draws land in the same
        rng-stream order as the per-user loop.
        """
        faults = session.faults
        estimator = session.cohort_bw
        assert estimator is not None
        staleness = session.state.feedback_staleness
        if faults is not None:
            reporting = []
            silent = []
            for user in ctx.users:
                if faults.feedback_lost(user):
                    silent.append(user)
                    staleness[user] = staleness.get(user, 0) + 1
                else:
                    reporting.append(user)
                    staleness.pop(user, None)
            if silent:
                estimator.decay_rows(
                    estimator.rows(silent), session.config.faults.stale_decay
                )
        else:
            reporting = list(ctx.users)
        if not reporting:
            return
        rows = cohort.member_rows(reporting)
        received = cohort.packets_received[rows]
        total = received + cohort.packets_lost[rows]
        fractions = np.where(total > 0, received / np.maximum(total, 1), 1.0)
        estimator.observe_fraction_rows(
            estimator.rows(reporting),
            np.clip(fractions, 0.0, 1.0),
            session.streamer.rng,
        )


class Scorer:
    """Decode at every receiver and score SSIM/PSNR against the reference."""

    name = "score"

    def run(self, ctx: FrameContext, session: "StreamSession") -> None:
        assert ctx.result is not None
        cohort = ctx.result.cohort
        if cohort is not None:
            self._run_cohort(ctx, session, cohort)
            return
        for user in ctx.users:
            reception = ctx.result.receptions[user]
            masks = reception.decoder.sublayer_masks()
            quality, quality_db = ctx.probe.measure_masks(masks)
            session.outcome.stats.append(
                FrameStats(
                    frame_index=ctx.frame_index,
                    user_id=user,
                    ssim=quality,
                    psnr_db=quality_db,
                    bytes_received_per_layer=tuple(
                        reception.decoder.bytes_received_per_layer()
                    ),
                    deadline_met=ctx.deadline_met,
                )
            )

    @staticmethod
    def _run_cohort(
        ctx: FrameContext, session: "StreamSession", cohort
    ) -> None:
        """Score from cohort arrays: quality is measured once per distinct
        decode pattern and broadcast to every receiver sharing it, and the
        frame's stats land as one columnar block."""
        rows = cohort.member_rows(ctx.users)
        matrices = cohort.decoded_matrices()
        signatures = np.concatenate(
            [matrix[rows] for matrix in matrices], axis=1
        )
        unique, inverse = np.unique(signatures, axis=0, return_inverse=True)
        bounds = np.cumsum([0] + list(SUBLAYER_COUNTS))
        quality = np.empty(unique.shape[0])
        quality_db = np.empty(unique.shape[0])
        for p, signature in enumerate(unique):
            masks = [
                signature[bounds[layer]:bounds[layer + 1]]
                for layer in range(len(SUBLAYER_COUNTS))
            ]
            quality[p], quality_db[p] = ctx.probe.measure_masks(masks)
        layer_bytes = cohort.bytes_per_layer_matrix()[rows]
        session.outcome.append_block(
            ctx.frame_index,
            list(ctx.users),
            quality[inverse],
            quality_db[inverse],
            layer_bytes,
            ctx.deadline_met,
        )


def default_stages() -> List[PipelineStage]:
    """The paper's per-frame loop as an ordered stage list."""
    return [
        Planner(),
        FrameEncoder(),
        CodingGroupMapper(),
        Transmitter(),
        FeedbackUpdater(),
        Scorer(),
    ]


class StreamSession:
    """Drives one streaming session's frames through the stage pipeline.

    Args:
        streamer: The component bundle (planner, codec, transmitter, rng)
            the stages draw from.
        trace: Recorded CSI trace to stream over.
        stages: Stage list override (default: :func:`default_stages`).
        strategy: Adaptation strategy override (default: derived from the
            streamer's config via :func:`repro.core.policy.strategy_for`).
        faults: Fault controller override.  When ``None`` and the config's
            ``faults`` block has any nonzero rate, a controller is generated
            from that block at :meth:`run` time (session duration is only
            known then); when ``None`` with faults disabled, every fault
            hook stays dormant and the session is bit-identical to the
            pre-fault pipeline.
    """

    def __init__(
        self,
        streamer: "MulticastStreamer",
        trace: "CsiTrace",
        stages: Optional[Sequence[PipelineStage]] = None,
        strategy: Optional["AdaptationStrategy"] = None,
        faults: Optional[FaultController] = None,
    ) -> None:
        from .policy import strategy_for

        self.streamer = streamer
        self.config: "SystemConfig" = streamer.config
        self.trace = trace
        self.users: List[int] = trace.user_ids()
        self.cohort_bw: Optional[CohortBandwidthEstimator]
        if seed_path_active():
            self.cohort_bw = None
            bw_estimators: Dict[int, BandwidthTracker] = {
                u: BandwidthEstimator() for u in self.users
            }
        else:
            # Optimized mode: one array-backed estimator for the whole
            # cohort; per-user access (joins/resets, strategies) goes
            # through scalar views over the same rows.
            self.cohort_bw = CohortBandwidthEstimator(self.users)
            bw_estimators = {u: self.cohort_bw.view(u) for u in self.users}
        self.state = SessionState(bw_estimators=bw_estimators)
        self.strategy = (
            strategy if strategy is not None else strategy_for(streamer.config)
        )
        if stages is not None:
            self.stages: List[PipelineStage] = list(stages)
        elif self.config.multi_ap:
            if trace.n_aps < self.config.num_aps:
                raise ConfigurationError(
                    f"config asks for {self.config.num_aps} APs but the "
                    f"trace carries channels for {trace.n_aps}; record it "
                    f"with num_aps={self.config.num_aps}"
                )
            from .multi_ap import multi_ap_stages

            self.stages = multi_ap_stages()
        else:
            self.stages = default_stages()
        self.faults = faults
        self._previous_active: Optional[Tuple[int, ...]] = None
        #: Full membership the trace was recorded for; external joins may
        #: only re-admit users the trace knows channels for.
        self.all_users: Tuple[int, ...] = tuple(self.users)
        self.outcome = StreamOutcome()

    def run(self, num_frames: int) -> StreamOutcome:
        """Stream ``num_frames`` frames and return the session outcome."""
        total_frames = self.begin(num_frames)
        for frame_index in range(total_frames):
            self.stream_frame(frame_index)
        return self.outcome

    def begin(self, num_frames: int) -> int:
        """Validate the frame budget and arm fault injection.

        External drivers (the service layer's broadcaster) call this once,
        then step frames individually via :meth:`stream_frame`;
        :meth:`run` is exactly ``begin`` + the loop.
        """
        total_frames = int(num_frames)
        if total_frames <= 0:
            raise ConfigurationError(
                f"need at least one frame, got {total_frames}"
            )
        self._ensure_faults(total_frames)
        return total_frames

    def stream_frame(self, frame_index: int) -> bool:
        """Drive one frame through the stages; False for an idle frame.

        A frame is idle when fault-injected churn (or external control-plane
        leaves) empties the membership: the frame clock still advances, but
        no stage runs and no stats land.
        """
        with OBS.span("frame.stream", frame=frame_index) as frame_span:
            if not self.users:
                OBS.count("session.membership.idle_frames")
                return False
            ctx = self.frame_context(frame_index)
            ctx.span = frame_span
            if self.faults is not None and not self._begin_frame_faults(
                ctx
            ):
                return False
            self._run_stages(ctx)
            self._finalize_frame(ctx, frame_span)
        return True

    # ---------------------------------------------- external membership

    def evict_user(self, user: int) -> bool:
        """Control-plane leave: drop ``user`` from the live membership.

        Mirrors the churn-fault leave path: the transmitter's cross-frame
        tallies for the receiver are evicted so a later rejoin starts from
        a clean slate.  Applied between frames (the caller must not invoke
        this mid-:meth:`stream_frame`).  Returns False when the user was
        not a member (idempotent; double-leaves are counted, not fatal).
        """
        if user not in self.users:
            OBS.count("session.membership.redundant_leaves")
            return False
        self.users.remove(user)
        self.streamer.transmitter.evict_user(user)
        OBS.count("session.membership.leaves")
        return True

    def rejoin_user(self, user: int) -> bool:
        """Control-plane (re)join: re-admit ``user`` to the membership.

        Mirrors the churn-fault rejoin path: the bandwidth estimator resets
        (a real re-association drops its measurement history) and any
        feedback-staleness record clears.  Membership keeps the trace's
        user ordering so results stay deterministic regardless of join
        order.  Unknown users (no channels in the trace) raise
        :class:`ConfigurationError`; re-joining a present member is a
        counted no-op.
        """
        if user not in self.all_users:
            raise ConfigurationError(
                f"user {user} is not part of this session's trace "
                f"(known users: {list(self.all_users)})"
            )
        if user in self.users:
            OBS.count("session.membership.redundant_joins")
            return False
        self.users.append(user)
        order = {u: i for i, u in enumerate(self.all_users)}
        self.users.sort(key=order.__getitem__)
        self.state.bw_estimators[user].reset()
        self.state.feedback_staleness.pop(user, None)
        OBS.count("session.membership.joins")
        return True

    def _ensure_faults(self, total_frames: int) -> None:
        """Instantiate the controller from the config's ``faults`` block."""
        if self.faults is None and self.config.faults.enabled:
            self.faults = FaultController.from_config(
                self.config.faults,
                total_frames / self.config.fps,
                self.users,
                n_aps=self.config.num_aps,
            )

    def _begin_frame_faults(self, ctx: FrameContext) -> bool:
        """Advance the fault clock and apply churn; False skips the frame.

        Membership edges (joins/leaves) are diffed against the previous
        frame: a leaving receiver's transmitter tallies are evicted (the
        churn-leak fix) and a rejoining receiver re-associates with a
        reset bandwidth estimator, exactly as a real re-association drops
        its measurement history.
        """
        assert self.faults is not None
        active = self.faults.begin_frame(ctx.frame_index, ctx.now, self.users)
        previous = (
            self._previous_active
            if self._previous_active is not None
            else tuple(self.users)
        )
        for user in sorted(set(previous) - set(active)):
            self.streamer.transmitter.evict_user(user)
            OBS.count("fault.churn.leaves")
        for user in sorted(set(active) - set(previous)):
            self.state.bw_estimators[user].reset()
            self.state.feedback_staleness.pop(user, None)
            OBS.count("fault.churn.joins")
        self._previous_active = tuple(active)
        if not active:
            OBS.count("fault.churn.idle_frames")
            return False
        ctx.users = list(active)
        ctx.feature_contexts = {
            u: c for u, c in ctx.feature_contexts.items() if u in active
        }
        return True

    def frame_context(self, frame_index: int) -> FrameContext:
        """The fresh per-frame context the stages will fill in.

        Consecutive frames within one beacon period come from the same
        reference (real video content is temporally coherent); the probe
        advances at beacon boundaries, in step with replanning.
        """
        config = self.config
        probes = self.streamer.probes
        probe = probes[
            (frame_index // config.frames_per_beacon) % len(probes)
        ]
        context = FrameFeatureContext.from_probe(probe)
        return FrameContext(
            frame_index=frame_index,
            now=frame_index / config.fps,
            users=self.users,
            probe=probe,
            feature_contexts={u: context for u in self.users},
        )

    def _run_stages(self, ctx: FrameContext) -> None:
        if OBS.mode:
            for stage in self.stages:
                with OBS.span(
                    f"frame.stage.{stage.name}", frame=ctx.frame_index
                ):
                    stage.run(ctx, self)
        else:
            for stage in self.stages:
                stage.run(ctx, self)

    def _finalize_frame(self, ctx: FrameContext, frame_span) -> None:
        if not OBS.mode:
            return
        OBS.count("frames.streamed")
        if not ctx.deadline_met:
            OBS.count("frames.deadline_missed")
        assert ctx.allocation is not None and ctx.result is not None
        frame_span.set(
            users=len(ctx.users),
            groups=len(ctx.allocation.groups),
            packets_sent=ctx.result.packets_sent,
            airtime_s=ctx.result.airtime_s,
            feedback_rounds=ctx.result.feedback_rounds_used,
            deadline_met=ctx.deadline_met,
        )
