"""Predefined sector codebooks (802.11ad SLS beams, Sec 2.5).

Commodity WiGig radios ship a fixed codebook of at most K = 128 beams whose
radiation patterns jointly cover the azimuth plane; beam training picks one
by sweeping.  We build the standard quantised-steering-vector codebook: beam
``k`` points at a fixed azimuth, with the array's M-bit phase shifters
applied — so, exactly like the hardware, the best codebook beam for a user is
generally *not* the optimal beam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import BeamformingError
from ..phy.antenna import PhasedArray


@dataclass
class SectorCodebook:
    """A fixed set of quantised steering beams covering the azimuth plane.

    Real 802.11ad codebooks mix narrow sectors (full array, high gain) with a
    few wide sectors (a subset of elements active, broader pattern, lower
    gain) used for discovery; the wide ones are what lets a *pre-defined*
    multicast beam cover several spread users at all.

    Attributes:
        array: The phased array the beams are realised on.
        num_beams: Number of narrow sectors (total size incl. wide beams is
            capped at the 128-beam hardware limit).
        coverage_rad: Half-angle of azimuth coverage; beams are placed
            uniformly in ``[-coverage, +coverage]``.
        num_wide_beams: Wide sectors built on the central quarter of the
            array (0 disables them).
    """

    array: PhasedArray
    num_beams: int = 32
    coverage_rad: float = float(np.deg2rad(75.0))
    num_wide_beams: int = 8
    _beams: np.ndarray = field(init=False, repr=False)
    _angles: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_beams < 1 or self.num_wide_beams < 0:
            raise BeamformingError(
                f"bad codebook sizes: {self.num_beams} narrow, "
                f"{self.num_wide_beams} wide"
            )
        if self.num_beams + self.num_wide_beams > 128:
            raise BeamformingError(
                f"codebook exceeds the 128-beam hardware limit: "
                f"{self.num_beams} + {self.num_wide_beams}"
            )
        narrow_angles = np.linspace(
            -self.coverage_rad, self.coverage_rad, self.num_beams
        )
        beams = []
        for angle in narrow_angles:
            steering = self.array.steering_vector(float(angle))
            # The hardware beam points where the steering phases cancel:
            # F = steering / sqrt(N) makes vdot(F, steering) = sqrt(N)*N.
            beams.append(self.array.quantise_weights(steering))
        # Wide sectors come in tiers: quarter-array beams, eighth-array
        # beams, and one near-omni sector — mirroring the multi-resolution
        # (discovery) sectors of real 802.11ad codebooks.
        wide_angle_list = []
        if self.num_wide_beams:
            tier1 = np.linspace(
                -self.coverage_rad, self.coverage_rad, self.num_wide_beams
            )
            for angle in tier1:
                beams.append(self._wide_beam(float(angle), self.array.num_elements // 4))
                wide_angle_list.append(float(angle))
            tier2 = np.linspace(
                -self.coverage_rad / 2, self.coverage_rad / 2,
                max(2, self.num_wide_beams // 2),
            )
            for angle in tier2:
                beams.append(self._wide_beam(float(angle), self.array.num_elements // 8))
                wide_angle_list.append(float(angle))
            beams.append(self._wide_beam(0.0, max(1, self.array.num_elements // 16)))
            wide_angle_list.append(0.0)
        self._angles = np.concatenate([narrow_angles, np.asarray(wide_angle_list)])
        self._beams = np.vstack(beams)
        self.num_beams = len(beams)

    def _wide_beam(self, angle: float, active: int) -> np.ndarray:
        """A broad sector realised on a centred subset of elements."""
        n = self.array.num_elements
        active = max(1, min(active, n))
        start = (n - active) // 2
        steering = self.array.steering_vector(angle)
        weights = np.zeros(n, dtype=complex)
        levels = 2**self.array.phase_bits
        step = 2.0 * np.pi / levels
        phases = np.round(np.angle(steering[start : start + active]) / step) * step
        weights[start : start + active] = np.exp(1j * phases)
        return weights / np.linalg.norm(weights)

    def __len__(self) -> int:
        return self.num_beams

    @property
    def beams(self) -> np.ndarray:
        """All beams as a ``(K, Nt)`` complex matrix (rows have unit norm)."""
        return self._beams

    def beam(self, index: int) -> np.ndarray:
        """Beam ``index`` as a length-``Nt`` vector."""
        if not 0 <= index < self.num_beams:
            raise BeamformingError(f"beam index {index} out of range [0, {self.num_beams})")
        return self._beams[index]

    def beam_angle_rad(self, index: int) -> float:
        """Pointing azimuth of beam ``index``."""
        if not 0 <= index < self.num_beams:
            raise BeamformingError(f"beam index {index} out of range [0, {self.num_beams})")
        return float(self._angles[index])

    def gains(self, channel: np.ndarray) -> np.ndarray:
        """``|F_k^H h|^2`` for every beam k against one channel vector."""
        channel = np.asarray(channel, dtype=complex)
        if channel.shape != (self.array.num_elements,):
            raise BeamformingError(
                f"channel must have shape ({self.array.num_elements},), "
                f"got {channel.shape}"
            )
        return np.abs(self._beams.conj() @ channel) ** 2

    def gains_multi(self, channels: List[np.ndarray]) -> np.ndarray:
        """Per-beam, per-user gains as a ``(K, n_users)`` matrix."""
        stacked = np.vstack([np.asarray(h, dtype=complex) for h in channels])
        return np.abs(self._beams.conj() @ stacked.T) ** 2
