"""Beam-pattern analysis: gain cuts, beamwidth, sidelobes, coverage.

Analysis utilities for inspecting what the beamforming stack actually
radiates — the multi-lobe patterns of optimized multicast beams (Sec 4.2.1:
"(i) generates multi-lobe beam pattern that covers multiple users at the
same time") versus single-lobe sectors.  Used by tests, the ablation
benchmarks, and the beam-pattern example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import BeamformingError
from ..phy.antenna import PhasedArray


def pattern_cut(
    array: PhasedArray,
    beam: np.ndarray,
    azimuths_rad: Sequence[float] = None,
    num_points: int = 361,
) -> Tuple[np.ndarray, np.ndarray]:
    """Azimuth gain cut ``|F^H e(az)|^2`` of a beam.

    Returns:
        ``(azimuths_rad, gains_linear)`` where gains are relative to an
        isotropic unit-amplitude plane wave (max ~ num_elements for a
        matched full-array beam).
    """
    beam = np.asarray(beam, dtype=complex)
    if beam.shape != (array.num_elements,):
        raise BeamformingError(
            f"beam must have shape ({array.num_elements},), got {beam.shape}"
        )
    if azimuths_rad is None:
        azimuths_rad = np.linspace(-np.pi / 2, np.pi / 2, num_points)
    azimuths = np.asarray(azimuths_rad, dtype=float)
    gains = np.array(
        [
            float(np.abs(np.vdot(beam, array.steering_vector(az))) ** 2)
            for az in azimuths
        ]
    )
    return azimuths, gains


@dataclass(frozen=True)
class PatternStats:
    """Summary of one beam pattern.

    Attributes:
        peak_gain_db: Peak gain over the cut, in dB.
        peak_azimuth_rad: Azimuth of the peak.
        beamwidth_rad: -3 dB width of the main lobe.
        sidelobe_level_db: Highest lobe outside the main lobe, relative to
            the peak (negative; closer to 0 = worse).
        num_lobes: Local maxima within 10 dB of the peak — multicast beams
            to spread users show several.
    """

    peak_gain_db: float
    peak_azimuth_rad: float
    beamwidth_rad: float
    sidelobe_level_db: float
    num_lobes: int


def analyze_pattern(
    array: PhasedArray, beam: np.ndarray, num_points: int = 721
) -> PatternStats:
    """Compute :class:`PatternStats` for one beam."""
    azimuths, gains = pattern_cut(array, beam, num_points=num_points)
    peak_idx = int(np.argmax(gains))
    peak = float(gains[peak_idx])
    if peak <= 0:
        raise BeamformingError("beam has no gain anywhere")

    half_power = peak / 2.0
    left = peak_idx
    while left > 0 and gains[left] >= half_power:
        left -= 1
    right = peak_idx
    while right < len(gains) - 1 and gains[right] >= half_power:
        right += 1
    beamwidth = float(azimuths[right] - azimuths[left])

    # Local maxima (lobes).
    interior = np.arange(1, len(gains) - 1)
    is_peak = (gains[interior] >= gains[interior - 1]) & (
        gains[interior] >= gains[interior + 1]
    )
    lobe_indices = interior[is_peak]
    strong_lobes = lobe_indices[gains[lobe_indices] >= peak / 10.0]

    sidelobes = [
        float(gains[i]) for i in lobe_indices
        if not (left <= i <= right) and gains[i] > 0
    ]
    sidelobe_db = (
        10 * np.log10(max(sidelobes) / peak) if sidelobes else -np.inf
    )
    return PatternStats(
        peak_gain_db=float(10 * np.log10(peak)),
        peak_azimuth_rad=float(azimuths[peak_idx]),
        beamwidth_rad=beamwidth,
        sidelobe_level_db=float(sidelobe_db),
        num_lobes=int(len(strong_lobes)),
    )


def coverage_fraction(
    array: PhasedArray,
    beam: np.ndarray,
    threshold_db_below_peak: float = 6.0,
    num_points: int = 361,
) -> float:
    """Fraction of the azimuth cut within ``threshold`` dB of the peak.

    Wide (discovery) sectors cover much more than pencil beams; multicast
    beams sit in between.
    """
    _, gains = pattern_cut(array, beam, num_points=num_points)
    peak = gains.max()
    if peak <= 0:
        return 0.0
    return float(np.mean(gains >= peak * 10 ** (-threshold_db_below_peak / 10)))


def ascii_pattern(
    array: PhasedArray,
    beam: np.ndarray,
    width: int = 72,
    floor_db: float = -25.0,
) -> List[str]:
    """Render a beam pattern as ASCII art rows (for CLI/examples)."""
    azimuths, gains = pattern_cut(array, beam, num_points=width)
    peak = gains.max()
    blocks = " .:-=+*#%@"
    row = []
    for gain in gains:
        level_db = 10 * np.log10(max(gain, 1e-12) / peak)
        scaled = (level_db - floor_db) / (0.0 - floor_db)
        index = int(np.clip(scaled, 0, 1) * (len(blocks) - 1))
        row.append(blocks[index])
    degrees_left = np.rad2deg(azimuths[0])
    degrees_right = np.rad2deg(azimuths[-1])
    return [
        "".join(row),
        f"{degrees_left:+.0f}°" + " " * (width - 10) + f"{degrees_right:+.0f}°",
    ]
