"""Beamforming: predefined codebooks, SLS, CSI-optimized unicast/multicast.

Implements the four schemes compared throughout the paper's evaluation
(Sec 4.2.1):

* optimized multicast beamforming — SVD max-sum heuristic for the NP-hard
  max-min problem of Eq. 3,
* pre-defined multicast beam — best single codebook sector for the group,
* optimized unicast beamforming — quantised conjugate beam per user,
* pre-defined unicast beam — best codebook sector per user (plain SLS).
"""

from .codebook import SectorCodebook
from .multicast import (
    max_min_gain,
    max_min_gain_batch,
    max_min_multicast_beam,
    per_user_gains,
    per_user_gains_batch,
    svd_multicast_beam,
)
from .sls import sector_sweep
from .selection import BeamPlan, GroupBeamPlanner

__all__ = [
    "SectorCodebook",
    "sector_sweep",
    "svd_multicast_beam",
    "max_min_multicast_beam",
    "max_min_gain",
    "max_min_gain_batch",
    "per_user_gains",
    "per_user_gains_batch",
    "GroupBeamPlanner",
    "BeamPlan",
]
