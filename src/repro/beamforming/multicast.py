"""CSI-based multicast beamforming (Sec 2.5, Eq. 3).

The exact problem — maximise the minimum RSS over a group of receivers — is
NP-hard.  The paper solves the max-*sum* relaxation with an SVD (the beam is
the leading right singular vector of the stacked channel matrix) as a
heuristic.  We implement that heuristic (:func:`svd_multicast_beam`) and use
it to seed a short smoothed max-min refinement
(:func:`max_min_multicast_beam`): projected gradient ascent on a soft-min of
the per-user gains over *power-normalised* channels.  The refinement is
needed in practice because plain max-sum degenerates onto the strongest
user whenever user channels are near-orthogonal (widely spaced users), which
the 2-bit phase quantisation then amplifies; with it, the optimized multicast
beam consistently dominates the predefined-codebook beam, matching the
paper's measurements (Fig 5-7, 11-13).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import BeamformingError
from ..phy.antenna import PhasedArray


def _stack(channels: Sequence[np.ndarray], num_elements: int) -> np.ndarray:
    if not len(channels):
        raise BeamformingError("need at least one channel vector")
    stacked = np.vstack([np.asarray(h, dtype=complex) for h in channels])
    if stacked.shape[1] != num_elements:
        raise BeamformingError(
            f"channels must have {num_elements} elements, got {stacked.shape[1]}"
        )
    norms = np.linalg.norm(stacked, axis=1)
    if np.any(norms <= 0):
        raise BeamformingError("cannot beamform on an all-zero channel")
    return stacked


def _weighted_max_sum_beam(stacked: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Beam maximising ``sum_i w_i |h_i^H F|^2`` (unquantised, unit norm).

    With ``A = diag(sqrt(w)) conj(H)`` (rows ``h_i^H``), the objective is
    ``||A F||^2``; its maximiser over unit-norm F is the leading right
    singular vector of A, i.e. ``vh[0].conj()`` in numpy's SVD convention.
    """
    weighted = np.sqrt(weights)[:, None] * np.conj(stacked)
    _, _, vh = np.linalg.svd(weighted, full_matrices=False)
    return vh[0].conj()


def svd_multicast_beam(
    array: PhasedArray, channels: Sequence[np.ndarray]
) -> np.ndarray:
    """The paper's plain SVD max-sum heuristic, quantised for the hardware."""
    stacked = _stack(channels, array.num_elements)
    normalised = stacked / np.linalg.norm(stacked, axis=1, keepdims=True)
    beam = _weighted_max_sum_beam(normalised, np.ones(stacked.shape[0]))
    return array.quantise_weights(beam)


def max_min_multicast_beam(
    array: PhasedArray,
    channels: Sequence[np.ndarray],
    steps: int = 150,
    temperature: float = 8.0,
    step_size: float = 0.5,
) -> np.ndarray:
    """Optimized multicast beam: SVD seed + smoothed max-min ascent.

    Maximises ``softmin_i |h_i^H F|^2`` over unit-norm F on power-normalised
    channels (normalisation makes near/far users count equally, which is what
    max-min wants), then projects onto the array's constant-modulus M-bit
    weights.

    Args:
        array: AP phased array.
        channels: One channel vector per group member.
        steps: Gradient-ascent iterations.
        temperature: Soft-min sharpness (higher = closer to true min).
        step_size: Normalised ascent step.

    Returns:
        Quantised unit-norm beam weights.
    """
    stacked = _stack(channels, array.num_elements)
    if stacked.shape[0] == 1:
        return array.conjugate_beam(stacked[0])
    normalised = stacked / np.linalg.norm(stacked, axis=1, keepdims=True)

    candidates: List[np.ndarray] = [
        _weighted_max_sum_beam(normalised, np.ones(stacked.shape[0]))
    ]
    candidates.extend(normalised[i] for i in range(stacked.shape[0]))

    def min_gain(beam: np.ndarray) -> float:
        return float(np.min(np.abs(np.conj(normalised) @ beam) ** 2))

    beam = max(candidates, key=min_gain)
    for _ in range(max(0, int(steps))):
        gains = np.abs(np.conj(normalised) @ beam) ** 2
        scale = float(np.mean(gains)) + 1e-18
        weights = np.exp(-temperature * gains / scale)
        weights = weights / weights.sum()
        # d(sum_i w_i |h_i^H F|^2)/dF* = sum_i w_i h_i (h_i^H F)
        gradient = (normalised.T * weights) @ (np.conj(normalised) @ beam)
        norm = float(np.linalg.norm(gradient))
        if norm <= 1e-18:
            break
        beam = beam + step_size * gradient / norm
        beam = beam / np.linalg.norm(beam)
    # The 2-bit constant-modulus projection can reorder candidates, so pick
    # the best *post-quantisation* beam by the true (unnormalised) max-min
    # objective — this also guarantees the refined result never falls below
    # the plain SVD heuristic.
    def min_gain_raw(quantised: np.ndarray) -> float:
        return float(np.min(np.abs(np.conj(stacked) @ quantised) ** 2))

    quantised_candidates = [array.quantise_weights(beam)] + [
        array.quantise_weights(c) for c in candidates
    ]
    return max(quantised_candidates, key=min_gain_raw)


def max_min_gain(beam: np.ndarray, channels: Sequence[np.ndarray]) -> float:
    """Minimum beamformed gain ``min_i |F^H h_i|^2`` across the group."""
    return float(np.min(per_user_gains(beam, channels)))


def per_user_gains(beam: np.ndarray, channels: Sequence[np.ndarray]) -> np.ndarray:
    """Beamformed gain ``|F^H h_i|^2`` for every group member."""
    beam = np.asarray(beam, dtype=complex)
    return np.array(
        [float(np.abs(np.vdot(beam, np.asarray(h, dtype=complex))) ** 2) for h in channels]
    )


def per_user_gains_batch(
    beams: Sequence[np.ndarray],
    channel_groups: Sequence[Sequence[np.ndarray]],
) -> List[np.ndarray]:
    """Per-user gains for many ``(beam, group)`` pairs at once.

    Stacks every group's channels into one matrix and evaluates all
    beam/channel pairs with a single matmul, then slices each group's rows
    back out.  Numerically this is the BLAS gemm path, which can differ
    from the scalar :func:`per_user_gains` ``vdot`` loop by 1-2 ulp — so
    this batch is for *new* bulk consumers (multi-AP repair planning,
    association scans), not a drop-in for golden-pinned scalar paths.
    """
    if len(beams) != len(channel_groups):
        raise BeamformingError(
            f"{len(beams)} beams for {len(channel_groups)} channel groups"
        )
    if not beams:
        return []
    sizes = [len(group) for group in channel_groups]
    if any(size == 0 for size in sizes):
        raise BeamformingError("empty channel group in batch")
    stacked = np.vstack(
        [np.asarray(h, dtype=complex) for group in channel_groups for h in group]
    )
    beam_matrix = np.vstack([np.asarray(b, dtype=complex) for b in beams])
    if beam_matrix.shape[1] != stacked.shape[1]:
        raise BeamformingError(
            f"beam length {beam_matrix.shape[1]} != channel length {stacked.shape[1]}"
        )
    # (total_users, n_groups) matrix of |F_g^H h_i|^2 in one matmul.
    all_gains = np.abs(np.conj(stacked) @ beam_matrix.T) ** 2
    out: List[np.ndarray] = []
    offset = 0
    for index, size in enumerate(sizes):
        out.append(np.ascontiguousarray(all_gains[offset:offset + size, index]))
        offset += size
    return out


def max_min_gain_batch(
    beams: Sequence[np.ndarray],
    channel_groups: Sequence[Sequence[np.ndarray]],
) -> np.ndarray:
    """Bottleneck gain per ``(beam, group)`` pair, batched."""
    gains = per_user_gains_batch(beams, channel_groups)
    return np.array([float(np.min(g)) for g in gains])
