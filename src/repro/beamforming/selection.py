"""Scheme-aware beam and rate selection per multicast group.

Glues beamforming to the scheduler: for every candidate multicast group the
planner computes the transmit beam according to the active scheme, evaluates
the per-user RSS through the (estimated) channels, takes the group minimum —
the bottleneck user limits the multicast rate — and maps it to the UDP
throughput of the highest decodable MCS (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import BeamformingError
from ..phy.antenna import PhasedArray
from ..phy.channel import ChannelState, LinkBudget
from ..phy.mcs import McsEntry, highest_supported_mcs
from ..types import BeamformingScheme
from .codebook import SectorCodebook
from .multicast import max_min_multicast_beam, per_user_gains, per_user_gains_batch


@dataclass(frozen=True)
class BeamPlan:
    """The transmission plan for one multicast group.

    Attributes:
        user_ids: Group members.
        beam: Transmit weights (unit norm).
        per_user_rss_dbm: RSS each member would see under this beam.
        min_rss_dbm: Bottleneck RSS (sets the group MCS).
        mcs: Selected MCS entry, or None when the group is unreachable.
        rate_mbps: UDP goodput at the selected MCS (0 when unreachable).
    """

    user_ids: Tuple[int, ...]
    beam: np.ndarray
    per_user_rss_dbm: Dict[int, float]
    min_rss_dbm: float
    mcs: Optional[McsEntry]
    rate_mbps: float


class GroupBeamPlanner:
    """Computes beams and rates for candidate groups under one scheme.

    Args:
        array: AP phased array.
        codebook: Predefined sector codebook (used by the PREDEFINED
            schemes).
        budget: Link budget for gain -> RSS conversion.
        scheme: Which of the four Sec 4.2.1 beamforming schemes to apply.
    """

    def __init__(
        self,
        array: PhasedArray,
        codebook: SectorCodebook,
        budget: LinkBudget,
        scheme: BeamformingScheme = BeamformingScheme.OPTIMIZED_MULTICAST,
        mcs_backoff_db: float = 2.0,
    ) -> None:
        self.array = array
        self.codebook = codebook
        self.budget = budget
        self.scheme = scheme
        # Select the MCS against RSS minus this margin: CSI estimation error
        # and mid-beacon fading mean the true RSS sits below the estimate,
        # and PER is brutal below sensitivity.  Real rate adaptation backs
        # off the same way.
        self.mcs_backoff_db = float(mcs_backoff_db)

    @property
    def allows_multiuser_groups(self) -> bool:
        """Unicast schemes restrict candidate groups to singletons."""
        return self.scheme in (
            BeamformingScheme.OPTIMIZED_MULTICAST,
            BeamformingScheme.PREDEFINED_MULTICAST,
        )

    def beam_for_group(self, channels: Sequence[np.ndarray]) -> np.ndarray:
        """Compute the scheme's transmit beam for a group of channels."""
        if not channels:
            raise BeamformingError("empty group")
        if not self.allows_multiuser_groups and len(channels) > 1:
            raise BeamformingError(
                f"scheme {self.scheme.value} only supports singleton groups"
            )
        if self.scheme in (
            BeamformingScheme.OPTIMIZED_MULTICAST,
            BeamformingScheme.OPTIMIZED_UNICAST,
        ):
            return max_min_multicast_beam(self.array, channels)
        gains = self.codebook.gains_multi(list(channels))
        best = int(np.argmax(gains.min(axis=1)))
        return self.codebook.beam(best)

    def plan_group(
        self, state: ChannelState, user_ids: Sequence[int]
    ) -> BeamPlan:
        """Beam + RSS + MCS + rate for one candidate group.

        ``state`` should carry the AP's *estimated* channels — the beam is
        chosen from what the AP believes, exactly as in the real system.
        """
        users = tuple(sorted(user_ids))
        channels = [state.channels[u] for u in users]
        beam = self.beam_for_group(channels)
        gains = per_user_gains(beam, channels)
        rss = {u: self.budget.rss_dbm(float(g)) for u, g in zip(users, gains)}
        min_rss = min(rss.values())
        mcs = highest_supported_mcs(min_rss - self.mcs_backoff_db)
        rate = float(mcs.udp_throughput_mbps) if mcs else 0.0
        return BeamPlan(
            user_ids=users,
            beam=beam,
            per_user_rss_dbm=rss,
            min_rss_dbm=min_rss,
            mcs=mcs,
            rate_mbps=rate,
        )

    def plan_groups(
        self, state: ChannelState, groups: Sequence[Sequence[int]]
    ) -> list:
        """Beam plans for many candidate groups, gains batched.

        Beam *synthesis* stays per group (the max-min ascent is iterative),
        but gain evaluation — the planner's inner loop — collapses to one
        stacked matmul over every (beam, member) pair via
        :func:`per_user_gains_batch`.  Gains can differ from the scalar
        :meth:`plan_group` path by 1-2 ulp (BLAS gemm vs ``vdot``), so this
        entry point serves new bulk consumers (multi-AP repair planning);
        the golden-pinned single-AP enumeration keeps the scalar path.
        """
        ordered = [tuple(sorted(g)) for g in groups]
        channel_groups = [[state.channels[u] for u in users] for users in ordered]
        beams = [self.beam_for_group(chans) for chans in channel_groups]
        gain_groups = per_user_gains_batch(beams, channel_groups)
        plans = []
        for users, beam, gains in zip(ordered, beams, gain_groups):
            rss = {u: self.budget.rss_dbm(float(g)) for u, g in zip(users, gains)}
            min_rss = min(rss.values())
            mcs = highest_supported_mcs(min_rss - self.mcs_backoff_db)
            plans.append(
                BeamPlan(
                    user_ids=users,
                    beam=beam,
                    per_user_rss_dbm=rss,
                    min_rss_dbm=min_rss,
                    mcs=mcs,
                    rate_mbps=float(mcs.udp_throughput_mbps) if mcs else 0.0,
                )
            )
        return plans
