"""Sector-level sweep (SLS) beam training (802.11ad, Sec 2.5).

The AP broadcasts beacons precoded with each codebook beam; the STA measures
per-beam RSS and feeds back the best index.  SLS is also the measurement
ACO-style CSI estimation consumes (Sec 2.8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .codebook import SectorCodebook


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sector sweep for one STA.

    Attributes:
        per_beam_gain: Linear ``|F_k^H h|^2`` for every codebook beam.
        best_index: Index of the strongest beam (the STA's feedback).
    """

    per_beam_gain: np.ndarray
    best_index: int

    @property
    def best_gain(self) -> float:
        """Linear gain of the selected beam."""
        return float(self.per_beam_gain[self.best_index])


def sector_sweep(
    codebook: SectorCodebook,
    channel: np.ndarray,
    rng: np.random.Generator = None,
    measurement_noise_db: float = 0.0,
) -> SweepResult:
    """Sweep all sectors against one channel and pick the best.

    Args:
        codebook: The predefined beams.
        channel: STA channel vector.
        rng: Needed when ``measurement_noise_db`` > 0.
        measurement_noise_db: Std-dev of per-beam RSS measurement noise; the
            paper's patched firmware reports noisy SLS RSS, which is why
            ACO's CSI (and thus beams) are imperfect.
    """
    gains = codebook.gains(channel)
    if measurement_noise_db > 0.0:
        if rng is None:
            raise ValueError("rng required when measurement_noise_db > 0")
        jitter = rng.normal(0.0, measurement_noise_db, size=gains.shape)
        gains = gains * 10.0 ** (jitter / 10.0)
    return SweepResult(per_beam_gain=gains, best_index=int(np.argmax(gains)))
