"""Sublayer <-> fountain-block mapping (Sec 2.6).

The paper uses a Jigsaw sublayer as the coding unit: "each sublayer contains
20 symbols" with 6000-byte symbols (their 4K sublayers are ~120 KB).  At
other resolutions we keep the 20-symbols-per-unit structure by shrinking the
symbol, capped at the paper's 6000 B choice (which sits at the encode/decode
time minimum of Fig 2 and fits an 802.11ad A-MSDU).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate
from typing import ClassVar, Dict, List, Tuple

import numpy as np

from ..errors import FountainCodeError
from ..types import NUM_LAYERS
from ..video.jigsaw import SUBLAYER_COUNTS, LayeredFrame, LayerStructure
from .precode import PrecodeDecoder, PrecodeEncoder
from .raptor import FountainDecoder, FountainEncoder, FountainSymbol

#: Paper's symbol size (Fig 2 minimum).
DEFAULT_SYMBOL_SIZE = 6000

#: Paper's symbols per coding unit.
TARGET_SYMBOLS_PER_UNIT = 20

#: The seed dense random-linear codec (golden-pinned wire format).
DENSE_CODEC = "dense"

#: The RaptorQ-style precode codec (sparse LT over intermediates).
PRECODE_CODEC = "precode"

#: Codecs selectable via ``SystemConfig.fountain_codec``.
FOUNTAIN_CODECS = (DENSE_CODEC, PRECODE_CODEC)

_ENCODER_OF_CODEC = {DENSE_CODEC: FountainEncoder, PRECODE_CODEC: PrecodeEncoder}
_DECODER_OF_CODEC = {DENSE_CODEC: FountainDecoder, PRECODE_CODEC: PrecodeDecoder}


def _check_codec(codec: str) -> str:
    if codec not in FOUNTAIN_CODECS:
        raise FountainCodeError(
            f"fountain codec must be one of {FOUNTAIN_CODECS}, got {codec!r}"
        )
    return codec


@dataclass(frozen=True, order=True)
class CodingUnitId:
    """Identifies one coding unit (= one sublayer of one frame).

    The flat ``block_id`` carried inside fountain symbols encodes
    (frame, layer, sublayer) so receivers can route symbols without extra
    headers.
    """

    frame_index: int
    layer: int
    sublayer: int

    #: Cumulative sublayer counts per layer; a ClassVar so it stays out of
    #: the generated __init__ and order=True comparisons.
    _SUBLAYER_BASE: ClassVar[Tuple[int, ...]] = tuple(
        accumulate((0,) + SUBLAYER_COUNTS[:-1])
    )

    def __post_init__(self) -> None:
        if not 0 <= self.layer < NUM_LAYERS:
            raise FountainCodeError(f"layer {self.layer} out of range")
        if not 0 <= self.sublayer < SUBLAYER_COUNTS[self.layer]:
            raise FountainCodeError(
                f"sublayer {self.sublayer} out of range for layer {self.layer}"
            )

    @property
    def block_id(self) -> int:
        """Flat id: 87 units per frame."""
        per_frame = sum(SUBLAYER_COUNTS)
        return (
            self.frame_index * per_frame
            + self._SUBLAYER_BASE[self.layer]
            + self.sublayer
        )

    @classmethod
    def from_block_id(cls, block_id: int) -> "CodingUnitId":
        """Inverse of :attr:`block_id`."""
        per_frame = sum(SUBLAYER_COUNTS)
        frame_index, offset = divmod(block_id, per_frame)
        for layer in range(NUM_LAYERS - 1, -1, -1):
            if offset >= cls._SUBLAYER_BASE[layer]:
                return cls(frame_index, layer, offset - cls._SUBLAYER_BASE[layer])
        raise FountainCodeError(f"unreachable block id {block_id}")


def symbol_size_for(structure: LayerStructure) -> int:
    """Symbol size preserving ~20 symbols per sublayer, capped at 6000 B."""
    per_unit = structure.sublayer_nbytes
    return max(1, min(DEFAULT_SYMBOL_SIZE, -(-per_unit // TARGET_SYMBOLS_PER_UNIT)))


def all_unit_ids(frame_index: int) -> List[CodingUnitId]:
    """Every coding unit of one frame, layer-major then sublayer order."""
    units = []
    for layer in range(NUM_LAYERS):
        for sub in range(SUBLAYER_COUNTS[layer]):
            units.append(CodingUnitId(frame_index, layer, sub))
    return units


class FrameBlockEncoder:
    """Fountain encoders for every sublayer of one encoded frame.

    The sender-side object: it turns a :class:`LayeredFrame` into per-unit
    symbol streams and tracks how many symbols it has emitted per unit (so
    retransmissions continue the stream instead of repeating symbols).
    """

    def __init__(
        self,
        frame_index: int,
        layered: LayeredFrame,
        symbol_size: int = 0,
        codec: str = DENSE_CODEC,
    ) -> None:
        self.frame_index = int(frame_index)
        self.structure = layered.structure
        self.symbol_size = int(symbol_size) or symbol_size_for(layered.structure)
        self.codec = _check_codec(codec)
        encoder_cls = _ENCODER_OF_CODEC[self.codec]
        self._encoders: Dict[CodingUnitId, FountainEncoder] = {}
        self._next_symbol_id: Dict[CodingUnitId, int] = {}
        for unit in all_unit_ids(self.frame_index):
            payload = layered.sublayer_payload(unit.layer, unit.sublayer)
            self._encoders[unit] = encoder_cls(
                unit.block_id, payload, self.symbol_size
            )
            self._next_symbol_id[unit] = 0

    @property
    def units(self) -> List[CodingUnitId]:
        """All coding units, in layer/sublayer order."""
        return sorted(self._encoders)

    def symbols_per_unit(self) -> int:
        """Source symbols (K) in each coding unit."""
        any_encoder = next(iter(self._encoders.values()))
        return any_encoder.num_source_symbols

    def unit_nbytes(self) -> int:
        """Source bytes per coding unit."""
        return self.structure.sublayer_nbytes

    def next_symbols(self, unit: CodingUnitId, count: int) -> List[FountainSymbol]:
        """Emit the next ``count`` fresh symbols for a unit.

        Every call continues the unit's symbol stream, which is what makes
        retransmissions and overlapping multicast groups redundancy-free.
        """
        if unit not in self._encoders:
            raise FountainCodeError(f"unknown unit {unit}")
        start = self._next_symbol_id[unit]
        self._next_symbol_id[unit] = start + count
        return self._encoders[unit].symbols(start, count)

    def emitted_count(self, unit: CodingUnitId) -> int:
        """Symbols emitted so far for a unit."""
        return self._next_symbol_id[unit]

    def symbol_at(self, unit: CodingUnitId, symbol_id: int) -> FountainSymbol:
        """A specific symbol of a unit (plain/non-rateless packetisation).

        The without-source-coding baseline addresses raw segments by index
        instead of drawing fresh coded symbols, so overlapping multicast
        groups re-send identical segments.
        """
        if unit not in self._encoders:
            raise FountainCodeError(f"unknown unit {unit}")
        return self._encoders[unit].symbol(symbol_id)


class FrameBlockDecoder:
    """Fountain decoders for every sublayer of one frame (receiver side).

    Tracks reception at sublayer granularity — the lightweight feedback unit
    of Sec 2.6 — and assembles decoded payloads back into a
    :class:`LayeredFrame` for the video decoder.
    """

    def __init__(
        self,
        frame_index: int,
        structure: LayerStructure,
        symbol_size: int = 0,
        codec: str = DENSE_CODEC,
    ) -> None:
        self.frame_index = int(frame_index)
        self.structure = structure
        self.symbol_size = int(symbol_size) or symbol_size_for(structure)
        self.codec = _check_codec(codec)
        decoder_cls = _DECODER_OF_CODEC[self.codec]
        self._decoders: Dict[CodingUnitId, FountainDecoder] = {}
        for unit in all_unit_ids(self.frame_index):
            self._decoders[unit] = decoder_cls(
                unit.block_id, structure.sublayer_nbytes, self.symbol_size
            )

    def ingest(self, symbol: FountainSymbol) -> bool:
        """Route one received symbol to its unit decoder.

        Returns True when that unit just became (or already was) decodable.
        Symbols belonging to other frames are rejected.
        """
        unit = CodingUnitId.from_block_id(symbol.block_id)
        if unit.frame_index != self.frame_index:
            raise FountainCodeError(
                f"symbol for frame {unit.frame_index} fed to frame "
                f"{self.frame_index} decoder"
            )
        return self._decoders[unit].add_symbol(symbol)

    def unit_decoder(self, unit: CodingUnitId) -> FountainDecoder:
        """The per-unit decoder (feedback needs its reception detail)."""
        if unit not in self._decoders:
            raise FountainCodeError(f"unknown unit {unit}")
        return self._decoders[unit]

    def received_counts(self) -> Dict[CodingUnitId, int]:
        """Per-unit distinct symbols received (the sublayer-level feedback)."""
        return {unit: dec.received_count for unit, dec in self._decoders.items()}

    def decoded_units(self) -> List[CodingUnitId]:
        """Units that are fully decodable right now."""
        return [u for u, d in self._decoders.items() if d.is_decoded]

    def sublayer_masks(self) -> List[np.ndarray]:
        """Boolean per-layer masks of decoded sublayers (video-decoder input)."""
        masks = [np.zeros(count, dtype=bool) for count in SUBLAYER_COUNTS]
        for unit, decoder in self._decoders.items():
            if decoder.is_decoded:
                masks[unit.layer][unit.sublayer] = True
        return masks

    def assemble(self) -> Tuple[LayeredFrame, List[np.ndarray]]:
        """Build a partial :class:`LayeredFrame` from decoded units.

        Returns the frame plus the per-layer masks to pass to
        :meth:`repro.video.jigsaw.JigsawCodec.decode`.
        """
        layered = LayeredFrame.empty(self.structure)
        masks = self.sublayer_masks()
        for unit, decoder in self._decoders.items():
            if decoder.is_decoded:
                layered.set_sublayer_payload(unit.layer, unit.sublayer, decoder.decode())
        return layered, masks

    def bytes_received_per_layer(self) -> np.ndarray:
        """Useful payload bytes received per layer (for FrameStats)."""
        totals = np.zeros(NUM_LAYERS)
        for unit, decoder in self._decoders.items():
            received = min(decoder.received_count, decoder.num_source_symbols)
            totals[unit.layer] += received * self.symbol_size
        return totals
