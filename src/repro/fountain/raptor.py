"""Systematic random-linear fountain code (the RaptorQ stand-in).

Encoding: a source block of ``K`` symbols (fixed symbol size, zero-padded)
produces an unbounded stream of coded symbols.  Symbol ids below ``K`` are
systematic (the source symbols themselves); higher ids are random GF(256)
linear combinations whose coefficients are derived deterministically from
``(block_id, symbol_id)``, so encoder and decoder agree without transmitting
coefficient vectors.

Decoding: any set of symbols whose coefficient matrix has rank ``K``
reconstructs the block.  For random GF(256) combinations the probability
that ``K + h`` received symbols fail is about ``256^-(h+1)`` — matching the
RaptorQ guarantee quoted in Sec 2.6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import FountainCodeError
from .gf256 import gf_matmul, gf_solve


def decode_failure_probability(extra_symbols: int) -> float:
    """Probability that ``K + extra`` random symbols fail to decode."""
    if extra_symbols < 0:
        return 1.0
    return float(256.0 ** -(extra_symbols + 1))


def _coefficients(block_id: int, symbol_id: int, k: int) -> np.ndarray:
    """Deterministic coefficient row for a repair symbol.

    Seeded from (block_id, symbol_id) so both endpoints derive identical
    rows.  Rows are guaranteed non-zero.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=0x5EED, spawn_key=(block_id, symbol_id))
    )
    row = rng.integers(0, 256, size=k, dtype=np.uint8)
    while not row.any():
        row = rng.integers(0, 256, size=k, dtype=np.uint8)
    return row


@dataclass(frozen=True)
class FountainSymbol:
    """One coded symbol in flight.

    Attributes:
        block_id: Identifies the source block (coding unit).
        symbol_id: Stream index; < K means systematic.
        payload: ``symbol_size`` bytes.
    """

    block_id: int
    symbol_id: int
    payload: bytes


class FountainEncoder:
    """Produces the coded-symbol stream for one source block.

    Args:
        block_id: Block identifier carried in every symbol.
        data: Source bytes (padded internally to a whole number of symbols).
        symbol_size: Bytes per symbol.
    """

    def __init__(self, block_id: int, data: bytes, symbol_size: int):
        if symbol_size <= 0:
            raise FountainCodeError(f"symbol_size must be positive, got {symbol_size}")
        if not data:
            raise FountainCodeError("cannot encode an empty block")
        self.block_id = int(block_id)
        self.symbol_size = int(symbol_size)
        self.data_len = len(data)
        self.num_source_symbols = -(-len(data) // symbol_size)
        padded = data + b"\x00" * (self.num_source_symbols * symbol_size - len(data))
        self._source = np.frombuffer(padded, dtype=np.uint8).reshape(
            self.num_source_symbols, symbol_size
        )

    def symbol(self, symbol_id: int) -> FountainSymbol:
        """The coded symbol with stream index ``symbol_id``."""
        if symbol_id < 0:
            raise FountainCodeError(f"symbol_id must be >= 0, got {symbol_id}")
        if symbol_id < self.num_source_symbols:
            payload = self._source[symbol_id].tobytes()
        else:
            coeffs = _coefficients(self.block_id, symbol_id, self.num_source_symbols)
            payload = gf_matmul(coeffs[None, :], self._source)[0].tobytes()
        return FountainSymbol(self.block_id, symbol_id, payload)

    def symbols(self, first_id: int, count: int) -> List[FountainSymbol]:
        """``count`` consecutive symbols starting at ``first_id``."""
        return [self.symbol(first_id + i) for i in range(count)]


class FountainDecoder:
    """Accumulates symbols for one block and decodes once rank-complete.

    Args:
        block_id: Must match the encoder's.
        data_len: Original (unpadded) block length in bytes.
        symbol_size: Bytes per symbol.
    """

    def __init__(self, block_id: int, data_len: int, symbol_size: int):
        if symbol_size <= 0:
            raise FountainCodeError(f"symbol_size must be positive, got {symbol_size}")
        if data_len <= 0:
            raise FountainCodeError(f"data_len must be positive, got {data_len}")
        self.block_id = int(block_id)
        self.symbol_size = int(symbol_size)
        self.data_len = int(data_len)
        self.num_source_symbols = -(-data_len // symbol_size)
        self._symbols: Dict[int, bytes] = {}
        self._decoded: Optional[bytes] = None

    @property
    def received_count(self) -> int:
        """Distinct symbols received so far."""
        return len(self._symbols)

    @property
    def is_decoded(self) -> bool:
        """Whether the block has been reconstructed."""
        return self._decoded is not None

    def received_ids(self) -> set:
        """Distinct symbol ids received (plain-mode retransmission needs the
        exact missing segment indices)."""
        return set(self._symbols)

    @property
    def symbols_missing(self) -> int:
        """Symbols still needed before a decode attempt can succeed."""
        return max(0, self.num_source_symbols - self.received_count)

    def add_symbol(self, symbol: FountainSymbol) -> bool:
        """Ingest one symbol; returns True once the block is decodable.

        Duplicate symbol ids are ignored (they carry no new information).
        """
        if symbol.block_id != self.block_id:
            raise FountainCodeError(
                f"symbol for block {symbol.block_id} fed to decoder for "
                f"block {self.block_id}"
            )
        if len(symbol.payload) != self.symbol_size:
            raise FountainCodeError(
                f"payload is {len(symbol.payload)} bytes, expected {self.symbol_size}"
            )
        if self._decoded is not None:
            return True
        self._symbols.setdefault(symbol.symbol_id, symbol.payload)
        if len(self._symbols) >= self.num_source_symbols:
            self._try_decode()
        return self._decoded is not None

    def decode(self) -> bytes:
        """The reconstructed block; raises if not yet decodable."""
        if self._decoded is None:
            self._try_decode()
        if self._decoded is None:
            raise FountainCodeError(
                f"block {self.block_id} not decodable: "
                f"{self.received_count}/{self.num_source_symbols} symbols"
            )
        return self._decoded

    def _try_decode(self) -> None:
        k = self.num_source_symbols
        if len(self._symbols) < k:
            return
        ids = sorted(self._symbols)
        systematic = [i for i in ids if i < k]
        if len(systematic) == k:
            data = b"".join(self._symbols[i] for i in range(k))
            self._decoded = data[: self.data_len]
            return
        matrix = np.zeros((len(ids), k), dtype=np.uint8)
        rhs = np.zeros((len(ids), self.symbol_size), dtype=np.uint8)
        for row, symbol_id in enumerate(ids):
            if symbol_id < k:
                matrix[row, symbol_id] = 1
            else:
                matrix[row] = _coefficients(self.block_id, symbol_id, k)
            rhs[row] = np.frombuffer(self._symbols[symbol_id], dtype=np.uint8)
        solved = gf_solve(matrix, rhs)
        if solved is None:
            return
        source, _ = solved
        self._decoded = source.tobytes()[: self.data_len]
