"""Systematic random-linear fountain code (the RaptorQ stand-in).

Encoding: a source block of ``K`` symbols (fixed symbol size, zero-padded)
produces an unbounded stream of coded symbols.  Symbol ids below ``K`` are
systematic (the source symbols themselves); higher ids are random GF(256)
linear combinations whose coefficients are derived deterministically from
``(block_id, symbol_id)``, so encoder and decoder agree without transmitting
coefficient vectors.

Decoding: any set of symbols whose coefficient matrix has rank ``K``
reconstructs the block.  For random GF(256) combinations the probability
that ``K + h`` received symbols fail is about ``256^-(h+1)`` — matching the
RaptorQ guarantee quoted in Sec 2.6 of the paper.

Performance layer (results identical to the original implementations):

* **Batched encoding** — a request for ``n`` repair symbols stacks their
  coefficient rows into one ``(n, K)`` matrix and runs a single
  :func:`gf_matmul` against the source block, instead of one row-product
  per symbol.
* **Coefficient-row cache** — rows are derived per ``(block_id,
  symbol_id)``, which is deterministic, so a process-wide LRU cache keyed
  on ``(block_id, K)`` stores every row ever derived; encoder, decoder and
  repeated emulation runs of the same frames all reuse them.
* **Incremental Gaussian elimination** — the decoder keeps a reduced
  row-echelon system and folds each arriving symbol in as it lands, so
  rank grows online and completion is O(K) row operations per symbol
  instead of a full re-solve per decode attempt.

The original per-symbol / re-solve code paths are preserved and selected by
:func:`repro.perf.mode.perf_mode` (``"seed"``) so benchmarks and
equivalence tests can compare both inside one process.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Set

import numpy as np

from ..errors import FountainCodeError
from ..obs import OBS
from ..perf.mode import seed_path_active
from .gf256 import (
    gf_inverse,
    gf_matmul,
    gf_matmul_reference,
    gf_multiply,
    gf_scale_row,
    gf_solve,
)


def decode_failure_probability(extra_symbols: int) -> float:
    """Probability that ``K + extra`` random symbols fail to decode."""
    if extra_symbols < 0:
        return 1.0
    return float(256.0 ** -(extra_symbols + 1))


def _coefficients(block_id: int, symbol_id: int, k: int) -> np.ndarray:
    """Deterministic coefficient row for a repair symbol.

    Seeded from (block_id, symbol_id) so both endpoints derive identical
    rows.  Rows are guaranteed non-zero.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=0x5EED, spawn_key=(block_id, symbol_id))
    )
    row = rng.integers(0, 256, size=k, dtype=np.uint8)
    while not row.any():
        row = rng.integers(0, 256, size=k, dtype=np.uint8)
    return row


class CoefficientCache:
    """Process-wide LRU cache of repair coefficient rows.

    One entry per ``(block_id, k)`` holds a contiguous ``(n, k)`` matrix
    covering repair symbol ids ``k .. k+n-1``; the matrix grows on demand.
    Rows are exactly those :func:`_coefficients` would derive, so cached
    and uncached paths are interchangeable.
    """

    def __init__(self, max_blocks: int = 4096) -> None:
        if max_blocks <= 0:
            raise FountainCodeError(
                f"max_blocks must be positive, got {max_blocks}"
            )
        self.max_blocks = int(max_blocks)
        self._blocks: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._blocks)

    def clear(self) -> None:
        self._blocks.clear()

    def rows(self, block_id: int, k: int, first_symbol_id: int, count: int) -> np.ndarray:
        """Coefficient rows for repair ids ``first_symbol_id .. +count-1``.

        ``first_symbol_id`` must be >= ``k`` (repair region).  Returns a
        read-only ``(count, k)`` view into the cached matrix.
        """
        if first_symbol_id < k:
            raise FountainCodeError(
                f"repair rows start at symbol id {k}, got {first_symbol_id}"
            )
        if count <= 0:
            return np.zeros((0, k), dtype=np.uint8)
        key = (int(block_id), int(k))
        have = self._blocks.get(key)
        need = first_symbol_id - k + count
        if have is None or have.shape[0] < need:
            grown = np.zeros((need, k), dtype=np.uint8)
            start = 0
            if have is not None:
                grown[: have.shape[0]] = have
                start = have.shape[0]
            for offset in range(start, need):
                grown[offset] = _coefficients(block_id, k + offset, k)
            grown.setflags(write=False)
            have = grown
            self._blocks[key] = have
        self._blocks.move_to_end(key)
        while len(self._blocks) > self.max_blocks:
            self._blocks.popitem(last=False)
        return have[first_symbol_id - k : first_symbol_id - k + count]

    def row(self, block_id: int, k: int, symbol_id: int) -> np.ndarray:
        """One repair coefficient row (cached)."""
        return self.rows(block_id, k, symbol_id, 1)[0]


#: The shared cache every encoder/decoder in this process draws from.
COEFFICIENT_CACHE = CoefficientCache()


@dataclass(frozen=True)
class FountainSymbol:
    """One coded symbol in flight.

    Attributes:
        block_id: Identifies the source block (coding unit).
        symbol_id: Stream index; < K means systematic.
        payload: ``symbol_size`` bytes.
    """

    block_id: int
    symbol_id: int
    payload: bytes


class FountainEncoder:
    """Produces the coded-symbol stream for one source block.

    Args:
        block_id: Block identifier carried in every symbol.
        data: Source bytes (padded internally to a whole number of symbols).
        symbol_size: Bytes per symbol.
    """

    def __init__(self, block_id: int, data: bytes, symbol_size: int):
        if symbol_size <= 0:
            raise FountainCodeError(f"symbol_size must be positive, got {symbol_size}")
        if not data:
            raise FountainCodeError("cannot encode an empty block")
        self.block_id = int(block_id)
        self.symbol_size = int(symbol_size)
        self.data_len = len(data)
        self.num_source_symbols = -(-len(data) // symbol_size)
        padded = data + b"\x00" * (self.num_source_symbols * symbol_size - len(data))
        self._source = np.frombuffer(padded, dtype=np.uint8).reshape(
            self.num_source_symbols, symbol_size
        )

    def symbol(self, symbol_id: int) -> FountainSymbol:
        """The coded symbol with stream index ``symbol_id``."""
        if symbol_id < 0:
            raise FountainCodeError(f"symbol_id must be >= 0, got {symbol_id}")
        if symbol_id < self.num_source_symbols:
            payload = self._source[symbol_id].tobytes()
        elif seed_path_active():
            coeffs = _coefficients(self.block_id, symbol_id, self.num_source_symbols)
            payload = gf_matmul_reference(coeffs[None, :], self._source)[0].tobytes()
        else:
            coeffs = COEFFICIENT_CACHE.row(
                self.block_id, self.num_source_symbols, symbol_id
            )
            payload = gf_matmul(coeffs[None, :], self._source)[0].tobytes()
        return FountainSymbol(self.block_id, symbol_id, payload)

    def symbols(self, first_id: int, count: int) -> List[FountainSymbol]:
        """``count`` consecutive symbols starting at ``first_id``.

        Repair symbols in the range are encoded as one batch: their cached
        coefficient rows form a ``(count, K)`` matrix multiplied against
        the source block in a single :func:`gf_matmul`.
        """
        if first_id < 0:
            raise FountainCodeError(f"symbol ids must be >= 0, got {first_id}")
        if count <= 0:
            return []
        if not OBS.mode:
            return self._symbols(first_id, count)
        t0 = perf_counter()
        out = self._symbols(first_id, count)
        OBS.count("fountain.symbols_encoded", count)
        OBS.record_span(
            "encode.fountain",
            t0,
            perf_counter(),
            fields={"block": self.block_id, "symbols": count},
        )
        return out

    def _symbols(self, first_id: int, count: int) -> List[FountainSymbol]:
        if seed_path_active():
            return [self.symbol(first_id + i) for i in range(count)]
        k = self.num_source_symbols
        out: List[FountainSymbol] = []
        for sid in range(first_id, min(first_id + count, k)):
            out.append(FountainSymbol(self.block_id, sid, self._source[sid].tobytes()))
        repair_start = max(first_id, k)
        repair_count = first_id + count - repair_start
        if repair_count > 0:
            rows = COEFFICIENT_CACHE.rows(self.block_id, k, repair_start, repair_count)
            payloads = gf_matmul(rows, self._source)
            out.extend(
                FountainSymbol(self.block_id, repair_start + i, payloads[i].tobytes())
                for i in range(repair_count)
            )
        return out


class FountainDecoder:
    """Accumulates symbols for one block and decodes once rank-complete.

    The optimized path maintains a reduced row-echelon system
    incrementally: each arriving symbol is eliminated against the current
    pivots, becomes a new pivot if it carries fresh rank, and the block is
    decoded the instant rank reaches ``K`` — no re-solving.  The seed path
    (full Gaussian elimination per decode attempt) is preserved under
    ``perf_mode("seed")``.

    Args:
        block_id: Must match the encoder's.
        data_len: Original (unpadded) block length in bytes.
        symbol_size: Bytes per symbol.
    """

    def __init__(self, block_id: int, data_len: int, symbol_size: int):
        if symbol_size <= 0:
            raise FountainCodeError(f"symbol_size must be positive, got {symbol_size}")
        if data_len <= 0:
            raise FountainCodeError(f"data_len must be positive, got {data_len}")
        self.block_id = int(block_id)
        self.symbol_size = int(symbol_size)
        self.data_len = int(data_len)
        self.num_source_symbols = -(-data_len // symbol_size)
        self._decoded: Optional[bytes] = None
        self._incremental = not seed_path_active()
        if self._incremental:
            k = self.num_source_symbols
            self._ids: Set[int] = set()
            self._mat = np.zeros((k, k), dtype=np.uint8)
            self._pay = np.zeros((k, self.symbol_size), dtype=np.uint8)
            self._pivot_row_of_col = np.full(k, -1, dtype=np.int64)
            self._rank = 0
        else:
            self._symbols: Dict[int, bytes] = {}

    @property
    def received_count(self) -> int:
        """Distinct symbols received so far."""
        if self._incremental:
            return len(self._ids)
        return len(self._symbols)

    @property
    def is_decoded(self) -> bool:
        """Whether the block has been reconstructed."""
        return self._decoded is not None

    @property
    def rank(self) -> int:
        """Independent dimensions received (== K once decodable)."""
        if self._incremental:
            return self._rank
        # The seed path never tracks rank online; the best cheap bound is
        # the distinct-symbol count capped at K.
        return min(len(self._symbols), self.num_source_symbols)

    def received_ids(self) -> set:
        """Distinct symbol ids received (plain-mode retransmission needs the
        exact missing segment indices)."""
        if self._incremental:
            return set(self._ids)
        return set(self._symbols)

    @property
    def symbols_missing(self) -> int:
        """Symbols still needed before a decode attempt can succeed."""
        return max(0, self.num_source_symbols - self.received_count)

    def add_symbol(self, symbol: FountainSymbol) -> bool:
        """Ingest one symbol; returns True once the block is decodable.

        Duplicate symbol ids are ignored (they carry no new information).
        """
        if symbol.block_id != self.block_id:
            raise FountainCodeError(
                f"symbol for block {symbol.block_id} fed to decoder for "
                f"block {self.block_id}"
            )
        if len(symbol.payload) != self.symbol_size:
            raise FountainCodeError(
                f"payload is {len(symbol.payload)} bytes, expected {self.symbol_size}"
            )
        if self._decoded is not None:
            return True
        if not OBS.mode:
            self._ingest(symbol)
            return self._decoded is not None
        t0 = perf_counter()
        self._ingest(symbol)
        t1 = perf_counter()
        OBS.count("fountain.symbols_received")
        OBS.histogram("decode.fountain").observe(t1 - t0)
        if self._decoded is not None:
            OBS.count("fountain.blocks_decoded")
            OBS.event(
                "decode.fountain",
                t0,
                t1,
                block=self.block_id,
                symbols=self.received_count,
                k=self.num_source_symbols,
            )
        return self._decoded is not None

    def _ingest(self, symbol: FountainSymbol) -> None:
        if self._incremental:
            if symbol.symbol_id not in self._ids:
                self._ids.add(symbol.symbol_id)
                self._absorb(symbol.symbol_id, symbol.payload)
        else:
            self._symbols.setdefault(symbol.symbol_id, symbol.payload)
            if len(self._symbols) >= self.num_source_symbols:
                self._try_decode()

    def decode(self) -> bytes:
        """The reconstructed block; raises if not yet decodable."""
        if self._decoded is None and not self._incremental:
            self._try_decode()
        if self._decoded is None:
            raise FountainCodeError(
                f"block {self.block_id} not decodable: "
                f"{self.received_count}/{self.num_source_symbols} symbols"
            )
        return self._decoded

    # ------------------------------------------------- incremental elimination

    def _absorb(self, symbol_id: int, payload: bytes) -> None:
        """Fold one fresh symbol into the reduced system (optimized path)."""
        k = self.num_source_symbols
        if symbol_id < k:
            row = np.zeros(k, dtype=np.uint8)
            row[symbol_id] = 1
        else:
            row = COEFFICIENT_CACHE.row(self.block_id, k, symbol_id).copy()
        data = np.frombuffer(payload, dtype=np.uint8).copy()

        # Eliminate every pivot the row touches.  Pivot rows are zero at all
        # *other* pivot columns (full RREF invariant), so one pass suffices.
        nonzero = np.nonzero(row)[0]
        rows_idx = self._pivot_row_of_col[nonzero]
        hit = rows_idx >= 0
        if hit.any():
            rows_idx = rows_idx[hit]
            factors = row[nonzero[hit]]
            row ^= gf_matmul(factors[None, :], self._mat[rows_idx])[0]
            data ^= gf_matmul(factors[None, :], self._pay[rows_idx])[0]
            nonzero = np.nonzero(row)[0]

        if nonzero.size == 0:
            return  # linearly dependent: no new rank
        lead = int(nonzero[0])
        inv = gf_inverse(int(row[lead]))
        if inv != 1:
            row = gf_scale_row(row, inv)
            data = gf_scale_row(data, inv)

        # Back-substitute the new pivot out of every stored row.
        if self._rank:
            lead_vals = self._mat[: self._rank, lead]
            hits = np.nonzero(lead_vals)[0]
            if hits.size:
                factors = lead_vals[hits]
                self._mat[hits] ^= gf_multiply(factors[:, None], row[None, :])
                self._pay[hits] ^= gf_multiply(factors[:, None], data[None, :])

        slot = self._rank
        self._mat[slot] = row
        self._pay[slot] = data
        self._pivot_row_of_col[lead] = slot
        self._rank += 1
        if self._rank == k:
            self._decoded = self._pay[self._pivot_row_of_col].tobytes()[
                : self.data_len
            ]

    # -------------------------------------------------------- seed-path solve

    def _try_decode(self) -> None:
        k = self.num_source_symbols
        if len(self._symbols) < k:
            return
        ids = sorted(self._symbols)
        systematic = [i for i in ids if i < k]
        if len(systematic) == k:
            data = b"".join(self._symbols[i] for i in range(k))
            self._decoded = data[: self.data_len]
            return
        matrix = np.zeros((len(ids), k), dtype=np.uint8)
        rhs = np.zeros((len(ids), self.symbol_size), dtype=np.uint8)
        for row, symbol_id in enumerate(ids):
            if symbol_id < k:
                matrix[row, symbol_id] = 1
            else:
                matrix[row] = _coefficients(self.block_id, symbol_id, k)
            rhs[row] = np.frombuffer(self._symbols[symbol_id], dtype=np.uint8)
        solved = gf_solve(matrix, rhs)
        if solved is None:
            return
        source, _ = solved
        self._decoded = source.tobytes()[: self.data_len]
