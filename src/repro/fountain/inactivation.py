"""Inactivation decoding: peel the sparse component, solve a small core.

The precode decoder's equation system has RaptorQ's shape: most rows are
*sparse binary* combinations of the first ``W`` intermediate symbols (the LT
and LDPC rows), a handful are *dense* GF(256) rows (HDPC), and a few columns
(the PI symbols) are referenced densely from the start.  Full Gaussian
elimination on that system costs ``O(L^3)``; inactivation decoding exploits
the sparsity so the cost stops scaling cubically:

1. **Peel** — repeatedly pick a sparse row with exactly one unsolved active
   column.  That row *defines* the column; eliminating it from the other
   rows is a pure XOR (binary coefficients) and — because the pivot row has
   no other active column — introduces no fill-in.
2. **Inactivate** — when no degree-1 row exists, demote the highest-degree
   active column to the *inactive* set: rows keep a coefficient for it, but
   it no longer blocks peeling.  This is the classic trade: each
   inactivation grows the dense core by one column and restarts the ripple.
3. **Solve the core** — after peeling, the unused rows plus the dense HDPC
   rows form a small system over only the inactive columns (PI symbols +
   inactivated columns).  That core is handed to the existing
   :func:`repro.fountain.gf256.gf_solve`; its size is what the decode-cost
   scaling tests pin sub-cubic.
4. **Back-substitute** — peeled columns are recovered in reverse order;
   sparse rows stay binary throughout, so each value is an XOR of core
   solutions plus the defining row's payload.

The solver is exact: it succeeds if and only if the equation system has
full column rank, so decodability matches what full Gaussian elimination
would conclude — only the cost differs.

Elimination effort is tallied (row ops, and element ops weighted by row
width) and reported through ``OBS`` counters
(``fountain.inactivation.*``) so the sub-cubic claim is enforced by tests
and the perf gate rather than asserted in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..obs import OBS
from .gf256 import gf_multiply, gf_solve


@dataclass(frozen=True)
class InactivationStats:
    """Cost accounting for one inactivation solve.

    Attributes:
        peeled: Columns recovered by the ripple (cheap XOR eliminations).
        inactivated: Active columns demoted to the dense core.
        core_rows, core_cols: Dimensions of the system given to ``gf_solve``.
        row_ops: Row operations across peeling, core solve and back-subst.
        elem_ops: Element operations (row ops weighted by row width) — the
            quantity whose growth in K the scaling tests bound.
    """

    peeled: int
    inactivated: int
    core_rows: int
    core_cols: int
    row_ops: int
    elem_ops: int


def solve_inactivation(
    n_active: int,
    pi_width: int,
    sparse_cols: List[np.ndarray],
    sparse_pi: np.ndarray,
    sparse_payloads: np.ndarray,
    dense_active: np.ndarray,
    dense_pi: np.ndarray,
    dense_payloads: np.ndarray,
) -> Optional[Tuple[np.ndarray, InactivationStats]]:
    """Solve a sparse-plus-dense GF(256) system by inactivation decoding.

    Unknowns are ``n_active`` *active* columns (binary coefficients in the
    sparse rows) followed by ``pi_width`` permanently-inactive PI columns.

    Args:
        n_active: Active (peelable) unknowns, indexed ``0 .. n_active-1``.
        pi_width: PI unknowns, indexed ``n_active .. n_active+pi_width-1``.
        sparse_cols: Per sparse row, the active column indices it XORs
            (binary coefficients; duplicates not allowed within a row).
        sparse_pi: ``(n_sparse, pi_width)`` binary PI coefficients.
        sparse_payloads: ``(n_sparse, symbol_size)`` right-hand sides.
        dense_active: ``(n_dense, n_active)`` GF(256) coefficients (HDPC).
        dense_pi: ``(n_dense, pi_width)`` GF(256) PI coefficients.
        dense_payloads: ``(n_dense, symbol_size)`` right-hand sides.

    Returns:
        ``(solution, stats)`` with ``solution`` of shape
        ``(n_active + pi_width, symbol_size)``, or ``None`` when the system
        is rank-deficient (decode failure).
    """
    n_sparse = len(sparse_cols)
    n_dense = dense_active.shape[0]
    sz = sparse_payloads.shape[1] if n_sparse else dense_payloads.shape[1]
    # Inactive-side coefficients: PI columns first, inactivated columns
    # appended in inactivation order.  Width is bounded by pi + active.
    ext_width = pi_width + n_active
    ext = np.zeros((n_sparse, ext_width), dtype=np.uint8)
    if pi_width:
        ext[:, :pi_width] = sparse_pi
    pay = np.array(sparse_payloads, dtype=np.uint8)
    d_active = np.array(dense_active, dtype=np.uint8)
    d_ext = np.zeros((n_dense, ext_width), dtype=np.uint8)
    if pi_width:
        d_ext[:, :pi_width] = dense_pi
    d_pay = np.array(dense_payloads, dtype=np.uint8)

    active_sets = [set(int(c) for c in cols) for cols in sparse_cols]
    col_rows: List[set] = [set() for _ in range(n_active)]
    for r, cols in enumerate(active_sets):
        for c in cols:
            col_rows[c].add(r)

    solved_by = np.full(n_active, -1, dtype=np.int64)
    peel_order: List[int] = []
    inact_of_col = np.full(n_active, -1, dtype=np.int64)
    n_inact = 0
    used = np.zeros(n_sparse, dtype=bool)
    unsolved = set(range(n_active))
    ripple = [r for r, cols in enumerate(active_sets) if len(cols) == 1]
    row_ops = 0
    elem_ops = 0

    def eliminate(r: int, c: int) -> None:
        """Fold defining row ``r`` (active part == {c}) out of the system."""
        nonlocal row_ops, elem_ops
        width = pi_width + n_inact + sz
        for s in list(col_rows[c]):
            if s == r or used[s]:
                continue
            active_sets[s].discard(c)
            ext[s] ^= ext[r]
            pay[s] ^= pay[r]
            row_ops += 1
            elem_ops += width
            if len(active_sets[s]) == 1:
                ripple.append(s)
        col_rows[c].clear()
        if n_dense:
            factors = d_active[:, c]
            hits = np.nonzero(factors)[0]
            if hits.size:
                d_ext[hits] ^= gf_multiply(
                    factors[hits, None], ext[r][None, :]
                )
                d_pay[hits] ^= gf_multiply(
                    factors[hits, None], pay[r][None, :]
                )
                d_active[hits, c] = 0
                row_ops += int(hits.size)
                elem_ops += int(hits.size) * width

    while unsolved:
        r = -1
        while ripple:
            cand = ripple.pop()
            if not used[cand] and len(active_sets[cand]) == 1:
                r = cand
                break
        if r >= 0:
            c = next(iter(active_sets[r]))
            if c not in unsolved:  # stale ripple entry
                continue
            active_sets[r].clear()
            col_rows[c].discard(r)
            used[r] = True
            solved_by[c] = r
            peel_order.append(c)
            unsolved.discard(c)
            eliminate(r, c)
            continue
        # Ripple dry: inactivate the highest-degree unsolved column (ties
        # broken by lowest index for determinism).  Degree-0 columns are
        # inactivated too — only the core can still determine them.
        c = max(
            unsolved,
            key=lambda col: (len(col_rows[col]), -col),
        )
        unsolved.discard(c)
        slot = pi_width + n_inact
        inact_of_col[c] = n_inact
        for s in col_rows[c]:
            if used[s]:
                continue
            active_sets[s].discard(c)
            ext[s, slot] = 1
            if len(active_sets[s]) == 1:
                ripple.append(s)
        col_rows[c].clear()
        if n_dense:
            d_ext[:, slot] = d_active[:, c]
            d_active[:, c] = 0
        n_inact += 1

    # Core system over (PI + inactivated) columns: every unused sparse row
    # plus all dense rows.  Their active parts are fully eliminated.
    core_cols = pi_width + n_inact
    free_rows = np.nonzero(~used)[0]
    core = np.concatenate(
        [ext[free_rows, :core_cols], d_ext[:, :core_cols]], axis=0
    )
    core_rhs = np.concatenate([pay[free_rows], d_pay], axis=0)
    core_rows = core.shape[0]
    solution = np.zeros((n_active + pi_width, sz), dtype=np.uint8)
    if core_cols:
        solved = gf_solve(core, core_rhs)
        if solved is None:
            _emit_counters(
                len(peel_order), n_inact, core_rows, core_cols,
                row_ops, elem_ops, success=False,
            )
            return None
        core_values, _ = solved
        # Upper-bound accounting for the dense core elimination: pivots x
        # rows x row width.  gf_solve reports its own exact tally to OBS;
        # this keeps the returned stats self-contained.
        row_ops += core_rows * core_cols
        elem_ops += core_rows * core_cols * (core_cols + sz)
        for j in range(pi_width):
            solution[n_active + j] = core_values[j]
        inactivated = np.nonzero(inact_of_col >= 0)[0]
        for c in inactivated:
            solution[c] = core_values[pi_width + int(inact_of_col[c])]
    elif core_rows and not np.array_equal(
        core_rhs, np.zeros_like(core_rhs)
    ):
        # No unknowns left but inconsistent leftover equations can only
        # arise from duplicate contradictory rows; treat as failure.
        _emit_counters(
            len(peel_order), n_inact, core_rows, core_cols,
            row_ops, elem_ops, success=False,
        )
        return None

    # Back-substitution in reverse peel order.  Sparse rows stay binary, so
    # each peeled value is the defining row's payload XOR selected core
    # solutions.
    for c in reversed(peel_order):
        r = int(solved_by[c])
        value = pay[r].copy()
        mask = np.nonzero(ext[r, :core_cols])[0]
        if mask.size:
            value ^= np.bitwise_xor.reduce(
                solution[_core_index(mask, pi_width, inact_of_col, n_active)],
                axis=0,
            )
            row_ops += 1
            elem_ops += int(mask.size) * sz
        solution[c] = value

    stats = InactivationStats(
        peeled=len(peel_order),
        inactivated=n_inact,
        core_rows=core_rows,
        core_cols=core_cols,
        row_ops=row_ops,
        elem_ops=elem_ops,
    )
    _emit_counters(
        stats.peeled, stats.inactivated, core_rows, core_cols,
        row_ops, elem_ops, success=True,
    )
    return solution, stats


def _core_index(
    slots: np.ndarray,
    pi_width: int,
    inact_of_col: np.ndarray,
    n_active: int,
) -> np.ndarray:
    """Map inactive-side slot indices back to solution row indices."""
    out = np.empty(slots.shape[0], dtype=np.int64)
    inact_cols = np.nonzero(inact_of_col >= 0)[0]
    slot_to_col = np.empty(inact_cols.shape[0], dtype=np.int64)
    slot_to_col[inact_of_col[inact_cols]] = inact_cols
    for i, slot in enumerate(slots):
        if slot < pi_width:
            out[i] = n_active + int(slot)
        else:
            out[i] = int(slot_to_col[int(slot) - pi_width])
    return out


def _emit_counters(
    peeled: int,
    inactivated: int,
    core_rows: int,
    core_cols: int,
    row_ops: int,
    elem_ops: int,
    success: bool,
) -> None:
    if not OBS.mode:
        return
    OBS.count("fountain.inactivation.solves")
    OBS.count("fountain.inactivation.peeled", peeled)
    OBS.count("fountain.inactivation.inactivated", inactivated)
    OBS.count("fountain.inactivation.core_rows", core_rows)
    OBS.count("fountain.inactivation.core_cols", core_cols)
    OBS.count("fountain.inactivation.row_ops", row_ops)
    OBS.count("fountain.inactivation.elem_ops", elem_ops)
    if not success:
        OBS.count("fountain.inactivation.failures")
