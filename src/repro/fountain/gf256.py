"""GF(256) arithmetic on numpy arrays.

The Galois field GF(2^8) with the AES/RaptorQ-standard primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D generator tables).  Multiplication uses
log/antilog tables so whole symbol rows multiply in one vectorised lookup.

Zero handling uses the log-table sentinel trick: ``log[0]`` maps to a
sentinel index past every reachable nonzero sum, and the antilog table is
zero from that region onward, so ``exp[log[a] + log[b]]`` is correct for all
inputs — including zeros — with a single gather and no boolean masks.

A dense 256x256 product table (:data:`_MUL`, 64 KiB) drives the matrix
kernels: one fancy-indexed gather per source column replaces the
log-add-antilog round trip, which is what makes batched encoding fast.

The ``*_reference`` functions preserve the original (pre-optimization)
mask-based implementations; the seed-path benchmarks time against them so
speedup numbers in ``BENCH_PERF.json`` compare like with like.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import FountainCodeError
from ..obs import OBS

#: The field's primitive polynomial (0x11D) reduced modulo x^8.
_PRIMITIVE_POLY = 0x1D

#: Sentinel log value for zero: past 2*254, so any sum involving it lands in
#: the zero region of the antilog table.
_LOG_ZERO = 510


def _build_tables() -> Tuple[np.ndarray, np.ndarray]:
    # exp covers indices up to 2 * _LOG_ZERO; everything at or beyond
    # _LOG_ZERO stays zero so zero operands fall through without masking.
    exp = np.zeros(2 * _LOG_ZERO + 1, dtype=np.uint8)
    log = np.full(256, _LOG_ZERO, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x = (x ^ _PRIMITIVE_POLY) & 0xFF
    exp[255:510] = exp[:255]  # duplicated so (log a + log b) needs no modulo
    return exp, log


_EXP, _LOG = _build_tables()

#: Dense product table: ``_MUL[a, b]`` is the GF(256) product of a and b.
_MUL = _EXP[_LOG[:, None] + _LOG[None, :]]

#: Seed-era tables (log[0] = 0, 512-entry antilog) kept for the reference
#: implementations below.
_EXP_REF = np.zeros(512, dtype=np.int32)
_EXP_REF[:510] = _EXP[:510]
_LOG_REF = np.where(np.arange(256) == 0, 0, _LOG).astype(np.int32)


def gf_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise GF(256) product of two uint8 arrays (broadcasting)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    return _EXP[_LOG[a] + _LOG[b]]


def gf_multiply_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pre-sentinel gf_multiply (explicit zero masks); seed-path baseline."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    result = _EXP_REF[_LOG_REF[a.astype(np.int32)] + _LOG_REF[b.astype(np.int32)]]
    zero = (a == 0) | (b == 0)
    return np.where(zero, 0, result).astype(np.uint8)


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise FountainCodeError("zero has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf_scale_row(row: np.ndarray, factor: int) -> np.ndarray:
    """Multiply a uint8 row by a scalar field element."""
    row = np.asarray(row, dtype=np.uint8)
    if factor == 0:
        return np.zeros_like(row)
    if factor == 1:
        return row.copy()
    return _EXP[_LOG[row] + _LOG[factor]]


#: Temp-buffer budget (elements) for one table-blocked gather; 4M uint8
#: keeps each block's ``(rows, k, n)`` product inside L2/L3-friendly sizes.
_BLOCK_ELEMS = 1 << 22


def gf_matmul_blocked(
    a: np.ndarray, b: np.ndarray, block_elems: int = _BLOCK_ELEMS
) -> np.ndarray:
    """Table-blocked GF(256) matrix product ``(m, k) @ (k, n)``.

    One three-dimensional product-table gather per row block — XOR-reduced
    along ``k`` — instead of a ``k``-iteration Python loop over source
    columns.  Row blocks are sized so the ``(rows, k, n)`` temporary stays
    under ``block_elems`` elements, which keeps the kernel cache-resident
    for the wide coefficient batches the precode encoder produces.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint8))
    if a.shape[1] != b.shape[0]:
        raise FountainCodeError(f"shape mismatch: {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n), dtype=np.uint8)
    if m == 0 or n == 0 or k == 0:
        return out
    rows_per_block = max(1, int(block_elems) // max(1, k * n))
    for start in range(0, m, rows_per_block):
        block = a[start : start + rows_per_block]
        products = _MUL[block[:, :, None], b[None, :, :]]
        out[start : start + block.shape[0]] = np.bitwise_xor.reduce(
            products, axis=1
        )
    return out


def gf2_matmul(mask: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bit-sliced GF(2) matrix product: XOR rows of ``b`` selected by ``mask``.

    ``mask`` is boolean ``(m, k)``; the result row ``i`` is the XOR of every
    ``b[j]`` with ``mask[i, j]`` set — the hot kernel for binary LT/LDPC
    coefficient rows.  Implementation is bit-sliced: ``b`` is unpacked to
    bit-planes, selections are *counted* with one float32 BLAS matmul
    (exact for ``k`` up to 2**24), and the count parity is repacked to
    bytes.  XOR over GF(2) is exactly the parity of the selection count.
    """
    mask = np.atleast_2d(np.asarray(mask, dtype=bool))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint8))
    if mask.shape[1] != b.shape[0]:
        raise FountainCodeError(f"shape mismatch: {mask.shape} @ {b.shape}")
    m, k = mask.shape
    n = b.shape[1]
    if m == 0 or n == 0:
        return np.zeros((m, n), dtype=np.uint8)
    if k == 0:
        return np.zeros((m, n), dtype=np.uint8)
    if k >= (1 << 24):
        raise FountainCodeError(
            f"bit-sliced parity matmul supports k < 2**24, got {k}"
        )
    bits = np.unpackbits(b, axis=1).astype(np.float32)
    counts = mask.astype(np.float32) @ bits
    parity = (counts.astype(np.int64) & 1).astype(np.uint8)
    return np.packbits(parity, axis=1)


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """GF(256) matrix product of uint8 matrices ``(m, k) @ (k, n)``.

    Used for encoding: coefficient rows times the source-symbol matrix.
    Single rows keep the one-gather fast path (the decoder's elimination
    steps); wider batches run the table-blocked kernel, whose Python
    overhead is per row *block* rather than per source column.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint8))
    if a.shape[1] != b.shape[0]:
        raise FountainCodeError(f"shape mismatch: {a.shape} @ {b.shape}")
    if a.shape[0] == 1:
        # Row-vector product (the decoder's elimination steps): one (k, n)
        # table gather + XOR reduction instead of a k-iteration Python loop.
        if a.shape[1] == 0:
            return np.zeros((1, b.shape[1]), dtype=np.uint8)
        products = _MUL[a[0][:, None], b]
        return np.bitwise_xor.reduce(products, axis=0, keepdims=True)
    return gf_matmul_blocked(a, b)


def gf_matmul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pre-optimization gf_matmul (mask-based per-column products)."""
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint8))
    if a.shape[1] != b.shape[0]:
        raise FountainCodeError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for j in range(a.shape[1]):
        column = a[:, j]
        nonzero = np.nonzero(column)[0]
        if nonzero.size == 0:
            continue
        products = gf_multiply_reference(column[nonzero, None], b[j][None, :])
        out[nonzero] ^= products
    return out


def gf_rank(matrix: np.ndarray) -> int:
    """Rank of a uint8 matrix over GF(256).

    Forward elimination only — no back-substitution, no right-hand side —
    so the cohort decodability check (``rank == k``?) costs roughly half a
    :func:`gf_solve` and never copies symbol payloads.
    """
    a = np.atleast_2d(np.array(matrix, dtype=np.uint8))
    m, k = a.shape
    if m == 0 or k == 0:
        return 0
    row = 0
    for col in range(k):
        pivot_candidates = np.nonzero(a[row:, col])[0]
        if pivot_candidates.size == 0:
            continue
        pivot = row + int(pivot_candidates[0])
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
        inv = gf_inverse(int(a[row, col]))
        a[row] = gf_scale_row(a[row], inv)
        targets = np.nonzero(a[row + 1:, col])[0]
        if targets.size:
            targets = targets + row + 1
            factors = a[targets, col]
            a[targets] ^= gf_multiply(factors[:, None], a[row][None, :])
        row += 1
        if row == m:
            break
    return row


def gf_solve(
    matrix: np.ndarray, rhs: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Solve ``matrix @ x = rhs`` over GF(256) by Gaussian elimination.

    Args:
        matrix: ``(m, k)`` coefficient matrix with ``m >= k``.
        rhs: ``(m, s)`` right-hand sides (one symbol payload per row).

    Returns:
        ``(x, rhs_reduced)`` where ``x`` is the ``(k, s)`` solution, or None
        when the matrix is rank-deficient (decode failure).
    """
    a = np.array(matrix, dtype=np.uint8)
    b = np.array(rhs, dtype=np.uint8)
    m, k = a.shape
    if b.shape[0] != m:
        raise FountainCodeError(f"rhs has {b.shape[0]} rows, expected {m}")
    # Elimination cost tallies: one row op per scaled/updated row, element
    # ops weighted by the full (coefficients + payload) row width.  Local
    # ints in the loop, a single OBS emission at the end, so the counters
    # cost nothing per pivot when observability is off.
    row_width = k + b.shape[1]
    row_ops = 0
    elem_ops = 0
    row = 0
    solved = True
    for col in range(k):
        pivot_candidates = np.nonzero(a[row:, col])[0]
        if pivot_candidates.size == 0:
            solved = False
            break
        pivot = row + int(pivot_candidates[0])
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
            b[[row, pivot]] = b[[pivot, row]]
        inv = gf_inverse(int(a[row, col]))
        a[row] = gf_scale_row(a[row], inv)
        b[row] = gf_scale_row(b[row], inv)
        targets = np.nonzero(a[:, col])[0]
        targets = targets[targets != row]
        if targets.size:
            factors = a[targets, col]
            a[targets] ^= gf_multiply(factors[:, None], a[row][None, :])
            b[targets] ^= gf_multiply(factors[:, None], b[row][None, :])
        row_ops += int(targets.size) + 1
        elem_ops += (int(targets.size) + 1) * row_width
        row += 1
        if row == k:
            break
    if OBS.mode:
        OBS.count("fountain.gf.solve_calls")
        OBS.count("fountain.gf.solve_row_ops", row_ops)
        OBS.count("fountain.gf.solve_elem_ops", elem_ops)
    if not solved or row < k:
        return None
    return b[:k], b
