"""GF(256) arithmetic on numpy arrays.

The Galois field GF(2^8) with the AES/RaptorQ-standard primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D generator tables).  Multiplication uses
log/antilog tables so whole symbol rows multiply in one vectorised lookup.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import FountainCodeError

#: The field's primitive polynomial (0x11D) reduced modulo x^8.
_PRIMITIVE_POLY = 0x1D


def _build_tables() -> Tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.int32)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x = (x ^ _PRIMITIVE_POLY) & 0xFF
    exp[255:510] = exp[:255]  # duplicated so (log a + log b) needs no modulo
    return exp, log


_EXP, _LOG = _build_tables()


def gf_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise GF(256) product of two uint8 arrays (broadcasting)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    result = _EXP[_LOG[a.astype(np.int32)] + _LOG[b.astype(np.int32)]]
    zero = (a == 0) | (b == 0)
    return np.where(zero, 0, result).astype(np.uint8)


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise FountainCodeError("zero has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf_scale_row(row: np.ndarray, factor: int) -> np.ndarray:
    """Multiply a uint8 row by a scalar field element."""
    if factor == 0:
        return np.zeros_like(row)
    if factor == 1:
        return row.copy()
    shift = _LOG[factor]
    result = _EXP[_LOG[row.astype(np.int32)] + shift]
    return np.where(row == 0, 0, result).astype(np.uint8)


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """GF(256) matrix product of uint8 matrices ``(m, k) @ (k, n)``.

    Used for encoding: coefficient rows times the source-symbol matrix.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint8))
    if a.shape[1] != b.shape[0]:
        raise FountainCodeError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for j in range(a.shape[1]):
        column = a[:, j]
        nonzero = np.nonzero(column)[0]
        if nonzero.size == 0:
            continue
        products = gf_multiply(column[nonzero, None], b[j][None, :])
        out[nonzero] ^= products
    return out


def gf_solve(
    matrix: np.ndarray, rhs: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Solve ``matrix @ x = rhs`` over GF(256) by Gaussian elimination.

    Args:
        matrix: ``(m, k)`` coefficient matrix with ``m >= k``.
        rhs: ``(m, s)`` right-hand sides (one symbol payload per row).

    Returns:
        ``(x, rhs_reduced)`` where ``x`` is the ``(k, s)`` solution, or None
        when the matrix is rank-deficient (decode failure).
    """
    a = np.array(matrix, dtype=np.uint8)
    b = np.array(rhs, dtype=np.uint8)
    m, k = a.shape
    if b.shape[0] != m:
        raise FountainCodeError(f"rhs has {b.shape[0]} rows, expected {m}")
    row = 0
    for col in range(k):
        pivot_candidates = np.nonzero(a[row:, col])[0]
        if pivot_candidates.size == 0:
            return None
        pivot = row + int(pivot_candidates[0])
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
            b[[row, pivot]] = b[[pivot, row]]
        inv = gf_inverse(int(a[row, col]))
        a[row] = gf_scale_row(a[row], inv)
        b[row] = gf_scale_row(b[row], inv)
        targets = np.nonzero(a[:, col])[0]
        targets = targets[targets != row]
        if targets.size:
            factors = a[targets, col]
            a[targets] ^= gf_multiply(factors[:, None], a[row][None, :])
            b[targets] ^= gf_multiply(factors[:, None], b[row][None, :])
        row += 1
        if row == k:
            break
    if row < k:
        return None
    return b[:k], b
