"""Rateless (Raptor-style) source coding (paper Sec 2.6, Fig 2).

The paper ports the Rust RaptorQ codec to C++ and applies it per sublayer so
that any fresh coded symbol adds information, retransmission needs no
per-packet feedback, and users in overlapping multicast groups receive no
redundant bytes.  We implement a systematic random-linear fountain code over
GF(256) with the same operational properties: receiving ``K + h`` symbols
fails to decode with probability about ``256^-(h+1)`` — the exact overhead
figure the paper quotes for RaptorQ.
"""

from .gf256 import gf2_matmul, gf_inverse, gf_matmul, gf_multiply, gf_solve
from .inactivation import InactivationStats, solve_inactivation
from .precode import Precode, PrecodeDecoder, PrecodeEncoder
from .raptor import (
    FountainDecoder,
    FountainEncoder,
    FountainSymbol,
    decode_failure_probability,
)
from .block import (
    DEFAULT_SYMBOL_SIZE,
    DENSE_CODEC,
    FOUNTAIN_CODECS,
    PRECODE_CODEC,
    CodingUnitId,
    FrameBlockEncoder,
    FrameBlockDecoder,
)

__all__ = [
    "gf_multiply",
    "gf_inverse",
    "gf_matmul",
    "gf2_matmul",
    "gf_solve",
    "FountainSymbol",
    "FountainEncoder",
    "FountainDecoder",
    "decode_failure_probability",
    "Precode",
    "PrecodeEncoder",
    "PrecodeDecoder",
    "InactivationStats",
    "solve_inactivation",
    "DEFAULT_SYMBOL_SIZE",
    "DENSE_CODEC",
    "PRECODE_CODEC",
    "FOUNTAIN_CODECS",
    "CodingUnitId",
    "FrameBlockEncoder",
    "FrameBlockDecoder",
]
