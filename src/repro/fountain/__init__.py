"""Rateless (Raptor-style) source coding (paper Sec 2.6, Fig 2).

The paper ports the Rust RaptorQ codec to C++ and applies it per sublayer so
that any fresh coded symbol adds information, retransmission needs no
per-packet feedback, and users in overlapping multicast groups receive no
redundant bytes.  We implement a systematic random-linear fountain code over
GF(256) with the same operational properties: receiving ``K + h`` symbols
fails to decode with probability about ``256^-(h+1)`` — the exact overhead
figure the paper quotes for RaptorQ.
"""

from .gf256 import gf_inverse, gf_matmul, gf_multiply, gf_solve
from .raptor import (
    FountainDecoder,
    FountainEncoder,
    FountainSymbol,
    decode_failure_probability,
)
from .block import DEFAULT_SYMBOL_SIZE, CodingUnitId, FrameBlockEncoder, FrameBlockDecoder

__all__ = [
    "gf_multiply",
    "gf_inverse",
    "gf_matmul",
    "gf_solve",
    "FountainSymbol",
    "FountainEncoder",
    "FountainDecoder",
    "decode_failure_probability",
    "DEFAULT_SYMBOL_SIZE",
    "CodingUnitId",
    "FrameBlockEncoder",
    "FrameBlockDecoder",
]
