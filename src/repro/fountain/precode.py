"""RaptorQ-style precode: LDPC + HDPC intermediate symbols, LT encoding.

The dense random-linear code in :mod:`repro.fountain.raptor` pays ``O(K)``
table-gather work per coded symbol and full Gaussian elimination per decode.
Production RaptorQ codecs (RFC 6330; Bulut, arXiv:2004.12461) avoid both
with a *precode*: the ``K`` source symbols are first expanded into ``L``
intermediate symbols constrained by ``S`` sparse LDPC rows and ``H`` dense
GF(256) HDPC rows, and every coded symbol is a *sparse* LT combination of
intermediates.  Encoding a symbol then costs a handful of XORs, and decoding
peels the sparse component with inactivation decoding
(:mod:`repro.fountain.inactivation`) so only a small dense core ever reaches
Gaussian elimination.

Layout of the ``L = K + S + H`` intermediate symbols:

* columns ``0 .. K+S-1`` — the *active* (peelable) symbols ``W``; LT and
  LDPC rows reference them with binary coefficients,
* columns ``K+S .. L-1`` — the ``H`` *PI* symbols, permanently inactive;
  LT rows reference two of them and HDPC rows tie them to the rest with
  dense GF(256) coefficients (this is what makes the core full-rank with
  overwhelming probability).

The constraint matrix ``A`` stacks ``S`` LDPC rows, ``H`` HDPC rows and the
``K`` systematic LT rows; intermediates solve ``A C = [0; 0; D]`` so symbol
ids below ``K`` reproduce the source exactly (systematic code, same wire
contract as the dense codec).  ``A`` depends only on ``K`` (plus a
deterministic salt bumped until ``A`` is invertible), so its inverse — and
every LT row — is cached process-wide and shared by all blocks.

Wire compatibility: :class:`PrecodeEncoder` / :class:`PrecodeDecoder`
mirror the :class:`repro.fountain.raptor.FountainEncoder` /
``FountainDecoder`` APIs and the :class:`FountainSymbol` framing, so
:mod:`repro.fountain.block` can select either codec per
``SystemConfig.fountain_codec``.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import FountainCodeError
from ..obs import OBS
from .gf256 import gf2_matmul, gf_matmul, gf_solve
from .inactivation import InactivationStats, solve_inactivation

__all__ = [
    "Precode",
    "PrecodeEncoder",
    "PrecodeDecoder",
    "ldpc_count",
    "hdpc_count",
]

#: Entropy constant for every precode RNG stream (distinct from the dense
#: codec's 0x5EED so the two symbol spaces never collide).
_PRECODE_ENTROPY = 0xA970C0DE

#: RFC 6330-style cumulative degree distribution, scaled to 2**20.  Index
#: ``d`` holds the cumulative weight of degrees ``<= d``; sampling draws a
#: uniform v in [0, 2**20) and takes the first degree whose cumulative
#: weight exceeds it.  Mean degree ~4.6, max 30.
_DEGREE_CDF = (
    0, 5243, 529531, 704294, 791675, 844104, 879057, 904023, 922747,
    937311, 948962, 958494, 966438, 973160, 978921, 983914, 988283,
    992138, 995565, 998631, 1001391, 1003887, 1006157, 1008229, 1010129,
    1011876, 1013490, 1014983, 1016370, 1017662, 1048576,
)
_DEGREE_SCALE = 1 << 20

#: PI columns referenced per LT row (RaptorQ uses 2-3; 2 keeps rows light).
_PI_PER_ROW = 2


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    i = 2
    while i * i <= n:
        if n % i == 0:
            return False
        i += 1
    return True


def ldpc_count(k: int) -> int:
    """LDPC constraint rows for a K-symbol block (smallest prime >= floor)."""
    s = max(3, -(-k * 5 // 100) + 2)
    while not _is_prime(s):
        s += 1
    return s


def hdpc_count(k: int) -> int:
    """Dense GF(256) HDPC rows — the core's rank insurance."""
    return 4 + k // 64


def _sample_degree(v: int) -> int:
    for d in range(1, len(_DEGREE_CDF)):
        if v < _DEGREE_CDF[d]:
            return d
    return len(_DEGREE_CDF) - 1


class Precode:
    """Per-K precode structure: constraints, LT generator, encode matrix.

    Instances are immutable after construction and cached process-wide via
    :meth:`for_k`; building one costs a single ``L x L`` solve (the
    constraint-matrix inversion) plus the LDPC/HDPC row derivations.
    """

    _CACHE: "OrderedDict[int, Precode]" = OrderedDict()
    MAX_CACHE = 512
    MAX_SALT = 64

    def __init__(self, k: int, salt: Optional[int] = None) -> None:
        if k <= 0:
            raise FountainCodeError(f"precode needs k >= 1, got {k}")
        self.k = int(k)
        self.s = ldpc_count(self.k)
        self.h = hdpc_count(self.k)
        self.w = self.k + self.s
        self.l = self.w + self.h
        self.pi_per_row = min(_PI_PER_ROW, self.h)
        self._ldpc_cols = self._build_ldpc()
        self._hdpc_active = self._build_hdpc()
        self._lt_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._repair_idx = np.zeros(0, dtype=np.int64)
        self._repair_cum = np.zeros(1, dtype=np.int64)
        if salt is None:
            encode_matrix = None
            for candidate in range(self.MAX_SALT):
                self.salt = candidate
                self._lt_cache.clear()
                encode_matrix = self._invert_constraints()
                if encode_matrix is not None:
                    break
            if encode_matrix is None:
                raise FountainCodeError(
                    f"no invertible precode found for k={k} within "
                    f"{self.MAX_SALT} salts"
                )
        else:
            self.salt = int(salt)
            encode_matrix = self._invert_constraints()
            if encode_matrix is None:
                raise FountainCodeError(
                    f"precode constraint matrix singular for k={k}, "
                    f"salt={salt}"
                )
        self.encode_matrix = encode_matrix
        self.systematic_mask = self._row_mask(range(self.k))

    @classmethod
    def for_k(cls, k: int) -> "Precode":
        """The cached precode for K source symbols (built on first use)."""
        cached = cls._CACHE.get(k)
        if cached is None:
            cached = cls(k)
            cls._CACHE[k] = cached
        cls._CACHE.move_to_end(k)
        while len(cls._CACHE) > cls.MAX_CACHE:
            cls._CACHE.popitem(last=False)
        return cached

    @classmethod
    def clear_cache(cls) -> None:
        cls._CACHE.clear()

    # ------------------------------------------------------------ structure

    def _build_ldpc(self) -> List[np.ndarray]:
        """R10-style circulant LDPC rows over the first K columns, plus the
        identity coefficient on each row's own LDPC symbol."""
        k, s = self.k, self.s
        toggles = np.zeros((s, k), dtype=bool)
        for i in range(k):
            a = 1 + (i // s) % (s - 1)
            b = i % s
            for _ in range(3):
                toggles[b, i] ^= True
                b = (b + a) % s
        rows = []
        for j in range(s):
            cols = np.nonzero(toggles[j])[0]
            rows.append(
                np.concatenate([cols, np.array([k + j], dtype=np.int64)])
            )
        return rows

    def _build_hdpc(self) -> np.ndarray:
        """Dense GF(256) HDPC coefficients over the W active columns."""
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=_PRECODE_ENTROPY, spawn_key=(self.k, 0, 0)
            )
        )
        return rng.integers(0, 256, size=(self.h, self.w), dtype=np.uint8)

    def lt_indices(self, symbol_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """LT row for ``symbol_id``: (active column indices, PI indices).

        Deterministic per ``(k, salt, symbol_id)`` — block-independent, so
        encoder, decoder and every block of the same K share one row cache.
        """
        cached = self._lt_cache.get(symbol_id)
        if cached is not None:
            return cached
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=_PRECODE_ENTROPY,
                spawn_key=(self.k, self.salt, 1 + symbol_id),
            )
        )
        degree = min(_sample_degree(int(rng.integers(0, _DEGREE_SCALE))), self.w)
        active = np.sort(rng.choice(self.w, size=degree, replace=False))
        pi = np.sort(rng.choice(self.h, size=self.pi_per_row, replace=False))
        row = (active.astype(np.int64), pi.astype(np.int64))
        self._lt_cache[symbol_id] = row
        return row

    def _row_mask(self, symbol_ids) -> np.ndarray:
        """Boolean ``(len(ids), L)`` LT rows for :func:`gf2_matmul`."""
        ids = list(symbol_ids)
        mask = np.zeros((len(ids), self.l), dtype=bool)
        for r, sid in enumerate(ids):
            active, pi = self.lt_indices(sid)
            mask[r, active] = True
            mask[r, self.w + pi] = True
        mask.setflags(write=False)
        return mask

    def repair_rows(
        self, first_symbol_id: int, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cached flat LT rows for repair ids ``first .. first+count-1``.

        Returns ``(indices, offsets)`` — the concatenated intermediate-row
        indices of the requested rows plus segment starts — shaped for one
        gather + :func:`numpy.bitwise_xor.reduceat` batch encode.  Grows a
        contiguous per-K index array on demand, the precode analogue of the
        dense codec's :class:`repro.fountain.raptor.CoefficientCache`.
        """
        if first_symbol_id < self.k:
            raise FountainCodeError(
                f"repair rows start at symbol id {self.k}, got "
                f"{first_symbol_id}"
            )
        if count <= 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        need = first_symbol_id - self.k + count
        have = self._repair_cum.shape[0] - 1
        if have < need:
            fresh = []
            lengths = []
            for sid in range(self.k + have, self.k + need):
                active, pi = self.lt_indices(sid)
                row = np.concatenate([active, self.w + pi])
                fresh.append(row)
                lengths.append(row.shape[0])
            self._repair_idx = np.concatenate([self._repair_idx, *fresh])
            self._repair_cum = np.concatenate(
                [
                    self._repair_cum,
                    self._repair_cum[-1]
                    + np.cumsum(np.array(lengths, dtype=np.int64)),
                ]
            )
        lo = first_symbol_id - self.k
        start = int(self._repair_cum[lo])
        stop = int(self._repair_cum[lo + count])
        indices = self._repair_idx[start:stop]
        offsets = self._repair_cum[lo : lo + count] - start
        return indices, offsets

    # ----------------------------------------------------------- inversion

    def _constraint_matrix(self) -> np.ndarray:
        a = np.zeros((self.l, self.l), dtype=np.uint8)
        for j, cols in enumerate(self._ldpc_cols):
            a[j, cols] = 1
        for j in range(self.h):
            a[self.s + j, : self.w] = self._hdpc_active[j]
            a[self.s + j, self.w + j] = 1
        for i in range(self.k):
            active, pi = self.lt_indices(i)
            a[self.s + self.h + i, active] = 1
            a[self.s + self.h + i, self.w + pi] = 1
        return a

    def _invert_constraints(self) -> Optional[np.ndarray]:
        """``A^-1`` columns that map source symbols to intermediates.

        Solving ``A C = [0; 0; D]`` needs only the last K columns of the
        inverse: ``C = A^-1[:, S+H:] @ D``.
        """
        identity = np.eye(self.l, dtype=np.uint8)
        solved = gf_solve(self._constraint_matrix(), identity)
        if solved is None:
            return None
        inverse, _ = solved
        matrix = np.ascontiguousarray(inverse[:, self.s + self.h :])
        matrix.setflags(write=False)
        return matrix


class PrecodeEncoder:
    """Systematic precode encoder for one source block.

    Same constructor contract and symbol stream semantics as
    :class:`repro.fountain.raptor.FountainEncoder`; repair symbols are
    sparse LT combinations of the intermediate block, batch-encoded with
    the bit-sliced :func:`repro.fountain.gf256.gf2_matmul` kernel.
    """

    def __init__(self, block_id: int, data: bytes, symbol_size: int):
        if symbol_size <= 0:
            raise FountainCodeError(
                f"symbol_size must be positive, got {symbol_size}"
            )
        if not data:
            raise FountainCodeError("cannot encode an empty block")
        self.block_id = int(block_id)
        self.symbol_size = int(symbol_size)
        self.data_len = len(data)
        self.num_source_symbols = -(-len(data) // symbol_size)
        padded = data + b"\x00" * (
            self.num_source_symbols * symbol_size - len(data)
        )
        self._source = np.frombuffer(padded, dtype=np.uint8).reshape(
            self.num_source_symbols, symbol_size
        )
        self.precode = Precode.for_k(self.num_source_symbols)
        self._intermediate: Optional[np.ndarray] = None
        self._intermediate_words: Optional[np.ndarray] = None

    @property
    def intermediate(self) -> np.ndarray:
        """The ``(L, symbol_size)`` intermediate block (computed once)."""
        if self._intermediate is None:
            self._intermediate = gf_matmul(
                self.precode.encode_matrix, self._source
            )
        return self._intermediate

    @property
    def _words(self) -> np.ndarray:
        """Intermediates as ``uint64`` words (symbol padded to 8n bytes).

        XOR is bytewise, so word width is free throughput: the segmented
        repair reduction touches 8x fewer elements than a ``uint8`` view.
        """
        if self._intermediate_words is None:
            inter = self.intermediate
            pad = (-self.symbol_size) % 8
            if pad:
                padded = np.zeros(
                    (inter.shape[0], self.symbol_size + pad), dtype=np.uint8
                )
                padded[:, : self.symbol_size] = inter
            else:
                padded = np.ascontiguousarray(inter)
            self._intermediate_words = padded.view(np.uint64)
        return self._intermediate_words

    def symbol(self, symbol_id: int) -> "FountainSymbol":
        """The coded symbol with stream index ``symbol_id``."""
        from .raptor import FountainSymbol

        if symbol_id < 0:
            raise FountainCodeError(
                f"symbol_id must be >= 0, got {symbol_id}"
            )
        if symbol_id < self.num_source_symbols:
            payload = self._source[symbol_id].tobytes()
        else:
            active, pi = self.precode.lt_indices(symbol_id)
            rows = np.concatenate([active, self.precode.w + pi])
            payload = np.bitwise_xor.reduce(
                self.intermediate[rows], axis=0
            ).tobytes()
        return FountainSymbol(self.block_id, symbol_id, payload)

    def payload_block(self, first_id: int, count: int) -> np.ndarray:
        """``(count, symbol_size)`` payload matrix, no per-symbol objects.

        The throughput API: systematic rows are sliced from the source and
        repair rows come out of one gather plus a segmented XOR reduction
        over the cached flat LT rows — a handful of XORs per symbol, which
        is the path the ``precode`` benchmark stage rates.
        """
        if first_id < 0:
            raise FountainCodeError(
                f"symbol ids must be >= 0, got {first_id}"
            )
        if count <= 0:
            return np.zeros((0, self.symbol_size), dtype=np.uint8)
        k = self.num_source_symbols
        out = np.empty((count, self.symbol_size), dtype=np.uint8)
        sys_end = min(first_id + count, k)
        if first_id < k:
            out[: sys_end - first_id] = self._source[first_id:sys_end]
        repair_start = max(first_id, k)
        repair_count = first_id + count - repair_start
        if repair_count > 0:
            indices, offsets = self.precode.repair_rows(
                repair_start, repair_count
            )
            words = np.bitwise_xor.reduceat(
                self._words[indices], offsets, axis=0
            )
            out[count - repair_count :] = words.view(np.uint8)[
                :, : self.symbol_size
            ]
        return out

    def symbols(self, first_id: int, count: int) -> List["FountainSymbol"]:
        """``count`` consecutive symbols starting at ``first_id``."""
        if first_id < 0:
            raise FountainCodeError(
                f"symbol ids must be >= 0, got {first_id}"
            )
        if count <= 0:
            return []
        if not OBS.mode:
            return self._symbols(first_id, count)
        t0 = perf_counter()
        out = self._symbols(first_id, count)
        OBS.count("fountain.symbols_encoded", count)
        OBS.record_span(
            "encode.fountain",
            t0,
            perf_counter(),
            fields={"block": self.block_id, "symbols": count},
        )
        return out

    def _symbols(self, first_id: int, count: int) -> List["FountainSymbol"]:
        from .raptor import FountainSymbol

        payloads = self.payload_block(first_id, count)
        return [
            FountainSymbol(self.block_id, first_id + i, payloads[i].tobytes())
            for i in range(count)
        ]


class PrecodeDecoder:
    """Accumulates precode symbols and decodes by inactivation.

    Mirrors the :class:`repro.fountain.raptor.FountainDecoder` surface.
    A decode attempt runs once the distinct-symbol count reaches K and is
    retried only when fresh symbols arrive; each attempt peels the sparse
    LT/LDPC component and solves only the small inactivated core, so the
    cost no longer scales with full ``O(K^3)`` elimination.
    """

    def __init__(self, block_id: int, data_len: int, symbol_size: int):
        if symbol_size <= 0:
            raise FountainCodeError(
                f"symbol_size must be positive, got {symbol_size}"
            )
        if data_len <= 0:
            raise FountainCodeError(
                f"data_len must be positive, got {data_len}"
            )
        self.block_id = int(block_id)
        self.symbol_size = int(symbol_size)
        self.data_len = int(data_len)
        self.num_source_symbols = -(-data_len // symbol_size)
        self.precode = Precode.for_k(self.num_source_symbols)
        self._payloads: Dict[int, bytes] = {}
        self._decoded: Optional[bytes] = None
        self._attempted_at = -1
        self.last_stats: Optional[InactivationStats] = None

    @property
    def received_count(self) -> int:
        """Distinct symbols received so far."""
        return len(self._payloads)

    @property
    def is_decoded(self) -> bool:
        """Whether the block has been reconstructed."""
        return self._decoded is not None

    @property
    def rank(self) -> int:
        """Cheap decodability bound (distinct symbols capped at K)."""
        return min(len(self._payloads), self.num_source_symbols)

    def received_ids(self) -> Set[int]:
        """Distinct symbol ids received."""
        return set(self._payloads)

    @property
    def symbols_missing(self) -> int:
        """Symbols still needed before a decode attempt can succeed."""
        return max(0, self.num_source_symbols - self.received_count)

    def add_symbol(self, symbol: "FountainSymbol") -> bool:
        """Ingest one symbol; returns True once the block is decodable."""
        if symbol.block_id != self.block_id:
            raise FountainCodeError(
                f"symbol for block {symbol.block_id} fed to decoder for "
                f"block {self.block_id}"
            )
        if len(symbol.payload) != self.symbol_size:
            raise FountainCodeError(
                f"payload is {len(symbol.payload)} bytes, expected "
                f"{self.symbol_size}"
            )
        if self._decoded is not None:
            return True
        if not OBS.mode:
            self._ingest(symbol)
            return self._decoded is not None
        t0 = perf_counter()
        self._ingest(symbol)
        t1 = perf_counter()
        OBS.count("fountain.symbols_received")
        OBS.histogram("decode.fountain").observe(t1 - t0)
        if self._decoded is not None:
            OBS.count("fountain.blocks_decoded")
            OBS.event(
                "decode.fountain",
                t0,
                t1,
                block=self.block_id,
                symbols=self.received_count,
                k=self.num_source_symbols,
            )
        return self._decoded is not None

    def _ingest(self, symbol: "FountainSymbol") -> None:
        self._payloads.setdefault(symbol.symbol_id, symbol.payload)
        if (
            len(self._payloads) >= self.num_source_symbols
            and len(self._payloads) != self._attempted_at
        ):
            self._try_decode()

    def decode(self) -> bytes:
        """The reconstructed block; raises if not yet decodable."""
        if self._decoded is None:
            if len(self._payloads) != self._attempted_at:
                self._try_decode()
        if self._decoded is None:
            raise FountainCodeError(
                f"block {self.block_id} not decodable: "
                f"{self.received_count}/{self.num_source_symbols} symbols"
            )
        return self._decoded

    def _try_decode(self) -> None:
        k = self.num_source_symbols
        self._attempted_at = len(self._payloads)
        if len(self._payloads) < k:
            return
        if all(i in self._payloads for i in range(k)):
            data = b"".join(self._payloads[i] for i in range(k))
            self._decoded = data[: self.data_len]
            return
        pre = self.precode
        ids = sorted(self._payloads)
        n_rows = pre.s + len(ids)
        sparse_cols: List[np.ndarray] = list(pre._ldpc_cols)
        sparse_pi = np.zeros((n_rows, pre.h), dtype=np.uint8)
        payloads = np.zeros((n_rows, self.symbol_size), dtype=np.uint8)
        for offset, sid in enumerate(ids):
            active, pi = pre.lt_indices(sid)
            sparse_cols.append(active)
            sparse_pi[pre.s + offset, pi] = 1
            payloads[pre.s + offset] = np.frombuffer(
                self._payloads[sid], dtype=np.uint8
            )
        dense_pi = np.eye(pre.h, dtype=np.uint8)
        dense_payloads = np.zeros((pre.h, self.symbol_size), dtype=np.uint8)
        solved = solve_inactivation(
            pre.w,
            pre.h,
            sparse_cols,
            sparse_pi,
            payloads,
            pre._hdpc_active,
            dense_pi,
            dense_payloads,
        )
        if solved is None:
            return
        intermediates, stats = solved
        self.last_stats = stats
        source = gf2_matmul(pre.systematic_mask, intermediates)
        self._decoded = source.tobytes()[: self.data_len]
