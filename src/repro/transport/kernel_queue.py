"""Kernel transmit-queue model for the no-rate-control ablation (Sec 4.2.3).

Without rate control "the AP sends packets to the driver continuously until
the kernel's queue is full.  This triggers packet drop and leads to low
quality for several frames."  We model a finite FIFO drained at the link
rate: the application writes the whole frame burst at CPU speed, so packets
beyond (queue capacity + what drains within the deadline) are tail-dropped —
and because the burst is written in one go, drops land across all layers
instead of only the least-important tail the paced sender would shed.
"""

from __future__ import annotations


import numpy as np

from ..errors import TransportError


class KernelQueue:
    """A finite driver queue drained at link speed.

    Args:
        capacity_packets: Queue depth in packets.
    """

    def __init__(self, capacity_packets: int = 700) -> None:
        if capacity_packets <= 0:
            raise TransportError(
                f"capacity must be positive, got {capacity_packets}"
            )
        self.capacity_packets = int(capacity_packets)

    def admitted_mask(
        self,
        num_packets: int,
        packet_bytes,
        drain_rate_bytes_per_s: float,
        window_s: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Which of a burst of packets survive the queue.

        Args:
            num_packets: Burst size written at once.
            packet_bytes: Size of each packet — a scalar for uniform
                bursts, or a ``(num_packets,)`` array of per-packet sizes.
            drain_rate_bytes_per_s: Link drain rate.
            window_s: Time available for draining (the frame budget).
            rng: Randomness for which packets are dropped.

        Returns:
            Boolean mask of admitted packets.  The overflow volume is dropped
            uniformly at random over the burst — bursty writers interleave
            layers, so overflow does not politely trim the tail.
        """
        if num_packets <= 0:
            return np.zeros(0, dtype=bool)
        # The application writes the burst much faster than the link drains:
        # only what drains during the write window plus the queue capacity
        # gets through.
        write_window_s = 0.5 * window_s
        drain_budget = drain_rate_bytes_per_s * write_window_s
        sizes = np.asarray(packet_bytes, dtype=np.float64)
        if sizes.ndim == 0:
            drained = int(drain_budget / max(float(sizes), 1e-9))
        else:
            if sizes.shape != (num_packets,):
                raise TransportError(
                    f"packet_bytes must be scalar or shape ({num_packets},), "
                    f"got {sizes.shape}"
                )
            # Non-uniform burst: count how many packets fit the drain budget
            # cumulatively (one searchsorted, no per-packet loop).
            cumulative = np.cumsum(np.maximum(sizes, 1e-9))
            drained = int(np.searchsorted(cumulative, drain_budget, side="right"))
        admitted = min(num_packets, self.capacity_packets + drained)
        mask = np.ones(num_packets, dtype=bool)
        overflow = num_packets - admitted
        if overflow > 0:
            drop_idx = rng.choice(num_packets, size=overflow, replace=False)
            mask[drop_idx] = False
        return mask

    def drain_time_s(
        self, num_packets: int, packet_bytes: float, drain_rate_bytes_per_s: float
    ) -> float:
        """Time for the admitted burst to leave the queue."""
        if drain_rate_bytes_per_s <= 0:
            raise TransportError("drain rate must be positive")
        return num_packets * packet_bytes / drain_rate_bytes_per_s
